//! Umbrella crate for the PIMnet reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so that the
//! examples under `examples/` and the integration tests under `tests/` can use
//! a single dependency. Library users should depend on the individual crates
//! ([`pimnet`], [`pim_arch`], [`pim_workloads`], ...) directly.

#![forbid(unsafe_code)]

pub use pim_arch as arch;
pub use pim_faults as faults;
pub use pim_noc as noc;
pub use pim_sim as sim;
pub use pim_workloads as workloads;
pub use pimnet as net;
