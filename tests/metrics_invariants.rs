//! Conservation laws of the metrics layer, pinned over every collective
//! path.
//!
//! The contract of `pim_sim::metrics`:
//!
//! 1. **Byte conservation (executor)** — per tier, the bytes the executor
//!    stages for delivery equal the bytes it delivers.
//! 2. **Busy ≤ wall (timing + NoC)** — no single link is busy longer than
//!    the run's end-to-end completion time.
//! 3. **Barrier consistency** — the recorded barrier-wait total equals
//!    the Timeline's own sync cost, and the completion watermark equals
//!    `Timeline::end`.
//! 4. **Byte conservation (NoC)** — a completed credit-simulation run
//!    delivers every injected byte.
//! 5. **Zero when disabled** — the disabled sink stays all-zero and the
//!    probed entry points are bit-identical to their plain twins.
//! 6. **Worker-count invariance** — the same captures produce the same
//!    reports at 1, 2 and 8 workers.

use pimnet_suite::arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::arch::{OpCounts, SystemConfig};
use pimnet_suite::net::backends::PimnetBackend;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{ExecMachine, ReduceOp};
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::net::FabricConfig;
use pimnet_suite::noc::{simulate_credit, simulate_credit_probed, NocConfig};
use pimnet_suite::sim::{par, Bytes, MetricsReport, Probe, SimTime};
use pimnet_suite::workloads::{run_program, run_program_probed, Phase, Program};

const KINDS: [CollectiveKind; 5] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::Broadcast,
    CollectiveKind::AllToAll,
];

fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
}

fn input(id: DpuId, elems: usize) -> Vec<u64> {
    (0..elems)
        .map(|e| u64::from(id.0) * 1_000 + e as u64)
        .collect()
}

/// Full observed pipeline (timeline + executor) for one kind; returns the
/// metrics snapshot the invariants below inspect.
fn observe(kind: CollectiveKind, n: u32, elems: usize) -> (Timeline, MetricsReport) {
    let s = schedule(kind, n, elems);
    let probe = Probe::enabled();
    let t = Timeline::build_probed(&s, &TimingModel::paper(), &probe);
    let mut m = ExecMachine::init(&s, |id| input(id, elems));
    m.run_probed(&s, ReduceOp::Sum, &probe);
    (t, probe.metrics.snapshot())
}

#[test]
fn executor_conserves_bytes_per_tier() {
    for kind in KINDS {
        let (_, r) = observe(kind, 8, 64);
        assert_eq!(
            r.exec_bytes_injected_by_tier, r.exec_bytes_delivered_by_tier,
            "{kind}: staged and delivered bytes diverged"
        );
        assert!(r.exec_steps >= 1, "{kind}: no steps observed");
        assert_eq!(
            r.arena_snapshots, r.exec_steps,
            "{kind}: one staging snapshot per step"
        );
        assert!(
            r.arena_grows <= r.arena_snapshots,
            "{kind}: more grows than snapshots"
        );
        assert_eq!(r.arena_reuses(), r.arena_snapshots - r.arena_grows);
    }
}

#[test]
fn no_link_is_busy_longer_than_the_wall_clock() {
    for kind in KINDS {
        let (t, r) = observe(kind, 16, 128);
        assert!(
            r.max_link_busy_ps <= r.wall_ps,
            "{kind}: busiest link ({} ps) exceeds wall time ({} ps)",
            r.max_link_busy_ps,
            r.wall_ps
        );
        assert_eq!(r.wall_ps, t.end.as_ps(), "{kind}: wall watermark drifted");
    }
}

#[test]
fn barrier_and_wire_counters_match_the_timeline() {
    for kind in KINDS {
        let s = schedule(kind, 16, 96);
        let probe = Probe::enabled();
        let t = Timeline::build_probed(&s, &TimingModel::paper(), &probe);
        let r = probe.metrics.snapshot();
        assert_eq!(r.barriers, 1, "{kind}: one READY/START barrier per build");
        assert_eq!(
            r.barrier_wait_ps,
            t.sync.as_ps(),
            "{kind}: barrier wait != timeline sync cost"
        );
        let window_bytes: u64 = t.windows.iter().map(|w| w.bytes).sum();
        assert_eq!(
            r.wire_bytes_by_tier.iter().sum::<u64>(),
            window_bytes,
            "{kind}: per-tier wire bytes don't sum to the window total"
        );
        assert_eq!(
            r.wire_transfers_by_tier.iter().sum::<u64>(),
            t.windows.len() as u64,
            "{kind}: one wire_transfer observation per window"
        );
        assert_eq!(
            r.transfer_bytes.count(),
            t.windows.len() as u64,
            "{kind}: histogram sample count != window count"
        );
    }
}

#[test]
fn noc_delivers_every_injected_byte() {
    let cfg = NocConfig::paper();
    for kind in KINDS {
        let s = schedule(kind, 8, 256);
        let ready = vec![SimTime::ZERO; 8];
        let probe = Probe::enabled();
        let report = simulate_credit_probed(&s, &ready, &cfg, &probe);
        let r = probe.metrics.snapshot();
        assert_eq!(
            r.noc_injected_bytes, r.noc_delivered_bytes,
            "{kind}: the NoC lost bytes"
        );
        assert_eq!(
            r.noc_injected_bytes, report.injected_bytes,
            "{kind}: metrics disagree with the NocReport"
        );
        assert_eq!(r.noc_packets, report.packets as u64);
        assert_eq!(r.noc_stall_cycles, report.stall_cycles);
        assert!(
            r.max_link_busy_ps <= r.wall_ps,
            "{kind}: NoC link busy ({} ps) exceeds wall ({} ps)",
            r.max_link_busy_ps,
            r.wall_ps
        );
    }
}

#[test]
fn program_metrics_reconstruct_the_comm_breakdown() {
    let sys = SystemConfig::paper();
    let backend = PimnetBackend::new(sys, FabricConfig::paper());
    let program = Program::new(vec![
        Phase::compute(OpCounts::new().with_adds(100_000)),
        Phase::collective(CollectiveKind::AllReduce, Bytes::kib(8)),
        Phase::compute(OpCounts::new().with_adds(50_000)),
        Phase::collective(CollectiveKind::ReduceScatter, Bytes::kib(4)),
    ]);
    let probe = Probe::enabled();
    let report = run_program_probed(&program, &sys, &backend, &probe).unwrap();
    let r = probe.metrics.snapshot();
    let comm_ps: u64 = r.comm_time_ps_by_tier.iter().sum::<u64>()
        + r.sync_time_ps
        + r.mem_time_ps
        + r.host_time_ps;
    assert_eq!(
        comm_ps,
        report.comm.total().as_ps(),
        "per-tier + sync/mem/host buckets must reassemble the comm total"
    );
    assert_eq!(r.wall_ps, report.total().as_ps());
    assert_eq!(
        report,
        run_program(&program, &sys, &backend).unwrap(),
        "probing changed the report"
    );
}

#[test]
fn disabled_sink_is_zero_cost_and_zero_valued() {
    let off = Probe::disabled();
    for kind in KINDS {
        let s = schedule(kind, 8, 64);
        let timing = TimingModel::paper();
        assert_eq!(
            Timeline::build_probed(&s, &timing, off),
            Timeline::build(&s, &timing),
            "{kind}: probing changed the timeline"
        );
        let mut plain = ExecMachine::init(&s, |id| input(id, 64));
        plain.run(&s, ReduceOp::Sum);
        let mut probed = ExecMachine::init(&s, |id| input(id, 64));
        probed.run_probed(&s, ReduceOp::Sum, off);
        assert_eq!(plain, probed, "{kind}: probing changed the buffers");
        let ready = vec![SimTime::ZERO; 8];
        let cfg = NocConfig::paper();
        assert_eq!(
            simulate_credit_probed(&s, &ready, &cfg, off),
            simulate_credit(&s, &ready, &cfg),
            "{kind}: probing changed the NoC report"
        );
    }
    assert!(!off.is_active());
    assert_eq!(
        off.metrics.snapshot(),
        MetricsReport::new(),
        "disabled sink accumulated metrics"
    );
    assert_eq!(
        off.trace.drain().events.len(),
        0,
        "disabled tracer recorded"
    );
}

#[test]
fn metrics_are_worker_count_invariant() {
    let run = |workers: usize| -> Vec<MetricsReport> {
        par::map_ordered_with(workers, KINDS.to_vec(), |kind| observe(kind, 8, 64).1)
    };
    let reference = run(1);
    for workers in [2usize, 8] {
        assert_eq!(
            run(workers),
            reference,
            "metrics diverged between 1 and {workers} workers"
        );
    }
}
