//! End-to-end programs written against the SimplePIM-style framework:
//! the data is real, the time is modeled, and both must be right.

use pim_arch::geometry::DpuId;
use pim_arch::OpCounts;
use pimnet_suite::net::api::PimnetSystem;
use pimnet_suite::net::backends::BackendKind;
use pimnet_suite::net::exec::ReduceOp;
use pimnet_suite::net::framework::{PimRuntime, PimVector};

/// Distributed histogram: each DPU counts its shard locally, one AllReduce
/// merges the counts — the canonical map/reduce PIM program.
#[test]
fn distributed_histogram() {
    let mut rt = PimRuntime::paper();
    let dpus = rt.dpus() as usize;
    let buckets = 64usize;

    // Every DPU builds its local histogram of a deterministic data shard.
    let shards: Vec<Vec<u64>> = (0..dpus)
        .map(|d| {
            let mut h = vec![0u64; buckets];
            for i in 0..1_000 {
                h[(d * 31 + i * 17) % buckets] += 1;
            }
            h
        })
        .collect();
    let expected: Vec<u64> = (0..buckets)
        .map(|b| shards.iter().map(|s| s[b]).sum())
        .collect();

    let mut v = PimVector::from_shards(&rt, shards).unwrap();
    v.map(&mut rt, OpCounts::new().with_adds(3).with_loads(2), |_| {});
    v.all_reduce(&mut rt, ReduceOp::Sum).unwrap();

    for d in 0..dpus as u32 {
        assert_eq!(v.shard(DpuId(d)), expected.as_slice(), "DPU{d}");
    }
    assert_eq!(v.len(), dpus * buckets);
    assert!(rt.elapsed().as_ms() < 5.0);
}

/// Distributed matrix transpose via all_to_all, verified element-wise.
#[test]
fn distributed_transpose() {
    let sys = PimnetSystem::new(
        pim_arch::SystemConfig::paper().with_geometry(pim_arch::PimGeometry::paper_scaled(64)),
        pimnet::FabricConfig::paper(),
    );
    let mut rt = PimRuntime::new(sys, BackendKind::Pimnet);
    let n = 64usize;
    // Row-major matrix: shard i holds row block i (one row of 64x64 tiles
    // of 4 elements each).
    let tile = 4usize;
    let shards: Vec<Vec<u32>> = (0..n as u32)
        .map(|i| {
            (0..n as u32)
                .flat_map(|j| (0..tile as u32).map(move |k| i * 10_000 + j * 10 + k))
                .collect()
        })
        .collect();
    let mut m = PimVector::from_shards(&rt, shards).unwrap();
    m.all_to_all(&mut rt).unwrap();
    // After the transpose, shard j's chunk i is what shard i sent for j.
    for j in 0..n as u32 {
        let s = m.shard(DpuId(j));
        for i in 0..n as u32 {
            for k in 0..tile as u32 {
                assert_eq!(
                    s[(i as usize) * tile + k as usize],
                    i * 10_000 + j * 10 + k,
                    "tile ({i},{j})[{k}]"
                );
            }
        }
    }
}

/// The same framework program costs strictly more on every host-mediated
/// backend, and the numbers are identical regardless of backend.
#[test]
fn backend_changes_time_not_values() {
    let run = |backend: BackendKind| {
        let mut rt = PimRuntime::new(PimnetSystem::paper(), backend);
        let data: Vec<u64> = (0..256 * 512).map(|i| i % 1_000).collect();
        let mut v = rt.scatter(&data);
        v.all_reduce(&mut rt, ReduceOp::Max).unwrap();
        (v.shard(DpuId(0)).to_vec(), rt.elapsed())
    };
    let (vals_p, t_p) = run(BackendKind::Pimnet);
    let (vals_b, t_b) = run(BackendKind::Baseline);
    let (vals_s, t_s) = run(BackendKind::SoftwareIdeal);
    assert_eq!(vals_p, vals_b);
    assert_eq!(vals_p, vals_s);
    assert!(t_p < t_s && t_s < t_b, "{t_p} < {t_s} < {t_b}");
}

/// reduce_scatter followed by all_gather reproduces all_reduce exactly
/// (Table V's composition), through the public framework API alone.
#[test]
fn rs_then_ag_equals_ar() {
    let make = || {
        let rt = PimRuntime::paper();
        let shards: Vec<Vec<u64>> = (0..256u64)
            .map(|d| (0..512).map(|e| d * 7 + e % 13).collect())
            .collect();
        (
            PimVector::from_shards(&rt, shards).unwrap(),
            PimRuntime::paper(),
        )
    };
    let (mut a, mut rt_a) = make();
    a.all_reduce(&mut rt_a, ReduceOp::Sum).unwrap();

    let (mut b, mut rt_b) = make();
    b.reduce_scatter(&mut rt_b, ReduceOp::Sum).unwrap();
    b.all_gather(&mut rt_b).unwrap();

    // all_gather concatenates pieces in DPU order, which (by the builders'
    // construction) re-assembles the reduced vector only up to the piece
    // permutation; compare as multisets of (value) per position by sorting
    // each shard's reconstruction against the AR reference.
    let reference = a.shard(DpuId(0)).to_vec();
    let mut reconstructed = b.shard(DpuId(0)).to_vec();
    let mut sorted_ref = reference.clone();
    sorted_ref.sort_unstable();
    reconstructed.sort_unstable();
    assert_eq!(reconstructed, sorted_ref);
}
