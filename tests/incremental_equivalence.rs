//! Differential equivalence harness for the incremental verifier: the
//! streaming fold ([`analysis::verify_full`]) and the delta re-lint
//! ([`analysis::reverify_delta`] / [`analysis::reverify_repair`]) must
//! produce reports **byte-identical** to the batch analyzer
//! ([`analysis::run_all`]) — same codes, same rendered messages, same
//! order — over the full fuzzer corpus (the validator fuzzer's 1000
//! seeded single mutations), the builder matrix, and repaired storm
//! schedules, at 1, 2, and 8 workers.
//!
//! Byte-identity is the soundness statement: a mutant the batch analyzer
//! rejects that the delta path accepts would be an unsound accept, and
//! any divergence at all fails the `assert_eq!` on the rendered report.

use std::sync::Arc;

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::analysis;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::{repair, CommSchedule, Span};
use pimnet_suite::sim::{par, SimRng};

/// Renders a report both ways the repo compares them: the exact human
/// rendering and the exact JSON. Any difference in either is a failure.
fn fingerprint(report: &analysis::AnalysisReport) -> String {
    format!("{report}\n{}", report.to_json())
}

/// Asserts the three drivers agree on `schedule`, given the verified
/// summary of `base` to delta from, and returns the batch fingerprint.
fn check_one(label: &str, base: &analysis::AnalysisSummary, schedule: &CommSchedule) -> String {
    let batch = analysis::run_all(schedule);
    let batch_fp = fingerprint(&batch);

    let streamed = analysis::verify_full(schedule);
    assert_eq!(
        batch_fp,
        fingerprint(&streamed.report),
        "{label}: streaming verifier diverged from batch"
    );

    let (delta, stats) = analysis::reverify_delta(base, Arc::new(schedule.clone()));
    assert_eq!(
        batch_fp,
        fingerprint(&delta.report),
        "{label}: delta re-lint diverged from batch \
         (reused {} of {} steps, {} re-linted)",
        stats.reused(),
        stats.steps_total,
        stats.relinted
    );
    batch_fp
}

/// One corpus case: the validator fuzzer's mutation recipe (same seeds,
/// same geometry/kind/site/op draws), adjudicated for byte-identity
/// instead of executor agreement. Pure function of the seed, so the
/// fan-out is worker-count independent.
fn mutation_case(seed: u64) -> String {
    let mut rng = SimRng::seed_from_u64(0xBEEF_0000 ^ seed);
    let dpus = [8u32, 16][rng.below(2) as usize];
    let kind = CollectiveKind::ALL[rng.below(7) as usize];
    let g = PimGeometry::paper_scaled(dpus);
    let mut s = CommSchedule::build(kind, &g, 64, 4).unwrap();
    let total = g.total_dpus();

    // The base schedule is verified once; every mutant deltas from it.
    let base = analysis::verify_full(&s);
    assert_eq!(
        fingerprint(&analysis::run_all(&s)),
        fingerprint(&base.report),
        "seed {seed}: streaming verifier diverged on the unmutated base"
    );

    let sites: Vec<(usize, usize, usize)> = s
        .phases
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| {
            p.steps.iter().enumerate().flat_map(move |(si, st)| {
                st.transfers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.is_local())
                    .map(move |(ti, _)| (pi, si, ti))
            })
        })
        .collect();
    let (pi, si, ti) = sites[rng.below(sites.len() as u64) as usize];
    let op = rng.below(6);
    let step = &mut s.phases[pi].steps[si];
    match op {
        0 => {
            step.transfers.remove(ti);
        }
        1 => {
            let t = &mut step.transfers[ti];
            t.dsts[0] = DpuId((t.dsts[0].0 + 1) % total);
        }
        2 => {
            let t = &mut step.transfers[ti];
            t.dst_span = Span::new(t.dst_span.start + 1, t.dst_span.len);
        }
        3 => {
            let t = &mut step.transfers[ti];
            t.src = DpuId((t.src.0 + 1) % total);
        }
        4 => {
            let t = &mut step.transfers[ti];
            if t.src_span.len > 1 {
                t.src_span = Span::new(t.src_span.start, t.src_span.len - 1);
                t.dst_span = Span::new(t.dst_span.start, t.dst_span.len - 1);
            } else {
                step.transfers.remove(ti);
            }
        }
        _ => {
            let t = &mut step.transfers[ti];
            t.combine = !t.combine;
        }
    }

    let label = format!("seed {seed} ({kind} x{dpus} op {op})");
    format!("{label}\n{}", check_one(&label, &base, &s))
}

/// The full 1000-seed mutation corpus, checked for three-way
/// byte-identity at 1, 2, and 8 workers: each case already asserts
/// incremental == batch internally, and the concatenated fingerprints
/// must not depend on the worker count either.
#[test]
fn mutation_corpus_is_byte_identical_at_every_worker_count() {
    const TOTAL: u64 = 1000;
    let reference = par::map_ordered_with(1, (0..TOTAL).collect(), mutation_case).join("\n");
    for workers in [2usize, 8] {
        let got = par::map_ordered_with(workers, (0..TOTAL).collect(), mutation_case).join("\n");
        assert_eq!(
            reference, got,
            "corpus fingerprints diverged between 1 and {workers} workers"
        );
    }
}

/// Builder matrix: every collective on small/medium geometries and both
/// an aligned and a deliberately awkward payload size.
#[test]
fn builder_matrix_streaming_matches_batch() {
    for kind in CollectiveKind::ALL {
        for dpus in [2u32, 8, 64] {
            for elems in [64usize, 193] {
                let g = PimGeometry::paper_scaled(dpus);
                let s = CommSchedule::build(kind, &g, elems, 4).unwrap();
                let base = analysis::verify_full(&s);
                let label = format!("{kind} x{dpus} e{elems}");
                // Delta of a schedule against its own summary must also
                // reproduce the batch report while reusing every step.
                let (delta, stats) = analysis::reverify_delta(&base, Arc::new(s.clone()));
                assert_eq!(
                    fingerprint(&analysis::run_all(&s)),
                    fingerprint(&delta.report),
                    "{label}: identity delta diverged"
                );
                assert_eq!(stats.relinted, 0, "{label}: identity delta re-linted");
                assert_eq!(fingerprint(&base.report), fingerprint(&delta.report));
            }
        }
    }
}

/// Storm corpus: repaired schedules re-proven by `reverify_repair`
/// against the fault-free base summary must match a batch run over the
/// repaired schedule, byte for byte.
#[test]
fn repaired_storm_schedules_delta_matches_batch() {
    let mut storms = 0usize;
    for round in 0..24u64 {
        let mut rng = SimRng::seed_from_u64(0x57A2 ^ round);
        let dpus = [8u32, 16, 64][rng.below(3) as usize];
        let kind = CollectiveKind::ALL[rng.below(7) as usize];
        let g = PimGeometry::paper_scaled(dpus);
        let s = CommSchedule::build(kind, &g, 64, 4).unwrap();
        let cfg = pimnet_suite::faults::FaultConfig {
            perm_rates: pimnet_suite::faults::PermanentFaultRates {
                segment_prob: 0.04,
                port_prob: 0.04,
                rank_prob: 0.0,
            },
            ..pimnet_suite::faults::FaultConfig::none()
        }
        .with_seed(0x57A2 ^ round);
        let injector = pimnet_suite::faults::FaultInjector::new(cfg);
        let faults =
            injector.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
        if faults.is_empty() || !repair::unusable_dpus(&g, &faults).is_empty() {
            continue;
        }
        let Ok(r) = repair::repair(&s, &faults) else {
            continue;
        };
        storms += 1;
        let base = analysis::verify_full(&s);
        let batch = analysis::run_all(&r.schedule);
        let (delta, stats) = analysis::reverify_repair(&base, &r);
        assert_eq!(
            fingerprint(&batch),
            fingerprint(&delta.report),
            "round {round} ({kind} x{dpus}): repaired delta diverged from batch \
             ({} re-linted of {})",
            stats.relinted,
            stats.steps_total
        );
    }
    assert!(storms >= 8, "storm corpus too thin: only {storms} repairs");
}

/// A mutation in the *suffix* region must not be masked by cached suffix
/// adoption: the delta path has to notice the content change, re-lint
/// it, and report exactly what batch reports.
#[test]
fn suffix_mutations_are_never_masked() {
    let g = PimGeometry::paper_scaled(16);
    let s = CommSchedule::build(CollectiveKind::AllReduce, &g, 64, 4).unwrap();
    let base = analysis::verify_full(&s);
    // Mutate the last non-local transfer in the schedule.
    let mut m = s.clone();
    let mut site = None;
    for (pi, p) in m.phases.iter().enumerate() {
        for (si, st) in p.steps.iter().enumerate() {
            for (ti, t) in st.transfers.iter().enumerate() {
                if !t.is_local() {
                    site = Some((pi, si, ti));
                }
            }
        }
    }
    let (pi, si, ti) = site.expect("a non-local transfer");
    let t = &mut m.phases[pi].steps[si].transfers[ti];
    t.dst_span = Span::new(t.dst_span.start + 1, t.dst_span.len);
    let batch = analysis::run_all(&m);
    let (delta, stats) = analysis::reverify_delta(&base, Arc::new(m));
    assert_eq!(fingerprint(&batch), fingerprint(&delta.report));
    assert!(stats.relinted >= 1, "suffix mutation re-linted nothing");
}
