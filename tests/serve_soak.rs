//! Multi-tenant serving soak: the `pimnet::serve` contract, end-to-end.
//!
//! Pinned across seeds, policies, worker counts and fault storms:
//!
//! 1. **Determinism** — the same config reproduces the same request
//!    log byte-for-byte, and a seed matrix fanned out over 1, 2 and 8
//!    workers renders identical concatenated logs.
//! 2. **Exactly one typed outcome** — every sampled arrival ends as
//!    served, host-fallback, shed (with a typed `PimnetError`) or
//!    quarantined; nothing is lost, nothing is double-served.
//! 3. **Graceful degradation** — the overload ladder only climbs, shed
//!    requests never consume service time, and the priority class the
//!    ladder sheds is the one configured.
//! 4. **Quarantine hysteresis** — epochs never regress, and no request
//!    is served on a tenant inside its quarantine wall.
//! 5. **Fault composition** — a seeded fault timeline routed through
//!    the recovery manager keeps every guarantee above.

use pimnet_suite::arch::PimGeometry;
use pimnet_suite::faults::{FaultConfig, FaultTimeline, TimelineRates};
use pimnet_suite::net::serve::{
    sample_arrivals, serve, OverloadThresholds, QueuePolicy, RequestOutcome, ServeConfig,
};
use pimnet_suite::net::PimnetError;
use pimnet_suite::sim::par;

/// A storm config: two default-shard tenants under a seeded fault
/// timeline aggressive enough to exercise recovery, quarantine and
/// host fallback.
fn storm_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::uniform(2, seed);
    let g = cfg.tenants[0].geometry;
    let rates = TimelineRates {
        segment_arrival_prob: 0.5,
        port_arrival_prob: 0.5,
        rank_arrival_prob: 0.9,
        flap_prob: 0.5,
        burst_prob: 0.5,
        burst_ber: 0.8,
    };
    let timeline = FaultTimeline::sample(
        seed,
        g.ranks_per_channel,
        g.chips_per_rank,
        g.banks_per_chip,
        cfg.horizon_ps,
        &rates,
    );
    cfg.faults = FaultConfig {
        timeline,
        max_retries: 8,
        ..FaultConfig::none()
    }
    .with_seed(seed);
    cfg
}

/// A flood config that outruns its own service rate: small shard, tiny
/// gaps, tight ladder thresholds, a sheddable low-priority tenant.
fn flood_config(seed: u64) -> ServeConfig {
    let mut cfg = ServeConfig::uniform(2, seed);
    cfg.policy = QueuePolicy::Priority;
    cfg.overload = OverloadThresholds {
        shrink_at: 2,
        shed_at: 4,
        fallback_at: 8,
    };
    // Priority 1 (tenant 0) is the class the ladder sheds at level >= 2.
    cfg.shed_priority_below = 2;
    for (i, t) in cfg.tenants.iter_mut().enumerate() {
        t.geometry = PimGeometry::new(4, 2, 2, 1);
        t.elems_per_node = 64;
        t.mean_gap_ps = 120_000;
        t.priority = 1 + i as u8;
        t.queue_capacity = 4;
    }
    cfg.horizon_ps = 20_000_000;
    cfg
}

/// Renders the request logs of a seed matrix, fanned out over `workers`.
fn matrix_logs(workers: usize, seeds: &[u64]) -> String {
    par::map_ordered_with(workers, seeds.to_vec(), |seed| {
        let cfg = ServeConfig::uniform(3, seed);
        let report = serve(&cfg).expect("uniform serve config is valid");
        report.render_log(&cfg)
    })
    .concat()
}

#[test]
fn request_logs_are_byte_identical_at_1_2_and_8_workers() {
    let seeds: Vec<u64> = (0..4).map(|i| 0xA0 + i).collect();
    let one = matrix_logs(1, &seeds);
    let two = matrix_logs(2, &seeds);
    let eight = matrix_logs(8, &seeds);
    assert!(!one.is_empty());
    assert_eq!(one, two, "1-worker and 2-worker logs diverged");
    assert_eq!(one, eight, "1-worker and 8-worker logs diverged");
}

#[test]
fn the_same_config_reproduces_the_same_report() {
    for cfg in [
        ServeConfig::uniform(3, 11),
        storm_config(5),
        flood_config(9),
    ] {
        let a = serve(&cfg).expect("serve");
        let b = serve(&cfg).expect("serve");
        assert_eq!(a.render_log(&cfg), b.render_log(&cfg));
        assert_eq!(a.ladder, b.ladder);
        assert_eq!(a.quarantines, b.quarantines);
        assert_eq!(a.end_ps, b.end_ps);
    }
    // Different seeds must actually sample different traces.
    let a = ServeConfig::uniform(3, 11);
    let b = ServeConfig::uniform(3, 12);
    assert_ne!(
        serve(&a).expect("serve").render_log(&a),
        serve(&b).expect("serve").render_log(&b)
    );
}

#[test]
fn every_arrival_gets_exactly_one_typed_outcome() {
    for cfg in [
        ServeConfig::uniform(3, 21),
        storm_config(21),
        flood_config(21),
    ] {
        let report = serve(&cfg).expect("serve");
        let arrivals = sample_arrivals(&cfg);
        assert_eq!(report.log.len(), arrivals.len(), "an arrival was dropped");
        for (i, r) in report.log.iter().enumerate() {
            assert_eq!(r.request.id, i as u64, "log ids must stay dense");
        }
        let counted = report.count("served")
            + report.count("host-fallback")
            + report.count("shed")
            + report.count("quarantined");
        assert_eq!(counted, report.log.len(), "outcome kinds must partition");
    }
}

#[test]
fn shed_requests_never_consume_service_and_carry_typed_errors() {
    let cfg = flood_config(33);
    let report = serve(&cfg).expect("serve");
    assert!(report.count("shed") > 0, "the flood must shed something");
    for r in &report.log {
        match &r.outcome {
            RequestOutcome::Shed { reason, error, .. } => {
                assert!(
                    r.latency_ps().is_none(),
                    "a shed request must not be served"
                );
                match error {
                    PimnetError::AdmissionRejected { tenant, .. }
                    | PimnetError::DeadlineExceeded { tenant, .. } => {
                        assert_eq!(*tenant, r.request.tenant);
                        assert!(reason.is_some(), "admission sheds carry a reason");
                    }
                    // A failed recovery surfaces the underlying error.
                    _ => assert!(reason.is_none()),
                }
            }
            RequestOutcome::Quarantined { .. } => {
                assert!(r.latency_ps().is_none());
            }
            _ => {}
        }
    }
}

#[test]
fn the_overload_ladder_only_climbs_and_sheds_the_configured_class() {
    let cfg = flood_config(44);
    let report = serve(&cfg).expect("serve");
    let mut level = 0;
    for step in &report.ladder {
        assert!(step.level > level, "the ladder must only ratchet upward");
        level = step.level;
    }
    assert!(level >= 2, "the flood must reach the shedding rung");
    // At level >= 2 the engine sheds `priority < shed_priority_below`;
    // with the flood's threshold of 2 that is exactly tenant 0's
    // priority-1 class, and only that class.
    let mut priority_sheds = 0;
    for r in &report.log {
        if let RequestOutcome::Shed { reason, .. } = &r.outcome {
            if reason.map(|x| x.name()) == Some("low-priority") {
                priority_sheds += 1;
                assert!(
                    r.request.priority < cfg.shed_priority_below,
                    "only the configured class may be priority-shed"
                );
            }
        }
    }
    assert!(priority_sheds > 0, "the sheddable class must be shed");
}

#[test]
fn quarantine_epochs_are_monotone_and_walls_are_respected() {
    let cfg = storm_config(3);
    let report = serve(&cfg).expect("serve");
    assert!(
        !report.quarantines.is_empty(),
        "this storm is known to quarantine (seeded)"
    );
    let mut epochs = vec![0u64; cfg.tenants.len()];
    let mut walls: Vec<Vec<(u64, u64)>> = vec![Vec::new(); cfg.tenants.len()];
    for q in &report.quarantines {
        let ti = q.tenant as usize;
        assert!(q.epoch >= epochs[ti], "epochs must never regress");
        epochs[ti] = q.epoch;
        if q.entered {
            walls[ti].push((q.at_ps, q.at_ps + cfg.quarantine_ps));
        }
    }
    // No request is *served* on a tenant inside its quarantine wall.
    for r in &report.log {
        if let RequestOutcome::Served { start_ps, .. } = &r.outcome {
            let ti = r.request.tenant as usize;
            for &(from, until) in &walls[ti] {
                assert!(
                    *start_ps < from || *start_ps >= until,
                    "request {} served at {start_ps} inside tenant {ti}'s \
                     quarantine wall [{from}, {until})",
                    r.request.id
                );
            }
        }
    }
}

#[test]
fn fault_storms_compose_with_every_policy() {
    for policy in [QueuePolicy::Fifo, QueuePolicy::Lifo, QueuePolicy::Priority] {
        let mut cfg = storm_config(17);
        cfg.policy = policy;
        let report = serve(&cfg).expect("serve");
        assert_eq!(report.log.len(), sample_arrivals(&cfg).len());
        // Storms must be survivable: something completes even when the
        // fabric is being shot at.
        assert!(
            report.count("served") + report.count("host-fallback") > 0,
            "policy {} served nothing under the storm",
            policy.name()
        );
    }
}
