//! Bit-identity pins for the flat SoA schedule layout
//! ([`schedule::FlatSchedule`]): every consumer that accepts either
//! layout must produce **byte-identical** output on both — same timeline
//! windows, same executed buffers, same analysis reports (rendered text
//! and JSON), same timing breakdowns.
//!
//! This is the soundness statement of the SoA rework: flattening is a
//! memory-layout change, not a semantic change, and any divergence at
//! all fails an `assert_eq!` here. The corpus covers the clean builder
//! matrix (every collective × several geometries × awkward element
//! counts) *and* seeded broken mutants, so the analysis passes are
//! pinned on dirty diagnostics too, mirroring the incremental verifier's
//! equivalence harness.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::analysis;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ExecMachine, ReduceOp};
use pimnet_suite::net::schedule::{
    build_composed, CommSchedule, Composition, FlatSchedule, ScheduleView, Span,
};
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::sim::{SimRng, SimTime};

fn build(kind: CollectiveKind, dpus: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(kind, &PimGeometry::paper_scaled(dpus), elems, 4).expect("builds")
}

/// The clean corpus: every collective at three scales with an element
/// count that divides evenly nowhere interesting, plus one hierarchical
/// composed schedule per collective that has a composed form — the
/// algorithm library's outputs ride the same SoA pins as the paper's.
fn corpus() -> Vec<(String, CommSchedule)> {
    let mut out = Vec::new();
    for kind in CollectiveKind::ALL {
        for dpus in [8u32, 64, 256] {
            for elems in [64usize, 130] {
                out.push((format!("{kind} x{dpus} e{elems}"), build(kind, dpus, elems)));
            }
        }
    }
    for (kind, spec) in [
        (CollectiveKind::AllReduce, "ring_direct_ring"),
        (CollectiveKind::ReduceScatter, "rabenseifner_ring_direct"),
        (CollectiveKind::AllGather, "direct_ring_ring"),
        (CollectiveKind::Broadcast, "dbtree_ring_ring"),
        (CollectiveKind::AllToAll, "direct_direct_direct"),
    ] {
        let comp = Composition::parse(spec).expect("pinned spec parses");
        let g = PimGeometry::paper_scaled(64);
        out.push((
            format!("{kind} x64 e130 algo {spec}"),
            build_composed(kind, &g, 130, 4, comp).expect("composed builds"),
        ));
    }
    out
}

fn report_fingerprint(report: &analysis::AnalysisReport) -> String {
    format!("{report}\n{}", report.to_json())
}

#[test]
fn flatten_roundtrips_losslessly_over_the_corpus() {
    for (label, nested) in corpus() {
        let flat = FlatSchedule::from_schedule(&nested);
        assert_eq!(flat.to_schedule(), nested, "{label}: roundtrip diverged");
    }
}

#[test]
fn timelines_are_bit_identical_across_layouts() {
    let timing = TimingModel::paper();
    for (label, nested) in corpus() {
        let flat = nested.to_flat();
        let a = Timeline::build(&nested, &timing);
        let b = Timeline::build(&flat, &timing);
        assert_eq!(a, b, "{label}: timeline diverged");
        assert_eq!(a.to_csv(), b.to_csv(), "{label}: timeline CSV diverged");
    }
}

#[test]
fn timing_breakdowns_are_bit_identical_across_layouts() {
    let timing = TimingModel::paper();
    for (label, nested) in corpus() {
        let flat = nested.to_flat();
        for skew in [SimTime::ZERO, SimTime::from_us(7)] {
            assert_eq!(
                timing.time_schedule(&nested, skew),
                timing.time_schedule(&flat, skew),
                "{label}: breakdown diverged at skew {skew}"
            );
        }
    }
}

#[test]
fn execution_is_bit_identical_across_layouts() {
    for (label, nested) in corpus() {
        let flat = nested.to_flat();
        let input = |id: DpuId| -> Vec<u64> {
            (0..nested.elems_per_node)
                .map(|e| (u64::from(id.0) + 1) * 1_000 + e as u64)
                .collect()
        };
        for op in [ReduceOp::Sum, ReduceOp::Max] {
            let a = run_collective(&nested, op, input).expect("nested run");
            let mut b = ExecMachine::init(&flat, input);
            b.run(&flat, op);
            assert_eq!(a, b, "{label}/{op}: buffers diverged");
        }
    }
}

#[test]
fn analysis_reports_are_byte_identical_across_layouts() {
    // The dataflow pass's per-element provenance is costly at 256 DPUs;
    // cap analysis at 64 like the rest of the analysis suites. Layout
    // identity at 256 is still pinned by the timeline/exec/timing tests.
    for (label, nested) in corpus() {
        if nested.geometry.total_dpus() > 64 {
            continue;
        }
        let flat = nested.to_flat();
        let a = analysis::run_all(&nested);
        assert!(a.is_clean(), "{label}: corpus schedule not clean:\n{a}");
        let b = analysis::run_all(&flat);
        assert_eq!(
            report_fingerprint(&a),
            report_fingerprint(&b),
            "{label}: analysis report diverged"
        );
    }
}

/// Seeded single mutations (the validator fuzzer's recipe shape): the
/// flat layout must reproduce the *diagnostics* byte-for-byte too, not
/// just the clean path.
#[test]
fn broken_schedules_lint_byte_identically_across_layouts() {
    for seed in 0..200u64 {
        let mut rng = SimRng::seed_from_u64(0x50a0_0000 ^ seed);
        let dpus = [8u32, 16][rng.below(2) as usize];
        let kind = CollectiveKind::ALL[rng.below(7) as usize];
        let mut s = build(kind, dpus, 64);
        let total = s.geometry.total_dpus();

        // Pick a step and corrupt one transfer in one of several ways.
        let sites: Vec<(usize, usize, usize)> =
            s.phases
                .iter()
                .enumerate()
                .flat_map(|(pi, p)| {
                    p.steps.iter().enumerate().flat_map(move |(si, st)| {
                        (0..st.transfers.len()).map(move |ti| (pi, si, ti))
                    })
                })
                .collect();
        if sites.is_empty() {
            continue;
        }
        let (pi, si, ti) = sites[rng.below(sites.len() as u64) as usize];
        let t = &mut s.phases[pi].steps[si].transfers[ti];
        match rng.below(5) {
            0 => t.dsts.clear(),
            1 => t.src_span = Span::new(t.src_span.start, t.src_span.len + 7),
            2 => t.dst_span = Span::new(usize::MAX / 4, t.dst_span.len),
            3 => t.src = DpuId(total + 3),
            _ => t.combine = !t.combine,
        }

        let nested_report = analysis::run_all(&s);
        let flat_report = analysis::run_all(&s.to_flat());
        assert_eq!(
            report_fingerprint(&nested_report),
            report_fingerprint(&flat_report),
            "seed {seed}: mutant lint diverged between layouts"
        );
    }
}

#[test]
fn view_aggregates_agree_across_layouts() {
    for (label, nested) in corpus() {
        let flat = nested.to_flat();
        assert_eq!(
            flat.total_wire_bytes(),
            nested.total_wire_bytes(),
            "{label}: wire bytes"
        );
        assert_eq!(flat.step_count(), nested.step_count(), "{label}: steps");
        assert_eq!(
            flat.view_transfer_count(),
            nested.transfer_count(),
            "{label}: transfer count"
        );
    }
}
