//! Differential proof of the hierarchical algorithm library: every
//! composed builder output, across a pinned composition × geometry ×
//! ragged-payload matrix, must (a) pass the full analysis suite with
//! zero diagnostics and (b) execute bit-identically to the collective's
//! reference semantics — the same functional reference `validator_fuzz`
//! adjudicates the paper builders against. The autotuner's winners are
//! held to the same standard.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::analysis;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::schedule::{autotune, build_composed, CommSchedule, Composition};

/// The pinned composition corpus: every tier algorithm appears in at
/// least one spec, mixed tiers included. Filtered per collective by
/// [`Composition::applies_to`].
const SPECS: [&str; 6] = [
    "ring_ring_ring",
    "direct_direct_direct",
    "ring_direct_ring",
    "rabenseifner_ring_direct",
    "dbtree_ring_ring",
    "ring_ring_rabenseifner",
];

/// Geometries of the differential matrix (power-of-two tiers, so every
/// spec applies wherever `applies_to` admits it).
const DPUS: [u32; 3] = [8, 64, 256];

/// Ragged payloads: a single element, fewer elements than any tier's
/// group size, and a non-power-of-two payload that splits unevenly at
/// every tier.
const ELEMS: [usize; 3] = [1, 3, 67];

/// The collective's reference semantics, computed from the definition
/// (never from the schedule's transfers). Mirrors `validator_fuzz`.
fn reference_result(s: &CommSchedule, id: DpuId, f: impl Fn(u32, usize) -> u64 + Copy) -> Vec<u64> {
    let n = s.elems_per_node;
    let total = s.geometry.total_dpus();
    let i = id.0;
    let reduced = |e: usize| (0..total).fold(0u64, |acc, j| acc.wrapping_add(f(j, e)));
    match s.kind {
        CollectiveKind::AllReduce => (0..n).map(reduced).collect(),
        CollectiveKind::ReduceScatter => s.result_spans[i as usize]
            .iter()
            .flat_map(|sp| sp.range())
            .map(reduced)
            .collect(),
        CollectiveKind::AllGather => (0..total)
            .flat_map(|j| (0..n).map(move |e| f(j, e)))
            .collect(),
        CollectiveKind::Broadcast => (0..n).map(|e| f(0, e)).collect(),
        CollectiveKind::AllToAll => {
            let chunk = n / total as usize;
            (0..total)
                .flat_map(|j| (0..chunk).map(move |c| f(j, i as usize * chunk + c)))
                .collect()
        }
        CollectiveKind::Reduce | CollectiveKind::Gather => {
            unreachable!("no composed form exists for rooted converge collectives")
        }
    }
}

/// Node- and element-dependent payload: wrong contributors and wrong
/// element mappings both change bits.
fn payload(j: u32, e: usize) -> u64 {
    u64::from(j) * 100_003 + e as u64 * 7 + 1
}

/// Proves one composed schedule: zero analysis diagnostics, then exec
/// bit-identity against the reference on every participant.
fn prove(s: &CommSchedule, ctx: &str) {
    // The dataflow pass over AllGather's per-node buffers is too slow
    // beyond 64 DPUs for a test matrix; exec bit-identity (below) still
    // covers the large geometries.
    if s.geometry.total_dpus() <= 64 {
        let report = analysis::run_all(s);
        assert!(
            report.is_clean(),
            "{ctx}: composed schedule has diagnostics:\n{report}"
        );
    }
    let m = run_collective(s, ReduceOp::Sum, |id| {
        (0..s.elems_per_node).map(|e| payload(id.0, e)).collect()
    })
    .unwrap_or_else(|e| panic!("{ctx}: executor rejected the schedule: {e}"));
    for id in s.participants() {
        assert_eq!(
            m.result(s, id),
            reference_result(s, id, payload),
            "{ctx}: diverged from the reference on {id}"
        );
    }
}

#[test]
fn every_composition_matches_the_reference_across_the_matrix() {
    let mut proven = 0usize;
    for spec in SPECS {
        let comp = Composition::parse(spec).unwrap();
        for kind in CollectiveKind::ALL {
            if !comp.applies_to(kind) {
                continue;
            }
            for dpus in DPUS {
                let g = PimGeometry::paper_scaled(dpus);
                for elems in ELEMS {
                    let ctx = format!("{kind} x{dpus} e{elems} {spec}");
                    let s = build_composed(kind, &g, elems, 4, comp)
                        .unwrap_or_else(|e| panic!("{ctx}: build failed: {e}"));
                    prove(&s, &ctx);
                    proven += 1;
                }
            }
        }
    }
    // 6 + 5 + 5 + 4 + 1 applicable (kind, spec) pairs x 3 geometries x 3
    // payloads: a shrunk matrix means applicability silently regressed.
    assert_eq!(proven, 21 * 3 * 3);
}

#[test]
fn chunked_allreduce_matches_the_reference() {
    use pimnet_suite::net::schedule::build_composed_chunked;
    let g = PimGeometry::paper_scaled(64);
    let comp = Composition::parse("ring_direct_ring").unwrap();
    for (elems, chunks) in [(67usize, 2usize), (8, 4), (3, 2)] {
        let ctx = format!("AllReduce x64 e{elems} c{chunks} ring_direct_ring");
        let s = build_composed_chunked(CollectiveKind::AllReduce, &g, elems, 4, comp, chunks)
            .unwrap_or_else(|e| panic!("{ctx}: build failed: {e}"));
        prove(&s, &ctx);
    }
}

#[test]
fn autotuned_winners_match_the_reference() {
    // The acceptance bar for the tuner: whatever it picks is analysis
    // clean and bit-identical to the reference — tuning never trades
    // correctness for speed.
    for (kind, dpus, elems) in [
        (CollectiveKind::AllReduce, 64u32, 64usize),
        (CollectiveKind::ReduceScatter, 64, 67),
        (CollectiveKind::Broadcast, 8, 130),
        (CollectiveKind::AllGather, 16, 37),
        (CollectiveKind::AllToAll, 64, 128),
    ] {
        let g = PimGeometry::paper_scaled(dpus);
        let choice = autotune::tune(kind, &g, elems, 4).unwrap();
        assert!(choice.tuned_time <= choice.paper_time);
        if kind == CollectiveKind::Reduce || kind == CollectiveKind::Gather {
            continue;
        }
        let ctx = format!("tuned {kind} x{dpus} e{elems} -> {}", choice.spec());
        prove(&choice.schedule, &ctx);
    }
}
