//! Cross-crate integration tests: collective *semantics* hold end-to-end —
//! schedules compiled by `pimnet`, validated, and executed on real data —
//! including property tests over arbitrary geometries and payloads.

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_sim::SimRng;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::schedule::halving::build_halving_doubling;
use pimnet_suite::net::schedule::{build_composed, validate, CommSchedule, Composition};

fn input(id: DpuId, elems: usize, salt: u64) -> Vec<u64> {
    (0..elems)
        .map(|e| {
            (u64::from(id.0) + 1)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(e as u64)
                .wrapping_add(salt)
        })
        .collect()
}

/// AllReduce followed by nothing == ReduceScatter followed by AllGather of
/// the pieces: the composition law the paper's Table V builds on.
#[test]
fn allreduce_equals_reduce_scatter_plus_gather_of_pieces() {
    let g = PimGeometry::paper_scaled(64);
    let elems = 512usize;
    let ar = CommSchedule::build(CollectiveKind::AllReduce, &g, elems, 4).unwrap();
    let rs = CommSchedule::build(CollectiveKind::ReduceScatter, &g, elems, 4).unwrap();

    let mar = run_collective(&ar, ReduceOp::Sum, |id| input(id, elems, 0)).unwrap();
    let mrs = run_collective(&rs, ReduceOp::Sum, |id| input(id, elems, 0)).unwrap();

    // Stitch the RS pieces back together and compare to any AR node.
    let reference = mar.result(&ar, DpuId(0));
    let mut stitched = vec![0u64; elems];
    for id in rs.participants() {
        for span in &rs.result_spans[id.index()] {
            stitched[span.range()].copy_from_slice(&mrs.buffer(id)[span.range()]);
        }
    }
    assert_eq!(stitched, reference);
}

#[test]
fn gather_then_broadcast_equals_allgather() {
    let g = PimGeometry::paper_scaled(16);
    let elems = 24usize;
    let ag = CommSchedule::build(CollectiveKind::AllGather, &g, elems, 4).unwrap();
    let gather = CommSchedule::build(CollectiveKind::Gather, &g, elems, 4).unwrap();

    let mag = run_collective(&ag, ReduceOp::Sum, |id| input(id, elems, 7)).unwrap();
    let mg = run_collective(&gather, ReduceOp::Sum, |id| input(id, elems, 7)).unwrap();

    // The gather root's buffer equals every AG participant's result.
    let root_view = mg.result(&gather, DpuId(0));
    for id in ag.participants() {
        assert_eq!(mag.result(&ag, id), root_view, "node {id}");
    }
}

#[test]
fn alltoall_is_an_involution() {
    // Applying the transpose twice returns every chunk home.
    let g = PimGeometry::paper_scaled(32);
    let elems = 32 * 4usize;
    let s = CommSchedule::build(CollectiveKind::AllToAll, &g, elems, 4).unwrap();
    let m1 = run_collective(&s, ReduceOp::Sum, |id| input(id, elems, 3)).unwrap();
    // Feed the out-region back in as the second round's input.
    let m2 = run_collective(&s, ReduceOp::Sum, |id| m1.result(&s, id)).unwrap();
    for id in s.participants() {
        assert_eq!(m2.result(&s, id), input(id, elems, 3), "node {id}");
    }
}

/// Every collective validates and executes correctly for arbitrary
/// power-of-two system sizes and payload lengths.
#[test]
fn collectives_hold_for_arbitrary_shapes() {
    let mut rng = SimRng::seed_from_u64(0xC011_0001);
    for _ in 0..24 {
        let n_exp = rng.gen_range(0u32..=8);
        let elems = rng.gen_range(1usize..300);
        let salt = rng.next_u64();
        let n = 1u32 << n_exp;
        let g = PimGeometry::paper_scaled(n);
        // AllReduce: everyone gets the elementwise wrapping sum.
        let s = CommSchedule::build(CollectiveKind::AllReduce, &g, elems, 4).unwrap();
        validate::validate(&s).unwrap();
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems, salt)).unwrap();
        let expected: Vec<u64> = (0..elems)
            .map(|e| {
                (0..n)
                    .map(|i| input(DpuId(i), elems, salt)[e])
                    .fold(0u64, u64::wrapping_add)
            })
            .collect();
        for id in s.participants() {
            assert_eq!(m.result(&s, id), expected.clone());
        }
    }
}

/// ReduceScatter pieces tile the vector exactly and carry the sum.
#[test]
fn reduce_scatter_partition_property() {
    let mut rng = SimRng::seed_from_u64(0xC011_0002);
    for _ in 0..24 {
        let n_exp = rng.gen_range(0u32..=8);
        let elems = rng.gen_range(1usize..300);
        let n = 1u32 << n_exp;
        let g = PimGeometry::paper_scaled(n);
        let s = CommSchedule::build(CollectiveKind::ReduceScatter, &g, elems, 4).unwrap();
        let spans: Vec<_> = s.result_spans.iter().flatten().collect();
        let covered: usize = spans.iter().map(|sp| sp.len).sum();
        assert_eq!(covered, elems);
        let mut seen = vec![false; elems];
        for sp in spans {
            for i in sp.range() {
                assert!(!seen[i], "element {} owned twice", i);
                seen[i] = true;
            }
        }
    }
}

/// Recursive halving must carve non-power-of-two payloads with the
/// *recursive* partition ([`pimnet_suite::net::schedule::Span::split_pow2`]),
/// never the flat `split_elems` chunk table — for `len = 11, k = 8` the
/// two disagree (`2,2,2,1,…` vs `2,1,2,1,…`), and an implementation that
/// mixes them silently corrupts ownership. These payloads are chosen so
/// every halving level splits unevenly somewhere; correctness must come
/// from the partition itself, not from builder special-cases.
#[test]
fn halving_doubling_handles_non_power_of_two_payloads() {
    for n in [8u32, 64, 256] {
        let g = PimGeometry::paper_scaled(n);
        for elems in [1usize, 3, 7, 11, 67, 193, 1030] {
            let s = build_halving_doubling(&g, elems, 4).unwrap();
            validate::validate(&s).unwrap();
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems, 11)).unwrap();
            let expected: Vec<u64> = (0..elems)
                .map(|e| {
                    (0..n)
                        .map(|i| input(DpuId(i), elems, 11)[e])
                        .fold(0u64, u64::wrapping_add)
                })
                .collect();
            for id in s.participants() {
                assert_eq!(m.result(&s, id), expected, "n={n} elems={elems} {id}");
            }
        }
    }
}

/// The same non-power-of-two payloads through the composed Rabenseifner
/// tiers: the halving reduce-scatter and doubling all-gather re-derive
/// per-position ownership from the recursive partition, so ragged
/// payloads must survive reduction *and* the scatter boundary contract
/// (ReduceScatter pieces tile the vector exactly).
#[test]
fn composed_rabenseifner_handles_non_power_of_two_payloads() {
    let comp = Composition::parse("rabenseifner_rabenseifner_ring").unwrap();
    for n in [8u32, 64, 256] {
        let g = PimGeometry::paper_scaled(n);
        for elems in [1usize, 3, 7, 11, 67, 193] {
            for kind in [CollectiveKind::AllReduce, CollectiveKind::ReduceScatter] {
                let s = build_composed(kind, &g, elems, 4, comp).unwrap();
                validate::validate(&s).unwrap();
                let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems, 13)).unwrap();
                let reduced: Vec<u64> = (0..elems)
                    .map(|e| {
                        (0..n)
                            .map(|i| input(DpuId(i), elems, 13)[e])
                            .fold(0u64, u64::wrapping_add)
                    })
                    .collect();
                match kind {
                    CollectiveKind::AllReduce => {
                        for id in s.participants() {
                            assert_eq!(m.result(&s, id), reduced, "n={n} e={elems} {id}");
                        }
                    }
                    _ => {
                        let mut seen = vec![false; elems];
                        for id in s.participants() {
                            for sp in &s.result_spans[id.index()] {
                                for i in sp.range() {
                                    assert!(!seen[i], "element {i} owned twice");
                                    seen[i] = true;
                                    assert_eq!(
                                        m.buffer(id)[i],
                                        reduced[i],
                                        "n={n} e={elems} {id} element {i}"
                                    );
                                }
                            }
                        }
                        assert!(
                            seen.iter().all(|&b| b),
                            "n={n} e={elems}: uncovered element"
                        );
                    }
                }
            }
        }
    }
}

/// Max- and min-reductions agree with the scalar fold.
#[test]
fn reduce_ops_agree_with_fold() {
    let mut rng = SimRng::seed_from_u64(0xC011_0003);
    for _ in 0..24 {
        let n_exp = rng.gen_range(1u32..=6);
        let elems = rng.gen_range(1usize..64);
        let op_is_max = rng.gen_bool(0.5);
        let n = 1u32 << n_exp;
        let g = PimGeometry::paper_scaled(n);
        let s = CommSchedule::build(CollectiveKind::AllReduce, &g, elems, 4).unwrap();
        let op = if op_is_max {
            ReduceOp::Max
        } else {
            ReduceOp::Min
        };
        let m = run_collective(&s, op, |id| input(id, elems, 1)).unwrap();
        let expected: Vec<u64> = (0..elems)
            .map(|e| {
                let vals = (0..n).map(|i| input(DpuId(i), elems, 1)[e]);
                if op_is_max { vals.max() } else { vals.min() }.unwrap()
            })
            .collect();
        assert_eq!(m.result(&s, DpuId(0)), expected);
    }
}
