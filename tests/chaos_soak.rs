//! Chaos soak: seeded sweeps over geometry × collective × fault combos,
//! driving the full plan → repair → validate → execute → verify pipeline.
//!
//! Invariants asserted for every scenario:
//!
//! * any plan that still runs on PIMnet carries a schedule that passes
//!   `schedule::validate` — repair never smuggles contention in;
//! * Full and Repaired plans produce results **bit-identical** to the
//!   fault-free reference, even with transient CRC faults layered on top;
//! * lost participants always come with a typed error trail, and the
//!   degradation ladder (Full → Repaired → Shrunk → HostFallback) is
//!   monotone in fault severity;
//! * identical seeds give identical plans, timelines, and stats —
//!   byte-for-byte replayable chaos.

use pimnet_suite::arch::geometry::PimGeometry;
use pimnet_suite::arch::SystemConfig;
use pimnet_suite::faults::{FaultConfig, FaultInjector, PermanentFaultRates, PermanentFaultSet};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{ExecMachine, ReduceOp};
use pimnet_suite::net::resilience::{plan_degraded, DegradedPlan};
use pimnet_suite::net::schedule::{validate::validate, CommSchedule};
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::net::PimnetError;

const ELEMS: usize = 64;

const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];

/// A chaos scenario: permanent faults sampled from the seed, plus
/// transients and stragglers on top.
fn chaos_config(seed: u64) -> FaultConfig {
    FaultConfig {
        transient_ber: 0.02,
        straggler_prob: 0.1,
        straggler_max_ns: 5_000,
        max_retries: 8,
        perm_rates: PermanentFaultRates {
            segment_prob: 0.02,
            port_prob: 0.02,
            rank_prob: 0.05,
        },
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

fn reference(kind: CollectiveKind, g: &PimGeometry) -> (CommSchedule, ExecMachine<u64>) {
    let s = CommSchedule::build(kind, g, ELEMS, 4).unwrap();
    let mut m = ExecMachine::init(&s, |id| vec![u64::from(id.0) + 1; ELEMS]);
    m.run(&s, ReduceOp::Sum);
    (s, m)
}

/// Runs one scenario end-to-end and asserts every invariant. Returns the
/// plan so callers can also compare runs against each other.
fn soak_one(kind: CollectiveKind, dpus: u32, seed: u64) -> Option<DegradedPlan> {
    let g = PimGeometry::paper_scaled(dpus);
    let sys = SystemConfig::paper_scaled(dpus);
    let inj = FaultInjector::new(chaos_config(seed));
    let faults = inj.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
    let plan = match plan_degraded(kind, &g, ELEMS, 4, &inj, &sys) {
        Ok(p) => p,
        Err(PimnetError::InvalidGeometry { .. })
            if (0..g.ranks_per_channel).all(|r| faults.dead_ranks.contains(&r)) =>
        {
            // Every rank sampled dead: legitimately nothing left to plan.
            return None;
        }
        Err(e) => panic!("{kind} on {dpus} DPUs, seed {seed}: unexpected {e}"),
    };
    let ctx = format!(
        "{kind} on {dpus} DPUs, seed {seed}, tier {}",
        plan.tier_name()
    );

    if let Some(s) = plan.schedule() {
        validate(s).unwrap_or_else(|e| panic!("{ctx}: invalid schedule: {e}"));
    }
    match &plan {
        DegradedPlan::Full(s) | DegradedPlan::Repaired { schedule: s, .. } => {
            // Bit-identical to the fault-free reference, clean...
            let (_, reference) = reference(kind, &g);
            let mut m = ExecMachine::init(s, |id| vec![u64::from(id.0) + 1; ELEMS]);
            m.run(s, ReduceOp::Sum);
            assert_eq!(m, reference, "{ctx}: diverged from fault-free reference");
            // ...and under transient CRC faults layered on top.
            let mut faulty = ExecMachine::init(s, |id| vec![u64::from(id.0) + 1; ELEMS]);
            faulty
                .run_with_faults(s, ReduceOp::Sum, &inj)
                .unwrap_or_else(|e| panic!("{ctx}: transient run failed: {e}"));
            assert_eq!(faulty, reference, "{ctx}: transient run diverged");
            // A repaired plan is never cheaper than the full one.
            if let DegradedPlan::Repaired { report, .. } = &plan {
                assert!(
                    !report.is_identity(),
                    "{ctx}: identity repair should be Full"
                );
                let timing = TimingModel::paper();
                let clean = CommSchedule::build(kind, &g, ELEMS, 4).unwrap();
                assert!(
                    timing
                        .time_schedule(s, pimnet_suite::sim::SimTime::ZERO)
                        .total()
                        >= timing
                            .time_schedule(&clean, pimnet_suite::sim::SimTime::ZERO)
                            .total(),
                    "{ctx}: repair made the schedule faster than fault-free"
                );
            }
        }
        DegradedPlan::Shrunk {
            schedule,
            logical_to_physical,
            excluded,
            error_trail,
        } => {
            assert!(!error_trail.is_empty(), "{ctx}: shrunk without a trail");
            let n = schedule.geometry.total_dpus() as usize;
            assert_eq!(logical_to_physical.len(), n, "{ctx}");
            assert_eq!(
                logical_to_physical.len() + excluded.len(),
                g.total_dpus() as usize,
                "{ctx}: survivors + excluded must partition the machine"
            );
            assert!(
                logical_to_physical.iter().all(|d| !excluded.contains(d)),
                "{ctx}: a DPU is both surviving and excluded"
            );
            // The shrunk plan still computes the collective correctly.
            let mut m = ExecMachine::init(schedule, |id| vec![u64::from(id.0) + 1; ELEMS]);
            m.run(schedule, ReduceOp::Sum);
            let (_, shrunk_ref) = reference(kind, &schedule.geometry);
            assert_eq!(m, shrunk_ref, "{ctx}: shrunk plan diverged");
        }
        DegradedPlan::HostFallback {
            breakdown,
            error_trail,
            ..
        } => {
            assert!(!error_trail.is_empty(), "{ctx}: fallback without a trail");
            assert!(
                breakdown.total() > pimnet_suite::sim::SimTime::ZERO,
                "{ctx}: host fallback must still cost time"
            );
        }
    }
    Some(plan)
}

#[test]
fn chaos_soak_sweep_holds_every_invariant() {
    for &dpus in &[8u32, 64, 256] {
        for kind in KINDS {
            for seed in 0..6 {
                soak_one(kind, dpus, seed);
            }
        }
    }
}

#[test]
fn identical_seeds_are_byte_identical() {
    for seed in [3u64, 17, 0xC0FFEE] {
        let a = soak_one(CollectiveKind::AllReduce, 64, seed);
        let b = soak_one(CollectiveKind::AllReduce, 64, seed);
        assert_eq!(a, b, "seed {seed}: plans diverged between identical runs");
        // Timings replay too.
        if let Some(s) = a.as_ref().and_then(|p| p.schedule()) {
            let inj = FaultInjector::new(chaos_config(seed));
            let timing = TimingModel::paper();
            let ta = Timeline::build_with_faults(s, &timing, &inj).unwrap();
            let tb = Timeline::build_with_faults(s, &timing, &inj).unwrap();
            assert_eq!(ta, tb, "seed {seed}: timelines diverged");
        }
    }
}

#[test]
fn ladder_is_monotone_in_fault_severity() {
    let g = PimGeometry::paper_scaled(256);
    let sys = SystemConfig::paper_scaled(256);
    let tier = |permanent: &str, dead: Vec<u32>| {
        let inj = FaultInjector::new(FaultConfig {
            permanent: PermanentFaultSet::parse_tokens(permanent).unwrap(),
            dead_dpus: dead,
            ..FaultConfig::none()
        });
        plan_degraded(CollectiveKind::AllReduce, &g, ELEMS, 4, &inj, &sys)
            .unwrap()
            .tier()
    };
    let ladder = [
        tier("", vec![]),                  // healthy
        tier("r0c1b3E", vec![]),           // repairable segment
        tier("r0c1b3E, r1c2rx", vec![]),   // + repairable port
        tier("rank3", vec![]),             // dead rank: shrink
        tier("rank3", (0..191).collect()), // near-total death: host
    ];
    assert_eq!(ladder[0], 0);
    assert!(
        ladder.windows(2).all(|w| w[0] <= w[1]),
        "ladder regressed: {ladder:?}"
    );
    assert_eq!(*ladder.last().unwrap(), 3);
}

#[test]
fn explicit_and_sampled_faults_merge() {
    // An explicit dead port merges with seed-sampled faults and the merged
    // scenario still plans deterministically.
    let mut cfg = chaos_config(5);
    cfg.permanent = PermanentFaultSet::parse_tokens("r0c0tx").unwrap();
    let inj = FaultInjector::new(cfg);
    let set = inj.permanent_faults(4, 8, 8);
    assert!(set
        .ports
        .contains(&pimnet_suite::faults::PortId::parse("r0c0tx").unwrap()));
    let g = PimGeometry::paper_scaled(256);
    let sys = SystemConfig::paper_scaled(256);
    let a = plan_degraded(CollectiveKind::AllGather, &g, ELEMS, 4, &inj, &sys);
    let b = plan_degraded(CollectiveKind::AllGather, &g, ELEMS, 4, &inj, &sys);
    assert_eq!(a.is_ok(), b.is_ok());
    if let (Ok(a), Ok(b)) = (a, b) {
        assert_eq!(a, b);
    }
}
