//! Serde roundtrips: every data structure a downstream tool would persist
//! (configs, schedules, compiled programs, reports) must survive
//! JSON serialization byte-exactly.

use pim_arch::{PimGeometry, SystemConfig};
use pimnet_suite::net::collective::{CollectiveKind, CollectiveSpec};
use pimnet_suite::net::isa::compile;
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::net::FabricConfig;

fn roundtrip<T>(value: &T)
where
    T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug,
{
    let json = serde_json::to_string(value).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, value);
}

#[test]
fn configs_roundtrip() {
    roundtrip(&SystemConfig::paper());
    roundtrip(&SystemConfig::upmem_server());
    roundtrip(&FabricConfig::paper());
    roundtrip(&PimGeometry::paper());
    roundtrip(&CollectiveSpec::new(
        CollectiveKind::AllToAll,
        pim_sim::Bytes::kib(32),
    ));
}

#[test]
fn schedules_roundtrip() {
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let s = CommSchedule::build(kind, &PimGeometry::paper_scaled(16), 64, 4).unwrap();
        roundtrip(&s);
    }
}

#[test]
fn compiled_programs_roundtrip() {
    let s = CommSchedule::build(
        CollectiveKind::AllReduce,
        &PimGeometry::paper_scaled(16),
        64,
        4,
    )
    .unwrap();
    roundtrip(&compile(&s).unwrap());
}

#[test]
fn timing_breakdowns_roundtrip() {
    let s = CommSchedule::build(CollectiveKind::AllReduce, &PimGeometry::paper(), 1024, 4)
        .unwrap();
    let b = TimingModel::paper().time_schedule(&s, pim_sim::SimTime::ZERO);
    roundtrip(&b);
}

#[test]
fn deserialized_schedule_still_validates_and_times_identically() {
    let s = CommSchedule::build(CollectiveKind::ReduceScatter, &PimGeometry::paper(), 2048, 4)
        .unwrap();
    let json = serde_json::to_string(&s).unwrap();
    let back: CommSchedule = serde_json::from_str(&json).unwrap();
    pimnet_suite::net::schedule::validate::validate(&back).unwrap();
    let m = TimingModel::paper();
    assert_eq!(
        m.time_schedule(&s, pim_sim::SimTime::ZERO),
        m.time_schedule(&back, pim_sim::SimTime::ZERO)
    );
}
