//! Golden tests for the static analyzer's diagnostics: hand-broken
//! schedules must produce *stable* codes (and, for the pinned cases,
//! stable messages). These pins make diagnostic codes a public contract
//! — tooling may match on `P1xx`/`P3xx` strings across releases, so a
//! change that breaks one of these tests is a breaking change.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::analysis::{self, codes, Severity};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::{CommSchedule, Span};

fn allgather(dpus: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(
        CollectiveKind::AllGather,
        &PimGeometry::paper_scaled(dpus),
        elems,
        4,
    )
    .unwrap()
}

/// Shorthand: analysis errors matching `code`.
fn errors_with<'a>(
    report: &'a analysis::AnalysisReport,
    code: &str,
) -> Vec<&'a analysis::Diagnostic> {
    report
        .diagnostics
        .iter()
        .filter(|d| d.code == code && d.severity == Severity::Error)
        .collect()
}

#[test]
fn uninitialized_read_pins_p101() {
    // 2-DPU AllGather: node 0 contributes [0..4), node 1 [4..8). Widening
    // the first transfer's spans to the whole buffer makes node 0 read
    // [4..8) before anything ever wrote it.
    let mut s = allgather(2, 4);
    let t = &mut s.phases[0].steps[0].transfers[0];
    assert_eq!(t.src, DpuId(0), "builder layout changed; re-pin this test");
    t.src_span = Span::new(0, 8);
    t.dst_span = Span::new(0, 8);
    let report = analysis::run_all(&s);
    let hits = errors_with(&report, codes::UNINIT_READ);
    assert!(!hits.is_empty(), "no P101 in:\n{report}");
    // The full rendering is pinned: code, location, and message text.
    assert_eq!(
        hits[0].to_string(),
        "error[P101] phase 0 step 0 transfer 0 dpu 0: transfer reads \
         uninitialized region [4..8) of node DPU0's buffer"
    );
}

#[test]
fn overlapping_writes_pin_p201() {
    // Duplicate the first delivery with its landing region shifted one
    // element: two concurrent overwrites now collide on the destination.
    let mut s = allgather(2, 4);
    let step = &mut s.phases[0].steps[0];
    let mut dup = step.transfers[0].clone();
    dup.dst_span = Span::new(dup.dst_span.start + 1, dup.dst_span.len);
    step.transfers.push(dup);
    let report = analysis::run_all(&s);
    let hits = errors_with(&report, codes::WRITE_WRITE);
    assert!(!hits.is_empty(), "no P201 in:\n{report}");
    assert_eq!(
        hits[0].to_string(),
        "error[P201] phase 0 step 0 transfer 2 dpu 1: concurrent writes to \
         overlapping regions [0..4) and [1..5) of node 1 (also written by \
         phase 0 step 0 transfer 0)"
    );
}

#[test]
fn dropped_span_is_a_dataflow_error() {
    // Removing one AllGather hop means some node never receives some
    // piece: the dataflow pass must see the hole in the final state
    // without executing anything.
    let mut s = allgather(8, 64);
    'outer: for phase in &mut s.phases {
        for step in &mut phase.steps {
            if let Some(i) = step.transfers.iter().position(|t| !t.is_local()) {
                step.transfers.remove(i);
                break 'outer;
            }
        }
    }
    let report = analysis::run_all(&s);
    assert!(report.has_errors(), "dropped span not flagged:\n{report}");
    // The hole surfaces as missing provenance (a result region that is
    // never written or lacks its contributor), possibly alongside an
    // uninitialized read when a later hop forwards the missing piece.
    assert!(
        !errors_with(&report, codes::RESULT_PROVENANCE).is_empty()
            || !errors_with(&report, codes::UNINIT_READ).is_empty(),
        "expected P101/P106 in:\n{report}"
    );
    // Every error names a concrete location.
    assert!(report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .all(|d| d.location.is_pinpointed()));
}

#[test]
fn partitioned_sync_tree_pins_p301() {
    // A destination outside the geometry can never report READY: the
    // barrier tree is partitioned and the step never completes.
    let mut s = allgather(8, 64);
    s.phases[0].steps[0].transfers[0].dsts[0] = DpuId(13);
    let report = analysis::run_all(&s);
    let hits = errors_with(&report, codes::PARTITIONED_TREE);
    assert!(!hits.is_empty(), "no P301 in:\n{report}");
    assert_eq!(
        hits[0].to_string(),
        "error[P301] phase 0 step 0 transfer 0 dpu 13: transfer references \
         DPU13 outside the geometry's 8 DPUs: the READY/START sync tree is \
         partitioned and the step barrier can never fire"
    );
}

#[test]
fn cyclic_wait_is_p302() {
    // Rewire the 2-node exchange so each transfer overwrites exactly the
    // region its peer still has to read: no serial order exists.
    let mut s = allgather(2, 4);
    let step = &mut s.phases[0].steps[0];
    assert!(step.transfers.len() >= 2, "builder layout changed");
    let span = step.transfers[0].src_span;
    step.transfers[1].src_span = span;
    step.transfers[1].dst_span = span;
    let report = analysis::run_all(&s);
    let hits = errors_with(&report, codes::CYCLIC_WAIT);
    assert!(!hits.is_empty(), "no P302 in:\n{report}");
    assert!(hits[0].message.contains("no serial order"));
    assert!(hits[0].location.is_pinpointed());
}

#[test]
fn structural_codes_are_stable() {
    // One representative per structural rule family, pinned by code.
    let mut s = allgather(2, 4);
    s.phases[0].steps[0].transfers[0].dsts.clear();
    assert!(!errors_with(&analysis::run_all(&s), codes::EMPTY_DSTS).is_empty());

    let mut s = allgather(2, 4);
    let t = &mut s.phases[0].steps[0].transfers[0];
    t.dst_span = Span::new(t.dst_span.start, t.dst_span.len + 1);
    assert!(!errors_with(&analysis::run_all(&s), codes::SPAN_LEN_MISMATCH).is_empty());

    let mut s = allgather(2, 4);
    let len = s.buffer_len;
    let t = &mut s.phases[0].steps[0].transfers[0];
    t.src_span = Span::new(len, 4);
    t.dst_span = Span::new(len, 4);
    assert!(!errors_with(&analysis::run_all(&s), codes::SPAN_OUT_OF_BOUNDS).is_empty());

    let mut s = allgather(2, 4);
    s.phases[0].steps[0].transfers[0].combine = true;
    assert!(!errors_with(&analysis::run_all(&s), codes::COMBINE_IN_NON_REDUCING).is_empty());

    let mut s = allgather(2, 4);
    let src = s.phases[0].steps[0].transfers[0].src;
    s.phases[0].steps[0].transfers[0].dsts = vec![src];
    assert!(!errors_with(&analysis::run_all(&s), codes::FABRIC_SELF_SEND).is_empty());

    let mut s = allgather(2, 4);
    s.result_spans.pop();
    assert!(!errors_with(&analysis::run_all(&s), codes::MALFORMED_RESULT_TABLE).is_empty());
}

#[test]
fn json_report_round_trips_the_pinned_fields() {
    let mut s = allgather(8, 64);
    s.phases[0].steps[0].transfers[0].dsts[0] = DpuId(13);
    let json = analysis::run_all(&s).to_json();
    assert!(json.contains("\"clean\":false"));
    assert!(json.contains("\"code\":\"P301\""));
    assert!(json.contains("\"severity\":\"error\""));
    assert!(json.contains("\"phase\":0"));
    assert!(json.contains("\"dpu\":13"));
}
