//! Runtime recovery soak: time-varying fault storms against
//! [`pimnet_suite::net::recovery::run_recovered`], end-to-end.
//!
//! The recovery contract, pinned across a seed matrix:
//!
//! 1. **Determinism** — the same seed and timeline reproduce the same
//!    tier, stats, trace fingerprint and buffers, run after run, and the
//!    outcome vector is identical at any worker fan-out.
//! 2. **Bit-identity** — every run that ends at tier ≤ 1 (Full or
//!    Repaired) leaves buffers exactly equal to the fault-free
//!    reference: CRC detection + backoff retry + checkpointed resume is
//!    lossless.
//! 3. **Soundness** — every run ends in a valid ladder tier, with a
//!    result machine exactly where the tier promises one and a typed
//!    [`PimnetError`] trail on host fallback. No panics, ever.

use pimnet_suite::arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::arch::SystemConfig;
use pimnet_suite::faults::{
    FaultConfig, FaultInjector, FaultTimeline, PermanentFaultSet, TimelineRates,
};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ExecMachine, ReduceOp};
use pimnet_suite::net::recovery::{
    run_recovered, RecoveryConfig, RecoveryOutcome, RecoveryRequest,
};
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::net::PimnetError;
use pimnet_suite::sim::par;

const N: u32 = 16;
const ELEMS: usize = 16;

const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];

fn input(id: DpuId) -> Vec<u64> {
    (0..ELEMS)
        .map(|e| (u64::from(id.0) + 1) * 1_000 + e as u64)
        .collect()
}

/// Fault-free reference buffers every tier ≤ 1 run must reproduce.
fn reference(kind: CollectiveKind) -> (CommSchedule, ExecMachine<u64>) {
    let g = PimGeometry::paper_scaled(N);
    let s = CommSchedule::build(kind, &g, ELEMS, 8).unwrap();
    let m = run_collective(&s, ReduceOp::Sum, input).unwrap();
    (s, m)
}

/// The sampled storm of one seed: mid-run arrivals, link flaps and BER
/// bursts over a 50 µs horizon, plus mild background transients.
fn storm_config(seed: u64, g: &PimGeometry) -> FaultConfig {
    let rates = TimelineRates {
        segment_arrival_prob: 0.08,
        port_arrival_prob: 0.05,
        rank_arrival_prob: 0.02,
        flap_prob: 0.12,
        burst_prob: 0.15,
        burst_ber: 0.8,
    };
    FaultConfig {
        transient_ber: 0.002,
        straggler_prob: 0.05,
        straggler_max_ns: 500,
        max_retries: 8,
        timeline: FaultTimeline::sample(
            seed,
            g.ranks_per_channel,
            g.chips_per_rank,
            g.banks_per_chip,
            50_000_000,
            &rates,
        ),
        ..FaultConfig::none()
    }
    .with_seed(seed)
}

fn run_one(kind: CollectiveKind, seed: u64) -> Result<RecoveryOutcome<u64>, PimnetError> {
    let g = PimGeometry::paper_scaled(N);
    let sys = SystemConfig::paper_scaled(N);
    let timing = TimingModel::paper();
    let injector = FaultInjector::new(storm_config(seed, &g));
    let req = RecoveryRequest {
        kind,
        geometry: &g,
        elems_per_node: ELEMS,
        elem_bytes: 8,
        op: ReduceOp::Sum,
        injector: &injector,
        system: &sys,
        timing: &timing,
        config: RecoveryConfig::default(),
    };
    run_recovered::<u64>(&req, input)
}

/// Asserts one outcome against the soundness contract and returns the
/// tier it ended on (4 = unplannable, a typed end state of its own).
fn assert_sound(
    kind: CollectiveKind,
    seed: u64,
    out: &Result<RecoveryOutcome<u64>, PimnetError>,
) -> usize {
    let out = match out {
        // The storm left nothing plannable: typed, not a panic.
        Err(e) => {
            assert!(!e.to_string().is_empty());
            return 4;
        }
        Ok(out) => out,
    };
    match (out.plan_tier, out.machine.as_ref()) {
        (0 | 1, Some(m)) => {
            let (ref_s, ref_m) = reference(kind);
            for id in ref_s.participants() {
                assert_eq!(
                    m.result(&ref_s, id),
                    ref_m.result(&ref_s, id),
                    "{kind} seed {seed}: tier {} diverged from the fault-free \
                     reference at node {id}",
                    out.plan_tier
                );
            }
        }
        (2, Some(_)) => {}
        (3, None) => {
            assert!(
                !out.error_trail.is_empty(),
                "{kind} seed {seed}: host fallback with no typed error trail"
            );
        }
        (t, m) => panic!(
            "{kind} seed {seed}: unsound end state — tier {t} with machine {}",
            m.is_some()
        ),
    }
    usize::from(out.plan_tier)
}

#[test]
fn seed_matrix_soak_ends_every_run_in_a_valid_tier() {
    // ~1000 scenarios in release; scaled down for the debug profile.
    let per_kind: u64 = if cfg!(debug_assertions) { 50 } else { 250 };
    let mut tiers = [0u64; 5];
    for kind in KINDS {
        for s in 0..per_kind {
            let seed = 0x5EED_0000 + s;
            tiers[assert_sound(kind, seed, &run_one(kind, seed))] += 1;
        }
    }
    let total: u64 = tiers.iter().sum();
    assert_eq!(total, 4 * per_kind);
    assert!(tiers[0] > 0, "no scenario survived at full tier: {tiers:?}");
    assert!(
        tiers[1] + tiers[2] + tiers[3] + tiers[4] > 0,
        "the storm never exercised the ladder: {tiers:?}"
    );
}

#[test]
fn recovery_is_deterministic_and_worker_invariant() {
    let scenarios: Vec<(CollectiveKind, u64)> = KINDS
        .iter()
        .flat_map(|&k| (0..4u64).map(move |s| (k, 0xD00_000 + s)))
        .collect();
    // The full outcome — tier, stats, clock, trail, buffers — rendered
    // to one comparable signature per scenario.
    let sig = |(kind, seed): (CollectiveKind, u64)| -> String {
        match run_one(kind, seed) {
            Ok(out) => format!(
                "{kind} {seed} tier={} stats={:?} end={} trail={:?} m={:?}",
                out.plan_tier, out.stats, out.end_ps, out.error_trail, out.machine
            ),
            Err(e) => format!("{kind} {seed} unplannable: {e}"),
        }
    };
    let twice: Vec<String> = scenarios.iter().copied().map(sig).collect();
    let again: Vec<String> = scenarios.iter().copied().map(sig).collect();
    assert_eq!(twice, again, "same seed, different recovery");
    // Fan-out must not change a single byte of any outcome.
    let one = par::map_ordered_with(1, scenarios.clone(), sig);
    let four = par::map_ordered_with(4, scenarios, sig);
    assert_eq!(twice, one);
    assert_eq!(one, four);
}

#[test]
fn finite_burst_windows_recover_bit_identically_for_every_kind() {
    let g = PimGeometry::paper_scaled(N);
    let sys = SystemConfig::paper_scaled(N);
    let timing = TimingModel::paper();
    for kind in KINDS {
        // BER 1.0 for the first 3 µs: every attempt inside the window
        // fails CRC, so only the backoff clock gets the run through.
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                bursts: vec![pimnet_suite::faults::TransientBurst {
                    from_ps: 0,
                    until_ps: 3_000_000,
                    ber: 1.0,
                }],
                ..FaultTimeline::none()
            },
            backoff_base_ps: Some(2_000_000),
            ..FaultConfig::none()
        });
        let req = RecoveryRequest {
            kind,
            geometry: &g,
            elems_per_node: ELEMS,
            elem_bytes: 8,
            op: ReduceOp::Sum,
            injector: &injector,
            system: &sys,
            timing: &timing,
            config: RecoveryConfig::default(),
        };
        let out = run_recovered::<u64>(&req, input).unwrap();
        assert_eq!(out.plan_tier, 0, "{kind}: trail {:?}", out.error_trail);
        assert!(out.stats.step_retries >= 1, "{kind}: burst never bit");
        assert_eq!(assert_sound(kind, 0, &Ok(out)), 0);
    }
}

#[test]
fn mid_run_arrivals_stay_sound_for_every_kind() {
    let g = PimGeometry::paper_scaled(N);
    let sys = SystemConfig::paper_scaled(N);
    let timing = TimingModel::paper();
    // One ring segment dies 1 ps in. Schedules that still route over it
    // must replan (tier >= 1); schedules that never touch it finish at
    // full tier. Either way the end state must satisfy the contract.
    let arrivals = FaultTimeline::parse_arrivals("r0c0b0E@t=1ps").unwrap();
    for kind in KINDS {
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                arrivals: arrivals.clone(),
                ..FaultTimeline::none()
            },
            ..FaultConfig::none()
        });
        let req = RecoveryRequest {
            kind,
            geometry: &g,
            elems_per_node: ELEMS,
            elem_bytes: 8,
            op: ReduceOp::Sum,
            injector: &injector,
            system: &sys,
            timing: &timing,
            config: RecoveryConfig::default(),
        };
        let out = run_recovered::<u64>(&req, input).unwrap();
        assert!(
            out.machine.is_some(),
            "{kind}: one dead segment must stay survivable (tier {}, trail {:?})",
            out.plan_tier,
            out.error_trail
        );
        assert_sound(kind, 0, &Ok(out));
    }
}

#[test]
fn declared_dead_rank_from_launch_still_plans_and_recovers() {
    // Pre-existing permanent faults (the planner's job) compose with the
    // runtime timeline (the recovery manager's job) in one scenario.
    let g = PimGeometry::paper_scaled(N);
    let sys = SystemConfig::paper_scaled(N);
    let timing = TimingModel::paper();
    let mut cfg = FaultConfig::none();
    cfg.permanent = PermanentFaultSet::parse_tokens("r0c0b2E").unwrap();
    cfg.timeline = FaultTimeline {
        bursts: vec![pimnet_suite::faults::TransientBurst {
            from_ps: 0,
            until_ps: 1_000_000,
            ber: 1.0,
        }],
        ..FaultTimeline::none()
    };
    cfg.backoff_base_ps = Some(800_000);
    let injector = FaultInjector::new(cfg);
    let req = RecoveryRequest {
        kind: CollectiveKind::AllReduce,
        geometry: &g,
        elems_per_node: ELEMS,
        elem_bytes: 8,
        op: ReduceOp::Sum,
        injector: &injector,
        system: &sys,
        timing: &timing,
        config: RecoveryConfig::default(),
    };
    let out = run_recovered::<u64>(&req, input).unwrap();
    assert!(out.machine.is_some(), "trail: {:?}", out.error_trail);
    assert_sound(CollectiveKind::AllReduce, 0, &Ok(out));
}

#[test]
fn bench_sweep_is_byte_identical_at_any_worker_count() {
    // The CI recovery-soak artifact: same seeds, 1 vs 4 workers, the
    // rendered table (and hence the CSV) must not differ by a byte.
    let a = pimnet_bench::sweeps::recovery_soak(2, 0xEC0, 1);
    let b = pimnet_bench::sweeps::recovery_soak(2, 0xEC0, 4);
    assert_eq!(a.table.render(), b.table.render());
    assert_eq!(a.table.to_csv(), b.table.to_csv());
    assert_eq!(
        (a.total, a.verified, a.unsound),
        (b.total, b.verified, b.unsound)
    );
    assert_eq!(a.unsound, 0, "bench sweep found contract violations");
}
