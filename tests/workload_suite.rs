//! Integration tests over the full workload suite × backend matrix.

use pim_arch::SystemConfig;
use pimnet_suite::net::backends::{all_backends, BackendKind};
use pimnet_suite::net::FabricConfig;
use pimnet_suite::workloads::program::run_program;
use pimnet_suite::workloads::{paper_suite, run_suite};

#[test]
fn every_workload_runs_on_every_supporting_backend() {
    let sys = SystemConfig::paper();
    for backend in all_backends(sys, FabricConfig::paper()) {
        let results = run_suite(&sys, backend.as_ref()).expect("suite");
        assert_eq!(results.len(), 11, "{}", backend.name());
        for (name, report) in results {
            match report {
                Some(r) => {
                    assert!(
                        r.total() > pim_sim::SimTime::ZERO,
                        "{name} on {}",
                        backend.name()
                    );
                    assert!(r.phases > 0);
                }
                None => {
                    // Only NDPBridge skips (reducing) workloads.
                    assert_eq!(backend.kind(), BackendKind::NdpBridge, "{name}");
                }
            }
        }
    }
}

#[test]
fn pimnet_never_loses_to_the_baseline() {
    let sys = SystemConfig::paper();
    let backends = all_backends(sys, FabricConfig::paper());
    let base = backends
        .iter()
        .find(|b| b.kind() == BackendKind::Baseline)
        .unwrap();
    let pim = backends
        .iter()
        .find(|b| b.kind() == BackendKind::Pimnet)
        .unwrap();
    for w in paper_suite() {
        let program = w.program(&sys);
        let tb = run_program(&program, &sys, base.as_ref()).unwrap().total();
        let tp = run_program(&program, &sys, pim.as_ref()).unwrap().total();
        assert!(tp < tb, "{}: PIMnet {tp} vs baseline {tb}", w.name());
    }
}

#[test]
fn compute_time_is_identical_across_backends() {
    // The paper's fair-comparison rule: only communication differs.
    let sys = SystemConfig::paper();
    let backends = all_backends(sys, FabricConfig::paper());
    for w in paper_suite() {
        let program = w.program(&sys);
        let mut computes = Vec::new();
        for b in &backends {
            if program.collective_kinds().iter().all(|&k| b.supports(k)) {
                computes.push(run_program(&program, &sys, b.as_ref()).unwrap().compute);
            }
        }
        assert!(computes.windows(2).all(|w| w[0] == w[1]), "{}", w.name());
    }
}

#[test]
fn communication_fractions_are_sane() {
    let sys = SystemConfig::paper();
    let backends = all_backends(sys, FabricConfig::paper());
    let pim = backends
        .iter()
        .find(|b| b.kind() == BackendKind::Pimnet)
        .unwrap();
    for w in paper_suite() {
        let r = run_program(&w.program(&sys), &sys, pim.as_ref()).unwrap();
        let f = r.comm_fraction();
        assert!((0.0..=1.0).contains(&f), "{}: {f}", w.name());
        // PIMnet never leaves a workload >90% communication-bound.
        assert!(
            f < 0.9,
            "{} still comm-bound under PIMnet: {f:.2}",
            w.name()
        );
    }
}
