//! Golden pin of the autotuner sweep: `results/fig12_best.csv` is a
//! pure function of the pinned cell matrix, so regenerating it — at any
//! worker count, from a cold or a warm schedule cache — must reproduce
//! the committed bytes exactly. A diff here means the tuner stopped
//! being deterministic (or the matrix changed without re-committing the
//! CSV: rerun `cargo run --release -p pimnet-bench --bin autotune_sweep`).

use pim_arch::geometry::PimGeometry;
use pimnet_bench::sweeps;
use pimnet_suite::net::schedule::{autotune, cache};

/// The committed sweep output, pinned at compile time.
const GOLDEN: &str = include_str!("../results/fig12_best.csv");

#[test]
fn fig12_best_reproduces_the_committed_csv_at_any_worker_count() {
    for workers in [1usize, 2, 8] {
        let csv = sweeps::fig12_best(workers).to_csv();
        assert_eq!(
            csv, GOLDEN,
            "fig12_best diverged from results/fig12_best.csv at {workers} worker(s)"
        );
    }
}

#[test]
fn fig12_best_is_cache_warmth_independent() {
    cache::clear();
    let cold = sweeps::fig12_best(4).to_csv();
    let warm = sweeps::fig12_best(4).to_csv();
    assert_eq!(cold, GOLDEN, "cold-cache sweep diverged");
    assert_eq!(warm, GOLDEN, "warm-cache sweep diverged");
}

#[test]
fn golden_rows_never_price_worse_than_paper_and_one_cell_tunes() {
    let mut tuned_cells = 0usize;
    let mut rows = 0usize;
    for line in GOLDEN.lines().skip(1) {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), 9, "malformed golden row: {line}");
        let paper_us: f64 = cells[3].parse().unwrap();
        let tuned_us: f64 = cells[4].parse().unwrap();
        assert!(
            tuned_us <= paper_us,
            "winner prices worse than the paper incumbent: {line}"
        );
        assert_eq!(cells[8], "0", "a candidate failed analysis: {line}");
        if cells[6] != "paper" {
            tuned_cells += 1;
            assert!(
                tuned_us < paper_us,
                "a non-incumbent winner must strictly improve: {line}"
            );
        }
        rows += 1;
    }
    assert_eq!(rows, sweeps::fig12_best_cells().len());
    assert!(
        tuned_cells > 0,
        "the matrix must contain at least one cell where tuning beats the paper"
    );
}

#[test]
fn tuner_is_deterministic_per_request() {
    let g = PimGeometry::paper_scaled(64);
    let kind = pimnet_suite::net::collective::CollectiveKind::AllReduce;
    let a = autotune::tune(kind, &g, 64, 4).unwrap();
    cache::clear();
    let b = autotune::tune(kind, &g, 64, 4).unwrap();
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.tuned_time, b.tuned_time);
    assert_eq!(a.paper_time, b.paper_time);
    assert_eq!(a.candidates, b.candidates);
    assert_eq!(a.rejected, b.rejected);
}
