//! Bit-identical parallel execution, end to end.
//!
//! `pim_sim::par` sells one contract: mapping a pure function over work
//! items on N workers returns exactly what the sequential map returns,
//! for every N. These tests pin that contract on the real sweeps — the
//! chaos soak, the lint preset matrix, the fig 12 scaling curves, and the
//! validator-fuzz sampling — at 1, 2 and 8 workers, and pin the schedule
//! cache's promise that a hit is structurally equal to a fresh build.

use pimnet_bench::sweeps;
use pimnet_suite::arch::geometry::PimGeometry;
use pimnet_suite::faults::PermanentFaultSet;
use pimnet_suite::net::analysis::presets;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::{cache, repair, validate, CommSchedule};
use pimnet_suite::sim::par;

const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

#[test]
fn chaos_soak_is_identical_at_every_worker_count() {
    let reference = sweeps::chaos_soak(3, 0xC40, 1);
    for workers in WORKER_COUNTS {
        let run = sweeps::chaos_soak(3, 0xC40, workers);
        assert_eq!(
            run.table.to_csv(),
            reference.table.to_csv(),
            "chaos soak diverged at {workers} workers"
        );
        assert_eq!(run.total, reference.total);
        assert_eq!(run.verified, reference.verified);
    }
}

#[test]
fn lint_preset_matrix_is_identical_at_every_worker_count() {
    let verdict = |workers: usize| -> Vec<String> {
        par::map_ordered_with(workers, presets::cases(), |case| match case.run() {
            Ok(report) => format!("{}: {}", case.label(), report.summary()),
            Err(reason) => format!("{}: skip ({reason})", case.label()),
        })
    };
    let reference = verdict(1);
    assert_eq!(reference.len(), presets::cases().len());
    for workers in WORKER_COUNTS {
        assert_eq!(
            verdict(workers),
            reference,
            "lint matrix diverged at {workers} workers"
        );
    }
}

#[test]
fn fig12_sweep_is_identical_at_every_worker_count() {
    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let reference = sweeps::fig12_table(kind, 1).to_csv();
        for workers in WORKER_COUNTS {
            assert_eq!(
                sweeps::fig12_table(kind, workers).to_csv(),
                reference,
                "fig12 {kind} diverged at {workers} workers"
            );
        }
    }
}

#[test]
fn fuzz_style_sampling_is_identical_at_every_worker_count() {
    // The validator-fuzz shape: a seeded, branchy computation per item.
    let sample = |seed: u64| -> String {
        let mut rng = pimnet_suite::sim::SimRng::seed_from_u64(0xF022 ^ seed);
        let dpus = [8u32, 16][rng.below(2) as usize];
        let kind = CollectiveKind::ALL[rng.below(7) as usize];
        let s = CommSchedule::build(kind, &PimGeometry::paper_scaled(dpus), 64, 4).unwrap();
        format!("{kind} x{dpus}: {} transfers", s.transfer_count())
    };
    let seeds: Vec<u64> = (0..64).collect();
    let reference = par::map_ordered_with(1, seeds.clone(), sample);
    for workers in WORKER_COUNTS {
        assert_eq!(
            par::map_ordered_with(workers, seeds.clone(), sample),
            reference,
            "sampling diverged at {workers} workers"
        );
    }
}

#[test]
fn cache_hits_are_structurally_equal_to_fresh_builds() {
    cache::clear();
    let g = PimGeometry::paper_scaled(64);
    for kind in CollectiveKind::ALL {
        let cold = cache::build_cached(kind, &g, 256, 4).unwrap();
        let hit = cache::build_cached(kind, &g, 256, 4).unwrap();
        let fresh = CommSchedule::build(kind, &g, 256, 4).unwrap();
        validate::validate(&fresh).unwrap();
        assert_eq!(
            *cold, fresh,
            "{kind}: cached build differs from fresh build"
        );
        assert_eq!(*hit, fresh, "{kind}: cache hit differs from fresh build");
    }
    let faults = PermanentFaultSet::parse_tokens("r0c0b1E,r0c1tx").unwrap();
    let cached = cache::repair_cached(CollectiveKind::AllReduce, &g, 256, 4, &faults).unwrap();
    let base = CommSchedule::build(CollectiveKind::AllReduce, &g, 256, 4).unwrap();
    let fresh = repair::repair(&base, &faults).unwrap();
    assert_eq!(*cached, fresh, "cached repair differs from fresh repair");
}

#[test]
fn concurrent_cold_misses_build_each_schedule_once() {
    cache::clear();
    cache::reset_stats();
    let g = PimGeometry::paper_scaled(32);
    // 32 concurrent lookups of the same 4 keys from 8 workers.
    let items: Vec<CollectiveKind> = (0..32)
        .map(|i| {
            [
                CollectiveKind::AllReduce,
                CollectiveKind::AllGather,
                CollectiveKind::AllToAll,
                CollectiveKind::Broadcast,
            ][i % 4]
        })
        .collect();
    let schedules = par::map_ordered_with(8, items, |kind| {
        cache::build_cached(kind, &g, 128, 4).unwrap()
    });
    let stats = cache::stats();
    assert_eq!(
        stats.schedules_built, 4,
        "in-flight dedup must build each key once"
    );
    assert_eq!(stats.hits + stats.misses, 32);
    // Every lookup of a key observed the same schedule.
    for (i, s) in schedules.iter().enumerate() {
        assert_eq!(**s, *schedules[i % 4], "lookup {i} diverged");
    }
}
