//! The paper's headline quantitative claims, asserted end to end.
//! Each test names the paper section/figure it checks; `EXPERIMENTS.md`
//! records the exact measured values.

use pim_arch::{ComputePreset, PimGeometry, SystemConfig};
use pim_sim::{Bandwidth, Bytes, SimTime};
use pimnet_suite::net::backends::{
    BaselineHostBackend, CollectiveBackend, DimmLinkBackend, PimnetBackend, SoftwareIdealBackend,
};
use pimnet_suite::net::collective::{CollectiveKind, CollectiveSpec};
use pimnet_suite::net::hwcost::HwCostModel;
use pimnet_suite::net::FabricConfig;
use pimnet_suite::noc::{simulate_credit, simulate_scheduled, NocConfig};
use pimnet_suite::workloads::program::run_program;
use pimnet_suite::workloads::{cc::Cc, mlp::Mlp, Workload};

fn ar32() -> CollectiveSpec {
    CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32))
}

/// Abstract: "up to 85× speedup on collective communications".
#[test]
fn abstract_claim_85x_on_collectives() {
    let sys = SystemConfig::paper();
    let b = BaselineHostBackend::new(sys)
        .collective(&ar32())
        .unwrap()
        .total();
    let p = PimnetBackend::paper().collective(&ar32()).unwrap().total();
    let speedup = b.ratio(p);
    assert!(
        (60.0..130.0).contains(&speedup),
        "collective speedup {speedup:.1}x not in the 85x neighbourhood"
    );
}

/// §III-A / Fig 2: PIMnet's effective collective bandwidth is several times
/// the idealized software stack's.
#[test]
fn fig2_pimnet_collective_bandwidth_dominates() {
    use pimnet_suite::net::roofline::effective_collective_bandwidth;
    let sys = SystemConfig::paper();
    let p = effective_collective_bandwidth(&PimnetBackend::paper(), &ar32()).unwrap();
    let s = effective_collective_bandwidth(&SoftwareIdealBackend::new(sys), &ar32()).unwrap();
    assert!(p / s > 5.0, "only {:.1}x", p / s);
}

/// §III-B / Fig 3: software scalability flattens beyond one rank, PIMnet's
/// keeps growing (bandwidth parallelism).
#[test]
fn fig3_scalability_shapes() {
    let spec = ar32();
    let mut software = Vec::new();
    let mut pimnet = Vec::new();
    for n in [8u32, 64, 256] {
        let sys = SystemConfig::paper_scaled(n);
        software.push(
            f64::from(n)
                / SoftwareIdealBackend::new(sys)
                    .collective(&spec)
                    .unwrap()
                    .total()
                    .as_secs_f64(),
        );
        pimnet.push(
            f64::from(n)
                / PimnetBackend::new(sys, FabricConfig::paper())
                    .collective(&spec)
                    .unwrap()
                    .total()
                    .as_secs_f64(),
        );
    }
    // Software throughput per DPU saturates: 8->256 gains < 3x.
    assert!(software[2] / software[0] < 3.0);
    // PIMnet keeps scaling: > 5x over the same range.
    assert!(pimnet[2] / pimnet[0] > 5.0);
}

/// §VI-B Fig 10: CC gains ~5.6x; communication dominates the baseline.
#[test]
fn fig10_cc_shape() {
    let sys = SystemConfig::paper();
    let prog = Cc::log_gowalla().program(&sys);
    let b = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
    let p = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
    assert!(b.comm_fraction() > 0.7, "{}", b.comm_fraction());
    assert!(p.comm_fraction() < 0.5, "{}", p.comm_fraction());
    let speedup = b.total().ratio(p.total());
    assert!((3.0..15.0).contains(&speedup), "CC {speedup:.1}x");
}

/// §VI-B Fig 13: AllReduce within a few percent under either flow control;
/// All-to-All clearly prefers PIM control.
#[test]
fn fig13_flow_control_direction() {
    let cfg = NocConfig::paper();
    let g = PimGeometry::paper_scaled(64);
    // Per-DPU compute-finish jitter, as the paper fed from real UPMEM
    // measurements (deterministic stand-in: +-10% around 40 us).
    let ready: Vec<SimTime> = (0..64u64)
        .map(|i| {
            let f = 0.9 + 0.2 * ((i.wrapping_mul(2654435761) % 1000) as f64 / 1000.0);
            SimTime::from_secs_f64(40e-6 * f)
        })
        .collect();

    let ar =
        pimnet_suite::net::schedule::CommSchedule::build(CollectiveKind::AllReduce, &g, 4096, 4)
            .unwrap();
    let ar_ratio = simulate_credit(&ar, &ready, &cfg)
        .completion
        .ratio(simulate_scheduled(&ar, &ready, &cfg).completion);
    assert!((0.85..1.15).contains(&ar_ratio), "AR ratio {ar_ratio:.3}");

    let a2a =
        pimnet_suite::net::schedule::CommSchedule::build(CollectiveKind::AllToAll, &g, 8192, 4)
            .unwrap();
    let credit = simulate_credit(&a2a, &ready, &cfg).completion;
    let sched = simulate_scheduled(&a2a, &ready, &cfg).completion;
    let gain = 1.0 - sched.as_secs_f64() / credit.as_secs_f64();
    assert!(
        (0.03..0.40).contains(&gain),
        "A2A PIM-control gain {:.1}% (paper: 18.7%)",
        gain * 100.0
    );
}

/// §VI-B Fig 14(a): PIMnet outperforms DIMM-Link across the whole
/// inter-bank bandwidth sweep, including the degraded 0.1 GB/s point.
#[test]
fn fig14_bandwidth_parallelism_keeps_pimnet_ahead() {
    let sys = SystemConfig::paper();
    let d = DimmLinkBackend::new(sys, FabricConfig::paper())
        .collective(&ar32())
        .unwrap()
        .total();
    for mbps in [100.0f64, 400.0, 700.0, 1000.0] {
        let fabric = FabricConfig::paper().with_bank_channel_bw(Bandwidth::mbps(mbps));
        let p = PimnetBackend::new(sys, fabric)
            .collective(&ar32())
            .unwrap()
            .total();
        assert!(
            p < d,
            "PIMnet @ {mbps} MB/s ({p}) should still beat DIMM-Link ({d})"
        );
    }
}

/// §VI-B Fig 15: faster PIM compute multiplies PIMnet's benefit on MLP.
#[test]
fn fig15_compute_scaling_amplifies_pimnet() {
    let speedup = |preset: ComputePreset| {
        let sys = SystemConfig::paper().with_compute(preset);
        let prog = Mlp::new(1024).program(&sys);
        let b = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        let p = run_program(&prog, &sys, &PimnetBackend::new(sys, FabricConfig::paper())).unwrap();
        b.total().ratio(p.total())
    };
    let upmem = speedup(ComputePreset::UpmemDpu);
    let aim = speedup(ComputePreset::Gddr6Aim);
    assert!(
        upmem < 5.0,
        "UPMEM MLP speedup {upmem:.1}x should be modest"
    );
    assert!(
        aim > upmem * 10.0,
        "AiM should multiply the benefit: {aim:.1}x"
    );
}

/// §VI-B hardware overhead: 0.09% area, 1.6% power, >60x vs a ring router,
/// ~15 ns sync.
#[test]
fn hardware_overhead_claims() {
    let m = HwCostModel::nangate45();
    assert!((0.0005..0.0015).contains(&m.stop_area_overhead()));
    assert!((0.01..0.025).contains(&m.stop_power_overhead()));
    assert!(m.stop_vs_router_ratio() > 60.0);
    assert_eq!(FabricConfig::paper().sync_propagation, SimTime::from_ns(15));
}

/// Fig 17: PIMnet gives tenants bandwidth isolation.
#[test]
fn fig17_bandwidth_isolation() {
    let tenant = SystemConfig::paper().with_geometry(PimGeometry::new(8, 8, 2, 1));
    let spec = ar32();
    let pim_alone = PimnetBackend::new(tenant, FabricConfig::paper())
        .collective(&spec)
        .unwrap()
        .total();
    let pim_shared = PimnetBackend::new(
        tenant,
        FabricConfig::paper().with_rank_bus_bw(Bandwidth::gbps(8.4)),
    )
    .collective(&spec)
    .unwrap()
    .total();
    let slowdown = pim_shared.ratio(pim_alone);
    assert!(
        slowdown < 1.2,
        "PIMnet tenant slowdown {slowdown:.2}x should be near 1x"
    );
}
