//! Property tests over the timing models: the orderings the paper's
//! figures rest on must hold across the whole parameter space, not just at
//! the plotted points. Cases are drawn from a seeded [`SimRng`] sweep so
//! every run checks the same inputs.

use pim_arch::SystemConfig;
use pim_sim::{Bytes, SimRng};
use pimnet_suite::net::backends::{
    BaselineHostBackend, CollectiveBackend, DimmLinkBackend, PimnetBackend, SoftwareIdealBackend,
};
use pimnet_suite::net::collective::{CollectiveKind, CollectiveSpec};
use pimnet_suite::net::FabricConfig;

const KINDS: [CollectiveKind; 5] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
    CollectiveKind::Broadcast,
];

fn any_kind(rng: &mut SimRng) -> CollectiveKind {
    KINDS[rng.gen_range(0usize..KINDS.len())]
}

/// Every backend's collective time is monotone in the payload.
#[test]
fn collective_time_is_monotone_in_bytes() {
    let mut rng = SimRng::seed_from_u64(0x717_0001);
    for _ in 0..20 {
        let kind = any_kind(&mut rng);
        let kb_small = rng.gen_range(1u64..128);
        let extra = rng.gen_range(1u64..128);
        let n_exp = rng.gen_range(2u32..=8);
        let sys = SystemConfig::paper_scaled(1 << n_exp);
        let fabric = FabricConfig::paper();
        let backends: Vec<Box<dyn CollectiveBackend>> = vec![
            Box::new(BaselineHostBackend::new(sys)),
            Box::new(SoftwareIdealBackend::new(sys)),
            Box::new(DimmLinkBackend::new(sys, fabric)),
            Box::new(PimnetBackend::new(sys, fabric)),
        ];
        let small = CollectiveSpec::new(kind, Bytes::kib(kb_small));
        let large = CollectiveSpec::new(kind, Bytes::kib(kb_small + extra));
        for b in &backends {
            if !b.supports(kind) {
                continue;
            }
            let ts = b.collective(&small).unwrap().total();
            let tl = b.collective(&large).unwrap().total();
            assert!(
                tl >= ts,
                "{} {kind}: {}KB -> {ts}, {}KB -> {tl}",
                b.name(),
                kb_small,
                kb_small + extra
            );
        }
    }
}

/// The ideal software stack never loses to the overhead-laden baseline.
#[test]
fn ideal_software_never_loses_to_the_baseline() {
    let mut rng = SimRng::seed_from_u64(0x717_0002);
    for _ in 0..20 {
        let kind = any_kind(&mut rng);
        let kb = rng.gen_range(1u64..512);
        let n_exp = rng.gen_range(3u32..=8);
        let sys = SystemConfig::paper_scaled(1 << n_exp);
        let spec = CollectiveSpec::new(kind, Bytes::kib(kb));
        let b = BaselineHostBackend::new(sys)
            .collective(&spec)
            .unwrap()
            .total();
        let s = SoftwareIdealBackend::new(sys)
            .collective(&spec)
            .unwrap()
            .total();
        assert!(
            s <= b,
            "{kind} {kb}KB n=2^{n_exp}: ideal {s} > baseline {b}"
        );
    }
}

/// PIMnet never loses to ideal software on the collectives the paper
/// claims (AllReduce / ReduceScatter, and All-to-All at WRAM-resident
/// sizes), at rank scale and beyond. Outside this envelope the model
/// correctly lets the host win: broadcast-shaped collectives ride the
/// 16.88 GB/s CPU broadcast, and WRAM-overflowing payloads pay MRAM
/// staging — both effects the paper's own Mem bucket anticipates.
#[test]
fn pimnet_beats_ideal_software_in_the_claimed_envelope() {
    let mut rng = SimRng::seed_from_u64(0x717_0003);
    for _ in 0..20 {
        let reduce_kind = if rng.gen_bool(0.5) {
            CollectiveKind::AllReduce
        } else {
            CollectiveKind::ReduceScatter
        };
        let kb = rng.gen_range(1u64..=48);
        let a2a_kb = rng.gen_range(1u64..=20);
        let n_exp = rng.gen_range(4u32..=8);
        let sys = SystemConfig::paper_scaled(1 << n_exp);
        let fabric = FabricConfig::paper();
        for spec in [
            CollectiveSpec::new(reduce_kind, Bytes::kib(kb)),
            CollectiveSpec::new(CollectiveKind::AllToAll, Bytes::kib(a2a_kb)),
        ] {
            let s = SoftwareIdealBackend::new(sys)
                .collective(&spec)
                .unwrap()
                .total();
            let p = PimnetBackend::new(sys, fabric)
                .collective(&spec)
                .unwrap()
                .total();
            assert!(
                p <= s,
                "{} {}B n=2^{n_exp}: pimnet {p} > ideal {s}",
                spec.kind,
                spec.bytes_per_dpu
            );
        }
    }
}

/// Weak-scaling sanity: PIMnet's AllReduce time grows sub-linearly in
/// the DPU count (the bandwidth-parallelism claim), while the
/// baseline's grows at least linearly.
#[test]
fn scaling_exponents() {
    let mut rng = SimRng::seed_from_u64(0x717_0004);
    for _ in 0..20 {
        let kb = rng.gen_range(4u64..64);
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(kb));
        let t = |n: u32, mk: &dyn Fn(SystemConfig) -> Box<dyn CollectiveBackend>| {
            mk(SystemConfig::paper_scaled(n))
                .collective(&spec)
                .unwrap()
                .total()
        };
        let mk_base: &dyn Fn(SystemConfig) -> Box<dyn CollectiveBackend> =
            &|s| Box::new(BaselineHostBackend::new(s));
        let mk_pim: &dyn Fn(SystemConfig) -> Box<dyn CollectiveBackend> =
            &|s| Box::new(PimnetBackend::new(s, FabricConfig::paper()));
        // 32x more DPUs (8 -> 256):
        let base_growth = t(256, mk_base).ratio(t(8, mk_base));
        let pim_growth = t(256, mk_pim).ratio(t(8, mk_pim));
        assert!(base_growth > 8.0, "baseline grew only {base_growth:.1}x");
        assert!(pim_growth < 8.0, "PIMnet grew {pim_growth:.1}x");
    }
}
