//! Cross-crate fault-injection properties.
//!
//! The contract of the fault layer, pinned end-to-end:
//!
//! 1. **Bit-identical recovery** — a fault-injected run that succeeds
//!    (every corrupted transfer retried within budget) leaves exactly the
//!    buffers of a fault-free run. CRC detection plus retry is *lossless*.
//! 2. **Seeded determinism** — the same seed reproduces the same corrupted
//!    transfers, the same retry counts, the same stretched timeline, and
//!    the same NoC report, run after run.
//! 3. **Zero overhead when disabled** — an inactive injector takes the
//!    exact fault-free code paths: no CRC work, byte-identical outputs.
//! 4. **Typed failures** — exhausted retry budgets, dead DPUs and blown
//!    watchdogs surface as [`pimnet::PimnetError`] values, never panics.

use pimnet_suite::arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::arch::SystemConfig;
use pimnet_suite::faults::{FaultConfig, FaultInjector, PermanentFaultSet};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{ExecMachine, ReduceOp};
use pimnet_suite::net::resilience::{plan_degraded, plan_degraded_probed, DegradedPlan};
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::net::PimnetError;
use pimnet_suite::noc::{simulate_credit, simulate_credit_faulty, NocConfig};
use pimnet_suite::sim::trace::codes;
use pimnet_suite::sim::{Probe, SimTime};

const KINDS: [CollectiveKind; 4] = [
    CollectiveKind::AllReduce,
    CollectiveKind::ReduceScatter,
    CollectiveKind::AllGather,
    CollectiveKind::AllToAll,
];

fn schedule(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
}

fn noisy(seed: u64) -> FaultInjector {
    // BER 0.15 with a 16-retry budget: corruption is everywhere, but the
    // chance of one transfer failing 17 straight attempts is ~6e-15.
    FaultInjector::new(
        FaultConfig {
            transient_ber: 0.15,
            straggler_prob: 0.3,
            straggler_max_ns: 40_000,
            max_retries: 16,
            ..FaultConfig::none()
        }
        .with_seed(seed),
    )
}

fn input(id: DpuId, elems: usize) -> Vec<u64> {
    (0..elems)
        .map(|e| u64::from(id.0) * 1_000 + e as u64)
        .collect()
}

#[test]
fn faulty_execution_is_bit_identical_to_fault_free_execution() {
    for kind in KINDS {
        for seed in [1u64, 77, 0xDEAD] {
            let s = schedule(kind, 16, 96);
            let mut clean = ExecMachine::init(&s, |id| input(id, 96));
            clean.run(&s, ReduceOp::Sum);
            let mut faulty = ExecMachine::init(&s, |id| input(id, 96));
            let stats = faulty
                .run_with_faults(&s, ReduceOp::Sum, &noisy(seed))
                .expect("retry budget is ample");
            assert!(
                stats.corrupted > 0,
                "{kind} seed {seed}: BER 0.15 must corrupt"
            );
            assert_eq!(clean, faulty, "{kind} seed {seed}: buffers diverged");
        }
    }
}

#[test]
fn identical_seeds_give_identical_stats_timing_and_noc_reports() {
    let s = schedule(CollectiveKind::AllReduce, 32, 128);
    let timing = TimingModel::paper();
    let noc_cfg = NocConfig::paper();
    let ready = vec![SimTime::ZERO; 32];
    let inj = noisy(0x5EED);

    let mut m1 = ExecMachine::init(&s, |id| input(id, 128));
    let mut m2 = ExecMachine::init(&s, |id| input(id, 128));
    let s1 = m1.run_with_faults(&s, ReduceOp::Sum, &inj).unwrap();
    let s2 = m2.run_with_faults(&s, ReduceOp::Sum, &inj).unwrap();
    assert_eq!(s1, s2);
    assert_eq!(m1, m2);

    let t1 = Timeline::build_with_faults(&s, &timing, &inj).unwrap();
    let t2 = Timeline::build_with_faults(&s, &timing, &inj).unwrap();
    assert_eq!(t1.end, t2.end);
    assert_eq!(t1.windows, t2.windows);

    let n1 = simulate_credit_faulty(&s, &ready, &noc_cfg, &inj).unwrap();
    let n2 = simulate_credit_faulty(&s, &ready, &noc_cfg, &inj).unwrap();
    assert_eq!(n1, n2);

    // A different seed draws a different fault pattern (with these rates,
    // collision of every decision is effectively impossible).
    let other = Timeline::build_with_faults(&s, &timing, &noisy(0x5EED + 1)).unwrap();
    assert_ne!(t1.end, other.end, "different seeds should differ");
}

#[test]
fn disabled_faults_are_byte_identical_to_the_fault_free_path() {
    let off = FaultInjector::none();
    assert!(!off.is_active());
    for kind in KINDS {
        let s = schedule(kind, 16, 64);

        let mut clean = ExecMachine::init(&s, |id| input(id, 64));
        clean.run(&s, ReduceOp::Sum);
        let mut gated = ExecMachine::init(&s, |id| input(id, 64));
        let stats = gated.run_with_faults(&s, ReduceOp::Sum, &off).unwrap();
        assert_eq!(clean, gated, "{kind}: disabled faults changed the result");
        assert_eq!(
            stats.crc_checks, 0,
            "{kind}: inactive injector did CRC work"
        );

        let timing = TimingModel::paper();
        let t_clean = Timeline::build(&s, &timing);
        let t_gated = Timeline::build_with_faults(&s, &timing, &off).unwrap();
        assert_eq!(
            t_clean, t_gated,
            "{kind}: disabled faults changed the timeline"
        );

        let ready = vec![SimTime::ZERO; 16];
        let cfg = NocConfig::paper();
        assert_eq!(
            simulate_credit(&s, &ready, &cfg),
            simulate_credit_faulty(&s, &ready, &cfg, &off).unwrap(),
            "{kind}: disabled faults changed the NoC report"
        );
    }
}

#[test]
fn fault_timing_stretches_but_never_shrinks() {
    let timing = TimingModel::paper();
    for kind in KINDS {
        let s = schedule(kind, 16, 128);
        let clean = Timeline::build(&s, &timing);
        let faulty = Timeline::build_with_faults(&s, &timing, &noisy(3)).unwrap();
        assert!(
            faulty.end > clean.end,
            "{kind}: BER 0.15 + stragglers must cost time"
        );
    }
}

#[test]
fn exhausted_retries_dead_dpus_and_watchdogs_are_typed_errors() {
    let s = schedule(CollectiveKind::AllReduce, 8, 32);

    let hopeless = FaultInjector::new(FaultConfig {
        transient_ber: 1.0,
        max_retries: 2,
        ..FaultConfig::none()
    });
    let mut m = ExecMachine::init(&s, |id| input(id, 32));
    assert!(matches!(
        m.run_with_faults(&s, ReduceOp::Sum, &hopeless),
        Err(PimnetError::TransferFailed { attempts: 3, .. })
    ));

    let dead = FaultInjector::new(FaultConfig {
        dead_dpus: vec![5],
        ..FaultConfig::none()
    });
    let mut m = ExecMachine::init(&s, |id| input(id, 32));
    assert!(matches!(
        m.run_with_faults(&s, ReduceOp::Sum, &dead),
        Err(PimnetError::DeadDpu { dpu: 5 })
    ));
    assert!(matches!(
        Timeline::build_with_faults(&s, &TimingModel::paper(), &dead),
        Err(PimnetError::DeadDpu { dpu: 5 })
    ));
}

#[test]
fn degraded_plans_still_compute_the_right_answer() {
    // Kill 5 of 32 DPUs: the plan shrinks to 16 logical nodes mapped onto
    // alive physical ids, and the shrunk AllReduce still sums correctly.
    let g = PimGeometry::paper_scaled(32);
    let inj = FaultInjector::new(FaultConfig {
        dead_dpus: vec![0, 7, 9, 20, 31],
        ..FaultConfig::none()
    });
    let plan = plan_degraded(
        CollectiveKind::AllReduce,
        &g,
        48,
        4,
        &inj,
        &SystemConfig::paper_scaled(32),
    )
    .unwrap();
    let DegradedPlan::Shrunk {
        schedule,
        logical_to_physical,
        excluded,
        error_trail,
    } = plan
    else {
        panic!("expected a shrunk plan");
    };
    assert_eq!(schedule.geometry.total_dpus(), 16);
    assert_eq!(error_trail.len(), 5);
    assert!(logical_to_physical.iter().all(|p| !excluded.contains(p)));

    // Logical node i carries physical node logical_to_physical[i]'s data.
    let mut m = ExecMachine::init(&schedule, |id| {
        vec![u64::from(logical_to_physical[id.index()]); 48]
    });
    m.run(&schedule, ReduceOp::Sum);
    let expected: u64 = logical_to_physical.iter().map(|&p| u64::from(p)).sum();
    for id in schedule.participants() {
        assert!(m.buffer(id)[..48].iter().all(|&v| v == expected));
    }
}

#[test]
fn trace_events_appear_exactly_as_often_as_faults_were_injected() {
    // The trace is not a log of what the code *did* but a re-derivation of
    // what the injector *decided* — so every retry/straggler count in it
    // must match the injector's pure decision functions exactly.
    let s = schedule(CollectiveKind::AllReduce, 16, 96);
    let inj = noisy(42);

    // Executor: one `exec-retry` instant per re-send, counters mirrored
    // into the metrics report.
    let probe = Probe::enabled();
    let mut m = ExecMachine::init(&s, |id| input(id, 96));
    let stats = m
        .run_with_faults_probed(&s, ReduceOp::Sum, &inj, &probe)
        .expect("retry budget is ample");
    assert!(stats.retries > 0, "BER 0.15 must force retries");
    let trace = probe.trace.drain();
    assert_eq!(trace.count(codes::EXEC_RETRY) as u64, stats.retries);
    let r = probe.metrics.snapshot();
    assert_eq!(r.retries, stats.retries);
    assert_eq!(r.crc_checks, stats.crc_checks);
    assert_eq!(r.corrupted, stats.corrupted);

    // Timeline: one `retry` instant per serialized re-send, one
    // `straggler` instant per delayed participant — both re-derivable
    // from the injector.
    let probe = Probe::enabled();
    let _t = Timeline::build_with_faults_probed(&s, &TimingModel::paper(), &inj, &probe)
        .expect("build succeeds");
    let expected_stragglers = s
        .participants()
        .filter(|id| inj.straggler_delay_ns(id.0, 0) > 0)
        .count();
    let mut expected_retries = 0u64;
    for (pi, phase) in s.phases.iter().enumerate() {
        for (si, step) in phase.steps.iter().enumerate() {
            for (ti, t) in step.transfers.iter().enumerate() {
                if !t.is_local() {
                    expected_retries += u64::from(
                        inj.attempts_before_success(pi as u64, si as u64, ti as u64)
                            .expect("budget ample"),
                    );
                }
            }
        }
    }
    assert!(expected_stragglers > 0, "straggler_prob 0.3 over 16 DPUs");
    assert!(expected_retries > 0, "BER 0.15 must corrupt");
    let trace = probe.trace.drain();
    assert_eq!(trace.count(codes::STRAGGLER), expected_stragglers);
    assert_eq!(trace.count(codes::RETRY) as u64, expected_retries);
    let r = probe.metrics.snapshot();
    assert_eq!(r.stragglers, expected_stragglers as u64);
}

#[test]
fn degraded_runs_tag_their_ladder_tier_in_the_metrics_report() {
    use pimnet_suite::faults::PermanentFaultSet;

    // (injector, DPUs, expected rung, expected name) — one scenario per
    // rung of the degradation ladder.
    let scenarios: [(FaultInjector, u32, u8, &str); 4] = [
        (FaultInjector::none(), 16, 0, "full"),
        (
            FaultInjector::new(FaultConfig {
                permanent: PermanentFaultSet::parse_tokens("r0c0b2E, r0c3tx").unwrap(),
                ..FaultConfig::none()
            }),
            64,
            1,
            "repaired",
        ),
        (
            FaultInjector::new(FaultConfig {
                dead_dpus: vec![0, 5, 9],
                ..FaultConfig::none()
            }),
            16,
            2,
            "shrunk",
        ),
        (
            FaultInjector::new(FaultConfig {
                dead_dpus: (1..8).collect(),
                ..FaultConfig::none()
            }),
            8,
            3,
            "host-fallback",
        ),
    ];
    for (inj, n, rung, name) in scenarios {
        let probe = Probe::enabled();
        let plan = plan_degraded_probed(
            CollectiveKind::AllReduce,
            &PimGeometry::paper_scaled(n),
            48,
            4,
            &inj,
            &SystemConfig::paper_scaled(n),
            &probe,
        )
        .unwrap();
        assert_eq!(plan.tier(), rung, "{name}: unexpected plan tier");
        let r = probe.metrics.snapshot();
        assert_eq!(
            r.degraded_tier,
            Some(rung),
            "{name}: metrics missed the rung"
        );
        assert_eq!(r.degraded_tier_name(), Some(name));
        let trace = probe.trace.drain();
        assert_eq!(
            trace.count(codes::PLAN_TIER),
            1,
            "{name}: exactly one plan-tier event per plan"
        );
        let ev = trace
            .events
            .iter()
            .find(|e| e.code == codes::PLAN_TIER)
            .unwrap();
        assert_eq!(
            ev.args[0],
            u64::from(rung),
            "{name}: event carries the rung"
        );
    }
}

#[test]
fn combined_fault_classes_degrade_soundly_and_the_ladder_is_monotone() {
    // One storm naming all three permanent fault classes at once — a
    // ring segment, a crossbar port and a whole dead rank — in a single
    // PermanentFaultSet. The ladder must land at least as deep as the
    // deepest single-class tier (adding faults never un-degrades a
    // plan), and whatever schedule survives must still sum correctly.
    let g = PimGeometry::paper_scaled(256);
    let sys = SystemConfig::paper_scaled(256);
    let elems = 32;
    let tier_of = |tokens: &str| -> u8 {
        let inj = FaultInjector::new(FaultConfig {
            permanent: PermanentFaultSet::parse_tokens(tokens).unwrap(),
            ..FaultConfig::none()
        });
        plan_degraded(CollectiveKind::AllReduce, &g, elems, 4, &inj, &sys)
            .unwrap()
            .tier()
    };
    let seg = tier_of("r0c0b2E");
    let port = tier_of("r0c3tx");
    let rank = tier_of("rank1");
    let worst = seg.max(port).max(rank);
    assert!(rank >= 2, "a dead rank must at least shrink the plan");

    let combined = PermanentFaultSet::parse_tokens("r0c0b2E,r0c3tx,rank1").unwrap();
    assert_eq!(combined.segments.len(), 1);
    assert_eq!(combined.ports.len(), 1);
    assert_eq!(combined.dead_ranks.len(), 1);
    let inj = FaultInjector::new(FaultConfig {
        permanent: combined,
        ..FaultConfig::none()
    });
    let plan = plan_degraded(CollectiveKind::AllReduce, &g, elems, 4, &inj, &sys).unwrap();
    assert!(
        plan.tier() >= worst,
        "combined faults landed at tier {} but one class alone reached {worst}",
        plan.tier()
    );
    // Lost participants always come with a typed trail.
    if plan.tier() >= 2 {
        assert!(!plan.error_trail().is_empty());
    }
    // Whatever schedule survives must still compute the right answer:
    // an all-ones AllReduce sums to the surviving participant count.
    if let Some(s) = plan.schedule() {
        let mut m = ExecMachine::init(s, |_| vec![1u64; elems]);
        m.run(s, ReduceOp::Sum);
        let k = u64::from(s.geometry.total_dpus());
        for id in s.participants() {
            assert!(m.buffer(id)[..elems].iter().all(|&v| v == k));
        }
    }
}
