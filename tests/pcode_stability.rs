//! P-code stability: the diagnostic-code table in `DESIGN.md` is the
//! public contract, and this test pins it against the constants the
//! analysis passes actually emit. Renaming a code, changing its pass or
//! severity, or adding a pass constant without a documentation row fails
//! here — edit the code and the table together.

use std::collections::BTreeMap;

use pimnet_suite::net::analysis::codes;

/// Every code constant the analysis passes export, with its pass name
/// and severity as the implementation defines them (`P303` is the only
/// warning; everything else is an error).
fn implemented() -> BTreeMap<&'static str, (&'static str, &'static str)> {
    let mut t = BTreeMap::new();
    for code in [
        codes::EMPTY_DSTS,
        codes::SPAN_LEN_MISMATCH,
        codes::SPAN_OUT_OF_BOUNDS,
        codes::COMBINE_IN_NON_REDUCING,
        codes::NON_LOCAL_WITHOUT_RESOURCES,
        codes::FABRIC_SELF_SEND,
        codes::WRONG_TIER_RESOURCES,
        codes::MISSING_DQ_ENDPOINT,
        codes::EXCLUSIVE_SHARING,
        codes::MALFORMED_RESULT_TABLE,
    ] {
        t.insert(code, ("structural", "error"));
    }
    for code in [
        codes::UNINIT_READ,
        codes::COMBINE_INTO_UNINIT,
        codes::MISALIGNED_COMBINE,
        codes::DOUBLE_COUNTED,
        codes::RESULT_SHAPE,
        codes::RESULT_PROVENANCE,
        codes::RESULT_ELEMENTS,
    ] {
        t.insert(code, ("dataflow", "error"));
    }
    t.insert(codes::WRITE_WRITE, ("hazard", "error"));
    t.insert(codes::READ_AFTER_WRITE, ("hazard", "error"));
    t.insert(codes::PARTITIONED_TREE, ("sync", "error"));
    t.insert(codes::CYCLIC_WAIT, ("sync", "error"));
    t.insert(codes::EMPTY_BARRIER, ("sync", "warning"));
    t
}

/// Parses the `| code | pass | severity | meaning |` table out of
/// DESIGN.md. Only rows whose first cell looks like a P-code count.
fn documented(design: &str) -> BTreeMap<String, (String, String)> {
    let mut t = BTreeMap::new();
    for line in design.lines() {
        let cells: Vec<&str> = line
            .trim()
            .trim_matches('|')
            .split('|')
            .map(str::trim)
            .collect();
        if cells.len() < 4 {
            continue;
        }
        let code = cells[0];
        if code.len() == 4 && code.starts_with('P') && code[1..].chars().all(|c| c.is_ascii_digit())
        {
            t.insert(
                code.to_string(),
                (cells[1].to_string(), cells[2].to_string()),
            );
        }
    }
    t
}

#[test]
fn design_md_pcode_table_matches_the_emitted_codes() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md");
    let design = std::fs::read_to_string(path).expect("DESIGN.md is readable");
    let docs = documented(&design);
    let imp = implemented();

    assert!(
        !docs.is_empty(),
        "DESIGN.md no longer contains a P-code table"
    );
    for (code, (pass, severity)) in &imp {
        let Some((doc_pass, doc_severity)) = docs.get(*code) else {
            panic!("code {code} ({pass}) is emitted but undocumented in DESIGN.md");
        };
        assert_eq!(
            doc_pass, pass,
            "code {code}: DESIGN.md says pass '{doc_pass}', implementation says '{pass}'"
        );
        assert_eq!(
            doc_severity, severity,
            "code {code}: DESIGN.md says severity '{doc_severity}', \
             implementation says '{severity}'"
        );
    }
    for code in docs.keys() {
        assert!(
            imp.contains_key(code.as_str()),
            "DESIGN.md documents {code}, but no pass exports that code"
        );
    }
    assert_eq!(docs.len(), imp.len());
}

/// The code ranges are pass-disjoint — the property the incremental
/// verifier's byte-identity argument leans on (ties under the report's
/// `(location, code)` sort can only come from one pass).
#[test]
fn code_ranges_are_pass_disjoint() {
    for (code, (pass, _)) in implemented() {
        let block = code[1..].parse::<u32>().unwrap() / 100;
        let expected = match pass {
            "structural" => 0,
            "dataflow" => 1,
            "hazard" => 2,
            "sync" => 3,
            other => panic!("unknown pass {other}"),
        };
        assert_eq!(block, expected, "{code} is outside its pass's code block");
    }
}
