//! Failure injection and differential fuzzing: systematically corrupt
//! valid schedules and check that the static validator or analyzer (or,
//! where the corruption is semantic rather than structural, the
//! functional executor) catches every mutation class — and that the
//! analyzer's verdict agrees with executor bit-identity on random
//! geometry × collective × permanent-fault scenarios.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::analysis;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::schedule::{repair, validate::validate, CommSchedule, Span};
use pimnet_suite::net::topology::Resource;
use pimnet_suite::sim::SimRng;

fn base_schedule() -> CommSchedule {
    CommSchedule::build(
        CollectiveKind::AllReduce,
        &PimGeometry::paper_scaled(64),
        256,
        4,
    )
    .unwrap()
}

/// Finds the first non-local transfer and applies `f` to it.
fn corrupt(s: &mut CommSchedule, f: impl FnOnce(&mut pimnet_suite::net::schedule::Transfer)) {
    for phase in &mut s.phases {
        for step in &mut phase.steps {
            if let Some(t) = step.transfers.iter_mut().find(|t| !t.is_local()) {
                f(t);
                return;
            }
        }
    }
    panic!("no transfer to corrupt");
}

#[test]
fn out_of_bounds_span_is_caught() {
    let mut s = base_schedule();
    let len = s.buffer_len;
    corrupt(&mut s, |t| {
        t.src_span = Span::new(len, 8);
        t.dst_span = t.src_span;
    });
    assert!(validate(&s).is_err());
}

#[test]
fn mismatched_span_lengths_are_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| {
        t.dst_span = Span::new(t.dst_span.start, t.dst_span.len + 1)
    });
    assert!(validate(&s).is_err());
}

#[test]
fn empty_destination_is_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.dsts.clear());
    assert!(validate(&s).is_err());
}

#[test]
fn self_send_over_the_fabric_is_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.dsts = vec![t.src]);
    assert!(validate(&s).is_err());
}

#[test]
fn wrong_tier_resources_are_caught() {
    // A same-chip transfer claiming the rank bus must be rejected.
    let mut s = base_schedule();
    corrupt(&mut s, |t| {
        t.resources = vec![Resource::RankBus { channel: 0 }];
    });
    assert!(validate(&s).is_err());
}

#[test]
fn stripped_dq_endpoint_is_caught() {
    // Find a cross-rank transfer (needs a multi-rank geometry) and drop
    // its source Tx channel.
    let mut s =
        CommSchedule::build(CollectiveKind::AllReduce, &PimGeometry::paper(), 256, 4).unwrap();
    let mut hit = false;
    for phase in &mut s.phases {
        for step in &mut phase.steps {
            for t in &mut step.transfers {
                if t.resources
                    .iter()
                    .any(|r| matches!(r, Resource::RankBus { .. }))
                {
                    t.resources
                        .retain(|r| !matches!(r, Resource::ChipTx { .. }));
                    hit = true;
                    break;
                }
            }
        }
    }
    assert!(hit, "no cross-rank transfer found");
    assert!(validate(&s).is_err());
}

#[test]
fn duplicated_ring_flow_in_exclusive_phase_is_caught() {
    // Duplicate a transfer inside the (non-multiplexed) bank phase with a
    // different destination: two flows on one bufferless segment.
    let mut s = base_schedule();
    let phase = s
        .phases
        .iter_mut()
        .find(|p| !p.multiplexed)
        .expect("a ring phase");
    let step = &mut phase.steps[0];
    let mut dup = step.transfers[0].clone();
    // Same resources, different flow identity.
    dup.src = step.transfers[1].src;
    step.transfers.push(dup);
    assert!(validate(&s).is_err());
}

#[test]
fn dropping_a_transfer_breaks_semantics_not_structure() {
    // Removing one reduce hop leaves a structurally valid but semantically
    // wrong schedule — the functional layer must expose it.
    let mut s = base_schedule();
    let phase = &mut s.phases[0];
    let removed = phase.steps[0].transfers.remove(0);
    assert!(
        validate(&s).is_ok(),
        "structure alone cannot see a missing transfer"
    );
    let n = s.geometry.total_dpus();
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=u64::from(n)).sum();
    let wrong = s
        .participants()
        .any(|id| m.result(&s, id).iter().any(|&x| x != expected));
    assert!(
        wrong,
        "dropping {removed:?} should corrupt at least one node's result"
    );
}

#[test]
fn flipping_combine_off_breaks_the_reduction() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.combine = false);
    assert!(validate(&s).is_ok(), "combine=false is structurally legal");
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=64).sum();
    let wrong = s
        .participants()
        .any(|id| m.result(&s, id).iter().any(|&x| x != expected));
    assert!(
        wrong,
        "overwriting instead of reducing must corrupt the sum"
    );
}

/// The collective's reference semantics, computed directly from the
/// definition (never from the schedule's transfers): node `j`'s
/// contribution element `e` is `f(j, e)`; the return value is what
/// `ExecMachine::result` must produce for node `id`.
fn reference_result(s: &CommSchedule, id: DpuId, f: impl Fn(u32, usize) -> u64 + Copy) -> Vec<u64> {
    let n = s.elems_per_node;
    let total = s.geometry.total_dpus();
    let i = id.0;
    let reduced = |e: usize| (0..total).fold(0u64, |acc, j| acc.wrapping_add(f(j, e)));
    match s.kind {
        CollectiveKind::AllReduce => (0..n).map(reduced).collect(),
        CollectiveKind::Reduce => {
            if i == 0 {
                (0..n).map(reduced).collect()
            } else {
                Vec::new()
            }
        }
        // ReduceScatter's piece boundaries are the schedule's own result
        // spans (buffer index == element index); the *values* still come
        // from the reference reduction.
        CollectiveKind::ReduceScatter => s.result_spans[i as usize]
            .iter()
            .flat_map(|sp| sp.range())
            .map(reduced)
            .collect(),
        CollectiveKind::AllGather => (0..total)
            .flat_map(|j| (0..n).map(move |e| f(j, e)))
            .collect(),
        CollectiveKind::Gather => {
            if i == 0 {
                (0..total)
                    .flat_map(|j| (0..n).map(move |e| f(j, e)))
                    .collect()
            } else {
                Vec::new()
            }
        }
        CollectiveKind::Broadcast => (0..n).map(|e| f(0, e)).collect(),
        CollectiveKind::AllToAll => {
            let chunk = n / total as usize;
            (0..total)
                .flat_map(|j| (0..chunk).map(move |c| f(j, i as usize * chunk + c)))
                .collect()
        }
    }
}

/// Differential fuzz: random geometry × collective × permanent-fault
/// storms. Whenever the analyzer accepts a schedule (builder output, or
/// repair output under a sampled storm), the functional executor must
/// bit-match the reference semantics — the analyzer's "clean" verdict is
/// a proof, so a single mismatch here falsifies it.
#[test]
fn differential_fuzz_analyzer_accept_implies_exec_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0xD1FF_FA22);
    let mut accepted = 0usize;
    for round in 0..48u64 {
        let dpus = [2u32, 4, 8, 16, 64][rng.below(5) as usize];
        let kind = CollectiveKind::ALL[rng.below(7) as usize];
        let elems = [16usize, 37, 64, 193][rng.below(4) as usize];
        let g = PimGeometry::paper_scaled(dpus);
        let mut s = CommSchedule::build(kind, &g, elems, 4).unwrap();
        // Sometimes hit the schedule with a permanent-fault storm and
        // prove the *repaired* schedule instead.
        if dpus >= 8 && rng.gen_bool(0.5) {
            let cfg = pimnet_suite::faults::FaultConfig {
                perm_rates: pimnet_suite::faults::PermanentFaultRates {
                    segment_prob: 0.04,
                    port_prob: 0.04,
                    rank_prob: 0.0,
                },
                ..pimnet_suite::faults::FaultConfig::none()
            }
            .with_seed(0x57A2 ^ round);
            let injector = pimnet_suite::faults::FaultInjector::new(cfg);
            let faults =
                injector.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
            if !faults.is_empty() && repair::unusable_dpus(&g, &faults).is_empty() {
                if let Ok(r) = repair::repair(&s, &faults) {
                    s = r.schedule;
                }
            }
        }
        let report = analysis::run_all(&s);
        assert!(
            !report.has_errors(),
            "round {round}: analyzer rejected a builder/repair schedule \
             ({kind} x{dpus} e{elems}):\n{report}"
        );
        accepted += 1;
        // Element- and node-dependent payload so wrong element mappings
        // and wrong contributors both change bits.
        let f = |j: u32, e: usize| u64::from(j) * 100_003 + e as u64 * 7 + 1;
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            (0..s.elems_per_node).map(|e| f(id.0, e)).collect()
        })
        .unwrap();
        for id in s.participants() {
            assert_eq!(
                m.result(&s, id),
                reference_result(&s, id, f),
                "round {round}: {kind} x{dpus} e{elems} diverged on {id} \
                 despite a clean analysis"
            );
        }
    }
    assert_eq!(accepted, 48);
}

/// The analyzer side of the differential contract: when it *rejects*,
/// the report pinpoints a concrete phase/step/transfer or DPU, so the
/// rejection is actionable rather than "something is wrong somewhere".
/// 1000 seeded single mutations (delete / retarget / shift / reroute /
/// shrink / combine-flip) over valid schedules: every mutation that
/// actually breaks the collective must be flagged *without running the
/// executor* (≥ 99% of all mutations are). The executor only appears on
/// the other side of the contract, adjudicating analyzer-accepted
/// mutants: a few mutations are genuinely semantics-preserving (e.g.
/// retargeting a ring ReduceScatter hop to the next-next node, where the
/// commutative combine re-merges one step later; or dropping a delivery
/// that was redundant to begin with), and for exactly those the accepted
/// schedule must still be bit-identical to the reference.
/// What one fuzz seed resolved to (see
/// [`seeded_mutations_are_flagged_without_the_executor`]).
enum FuzzOutcome {
    /// The analyzer rejected the mutant with a pinpointed error.
    Caught,
    /// The analyzer accepted it and the executor proved it harmless.
    Harmless,
    /// The analyzer accepted a semantics-breaking mutant (a bug).
    Unsound(String),
}

/// Mutates one seeded schedule and adjudicates the analyzer's verdict.
/// Pure function of the seed, so the 1000-seed sweep fans out over
/// `pim_sim::par` without changing any outcome.
fn fuzz_one_mutation(seed: u64) -> FuzzOutcome {
    {
        let mut rng = SimRng::seed_from_u64(0xBEEF_0000 ^ seed);
        let dpus = [8u32, 16][rng.below(2) as usize];
        let kind = CollectiveKind::ALL[rng.below(7) as usize];
        let g = PimGeometry::paper_scaled(dpus);
        let mut s = CommSchedule::build(kind, &g, 64, 4).unwrap();
        let total = g.total_dpus();

        // Pick a random non-local transfer.
        let sites: Vec<(usize, usize, usize)> = s
            .phases
            .iter()
            .enumerate()
            .flat_map(|(pi, p)| {
                p.steps.iter().enumerate().flat_map(move |(si, st)| {
                    st.transfers
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| !t.is_local())
                        .map(move |(ti, _)| (pi, si, ti))
                })
            })
            .collect();
        let (pi, si, ti) = sites[rng.below(sites.len() as u64) as usize];
        let op = rng.below(6);
        let step = &mut s.phases[pi].steps[si];
        match op {
            // Delete the transfer: its payload is never delivered.
            0 => {
                step.transfers.remove(ti);
            }
            // Retarget the delivery to the next DPU.
            1 => {
                let t = &mut step.transfers[ti];
                t.dsts[0] = DpuId((t.dsts[0].0 + 1) % total);
            }
            // Shift the landing region by one element.
            2 => {
                let t = &mut step.transfers[ti];
                t.dst_span = Span::new(t.dst_span.start + 1, t.dst_span.len);
            }
            // Read from the wrong source node.
            3 => {
                let t = &mut step.transfers[ti];
                t.src = DpuId((t.src.0 + 1) % total);
            }
            // Shrink both spans: one element is silently dropped.
            4 => {
                let t = &mut step.transfers[ti];
                if t.src_span.len > 1 {
                    t.src_span = Span::new(t.src_span.start, t.src_span.len - 1);
                    t.dst_span = Span::new(t.dst_span.start, t.dst_span.len - 1);
                } else {
                    step.transfers.remove(ti);
                }
            }
            // Flip the combine flag: overwrite instead of reduce (or the
            // reverse).
            _ => {
                let t = &mut step.transfers[ti];
                t.combine = !t.combine;
            }
        }

        let report = analysis::run_all(&s);
        if report.has_errors() {
            assert!(
                report.diagnostics.iter().any(|d| {
                    d.severity == analysis::Severity::Error && d.location.is_pinpointed()
                }),
                "seed {seed} ({kind} x{dpus} op {op}): rejected but no \
                 pinpointed error diagnostic:\n{report}"
            );
            return FuzzOutcome::Caught;
        }
        // Analyzer accepted the mutant: it must be semantics-preserving.
        let f = |j: u32, e: usize| u64::from(j) * 100_003 + e as u64 * 7 + 1;
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            (0..s.elems_per_node).map(|e| f(id.0, e)).collect()
        })
        .unwrap_or_else(|e| {
            panic!(
                "seed {seed} ({kind} x{dpus} op {op}): analyzer accepted a \
                    schedule the validator rejects: {e}"
            )
        });
        let preserved = s
            .participants()
            .all(|id| m.result(&s, id) == reference_result(&s, id, f));
        if preserved {
            FuzzOutcome::Harmless
        } else {
            FuzzOutcome::Unsound(format!("seed {seed}: {kind} x{dpus} op {op}"))
        }
    }
}

#[test]
fn seeded_mutations_are_flagged_without_the_executor() {
    const TOTAL: u64 = 1000;
    let outcomes = pimnet_suite::sim::par::map_ordered((0..TOTAL).collect(), fuzz_one_mutation);
    let caught = outcomes
        .iter()
        .filter(|o| matches!(o, FuzzOutcome::Caught))
        .count();
    let harmless = outcomes
        .iter()
        .filter(|o| matches!(o, FuzzOutcome::Harmless))
        .count();
    let unsound: Vec<&String> = outcomes
        .iter()
        .filter_map(|o| match o {
            FuzzOutcome::Unsound(msg) => Some(msg),
            _ => None,
        })
        .take(8)
        .collect();
    // Soundness: the analyzer never accepts a mutation that changes bits.
    assert!(
        unsound.is_empty(),
        "analyzer accepted semantics-breaking mutations: {unsound:?}"
    );
    // Coverage: 100% of breaking mutations were flagged statically
    // (anything unflagged was proven harmless above), and the harmless
    // tail stays small enough that the raw static catch rate holds too.
    assert_eq!(caught + harmless, TOTAL as usize);
    assert!(
        caught * 100 >= TOTAL as usize * 95,
        "static catch rate dropped: flagged {caught}/{TOTAL} ({harmless} harmless)"
    );
}

#[test]
fn the_uncorrupted_schedule_passes_everything() {
    let s = base_schedule();
    validate(&s).unwrap();
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=64).sum();
    for id in s.participants() {
        assert!(m.result(&s, id).iter().all(|&x| x == expected));
    }
    let _ = DpuId(0);
}
