//! Failure injection: systematically corrupt valid schedules and check
//! that the static validator (or, where the corruption is semantic rather
//! than structural, the functional executor) catches every mutation class.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::schedule::{validate::validate, CommSchedule, Span};
use pimnet_suite::net::topology::Resource;

fn base_schedule() -> CommSchedule {
    CommSchedule::build(
        CollectiveKind::AllReduce,
        &PimGeometry::paper_scaled(64),
        256,
        4,
    )
    .unwrap()
}

/// Finds the first non-local transfer and applies `f` to it.
fn corrupt(s: &mut CommSchedule, f: impl FnOnce(&mut pimnet_suite::net::schedule::Transfer)) {
    for phase in &mut s.phases {
        for step in &mut phase.steps {
            if let Some(t) = step.transfers.iter_mut().find(|t| !t.is_local()) {
                f(t);
                return;
            }
        }
    }
    panic!("no transfer to corrupt");
}

#[test]
fn out_of_bounds_span_is_caught() {
    let mut s = base_schedule();
    let len = s.buffer_len;
    corrupt(&mut s, |t| {
        t.src_span = Span::new(len, 8);
        t.dst_span = t.src_span;
    });
    assert!(validate(&s).is_err());
}

#[test]
fn mismatched_span_lengths_are_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| {
        t.dst_span = Span::new(t.dst_span.start, t.dst_span.len + 1)
    });
    assert!(validate(&s).is_err());
}

#[test]
fn empty_destination_is_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.dsts.clear());
    assert!(validate(&s).is_err());
}

#[test]
fn self_send_over_the_fabric_is_caught() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.dsts = vec![t.src]);
    assert!(validate(&s).is_err());
}

#[test]
fn wrong_tier_resources_are_caught() {
    // A same-chip transfer claiming the rank bus must be rejected.
    let mut s = base_schedule();
    corrupt(&mut s, |t| {
        t.resources = vec![Resource::RankBus { channel: 0 }];
    });
    assert!(validate(&s).is_err());
}

#[test]
fn stripped_dq_endpoint_is_caught() {
    // Find a cross-rank transfer (needs a multi-rank geometry) and drop
    // its source Tx channel.
    let mut s = CommSchedule::build(
        CollectiveKind::AllReduce,
        &PimGeometry::paper(),
        256,
        4,
    )
    .unwrap();
    let mut hit = false;
    for phase in &mut s.phases {
        for step in &mut phase.steps {
            for t in &mut step.transfers {
                if t.resources
                    .iter()
                    .any(|r| matches!(r, Resource::RankBus { .. }))
                {
                    t.resources
                        .retain(|r| !matches!(r, Resource::ChipTx { .. }));
                    hit = true;
                    break;
                }
            }
        }
    }
    assert!(hit, "no cross-rank transfer found");
    assert!(validate(&s).is_err());
}

#[test]
fn duplicated_ring_flow_in_exclusive_phase_is_caught() {
    // Duplicate a transfer inside the (non-multiplexed) bank phase with a
    // different destination: two flows on one bufferless segment.
    let mut s = base_schedule();
    let phase = s
        .phases
        .iter_mut()
        .find(|p| !p.multiplexed)
        .expect("a ring phase");
    let step = &mut phase.steps[0];
    let mut dup = step.transfers[0].clone();
    // Same resources, different flow identity.
    dup.src = step.transfers[1].src;
    step.transfers.push(dup);
    assert!(validate(&s).is_err());
}

#[test]
fn dropping_a_transfer_breaks_semantics_not_structure() {
    // Removing one reduce hop leaves a structurally valid but semantically
    // wrong schedule — the functional layer must expose it.
    let mut s = base_schedule();
    let phase = &mut s.phases[0];
    let removed = phase.steps[0].transfers.remove(0);
    assert!(
        validate(&s).is_ok(),
        "structure alone cannot see a missing transfer"
    );
    let n = s.geometry.total_dpus();
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=u64::from(n)).sum();
    let wrong = s
        .participants()
        .any(|id| m.result(&s, id).iter().any(|&x| x != expected));
    assert!(
        wrong,
        "dropping {removed:?} should corrupt at least one node's result"
    );
}

#[test]
fn flipping_combine_off_breaks_the_reduction() {
    let mut s = base_schedule();
    corrupt(&mut s, |t| t.combine = false);
    assert!(validate(&s).is_ok(), "combine=false is structurally legal");
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=64).sum();
    let wrong = s
        .participants()
        .any(|id| m.result(&s, id).iter().any(|&x| x != expected));
    assert!(wrong, "overwriting instead of reducing must corrupt the sum");
}

#[test]
fn the_uncorrupted_schedule_passes_everything() {
    let s = base_schedule();
    validate(&s).unwrap();
    let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; 256]).unwrap();
    let expected: u64 = (1..=64).sum();
    for id in s.participants() {
        assert!(m.result(&s, id).iter().all(|&x| x == expected));
    }
    let _ = DpuId(0);
}
