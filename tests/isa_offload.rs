//! Integration tests of the instruction-offload layer at paper scale.

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::isa::{compile, IsaMachine, PimInstr, Port};
use pimnet_suite::net::schedule::CommSchedule;

#[test]
fn compiled_collectives_match_the_executor_at_paper_scale() {
    let g = PimGeometry::paper();
    for (kind, elems) in [
        (CollectiveKind::AllReduce, 512usize),
        (CollectiveKind::ReduceScatter, 513),
        (CollectiveKind::AllToAll, 256),
        (CollectiveKind::AllGather, 8),
    ] {
        let s = CommSchedule::build(kind, &g, elems, 4).unwrap();
        let compiled = compile(&s).unwrap();
        let init = |id: DpuId| -> Vec<u32> {
            (0..s.elems_per_node)
                .map(|e| (id.0 + 1).wrapping_mul(31).wrapping_add(e as u32))
                .collect()
        };
        // Both machines must see the same initial placement.
        let reference = run_collective(&s, ReduceOp::Sum, init).unwrap();
        let initial = pimnet_suite::net::exec::ExecMachine::<u32>::init(&s, init);
        let mut isa = IsaMachine::init(&compiled, |id| initial.buffer(id).to_vec());
        isa.run(&compiled, ReduceOp::Sum).expect("isa run");
        for id in s.participants() {
            assert_eq!(isa.buffer(id), reference.buffer(id), "{kind} node {id}");
        }
    }
}

#[test]
fn ring_ports_balance_east_and_west() {
    // The bidirectional AllReduce should send on both ring directions in
    // roughly equal measure (that is where the 2x bank bandwidth comes from).
    let g = PimGeometry::paper();
    let s = CommSchedule::build(CollectiveKind::AllReduce, &g, 8192, 4).unwrap();
    let compiled = compile(&s).unwrap();
    let mut east = 0usize;
    let mut west = 0usize;
    for p in &compiled.programs {
        for i in &p.instrs {
            if let PimInstr::Send { port, .. } = i {
                match port {
                    Port::RingEast => east += 1,
                    Port::RingWest => west += 1,
                    Port::Dq | Port::Local => {}
                }
            }
        }
    }
    assert!(east > 0 && west > 0);
    let ratio = east as f64 / west as f64;
    assert!((0.8..1.25).contains(&ratio), "east/west ratio {ratio:.2}");
}

#[test]
fn offload_size_is_payload_independent() {
    // Fig 5(c)'s instruction sequence iterates over data; the *offloaded
    // code* must not grow with the message (only with the topology).
    let g = PimGeometry::paper();
    let count = |elems: usize| {
        compile(&CommSchedule::build(CollectiveKind::AllToAll, &g, elems, 4).unwrap())
            .unwrap()
            .instruction_count()
    };
    assert_eq!(count(256), count(65_536));
}

#[test]
fn switch_plan_routes_every_dq_send() {
    let g = PimGeometry::paper_scaled(64);
    let s = CommSchedule::build(CollectiveKind::AllReduce, &g, 1024, 4).unwrap();
    let compiled = compile(&s).unwrap();
    for (dpu, p) in compiled.programs.iter().enumerate() {
        let mut seq_by_slot: std::collections::HashMap<(u32, Port), usize> =
            std::collections::HashMap::new();
        for i in &p.instrs {
            if let PimInstr::Send { slot, port, .. } = i {
                let seq = seq_by_slot.entry((*slot, *port)).or_insert(0);
                let dsts = compiled.plan.route(DpuId(dpu as u32), *port, *slot, *seq);
                *seq += 1;
                assert!(
                    !dsts.is_empty(),
                    "DPU{dpu} slot {slot} {port}: unrouted send"
                );
            }
        }
    }
}
