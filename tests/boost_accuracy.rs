//! Pinned accuracy of boost mode ([`schedule::boost`]): the
//! representative-slice reconstruction must match the full-schedule
//! timing walk *exactly* on the symmetric Table V collectives, and to
//! within ceiling-rounding slack (one-sided, sub-0.1%) on uneven payload
//! splits. Any silent drift in either direction fails here.
//!
//! The corpus is every collective kind at the paper's 8/64/256-DPU
//! presets — the same matrix the SoA equivalence suite pins — so boost
//! mode's accuracy contract is enforced at exactly the scales the
//! scaling gate benchmarks.

use pim_arch::geometry::PimGeometry;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::{boost, build_composed, cache, CommSchedule, Composition};
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::sim::SimTime;

fn build(kind: CollectiveKind, dpus: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(kind, &PimGeometry::paper_scaled(dpus), elems, 4).expect("builds")
}

/// Divisible payloads: every class's busiest resource carries uniform
/// transfers, so the reconstruction is bit-exact — breakdown, skewed
/// breakdown, and timeline end all `assert_eq!` against the full walk.
#[test]
fn divisible_payloads_reconstruct_exactly() {
    let timing = TimingModel::paper();
    for kind in CollectiveKind::ALL {
        for dpus in [8u32, 64, 256] {
            let s = build(kind, dpus, 1024);
            let plan = boost::plan(&s);
            for skew in [SimTime::ZERO, SimTime::from_us(7)] {
                assert_eq!(
                    plan.breakdown(&timing, skew),
                    timing.time_schedule(&s, skew),
                    "{kind} x{dpus} skew {skew}: boosted breakdown diverged"
                );
            }
            let full = Timeline::build(&s, &timing);
            let thin = plan.timeline(&timing);
            assert_eq!(thin.sync, full.sync, "{kind} x{dpus}: sync diverged");
            assert_eq!(thin.end, full.end, "{kind} x{dpus}: timeline end diverged");
        }
    }
}

/// The kept windows are an exact subsequence of the full timeline: boost
/// drops windows, it never invents or reshapes them.
#[test]
fn boosted_windows_are_a_subsequence_of_the_full_timeline() {
    let timing = TimingModel::paper();
    for kind in CollectiveKind::ALL {
        for dpus in [8u32, 64, 256] {
            let s = build(kind, dpus, 1024);
            let plan = boost::plan(&s);
            let full = Timeline::build(&s, &timing);
            let thin = plan.timeline(&timing);
            let mut it = full.windows.iter();
            for w in &thin.windows {
                assert!(
                    it.any(|fw| fw == w),
                    "{kind} x{dpus}: thin window {:?} missing from the full timeline",
                    (w.phase, w.step, w.src)
                );
            }
        }
    }
}

/// Uneven payload splits: the reconstruction falls back to the byte-sum
/// ceiling bound, which may only *over*estimate, and by at most one
/// picosecond per transfer — pinned here as a one-sided relative error
/// under 0.1% across the whole corpus.
#[test]
fn uneven_payloads_stay_within_ceiling_slack() {
    let timing = TimingModel::paper();
    for kind in CollectiveKind::ALL {
        for dpus in [8u32, 64, 256] {
            for elems in [130usize, 193, 1030] {
                let s = build(kind, dpus, elems);
                let plan = boost::plan(&s);
                let full = timing.time_schedule(&s, SimTime::ZERO).total().as_ps();
                let fast = plan.breakdown(&timing, SimTime::ZERO).total().as_ps();
                assert!(
                    fast >= full,
                    "{kind} x{dpus} e{elems}: boost underestimated ({fast} < {full} ps)"
                );
                let rel = (fast - full) as f64 / full as f64;
                assert!(
                    rel <= 1e-3,
                    "{kind} x{dpus} e{elems}: relative error {rel:+.6} exceeds 0.1%"
                );
            }
        }
    }
}

/// Hierarchical composed schedules (one per collective with a composed
/// form) are priced by the same boost path the autotuner uses to rank
/// candidates, so the accuracy contract must hold for them too: the
/// reconstruction never underestimates, and overestimates by less than
/// 0.1% on divisible and ragged payloads alike.
#[test]
fn composed_schedules_stay_within_ceiling_slack() {
    let timing = TimingModel::paper();
    for (kind, spec) in [
        (CollectiveKind::AllReduce, "ring_direct_ring"),
        (CollectiveKind::ReduceScatter, "rabenseifner_ring_direct"),
        (CollectiveKind::AllGather, "direct_ring_ring"),
        (CollectiveKind::Broadcast, "dbtree_ring_ring"),
        (CollectiveKind::AllToAll, "direct_direct_direct"),
    ] {
        let comp = Composition::parse(spec).expect("pinned spec parses");
        for dpus in [8u32, 64, 256] {
            let g = PimGeometry::paper_scaled(dpus);
            for elems in [130usize, 1024] {
                let s = build_composed(kind, &g, elems, 4, comp).expect("composed builds");
                let plan = boost::plan(&s);
                let full = timing.time_schedule(&s, SimTime::ZERO).total().as_ps();
                let fast = plan.breakdown(&timing, SimTime::ZERO).total().as_ps();
                assert!(
                    fast >= full,
                    "{kind} x{dpus} e{elems} {spec}: boost underestimated ({fast} < {full} ps)"
                );
                let rel = (fast - full) as f64 / full as f64;
                assert!(
                    rel <= 1e-3,
                    "{kind} x{dpus} e{elems} {spec}: relative error {rel:+.6} exceeds 0.1%"
                );
            }
        }
    }
}

/// The raw-speed claim behind the scaling gate: at 256 DPUs the thin
/// slice prices at least 10x fewer transfers than the full schedule, for
/// every collective kind.
#[test]
fn reduction_is_at_least_ten_x_at_256_dpus_for_every_kind() {
    for kind in CollectiveKind::ALL {
        let plan = boost::plan(&build(kind, 256, 1024));
        assert!(
            plan.reduction() >= 10.0,
            "{kind}: only {:.1}x reduction",
            plan.reduction()
        );
    }
}

/// The cached entry point returns the same plan as a direct thinning,
/// and its key space is disjoint from the plain schedule cache.
#[test]
fn cached_boost_plans_match_direct_planning() {
    let g = PimGeometry::paper_scaled(256);
    let cached =
        cache::boost_cached(CollectiveKind::AllGather, &g, 611, 4).expect("boost plan builds");
    let direct = boost::plan(&build(CollectiveKind::AllGather, 256, 611));
    assert_eq!(*cached, direct);
    let plain =
        cache::build_cached(CollectiveKind::AllGather, &g, 611, 4).expect("schedule builds");
    assert_eq!(cached.total_transfers, plain.transfer_count());
    assert!(cached.kept_transfers < plain.transfer_count());
}
