//! Consistency between the cycle-level network simulator and the analytic
//! timing model: identical traffic over identical link bandwidths must
//! land in the same ballpark, with the cycle simulator never beating the
//! contention-free analytic bound by more than pipelining effects allow.

use pim_arch::geometry::PimGeometry;
use pim_sim::SimTime;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::noc::{simulate_credit, simulate_scheduled, NocConfig};

fn build(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
    CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
}

#[test]
fn credit_sim_tracks_the_analytic_model_for_allreduce() {
    // Neighbour-only ring traffic has no contention, so dynamic flow
    // control should land within ~35% of the contention-free schedule
    // (cut-through pipelining can even make it slightly faster).
    let cfg = NocConfig::paper();
    for (n, elems) in [(8u32, 1024usize), (32, 1024), (64, 2048)] {
        let s = build(CollectiveKind::AllReduce, n, elems);
        let ready = vec![SimTime::ZERO; n as usize];
        let credit = simulate_credit(&s, &ready, &cfg).completion;
        let sched = simulate_scheduled(&s, &ready, &cfg).completion;
        let ratio = credit.ratio(sched);
        assert!(
            (0.6..1.35).contains(&ratio),
            "n={n} elems={elems}: credit {credit} vs scheduled {sched} (ratio {ratio:.2})"
        );
    }
}

#[test]
fn cycle_counts_scale_linearly_with_payload() {
    let cfg = NocConfig::paper();
    let ready = vec![SimTime::ZERO; 16];
    let small = simulate_credit(&build(CollectiveKind::AllToAll, 16, 512), &ready, &cfg);
    let large = simulate_credit(&build(CollectiveKind::AllToAll, 16, 2048), &ready, &cfg);
    let ratio = large.cycles as f64 / small.cycles as f64;
    assert!((3.0..6.0).contains(&ratio), "ratio {ratio:.2}");
}

#[test]
fn scheduled_mode_reports_the_barrier() {
    let cfg = NocConfig::paper();
    let s = build(CollectiveKind::AllReduce, 8, 256);
    let mut ready = vec![SimTime::ZERO; 8];
    ready[7] = SimTime::from_ms(1);
    let r = simulate_scheduled(&s, &ready, &cfg);
    assert!(r.completion > SimTime::from_ms(1));
    assert_eq!(r.stall_cycles, 0);
}

#[test]
fn deadlock_free_across_collectives_and_sizes() {
    // The virtual-channel escape must keep every configuration live.
    let cfg = NocConfig::paper();
    for kind in [
        CollectiveKind::AllReduce,
        CollectiveKind::ReduceScatter,
        CollectiveKind::AllGather,
        CollectiveKind::AllToAll,
        CollectiveKind::Broadcast,
    ] {
        for n in [8u32, 32] {
            let s = build(kind, n, 768);
            let ready = vec![SimTime::ZERO; n as usize];
            let r = simulate_credit(&s, &ready, &cfg);
            assert!(r.cycles > 0, "{kind} n={n}");
        }
    }
}
