//! Pinned golden traces for every collective path.
//!
//! The observability contract (`pim_sim::trace`): a probed run is a pure
//! function of the simulated inputs, so the structured-event trace of one
//! small preset per collective kind can be pinned **byte-for-byte**:
//!
//! 1. the trace CSV equals the committed golden file under
//!    `tests/golden_traces/` (regenerate with `PIMNET_UPDATE_GOLDEN=1`);
//! 2. the trace is byte-identical whether the per-kind captures fan out
//!    over 1, 2 or 8 workers;
//! 3. the trace is byte-identical between a cold-cache and a warm-cache
//!    run — only the `cache` event group (hit/miss bookkeeping, which
//!    legitimately differs between the two) is excluded from comparison.

use std::fs;
use std::path::PathBuf;

use pimnet_suite::arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{ExecMachine, ReduceOp};
use pimnet_suite::net::schedule::cache;
use pimnet_suite::net::timeline::Timeline;
use pimnet_suite::net::timing::TimingModel;
use pimnet_suite::sim::trace::{codes, group};
use pimnet_suite::sim::{par, MetricsReport, Probe, Trace};

/// The small preset each golden trace captures: one collective over 8
/// DPUs, 64 elements per node, 4-byte elements.
const DPUS: u32 = 8;
const ELEMS: usize = 64;

/// Every collective path with its golden-file stem.
const KINDS: [(CollectiveKind, &str); 5] = [
    (CollectiveKind::AllReduce, "allreduce"),
    (CollectiveKind::ReduceScatter, "reducescatter"),
    (CollectiveKind::AllGather, "allgather"),
    (CollectiveKind::Broadcast, "broadcast"),
    (CollectiveKind::AllToAll, "alltoall"),
];

/// Drives the full observed pipeline for one kind — cached schedule
/// build, probed timing construction, probed functional execution — and
/// returns the trace plus the metrics snapshot. Mirrors what the CLI's
/// `pimnet trace` subcommand records per collective.
fn capture(kind: CollectiveKind, elems: usize) -> (Trace, MetricsReport) {
    let probe = Probe::enabled();
    let g = PimGeometry::paper_scaled(DPUS);
    let s = cache::build_cached_probed(kind, &g, elems, 4, &probe).expect("schedule build");
    let _timeline = Timeline::build_probed(&s, &TimingModel::paper(), &probe);
    let mut m = ExecMachine::init(&s, |id: DpuId| vec![u64::from(id.0) + 1; elems]);
    m.run_probed(&s, ReduceOp::Sum, &probe);
    (probe.trace.drain(), probe.metrics.snapshot())
}

/// The comparable CSV of one kind's capture: cache hit/miss events are
/// filtered out (they differ between cold and warm runs by design; the
/// trace module documents this as the one non-pinned group).
fn golden_csv(kind: CollectiveKind) -> String {
    let (trace, _) = capture(kind, ELEMS);
    assert_eq!(
        trace.dropped, 0,
        "{kind}: golden preset overflowed the ring"
    );
    trace.without_group(group::CACHE).to_csv()
}

fn golden_path(stem: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden_traces")
        .join(format!("{stem}.csv"))
}

#[test]
fn traces_match_the_committed_goldens() {
    let update = std::env::var_os("PIMNET_UPDATE_GOLDEN").is_some();
    for (kind, stem) in KINDS {
        let csv = golden_csv(kind);
        let path = golden_path(stem);
        if update {
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(&path, &csv).unwrap();
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nrun `PIMNET_UPDATE_GOLDEN=1 cargo test --test trace_golden` \
                 to (re)generate the golden traces",
                path.display()
            )
        });
        assert_eq!(
            csv,
            golden,
            "{kind}: trace diverged from {} — if the change is intended, \
             regenerate with PIMNET_UPDATE_GOLDEN=1",
            path.display()
        );
    }
}

#[test]
fn traces_are_byte_identical_across_worker_counts() {
    let run = |workers: usize| -> Vec<String> {
        par::map_ordered_with(workers, KINDS.to_vec(), |(kind, _)| golden_csv(kind))
    };
    let reference = run(1);
    for workers in [2usize, 8] {
        assert_eq!(
            run(workers),
            reference,
            "traces diverged between 1 and {workers} workers"
        );
    }
}

#[test]
fn traces_are_byte_identical_between_cold_and_warm_cache_runs() {
    // A payload size no other test in this binary uses, so the first
    // capture is the one that populates the process-global schedule cache
    // and the second is guaranteed to hit it.
    const WARM_ELEMS: usize = 80;
    for (kind, _) in KINDS {
        let (cold_trace, cold_metrics) = capture(kind, WARM_ELEMS);
        let (warm_trace, warm_metrics) = capture(kind, WARM_ELEMS);
        assert_eq!(
            cold_trace.without_group(group::CACHE).to_csv(),
            warm_trace.without_group(group::CACHE).to_csv(),
            "{kind}: cache warmth leaked into the trace"
        );
        assert!(
            warm_trace.count(codes::CACHE_HIT) >= 1,
            "{kind}: warm run recorded no cache hit"
        );
        assert_eq!(
            warm_metrics.cache_misses, 0,
            "{kind}: warm run rebuilt a cached schedule"
        );
        assert!(
            cold_metrics.cache_hits + cold_metrics.cache_misses >= 1,
            "{kind}: cold run recorded no cache traffic"
        );
    }
}

#[test]
fn golden_traces_cover_every_probed_subsystem() {
    for (kind, _) in KINDS {
        let (trace, metrics) = capture(kind, ELEMS);
        assert!(trace.count(codes::BARRIER) >= 1, "{kind}: no barrier event");
        assert!(
            trace.count(codes::TRANSFER) >= 1,
            "{kind}: no timeline transfer span"
        );
        assert!(
            trace.count(codes::EXEC_STEP) >= 1,
            "{kind}: no executor step event"
        );
        assert!(metrics.exec_steps >= 1, "{kind}: no executor metrics");
        // Fingerprints are stable per kind (same capture, same digest) so
        // the CLI can print them for quick same-seed comparisons.
        let (again, _) = capture(kind, ELEMS);
        assert_eq!(
            trace.without_group(group::CACHE).fingerprint(),
            again.without_group(group::CACHE).fingerprint(),
            "{kind}: fingerprint unstable across identical captures"
        );
    }
}
