//! DLRM embedding-table lookup across PIM systems and memory channels —
//! the paper's recommendation-model scenario (EMB_Synth + RM1–RM3, and the
//! Fig 16 channel-scaling effect).
//!
//! ```sh
//! cargo run --release --example dlrm_embedding
//! ```

use pimnet_suite::arch::SystemConfig;
use pimnet_suite::net::api::PimnetSystem;
use pimnet_suite::net::backends::{multi_channel_collective, BackendKind};
use pimnet_suite::net::collective::CollectiveSpec;
use pimnet_suite::workloads::emb::Emb;
use pimnet_suite::workloads::program::run_program;
use pimnet_suite::workloads::Workload;

fn main() {
    let sys = SystemConfig::paper();
    let pimnet = PimnetSystem::paper();

    println!("embedding lookup on 256 DPUs (speedup of PIMnet over the baseline):");
    for profile in [Emb::synth(), Emb::rm1(), Emb::rm2(), Emb::rm3()] {
        let program = profile.program(&sys);
        let base = run_program(
            &program,
            &sys,
            pimnet.backend(BackendKind::Baseline).as_ref(),
        )
        .expect("baseline");
        let pim = run_program(&program, &sys, pimnet.backend(BackendKind::Pimnet).as_ref())
            .expect("pimnet");
        println!(
            "  {:<10} baseline {:>12}  pimnet {:>12}  -> {:>6.1}x",
            profile.name(),
            base.total().to_string(),
            pim.total().to_string(),
            base.total().ratio(pim.total())
        );
    }

    // Channel scaling (Fig 16): PIMnet reduces channel-locally, so the host
    // only ever sees one partial per channel.
    println!("\none ReduceScatter of EMB_Synth's pooled outputs, scaled across channels:");
    let spec = CollectiveSpec::new(
        pimnet_suite::net::collective::CollectiveKind::ReduceScatter,
        pim_sim::Bytes::kib(16),
    );
    for channels in [1u32, 2, 4, 8] {
        let p = multi_channel_collective(
            pimnet.backend(BackendKind::Pimnet).as_ref(),
            &sys.host,
            channels,
            &spec,
        )
        .expect("pimnet");
        let b = multi_channel_collective(
            pimnet.backend(BackendKind::Baseline).as_ref(),
            &sys.host,
            channels,
            &spec,
        )
        .expect("baseline");
        println!(
            "  {channels} channel(s): pimnet {:>12}  baseline {:>12}  -> {:>6.1}x",
            p.total().to_string(),
            b.total().to_string(),
            b.total().ratio(p.total())
        );
    }
}
