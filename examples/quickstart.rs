//! Quickstart: build the paper's 256-DPU PIM system, run an AllReduce over
//! PIMnet — functionally, on real data — and compare its time against the
//! same collective through the host CPU.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pim_arch::geometry::DpuId;
use pim_sim::Bytes;
use pimnet_suite::net::api::PimnetSystem;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::ReduceOp;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's evaluation system: 8 banks/chip x 8 chips/rank x
    // 4 ranks on one DDR4 channel, Table IV PIMnet fabric.
    let sys = PimnetSystem::paper();
    println!("system: {}", sys.system().geometry);

    // Every DPU contributes a 1024-element vector; PIMnet reduces them all.
    let elems = 1024usize;
    let (machine, time) = sys.execute(CollectiveKind::AllReduce, ReduceOp::Sum, |id| {
        vec![u64::from(id.0) + 1; elems]
    })?;
    println!(
        "functional AllReduce of {elems} x u64 took {} of simulated time",
        time.total()
    );

    // Functional check: sum of 1..=256 everywhere.
    let expected: u64 = (1..=256).sum();
    assert!(machine.buffer(DpuId(200))[..elems]
        .iter()
        .all(|&x| x == expected));
    println!("AllReduce result verified on all 256 DPUs (each element = {expected})");

    // Timing: PIMnet vs the host-mediated baseline.
    let bytes = Bytes::new(elems as u64 * 8);
    let pim = sys.collective(CollectiveKind::AllReduce, bytes)?;
    let base = sys.baseline_collective(CollectiveKind::AllReduce, bytes)?;
    println!("PIMnet:   {}", pim);
    println!("baseline: {}", base);
    println!(
        "speedup from direct PIM-to-PIM communication: {:.1}x",
        base.total().ratio(pim.total())
    );

    // Peek at the compiled schedule (the paper's host-side compile step).
    let schedule = sys.schedule(CollectiveKind::AllReduce, bytes)?;
    println!(
        "schedule: {} phases, {} steps, {} transfers, {} on the wire",
        schedule.phases.len(),
        schedule.step_count(),
        schedule.transfer_count(),
        schedule.total_wire_bytes()
    );
    Ok(())
}
