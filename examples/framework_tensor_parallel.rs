//! Tensor-parallel layer through the SimplePIM-style framework: the matrix
//! is column-split across 256 DPUs, every DPU computes a partial output on
//! its shard (really computed), and one `all_reduce` call both moves the
//! real data over PIMnet and charges the modeled time.
//!
//! ```sh
//! cargo run --release --example framework_tensor_parallel
//! ```

use pim_arch::OpCounts;
use pimnet_suite::net::backends::BackendKind;
use pimnet_suite::net::exec::ReduceOp;
use pimnet_suite::net::framework::{PimRuntime, PimVector};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 1024usize;

    let run = |backend: BackendKind| -> Result<(Vec<i64>, pim_sim::SimTime), pimnet::PimnetError> {
        let mut rt = PimRuntime::new(pimnet::api::PimnetSystem::paper(), backend);
        let dpus = rt.dpus() as usize;
        let cols_per_dpu = dim / dpus;

        // Each DPU's shard starts as its partial output y_p = A_p x_p:
        // deterministic integer "weights" so the check is exact.
        let shards: Vec<Vec<i64>> = (0..dpus as i64)
            .map(|p| {
                (0..dim as i64)
                    .map(|r| {
                        (0..cols_per_dpu as i64)
                            .map(|c| {
                                let col = p * cols_per_dpu as i64 + c;
                                (r + col) % 7 - 3 // A[r][col]
                            })
                            .sum() // x = all-ones vector
                    })
                    .collect()
            })
            .collect();
        let mut y = PimVector::from_shards(&rt, shards)?;

        // Charge the MAC work of producing the partials (64-cycle multiply).
        y.map(
            &mut rt,
            OpCounts::new()
                .with_muls(cols_per_dpu as u64)
                .with_adds(cols_per_dpu as u64),
            |_| {},
        );
        // Combine the partials: the tensor-parallel AllReduce.
        y.all_reduce(&mut rt, ReduceOp::Sum)?;
        let result = y.shard(pim_arch::geometry::DpuId(0)).to_vec();
        Ok((result, rt.elapsed()))
    };

    let (y_pim, t_pim) = run(BackendKind::Pimnet)?;
    let (y_host, t_host) = run(BackendKind::Baseline)?;
    assert_eq!(y_pim, y_host, "same program, same numbers");

    // Oracle: full matvec on the host.
    let expected: Vec<i64> = (0..dim as i64)
        .map(|r| (0..dim as i64).map(|c| (r + c) % 7 - 3).sum())
        .collect();
    assert_eq!(
        y_pim, expected,
        "tensor-parallel result must match the oracle"
    );

    println!("1024x1024 tensor-parallel layer over 256 DPUs: results verified");
    println!("  over PIMnet       : {t_pim}");
    println!("  through the host  : {t_host}");
    println!(
        "  same code, same numbers, {:.1}x faster communication",
        t_host.ratio(t_pim)
    );
    Ok(())
}
