//! Multi-tenant serving on PIMnet: spatially mapped tenants (Fig 17)
//! driven end-to-end through `pimnet::serve` — seeded arrival streams,
//! token-bucket admission, priority scheduling, the monotone overload
//! ladder, and health-tracked tenant quarantine under a fault storm.
//!
//! Three acts:
//!
//! 1. **Steady state** — three tenants with different priorities and
//!    request rates share the engine; everyone is served, the ladder
//!    never leaves level 0, and the schedule cache makes co-tenants
//!    nearly free (Fig 17's isolation story, restated as serving).
//! 2. **Overload** — a flood outruns the service rate, and the engine
//!    degrades *gracefully and monotonically*: shrink chunks, shed the
//!    low-priority class with typed errors, finally fall back to the
//!    host path. Every rejected request carries a `PimnetError`.
//! 3. **Fault storm** — a seeded fault timeline lands mid-run; faulted
//!    dispatches detour through the runtime recovery manager, repeated
//!    failures quarantine the tenant (bounded blast radius), and
//!    probation restores it with hysteresis.
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use pimnet_suite::arch::PimGeometry;
use pimnet_suite::faults::{FaultConfig, FaultTimeline, TimelineRates};
use pimnet_suite::net::serve::{
    sample_arrivals, serve, OverloadThresholds, QueuePolicy, RequestOutcome, ServeConfig,
    ServeReport,
};
use pimnet_suite::net::PimnetError;

fn outcome_mix(report: &ServeReport) -> String {
    format!(
        "{} served, {} host-fallback, {} shed, {} quarantined",
        report.count("served"),
        report.count("host-fallback"),
        report.count("shed"),
        report.count("quarantined")
    )
}

fn main() -> Result<(), PimnetError> {
    // --- Act 1: steady state -------------------------------------------
    // Three tenants on fig 17's per-tenant shard (2 ranks x 8 chips x
    // 8 banks): a low-priority batch job that asks often, an
    // interactive tenant, and a latency-critical one that asks rarely.
    let mut cfg = ServeConfig::uniform(3, 42);
    cfg.policy = QueuePolicy::Priority;
    for (i, (name, priority, gap_us)) in [
        ("batch", 1u8, 60u64),
        ("interactive", 2, 120),
        ("critical", 3, 240),
    ]
    .into_iter()
    .enumerate()
    {
        cfg.tenants[i].name = name.to_string();
        cfg.tenants[i].priority = priority;
        cfg.tenants[i].mean_gap_ps = gap_us * 1_000_000;
    }
    let report = serve(&cfg)?;
    println!(
        "steady state: {} requests from {} tenants -> {}",
        report.log.len(),
        cfg.tenants.len(),
        outcome_mix(&report)
    );
    println!(
        "  p50 {:.1} us, p99 {:.1} us, {:.0} collectives/s, ladder peak {}",
        report.percentile_ps(50.0) as f64 / 1e6,
        report.percentile_ps(99.0) as f64 / 1e6,
        report.collectives_per_sec(),
        report.peak_level()
    );

    // --- Act 2: overload -----------------------------------------------
    // A two-tenant flood on a small shard: arrivals outrun service, so
    // the backlog climbs the ladder. Degradation is monotone — the
    // level only ever goes up — and every shed is a typed error.
    let mut flood = ServeConfig::uniform(2, 7);
    flood.policy = QueuePolicy::Priority;
    flood.overload = OverloadThresholds {
        shrink_at: 2,
        shed_at: 4,
        fallback_at: 8,
    };
    for (i, t) in flood.tenants.iter_mut().enumerate() {
        t.geometry = PimGeometry::new(4, 2, 2, 1);
        t.elems_per_node = 64;
        t.mean_gap_ps = 120_000; // far faster than the service rate
        t.priority = 1 + i as u8; // tenant 0 is the sheddable class
        t.queue_capacity = 4;
    }
    flood.horizon_ps = 20_000_000;
    let report = serve(&flood)?;
    println!(
        "\noverload: {} requests flooded in -> {}",
        report.log.len(),
        outcome_mix(&report)
    );
    for step in &report.ladder {
        println!(
            "  ladder -> level {} at {:.1} us (backlog {})",
            step.level,
            step.at_ps as f64 / 1e6,
            step.backlog
        );
    }
    if let Some(err) = report.log.iter().find_map(|r| match &r.outcome {
        RequestOutcome::Shed { error, .. } => Some(error),
        _ => None,
    }) {
        println!("  a typical rejection: {err}");
    }

    // --- Act 3: fault storm + quarantine -------------------------------
    // A seeded storm of rank/segment failures lands mid-run. Faulted
    // dispatches run under the recovery manager; a tenant that keeps
    // failing is quarantined (its queued work gets typed outcomes, its
    // arrivals are shed at the wall) and later probationed back in.
    let mut stormy = ServeConfig::uniform(2, 3);
    let g = stormy.tenants[0].geometry;
    let rates = TimelineRates {
        segment_arrival_prob: 0.5,
        port_arrival_prob: 0.5,
        rank_arrival_prob: 0.9,
        flap_prob: 0.5,
        burst_prob: 0.5,
        burst_ber: 0.8,
    };
    let timeline = FaultTimeline::sample(
        3,
        g.ranks_per_channel,
        g.chips_per_rank,
        g.banks_per_chip,
        stormy.horizon_ps,
        &rates,
    );
    stormy.faults = FaultConfig {
        timeline,
        max_retries: 8,
        ..FaultConfig::none()
    }
    .with_seed(3);
    let report = serve(&stormy)?;
    println!(
        "\nfault storm: {} requests under a seeded timeline -> {}",
        report.log.len(),
        outcome_mix(&report)
    );
    for q in &report.quarantines {
        println!(
            "  tenant {} {} at {:.1} us (epoch {})",
            stormy.tenants[q.tenant as usize].name,
            if q.entered { "quarantined" } else { "restored" },
            q.at_ps as f64 / 1e6,
            q.epoch
        );
    }

    // The engine's contract, visible from the outside: one typed
    // outcome per sampled arrival, nothing lost, nothing double-served.
    assert_eq!(report.log.len(), sample_arrivals(&stormy).len());
    println!("\nevery request ended in exactly one typed outcome.");
    Ok(())
}
