//! Multi-tenant PIM (Fig 17): two tenants spatially mapped onto disjoint
//! ranks. Host-based communication shares one DDR path; PIMnet's bank and
//! chip tiers are physically private per tenant, so collective bandwidth
//! stays isolated.
//!
//! ```sh
//! cargo run --example multi_tenant
//! ```

use pim_sim::{Bandwidth, Bytes};
use pimnet_suite::arch::{HostLink, PimGeometry, SystemConfig};
use pimnet_suite::net::backends::{BaselineHostBackend, CollectiveBackend, PimnetBackend};
use pimnet_suite::net::collective::{CollectiveKind, CollectiveSpec};
use pimnet_suite::net::FabricConfig;

fn main() {
    // Each tenant owns 2 of the channel's 4 ranks: 128 DPUs.
    let tenant = SystemConfig::paper().with_geometry(PimGeometry::new(8, 8, 2, 1));
    let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));

    let base_alone = BaselineHostBackend::new(tenant)
        .collective(&spec)
        .unwrap()
        .total();
    let pim_alone = PimnetBackend::new(tenant, FabricConfig::paper())
        .collective(&spec)
        .unwrap()
        .total();

    // Co-tenancy: the host path is time-shared; for PIMnet only the
    // inter-rank bus is.
    let shared_host = HostLink {
        pim_to_cpu: tenant.host.pim_to_cpu.split(2),
        cpu_to_pim: tenant.host.cpu_to_pim.split(2),
        cpu_broadcast: tenant.host.cpu_broadcast.split(2),
        host_reduce_bw: tenant.host.host_reduce_bw.split(2),
        marshal_bw: tenant.host.marshal_bw.split(2),
        ..tenant.host
    };
    let base_shared = BaselineHostBackend::new(tenant.with_host(shared_host))
        .collective(&spec)
        .unwrap()
        .total();
    let pim_shared = PimnetBackend::new(
        tenant,
        FabricConfig::paper().with_rank_bus_bw(Bandwidth::gbps(16.8).split(2)),
    )
    .collective(&spec)
    .unwrap()
    .total();

    println!("per-tenant 32 KiB/DPU AllReduce (128-DPU tenant):");
    println!(
        "  host-based: alone {base_alone}, with co-tenant {base_shared} \
         ({:.2}x slowdown)",
        base_shared.ratio(base_alone)
    );
    println!(
        "  PIMnet:     alone {pim_alone}, with co-tenant {pim_shared} \
         ({:.2}x slowdown)",
        pim_shared.ratio(pim_alone)
    );
    println!("\nPIMnet gives each tenant bandwidth isolation: the rings and");
    println!("crossbars it uses are physically inside the tenant's own ranks.");
}
