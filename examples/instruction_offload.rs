//! The PIM instruction offload (paper Fig 5(c)/(d)): compile an AllReduce
//! to per-DPU instruction streams + switch configurations, inspect one
//! DPU's program, and execute the compiled form — verifying it against the
//! span-level executor.
//!
//! ```sh
//! cargo run --example instruction_offload
//! ```

use pim_arch::geometry::{DpuId, PimGeometry};
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::exec::{run_collective, ReduceOp};
use pimnet_suite::net::isa::{compile, IsaMachine, PimInstr};
use pimnet_suite::net::schedule::CommSchedule;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let geometry = PimGeometry::paper_scaled(64);
    let elems = 256usize;
    let schedule = CommSchedule::build(CollectiveKind::AllReduce, &geometry, elems, 4)?;
    let compiled = compile(&schedule)?;

    println!(
        "AllReduce on {} DPUs compiled to {} PIM instructions \
         ({} per DPU), {} schedule slots\n",
        geometry.total_dpus(),
        compiled.instruction_count(),
        compiled.instruction_count() / geometry.total_dpus() as usize,
        compiled.plan.slots()
    );

    // Show the head of DPU 0's offloaded program (Fig 5(c)).
    println!("DPU0's instruction stream (first 12):");
    for instr in compiled.programs[0].instrs.iter().take(12) {
        match instr {
            PimInstr::Poll => println!("  POLL                    ; READY -> barrier -> START"),
            PimInstr::Send { slot, port, span } => {
                println!("  SEND  slot={slot:<3} port={port:<2} wram{span}")
            }
            PimInstr::Recv { slot, port, span } => {
                println!("  RECV  slot={slot:<3} port={port:<2} wram{span}")
            }
            PimInstr::RecvReduce { slot, port, span } => {
                println!("  RECV+ slot={slot:<3} port={port:<2} wram{span}  ; reduce")
            }
            PimInstr::Copy { slot, src, dst } => {
                println!("  COPY  slot={slot:<3} {src} -> {dst}")
            }
        }
    }

    // Execute the compiled form and check it against the span executor.
    let input = |id: DpuId| vec![u64::from(id.0) + 1; elems];
    let mut isa = IsaMachine::init(&compiled, input);
    isa.run(&compiled, ReduceOp::Sum)?;
    let reference = run_collective(&schedule, ReduceOp::Sum, input)?;
    for id in schedule.participants() {
        assert_eq!(isa.buffer(id), reference.buffer(id));
    }
    println!(
        "\ncompiled execution matches the span-level executor on all {} DPUs \
         (every element = {})",
        geometry.total_dpus(),
        (1..=64u64).sum::<u64>()
    );
    Ok(())
}
