//! Dynamic vs PIM-controlled flow control on the cycle-level network — a
//! hands-on version of the paper's Fig 13 experiment.
//!
//! ```sh
//! cargo run --release --example flow_control
//! ```

use pim_sim::rng::SimRng;
use pim_sim::SimTime;
use pimnet_suite::arch::PimGeometry;
use pimnet_suite::net::collective::CollectiveKind;
use pimnet_suite::net::schedule::CommSchedule;
use pimnet_suite::noc::{simulate_credit, simulate_scheduled, NocConfig};

fn main() {
    let cfg = NocConfig::paper();
    let n = 64u32;
    let geometry = PimGeometry::paper_scaled(n);

    // Per-DPU compute-finish jitter, as the paper fed from real UPMEM runs.
    let mut rng = SimRng::seed_from_u64(42);
    let ready: Vec<SimTime> = (0..n)
        .map(|_| SimTime::from_secs_f64(40e-6 * (1.0 + rng.gen_range(-0.1..=0.1))))
        .collect();

    for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
        let schedule = CommSchedule::build(kind, &geometry, 4096, 4).expect("schedule");
        let credit = simulate_credit(&schedule, &ready, &cfg);
        let sched = simulate_scheduled(&schedule, &ready, &cfg);
        println!("{kind} over {n} DPUs (16 KiB per DPU):");
        println!("  credit-based flow control : {credit}");
        println!("  PIM-controlled scheduling : {sched}");
        let gain = 1.0 - sched.completion.as_secs_f64() / credit.completion.as_secs_f64();
        println!(
            "  PIM control changes completion by {:+.1}%\n",
            gain * 100.0
        );
    }
    println!(
        "Neighbour-only AllReduce barely notices flow control; All-to-All's \
         convergent traffic contends at the crossbar under dynamic wormhole \
         routing, which static scheduling avoids (paper: 18.7%)."
    );
}
