//! A 2D Number-Theoretic-Transform pipeline — the paper's homomorphic-
//! encryption workload — with the math actually executed and the
//! communication timed on every backend.
//!
//! The 2D decomposition (Bailey) turns one 65 536-point NTT into column
//! NTTs + twiddles + an **All-to-All transpose** + row NTTs; the transpose
//! is where PIMnet earns its keep.
//!
//! ```sh
//! cargo run --release --example ntt_pipeline
//! ```

use pimnet_suite::arch::SystemConfig;
use pimnet_suite::net::api::PimnetSystem;
use pimnet_suite::net::backends::BackendKind;
use pimnet_suite::workloads::ntt::{self, NttWorkload};
use pimnet_suite::workloads::program::run_program;
use pimnet_suite::workloads::Workload;

fn main() {
    // --- The real math, verified against the flat 1D transform. ---
    let n = 1 << 12; // keep the demo quick; the workload models 2^16
    let side = 1 << 6;
    let input: Vec<u64> = (0..n as u64).map(|i| ntt::mul(i + 3, i + 7)).collect();
    let mut flat = input.clone();
    ntt::ntt(&mut flat);
    let two_d = ntt::ntt_2d(&input, side, side);
    assert_eq!(two_d, flat, "2D NTT must equal the 1D transform");
    println!("2D NTT ({side}x{side}) verified against the 1D transform over the Goldilocks prime");

    // --- The PIM workload timing across backends. ---
    let sys = SystemConfig::paper();
    let workload = NttWorkload::paper();
    let program = workload.program(&sys);
    println!(
        "\nNTT (N = 2^16) on 256 DPUs; All-to-All transpose of {} per DPU:",
        program.total_collective_bytes()
    );
    let pimnet = PimnetSystem::paper();
    for kind in BackendKind::ALL {
        let backend = pimnet.backend(kind);
        if !program
            .collective_kinds()
            .iter()
            .all(|&k| backend.supports(k))
        {
            continue;
        }
        let r = run_program(&program, &sys, backend.as_ref()).expect("run");
        println!(
            "  {:<18} total {:>12}   (comm {:>5.1}%)",
            kind.to_string(),
            r.total().to_string(),
            r.comm_fraction() * 100.0
        );
    }
}
