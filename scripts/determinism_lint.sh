#!/usr/bin/env bash
# Determinism lint: greps for constructs that can smuggle nondeterminism
# into the deterministic core — wall-clock reads and hash-ordered
# collections in the schedule/serve/recovery/analysis hot paths.
#
# The simulator's contract is byte-identical output for a given seed at
# any worker count (PIMNET_THREADS). Wall-clock time and HashMap/HashSet
# *iteration order* both break that silently, so every use must either
# live in the benchmarking crate (whose whole point is wall time) or be
# on the audited allowlist below with a reason.
#
# Run from the repository root: scripts/determinism_lint.sh

set -u
cd "$(dirname "$0")/.."

fail=0

# ---------------------------------------------------------------------
# 1. Wall-clock reads are banned outside crates/bench (timing harnesses)
#    and target/. Simulated time comes from SimTime/the timing model.
# ---------------------------------------------------------------------
clock_hits=$(grep -rn --include='*.rs' -E 'Instant::now|SystemTime' \
    crates/arch crates/cli crates/core crates/faults crates/noc \
    crates/sim crates/workloads src 2>/dev/null)
if [ -n "$clock_hits" ]; then
    echo "FAIL: wall-clock reads in deterministic crates (only crates/bench may time walls):"
    echo "$clock_hits"
    fail=1
fi

# ---------------------------------------------------------------------
# 2. HashMap/HashSet in the hot paths (schedule construction/repair/
#    cache, serving, recovery, resilience, analysis) must be on the
#    audited allowlist. Audited means: the collection is used for
#    membership, counting, or keyed lookup only — its iteration order
#    never reaches any output, diagnostic, or schedule. Anything
#    order-visible must use BTreeMap/BTreeSet or sorted Vecs (see the
#    structural pass's P009 usage map and the hazard pass's per-node
#    maps, which were converted for exactly this reason).
# ---------------------------------------------------------------------
allowlist=(
    # Builder-internal dedup + #[cfg(test)] coverage checks; no iteration
    # reaches emitted transfers.
    "crates/core/src/schedule/alltoall.rs"
    # #[cfg(test)] invariant checks only (contributor-set bookkeeping).
    "crates/core/src/schedule/ring.rs"
    # Membership tests for claimed resources / conflict detection; the
    # reroute order itself follows the schedule's own transfer order.
    "crates/core/src/schedule/repair.rs"
    # Process-global cache tables: keyed get/insert only, never iterated;
    # outputs are the cached values, which are deterministic by build.
    "crates/core/src/schedule/cache.rs"
    # Per-step usage/count maps used for membership and len() only; the
    # validator walks transfers in schedule order and stops at the first
    # violation it meets in that order.
    "crates/core/src/schedule/validate.rs"
    # P009 flow sets: HashSet used for dedup + len(); the emission loop
    # iterates the enclosing BTreeMap, never the set.
    "crates/core/src/analysis/structural.rs"
    # Per-link busy tallies: the map is iterated, but only into
    # commutative integer sums (per-tier totals and a max), so iteration
    # order cannot reach the output. The boost planner's per-class facts
    # use BTreeMap instead because its busiest-resource *selection* is
    # order-visible on ties.
    "crates/core/src/timeline.rs"
)

hot_paths=(
    crates/core/src/schedule
    crates/core/src/analysis
    crates/core/src/serve.rs
    crates/core/src/recovery.rs
    crates/core/src/resilience.rs
    # The flat SoA layout (schedule/soa.rs) and the boost planner
    # (schedule/boost.rs) are covered by the schedule directory above;
    # the calendar-queue event core must stay hash-free too — bucket
    # drain order is FIFO-within-priority by contract.
    crates/sim/src/engine.rs
    crates/core/src/timeline.rs
)

hash_files=$(grep -rl --include='*.rs' -E 'HashMap|HashSet' "${hot_paths[@]}" 2>/dev/null | sort)
for f in $hash_files; do
    allowed=0
    for a in "${allowlist[@]}"; do
        if [ "$f" = "$a" ]; then
            allowed=1
            break
        fi
    done
    if [ "$allowed" -eq 0 ]; then
        echo "FAIL: $f uses HashMap/HashSet in a determinism hot path and is not allowlisted."
        echo "      Audit every use (iteration order must not reach any output), then either"
        echo "      switch to BTreeMap/BTreeSet or add the file to scripts/determinism_lint.sh"
        echo "      with a reason."
        fail=1
    fi
done

# Allowlist hygiene: entries must still exist and still use hash
# collections, so stale rows don't mask future regressions.
for a in "${allowlist[@]}"; do
    if [ ! -f "$a" ]; then
        echo "FAIL: allowlisted file $a no longer exists; remove it from the allowlist."
        fail=1
    elif ! grep -qE 'HashMap|HashSet' "$a"; then
        echo "FAIL: allowlisted file $a no longer uses hash collections; remove it from the allowlist."
        fail=1
    fi
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "determinism lint: clean (no wall-clock reads outside bench, no unaudited hash collections in hot paths)"
