//! DLRM embedding-table lookup (Table VII: EMB, ReduceScatter).
//!
//! The paper evaluates a synthetic table (4 M entries, embedding dimension
//! 64, pooling factor 8, batch 256, Cx-Ry column/row partitioning \[49\])
//! and three production-shaped models RM1–RM3 \[63\]. The production traces
//! are proprietary; the RM profiles here are synthetic stand-ins whose
//! lookup/pooling/batch shapes reproduce the paper's qualitative ordering —
//! RM3 communicates the most relative to its memory work, so it gains the
//! most from PIMnet (§VI-B).
//!
//! With row-wise partitioning, each row shard produces a *partial* pooled
//! sum for every batch element, and a ReduceScatter across shards merges
//! them.

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::error::WorkloadError;
use crate::program::{Phase, Program, Workload};

/// An embedding table: `entries × dim` values, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    dim: usize,
    values: Vec<f32>,
}

impl EmbeddingTable {
    /// Deterministic synthetic table (`value = f(row, column)`).
    #[must_use]
    pub fn synthetic(entries: usize, dim: usize) -> Self {
        let values = (0..entries * dim)
            .map(|i| ((i % 97) as f32) * 0.25 - 12.0)
            .collect();
        EmbeddingTable { dim, values }
    }

    /// Number of rows (zero for a degenerate zero-dim table).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.values.len().checked_div(self.dim).unwrap_or(0)
    }

    /// One embedding row.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::IndexOutOfBounds`] if `idx` names a row past the
    /// end of the table.
    pub fn row(&self, idx: usize) -> Result<&[f32], WorkloadError> {
        if idx >= self.entries() {
            return Err(WorkloadError::IndexOutOfBounds {
                what: "embedding table row",
                index: idx,
                len: self.entries(),
            });
        }
        Ok(&self.values[idx * self.dim..(idx + 1) * self.dim])
    }

    /// Reference pooled lookup: sum of the rows named by each bag of
    /// indices (one bag per batch element).
    ///
    /// # Errors
    ///
    /// [`WorkloadError::IndexOutOfBounds`] if any bag names a row past the
    /// end of the table.
    pub fn pooled_lookup(&self, bags: &[Vec<usize>]) -> Result<Vec<Vec<f32>>, WorkloadError> {
        bags.iter()
            .map(|bag| {
                let mut out = vec![0.0f32; self.dim];
                for &idx in bag {
                    for (o, v) in out.iter_mut().zip(self.row(idx)?) {
                        *o += v;
                    }
                }
                Ok(out)
            })
            .collect()
    }

    /// The PIM execution: rows are sharded across `row_parts` banks; each
    /// bank pools the rows it owns into a *partial* per batch element, and
    /// the partials are summed — the data movement of the ReduceScatter
    /// phase. Must equal [`Self::pooled_lookup`].
    ///
    /// # Errors
    ///
    /// [`WorkloadError::ZeroPartitions`] if `row_parts` is zero;
    /// [`WorkloadError::IndexOutOfBounds`] for out-of-table indices.
    pub fn sharded_pooled_lookup(
        &self,
        bags: &[Vec<usize>],
        row_parts: usize,
    ) -> Result<Vec<Vec<f32>>, WorkloadError> {
        if row_parts == 0 {
            return Err(WorkloadError::ZeroPartitions {
                what: "embedding row sharding",
            });
        }
        // Every index must resolve, even ones a shard filter would skip.
        for bag in bags {
            for &idx in bag {
                self.row(idx)?;
            }
        }
        let stripe = self.entries().div_ceil(row_parts).max(1);
        let mut out = vec![vec![0.0f32; self.dim]; bags.len()];
        for shard in 0..row_parts {
            let lo = shard * stripe;
            let hi = (lo + stripe).min(self.entries());
            for (b, bag) in bags.iter().enumerate() {
                // This shard's partial pooled sum for batch element b...
                let mut partial = vec![0.0f32; self.dim];
                for &idx in bag.iter().filter(|&&i| i >= lo && i < hi) {
                    for (o, v) in partial.iter_mut().zip(self.row(idx)?) {
                        *o += v;
                    }
                }
                // ...reduced across shards (the collective).
                for (o, v) in out[b].iter_mut().zip(&partial) {
                    *o += v;
                }
            }
        }
        Ok(out)
    }
}

/// An embedding-lookup workload (one table shard configuration).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Emb {
    label: String,
    /// Table entries.
    pub entries: u64,
    /// Embedding dimension.
    pub dim: u64,
    /// Rows pooled (summed) per output.
    pub pooling: u64,
    /// Batch size (lookups per inference step).
    pub batch: u64,
    /// Column-wise partitions (the `Cx` of Cx-Ry).
    pub col_parts: u64,
    /// Number of embedding tables processed per step.
    pub tables: u64,
}

impl Emb {
    /// The paper's synthetic table: 4 M entries, dim 64, pooling 8, batch
    /// 256, C4 column partitioning.
    #[must_use]
    pub fn synth() -> Self {
        Emb {
            label: "EMB_Synth".into(),
            entries: 4_000_000,
            dim: 64,
            pooling: 8,
            batch: 256,
            col_parts: 4,
            tables: 8,
        }
    }

    /// RM1 stand-in: compute-heavy (large pooling), light communication.
    #[must_use]
    pub fn rm1() -> Self {
        Emb {
            label: "EMB_RM1".into(),
            entries: 1_000_000,
            dim: 32,
            pooling: 80,
            batch: 128,
            col_parts: 2,
            tables: 8,
        }
    }

    /// RM2 stand-in: balanced.
    #[must_use]
    pub fn rm2() -> Self {
        Emb {
            label: "EMB_RM2".into(),
            entries: 4_000_000,
            dim: 64,
            pooling: 20,
            batch: 256,
            col_parts: 4,
            tables: 16,
        }
    }

    /// RM3 stand-in: wide embeddings, tiny pooling — communication-heavy,
    /// the biggest PIMnet win of the EMB family.
    #[must_use]
    pub fn rm3() -> Self {
        Emb {
            label: "EMB_RM3".into(),
            entries: 8_000_000,
            dim: 128,
            pooling: 4,
            batch: 512,
            col_parts: 4,
            tables: 16,
        }
    }
}

impl Workload for Emb {
    fn name(&self) -> &str {
        &self.label
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::ReduceScatter
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let row_parts = (p / self.col_parts).max(1);
        // Per DPU, per table: batch/row-shard lookups of pooling rows, each
        // dim/col_parts wide, summed.
        let dim_slice = self.dim.div_ceil(self.col_parts);
        let lookups = self.batch.div_ceil(row_parts) * self.pooling;
        // ~420 effective cycles per lookup: a random embedding row is a
        // fresh MRAM row activation plus a DMA descriptor (~1.2 us).
        let per_table = OpCounts::new()
            .with_adds(lookups * dim_slice)
            .with_loads(lookups * dim_slice + lookups) // rows + indices
            .with_stores(self.batch.div_ceil(row_parts) * dim_slice)
            .with_other(lookups * 420);
        // Partial pooled outputs: batch x dim_slice x 4 B per DPU, reduced
        // across the row shards.
        let rs_bytes = Bytes::new(self.batch * dim_slice * 4);
        let mut phases = Vec::new();
        for _ in 0..self.tables {
            phases.push(Phase::Compute {
                per_dpu: per_table,
                imbalance: 0.15, // skewed index popularity
            });
            phases.push(Phase::collective(CollectiveKind::ReduceScatter, rs_bytes));
        }
        Program::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    fn speedup(w: &Emb) -> f64 {
        let sys = SystemConfig::paper();
        let prog = w.program(&sys);
        let b = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        let p = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        b.total().ratio(p.total())
    }

    #[test]
    fn rm3_gains_the_most() {
        // §VI-B: "RM3 results in the biggest improvement ... because of a
        // higher amount of communication and a relatively low amount of
        // memory access".
        let rm1 = speedup(&Emb::rm1());
        let rm2 = speedup(&Emb::rm2());
        let rm3 = speedup(&Emb::rm3());
        assert!(rm3 > rm2, "RM3 {rm3:.2}x should beat RM2 {rm2:.2}x");
        assert!(rm3 > rm1, "RM3 {rm3:.2}x should beat RM1 {rm1:.2}x");
    }

    #[test]
    fn all_profiles_speed_up() {
        for w in [Emb::synth(), Emb::rm1(), Emb::rm2(), Emb::rm3()] {
            let s = speedup(&w);
            assert!(s > 1.0, "{} speedup {s:.2}x", w.name());
        }
    }

    #[test]
    fn sharded_lookup_equals_direct() {
        let table = EmbeddingTable::synthetic(1_000, 16);
        let bags: Vec<Vec<usize>> = (0..32)
            .map(|b| (0..8).map(|i| (b * 131 + i * 977) % 1_000).collect())
            .collect();
        let direct = table.pooled_lookup(&bags).unwrap();
        for shards in [1usize, 4, 64, 1_000] {
            let sharded = table.sharded_pooled_lookup(&bags, shards).unwrap();
            for (d, s) in direct.iter().zip(&sharded) {
                for (a, b) in d.iter().zip(s) {
                    assert!((a - b).abs() < 1e-3, "{shards} shards: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn table_accessors() {
        let t = EmbeddingTable::synthetic(10, 4);
        assert_eq!(t.entries(), 10);
        assert_eq!(t.row(3).unwrap().len(), 4);
    }

    #[test]
    fn out_of_table_lookups_are_typed_errors() {
        use crate::error::WorkloadError;
        let t = EmbeddingTable::synthetic(10, 4);
        assert_eq!(
            t.row(10),
            Err(WorkloadError::IndexOutOfBounds {
                what: "embedding table row",
                index: 10,
                len: 10,
            })
        );
        let bad_bags = vec![vec![3usize, 42]];
        assert!(t.pooled_lookup(&bad_bags).is_err());
        // Sharded lookup rejects the same bad index even when the owning
        // shard filter would have skipped it.
        assert!(t.sharded_pooled_lookup(&bad_bags, 4).is_err());
        assert!(matches!(
            t.sharded_pooled_lookup(&[vec![1]], 0),
            Err(WorkloadError::ZeroPartitions { .. })
        ));
        // A zero-dim table has no rows rather than a divide-by-zero.
        assert_eq!(EmbeddingTable::synthetic(10, 0).entries(), 0);
    }

    #[test]
    fn synth_shape() {
        let prog = Emb::synth().program(&SystemConfig::paper());
        assert_eq!(prog.phases.len(), 16);
        // 256 batch x 16 dims x 4 B = 16 KiB per table.
        assert_eq!(prog.total_collective_bytes(), Bytes::kib(16) * 8);
    }
}
