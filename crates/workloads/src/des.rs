//! Discrete-event execution of workload programs.
//!
//! [`crate::program::run_program`] times a program analytically, folding
//! per-DPU load imbalance into a mean + skew model. This module runs the
//! same program through the event-driven engine of `pim-sim` with an
//! *explicit* per-DPU compute-time distribution: every DPU's kernel
//! completion is an event, the collective launches when the last READY
//! arrives (the PIMnet barrier), and its completion event triggers the
//! next phase.
//!
//! Besides exercising the simulation kernel end-to-end, this yields a
//! per-phase timeline and lets tests check that the analytic model is a
//! faithful summary of the event-driven execution.

use pim_sim::rng::SimRng;
use pim_sim::{Engine, SimTime};

use pim_arch::SystemConfig;
use pimnet::backends::CollectiveBackend;
use pimnet::collective::CollectiveSpec;

use crate::error::WorkloadError;
use crate::program::{Phase, Program};

/// One timeline entry of an event-driven run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineEvent {
    /// When the phase completed.
    pub at: SimTime,
    /// Phase index within the program.
    pub phase: usize,
    /// Human-readable description.
    pub what: String,
}

/// Result of an event-driven program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DesReport {
    /// End-to-end completion time.
    pub end: SimTime,
    /// Completion timeline, one entry per phase.
    pub timeline: Vec<TimelineEvent>,
    /// Events dispatched by the engine.
    pub events: u64,
}

struct DesWorld {
    /// DPUs still computing in the current compute phase.
    outstanding: u32,
    timeline: Vec<TimelineEvent>,
}

/// Runs `program` event-driven: per-DPU compute times are drawn uniformly
/// from `mean × [1 − imbalance, 1 + imbalance]` (seeded), each completion
/// is an engine event, and collectives start at the barrier after the last
/// completion.
///
/// # Errors
///
/// [`WorkloadError::Backend`] for backend rejections (evaluated up front,
/// before simulation); [`WorkloadError::LostCompletions`] if a compute
/// phase's barrier closes with completion events still outstanding.
pub fn run_program_des(
    program: &Program,
    system: &SystemConfig,
    backend: &dyn CollectiveBackend,
    seed: u64,
) -> Result<DesReport, WorkloadError> {
    let dpus = system.geometry.dpus_per_channel();
    let mut rng = SimRng::seed_from_u64(seed);

    // Pre-compute every collective's duration, aligned one-to-one with the
    // phase list (they are state-independent; compute phases hold ZERO), so
    // the playback loop below never indexes past the precomputed set.
    let mut comm_times = Vec::with_capacity(program.phases.len());
    for phase in &program.phases {
        comm_times.push(match phase {
            Phase::Collective {
                kind,
                bytes_per_dpu,
                elem_bytes,
            } => {
                let spec = CollectiveSpec::new(*kind, *bytes_per_dpu).with_elem_bytes(*elem_bytes);
                backend.collective(&spec)?.total()
            }
            Phase::Compute { .. } => SimTime::ZERO,
        });
    }

    let mut engine: Engine<DesWorld> = Engine::new();
    let mut world = DesWorld {
        outstanding: 0,
        timeline: Vec::new(),
    };

    // Walk phases sequentially: each compute phase schedules one completion
    // event per DPU; the phase ends when the last lands. Collectives are
    // single events of the precomputed duration.
    let mut cursor = SimTime::ZERO;
    for (pi, (phase, &phase_comm)) in program.phases.iter().zip(&comm_times).enumerate() {
        match phase {
            Phase::Compute { per_dpu, imbalance } => {
                let mean = system.dpu.compute_time(per_dpu);
                world.outstanding = dpus;
                let mut last = cursor;
                for _ in 0..dpus {
                    let f = 1.0 + rng.gen_range(-*imbalance..=*imbalance);
                    let t = cursor + SimTime::from_secs_f64(mean.as_secs_f64() * f);
                    last = last.max(t);
                    engine.schedule(t, move |w: &mut DesWorld, _| {
                        w.outstanding = w.outstanding.saturating_sub(1);
                    });
                }
                engine.run(&mut world);
                if world.outstanding != 0 {
                    return Err(WorkloadError::LostCompletions {
                        missing: world.outstanding,
                    });
                }
                cursor = last;
                world.timeline.push(TimelineEvent {
                    at: cursor,
                    phase: pi,
                    what: format!("compute barrier ({dpus} DPUs ready)"),
                });
            }
            Phase::Collective { kind, .. } => {
                let done = cursor + phase_comm;
                let label = kind.to_string();
                engine.schedule(done, move |w: &mut DesWorld, _| {
                    w.timeline.push(TimelineEvent {
                        at: done,
                        phase: pi,
                        what: format!("{label} complete"),
                    });
                });
                engine.run(&mut world);
                cursor = done;
            }
        }
    }

    Ok(DesReport {
        end: cursor,
        timeline: world.timeline,
        events: engine.events_executed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mlp::Mlp;
    use crate::program::run_program;
    use crate::Workload;
    use pimnet::backends::PimnetBackend;

    #[test]
    fn des_and_analytic_agree_within_the_jitter_band() {
        let sys = SystemConfig::paper();
        let backend = PimnetBackend::paper();
        let program = Mlp::new(1024).program(&sys);
        let analytic = run_program(&program, &sys, &backend).unwrap().total();
        let des = run_program_des(&program, &sys, &backend, 7).unwrap();
        let ratio = des.end.ratio(analytic);
        // The analytic model charges the *max* of the imbalance band; a
        // sampled run lands at or below it, and never under the mean.
        assert!(
            (0.9..=1.02).contains(&ratio),
            "DES {} vs analytic {analytic} (ratio {ratio:.3})",
            des.end
        );
    }

    #[test]
    fn timeline_has_one_entry_per_phase() {
        let sys = SystemConfig::paper();
        let backend = PimnetBackend::paper();
        let program = Mlp::new(256).program(&sys);
        let des = run_program_des(&program, &sys, &backend, 1).unwrap();
        assert_eq!(des.timeline.len(), program.phases.len());
        // Timeline is monotone.
        assert!(des.timeline.windows(2).all(|w| w[0].at <= w[1].at));
        // One event per DPU per compute phase plus one per collective.
        assert_eq!(des.events, 3 * 256 + 3);
    }

    #[test]
    fn seeds_change_the_tail_but_not_the_structure() {
        let sys = SystemConfig::paper();
        let backend = PimnetBackend::paper();
        let program = Mlp::new(512).program(&sys);
        let a = run_program_des(&program, &sys, &backend, 1).unwrap();
        let b = run_program_des(&program, &sys, &backend, 2).unwrap();
        assert_ne!(a.end, b.end);
        assert_eq!(a.timeline.len(), b.timeline.len());
        // Determinism: same seed, same result.
        let a2 = run_program_des(&program, &sys, &backend, 1).unwrap();
        assert_eq!(a, a2);
    }
}
