//! Hash join (Table VII: Join, All-to-All).
//!
//! The processing-in-DIMM join of Lim et al. \[61\]: tuples are globally
//! hash-partitioned so that matching keys land on the same PIM bank, which
//! costs one All-to-All of (nearly) the whole input; each bank then builds
//! and probes a local hash table. The paper reports a 36 % end-to-end gain
//! with 64 M tuples.

use std::collections::HashMap;

use pim_sim::rng::SimRng;
use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::error::WorkloadError;
use crate::program::{Phase, Program, Workload};

/// A relation of `(key, payload)` tuples.
pub type Relation = Vec<(u64, u64)>;

/// Seeded random relation with keys drawn from `0..key_space` (smaller key
/// spaces produce more matches and more skew).
#[must_use]
pub fn random_relation(tuples: usize, key_space: u64, seed: u64) -> Relation {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..tuples)
        .map(|i| (rng.gen_range(0..key_space), i as u64))
        .collect()
}

/// Reference equi-join: number of matching `(r, s)` pairs.
#[must_use]
pub fn join_count(r: &Relation, s: &Relation) -> u64 {
    let mut table: HashMap<u64, u64> = HashMap::new();
    for &(k, _) in r {
        *table.entry(k).or_insert(0) += 1;
    }
    s.iter()
        .map(|&(k, _)| table.get(&k).copied().unwrap_or(0))
        .sum()
}

/// The PIM algorithm \[61\]: hash-partition both relations across `banks`
/// (the All-to-All), then join every bucket locally. Must equal
/// [`join_count`].
///
/// # Errors
///
/// [`WorkloadError::ZeroPartitions`] if `banks` is zero.
pub fn partitioned_join_count(
    r: &Relation,
    s: &Relation,
    banks: usize,
) -> Result<u64, WorkloadError> {
    if banks == 0 {
        return Err(WorkloadError::ZeroPartitions { what: "hash join" });
    }
    let bucket = |k: u64| (k.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % banks;
    let mut r_parts: Vec<Relation> = vec![Vec::new(); banks];
    let mut s_parts: Vec<Relation> = vec![Vec::new(); banks];
    for &(k, p) in r {
        r_parts[bucket(k)].push((k, p));
    }
    for &(k, p) in s {
        s_parts[bucket(k)].push((k, p));
    }
    // After the A2A, every bank joins its bucket independently.
    Ok(r_parts
        .iter()
        .zip(&s_parts)
        .map(|(rp, sp)| join_count(rp, sp))
        .sum())
}

/// An equi-join of two relations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashJoin {
    /// Total tuples across both relations (64 M in the paper).
    pub tuples: u64,
    /// Bytes per tuple (key + payload).
    pub tuple_bytes: u64,
}

impl HashJoin {
    /// The paper configuration: 64 M 8-byte tuples.
    #[must_use]
    pub fn paper() -> Self {
        HashJoin {
            tuples: 64_000_000,
            tuple_bytes: 8,
        }
    }
}

impl Workload for HashJoin {
    fn name(&self) -> &str {
        "Join"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::AllToAll
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let per_dpu_tuples = self.tuples.div_ceil(p);
        // Phase 1: hash + partition every local tuple.
        // ~500 effective cycles per tuple: hash, bucket append with
        // MRAM-resident partitions (random 8 B writes through the DMA).
        let partition = OpCounts::new()
            .with_muls(per_dpu_tuples) // multiplicative hash
            .with_adds(per_dpu_tuples * 2)
            .with_loads(per_dpu_tuples * 2)
            .with_stores(per_dpu_tuples * 2)
            .with_other(per_dpu_tuples * 500);
        // Phase 2: global All-to-All of the partitioned tuples.
        let a2a_bytes = Bytes::new(per_dpu_tuples * self.tuple_bytes);
        // Phase 3: build + probe the local hash table.
        // ~700 effective cycles per tuple for build + probe: hash-table
        // chains live in MRAM, so every probe is a dependent random access.
        let build_probe = OpCounts::new()
            .with_muls(per_dpu_tuples)
            .with_adds(per_dpu_tuples * 3)
            .with_loads(per_dpu_tuples * 4)
            .with_stores(per_dpu_tuples * 2)
            .with_other(per_dpu_tuples * 700);
        Program::new(vec![
            Phase::Compute {
                per_dpu: partition,
                imbalance: 0.1,
            },
            Phase::Collective {
                kind: CollectiveKind::AllToAll,
                bytes_per_dpu: a2a_bytes,
                elem_bytes: 8,
            },
            Phase::Compute {
                per_dpu: build_probe,
                imbalance: 0.2, // key skew
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    #[test]
    fn paper_band_36_percent() {
        // "PIMnet provides 36% improvement in performance with 64M tuples
        // compared to the baseline."
        let sys = SystemConfig::paper();
        let prog = HashJoin::paper().program(&sys);
        let base = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        let pim = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        let speedup = base.total().ratio(pim.total());
        assert!(
            (1.05..3.5).contains(&speedup),
            "Join speedup {speedup:.2}x out of band"
        );
    }

    #[test]
    fn partitioned_join_equals_reference() {
        let r = random_relation(5_000, 900, 1);
        let s = random_relation(4_000, 900, 2);
        let reference = join_count(&r, &s);
        assert!(reference > 0);
        for banks in [1usize, 8, 64, 256] {
            assert_eq!(
                partitioned_join_count(&r, &s, banks).unwrap(),
                reference,
                "{banks} banks"
            );
        }
        // Zero banks is a typed error, not a divide-by-zero panic.
        assert!(matches!(
            partitioned_join_count(&r, &s, 0),
            Err(crate::error::WorkloadError::ZeroPartitions { .. })
        ));
    }

    #[test]
    fn disjoint_keys_join_to_nothing() {
        let r: Relation = (0..100).map(|i| (i, i)).collect();
        let s: Relation = (1_000..1_100).map(|i| (i, i)).collect();
        assert_eq!(join_count(&r, &s), 0);
        assert_eq!(partitioned_join_count(&r, &s, 16).unwrap(), 0);
    }

    #[test]
    fn a2a_moves_the_whole_input() {
        let prog = HashJoin::paper().program(&SystemConfig::paper());
        // 64M x 8 B / 256 DPUs = 2 MB per DPU.
        assert_eq!(
            prog.total_collective_bytes(),
            Bytes::new(64_000_000 / 256 * 8)
        );
    }
}
