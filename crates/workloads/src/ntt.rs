//! Number Theoretic Transform over the Goldilocks prime, plus the 2D-NTT
//! PIM workload (paper §II-C, Table VII).
//!
//! The math is real: an iterative Cooley–Tukey NTT modulo
//! `p = 2^64 − 2^32 + 1`, whose multiplicative group contains roots of
//! unity of every power-of-two order up to `2^32` — the workhorse prime of
//! modern FHE implementations. Property tests check the transform against
//! the naive DFT and the convolution theorem.
//!
//! The workload follows the paper's 2D decomposition of `N = 2^16`
//! (Bailey's algorithm \[12\]): 256 column-wise 256-point NTTs, a twiddle
//! multiplication, an **All-to-All transpose** between the PIM banks, and
//! 256 row-wise 256-point NTTs.

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::program::{Phase, Program, Workload};

/// The Goldilocks prime `2^64 − 2^32 + 1`.
pub const P: u64 = 0xFFFF_FFFF_0000_0001;

/// A generator of the multiplicative group of `Z_P` (order `P − 1`).
const GENERATOR: u64 = 7;

/// Modular addition in `Z_P`.
#[must_use]
pub fn add(a: u64, b: u64) -> u64 {
    let (s, over) = a.overflowing_add(b);
    let mut s = s;
    if over || s >= P {
        s = s.wrapping_sub(P);
    }
    s
}

/// Modular subtraction in `Z_P`.
#[must_use]
pub fn sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a.wrapping_sub(b).wrapping_add(P)
    }
}

/// Modular multiplication in `Z_P` (via 128-bit widening).
#[must_use]
pub fn mul(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(P)) as u64
}

/// Modular exponentiation in `Z_P`.
#[must_use]
pub fn pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul(acc, base);
        }
        base = mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse in `Z_P` (Fermat).
#[must_use]
pub fn inv(a: u64) -> u64 {
    pow(a, P - 2)
}

/// A primitive `n`-th root of unity in `Z_P`.
///
/// # Panics
///
/// Panics if `n` is not a power of two or exceeds `2^32`.
#[must_use]
pub fn root_of_unity(n: u64) -> u64 {
    assert!(n.is_power_of_two() && n <= 1 << 32, "no 2^k root for n={n}");
    pow(GENERATOR, (P - 1) / n)
}

/// In-place iterative (decimation-in-time) NTT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn ntt(a: &mut [u64]) {
    transform(a, root_of_unity(a.len() as u64));
}

/// In-place inverse NTT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn intt(a: &mut [u64]) {
    let n = a.len() as u64;
    transform(a, inv(root_of_unity(n)));
    let scale = inv(n % P);
    for x in a.iter_mut() {
        *x = mul(*x, scale);
    }
}

fn transform(a: &mut [u64], omega: u64) {
    let n = a.len();
    assert!(n.is_power_of_two(), "NTT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if i < j {
            a.swap(i, j);
        }
    }
    // Cooley–Tukey butterflies.
    let mut len = 2;
    while len <= n {
        let w_len = pow(omega, (n / len) as u64);
        for start in (0..n).step_by(len) {
            let mut w = 1u64;
            for k in 0..len / 2 {
                let u = a[start + k];
                let v = mul(a[start + k + len / 2], w);
                a[start + k] = add(u, v);
                a[start + k + len / 2] = sub(u, v);
                w = mul(w, w_len);
            }
        }
        len <<= 1;
    }
}

/// Naive `O(n²)` DFT over `Z_P` — the property-test oracle.
#[must_use]
pub fn naive_dft(a: &[u64]) -> Vec<u64> {
    let n = a.len() as u64;
    let omega = root_of_unity(n);
    (0..n)
        .map(|k| {
            let mut acc = 0u64;
            for (j, &x) in a.iter().enumerate() {
                acc = add(acc, mul(x, pow(omega, k * j as u64)));
            }
            acc
        })
        .collect()
}

/// Cyclic (positive-wrapped) convolution via the transform.
#[must_use]
pub fn convolve(a: &[u64], b: &[u64]) -> Vec<u64> {
    assert_eq!(a.len(), b.len());
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    ntt(&mut fa);
    ntt(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x = mul(*x, *y);
    }
    intt(&mut fa);
    fa
}

/// Naive cyclic convolution — the oracle.
#[must_use]
pub fn naive_convolve(a: &[u64], b: &[u64]) -> Vec<u64> {
    let n = a.len();
    let mut out = vec![0u64; n];
    for i in 0..n {
        for j in 0..n {
            out[(i + j) % n] = add(out[(i + j) % n], mul(a[i], b[j]));
        }
    }
    out
}

/// Full-size 2D NTT (Bailey): columns, twiddles, transpose, rows. Produces
/// the standard NTT of the length-`rows*cols` input (in transposed order,
/// which we undo before returning).
#[must_use]
pub fn ntt_2d(a: &[u64], rows: usize, cols: usize) -> Vec<u64> {
    assert_eq!(a.len(), rows * cols);
    let n = a.len() as u64;
    let omega = root_of_unity(n);
    // Column NTTs (stride `cols` vectors of length `rows`).
    let mut m: Vec<u64> = a.to_vec();
    for c in 0..cols {
        let mut col: Vec<u64> = (0..rows).map(|r| m[r * cols + c]).collect();
        ntt(&mut col);
        for (r, v) in col.into_iter().enumerate() {
            m[r * cols + c] = v;
        }
    }
    // Twiddle factors omega^(r*c).
    for r in 0..rows {
        for c in 0..cols {
            m[r * cols + c] = mul(m[r * cols + c], pow(omega, (r * c) as u64));
        }
    }
    // Row NTTs.
    for r in 0..rows {
        ntt(&mut m[r * cols..(r + 1) * cols]);
    }
    // Result element (k1, k2) = X[k2*rows + k1]: un-transpose.
    let mut out = vec![0u64; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = m[r * cols + c];
        }
    }
    out
}

/// The paper's NTT workload: 2D NTT of `N = 2^16` with an All-to-All
/// transpose between the two compute steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NttWorkload {
    /// Total transform size (2^16 in the paper).
    pub n: usize,
}

impl NttWorkload {
    /// The paper configuration (`N = 2^16`, 256×256 decomposition).
    #[must_use]
    pub fn paper() -> Self {
        NttWorkload { n: 1 << 16 }
    }

    fn side(&self) -> usize {
        1 << (self.n.trailing_zeros() / 2)
    }
}

impl Workload for NttWorkload {
    fn name(&self) -> &str {
        "NTT"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::AllToAll
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let side = self.side() as u64; // 256 NTTs of `side` points per step
        let ntts_per_dpu = side.div_ceil(p);
        // One `side`-point NTT: (side/2)·log2(side) butterflies; each is one
        // 64-bit modular multiply (~4 emulated 32-bit multiplies + reduction
        // adds) plus two modular add/subs, all on WRAM-resident data.
        let butterflies = ntts_per_dpu * (side / 2) * u64::from(side.trailing_zeros());
        let step = OpCounts::new()
            .with_muls(butterflies * 4)
            .with_adds(butterflies * 6)
            .with_loads(butterflies * 2)
            .with_stores(butterflies * 2);
        // Twiddle multiplication between the steps.
        let twiddle = OpCounts::new()
            .with_muls(ntts_per_dpu * side * 4)
            .with_loads(ntts_per_dpu * side)
            .with_stores(ntts_per_dpu * side);
        // The transpose: every coefficient (8 B) changes bank.
        let a2a_bytes = Bytes::new(self.n as u64 * 8 / p);
        Program::new(vec![
            Phase::compute(step),
            Phase::compute(twiddle),
            Phase::Collective {
                kind: CollectiveKind::AllToAll,
                bytes_per_dpu: a2a_bytes,
                elem_bytes: 8,
            },
            Phase::compute(step),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::rng::SimRng;

    #[test]
    fn field_ops_basics() {
        assert_eq!(add(P - 1, 1), 0);
        assert_eq!(sub(0, 1), P - 1);
        assert_eq!(mul(P - 1, P - 1), 1); // (-1)^2
        assert_eq!(mul(inv(12345), 12345), 1);
        // 2^64 mod (2^64 - 2^32 + 1) = 2^32 - 1.
        assert_eq!(pow(2, 64), 0xFFFF_FFFF);
    }

    #[test]
    fn roots_have_the_right_order() {
        for k in [2u64, 4, 256, 65_536] {
            let w = root_of_unity(k);
            assert_eq!(pow(w, k), 1, "w^{k} != 1");
            assert_ne!(pow(w, k / 2), 1, "w has order < {k}");
        }
    }

    #[test]
    fn ntt_matches_naive_dft() {
        let a: Vec<u64> = (0..64u64).map(|i| i * i + 17).collect();
        let mut fast = a.clone();
        ntt(&mut fast);
        assert_eq!(fast, naive_dft(&a));
    }

    #[test]
    fn intt_inverts_ntt() {
        let a: Vec<u64> = (0..256u64).map(|i| pow(GENERATOR, i)).collect();
        let mut x = a.clone();
        ntt(&mut x);
        intt(&mut x);
        assert_eq!(x, a);
    }

    #[test]
    fn ntt_2d_equals_1d() {
        let a: Vec<u64> = (0..1024u64).map(|i| mul(i, i + 3)).collect();
        let mut flat = a.clone();
        ntt(&mut flat);
        assert_eq!(ntt_2d(&a, 32, 32), flat);
    }

    #[test]
    fn workload_shape() {
        let w = NttWorkload::paper();
        let p = w.program(&SystemConfig::paper());
        assert_eq!(p.collective_kinds(), vec![CollectiveKind::AllToAll]);
        // 2^16 x 8 B / 256 DPUs = 2 KiB per DPU.
        assert_eq!(p.total_collective_bytes(), Bytes::kib(2));
        assert_eq!(p.phases.len(), 4);
    }

    fn field_vec(rng: &mut SimRng, len: usize) -> Vec<u64> {
        (0..len).map(|_| rng.gen_range(0..P)).collect()
    }

    #[test]
    fn convolution_theorem_holds() {
        let mut rng = SimRng::seed_from_u64(0xC0_4401);
        for _ in 0..16 {
            let a = field_vec(&mut rng, 32);
            let b = field_vec(&mut rng, 32);
            assert_eq!(convolve(&a, &b), naive_convolve(&a, &b));
        }
    }

    #[test]
    fn transform_roundtrips() {
        let mut rng = SimRng::seed_from_u64(0xC0_4402);
        for _ in 0..32 {
            let len = rng.gen_range(1usize..=128);
            let a = field_vec(&mut rng, len);
            let n = a.len().next_power_of_two();
            let mut padded = a.clone();
            padded.resize(n, 0);
            let orig = padded.clone();
            ntt(&mut padded);
            intt(&mut padded);
            assert_eq!(padded, orig);
        }
    }

    #[test]
    fn ntt_is_linear() {
        let mut rng = SimRng::seed_from_u64(0xC0_4403);
        for _ in 0..16 {
            let a = field_vec(&mut rng, 16);
            let b = field_vec(&mut rng, 16);
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| add(x, y)).collect();
            ntt(&mut fa);
            ntt(&mut fb);
            ntt(&mut fsum);
            let sum_f: Vec<u64> = fa.iter().zip(&fb).map(|(&x, &y)| add(x, y)).collect();
            assert_eq!(fsum, sum_f);
        }
    }
}
