//! Synthetic graphs and the real traversals that shape BFS/CC phases.
//!
//! The paper evaluates BFS and CC on `log-gowalla` (the Gowalla social
//! network: ~197 k vertices, ~950 k undirected edges). The dataset itself
//! is not redistributable here, so [`Graph::log_gowalla`] generates a
//! seeded preferential-attachment graph at the same scale — power-law
//! degrees and small-world diameter, which is what determines the BFS
//! level structure and CC iteration count that drive communication volume.

use std::sync::OnceLock;

use pim_sim::rng::SimRng;

/// An undirected graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    offsets: Vec<usize>,
    edges: Vec<u32>,
}

/// Per-BFS-level statistics (sizes drive per-iteration compute/comm).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LevelStats {
    /// Vertices in the frontier entering this level.
    pub frontier: usize,
    /// Edges scanned expanding that frontier.
    pub edges_scanned: usize,
}

impl Graph {
    /// Builds a graph from an undirected edge list (duplicates and
    /// self-loops are dropped).
    #[must_use]
    pub fn from_edges(n: usize, list: &[(u32, u32)]) -> Self {
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(list.len() * 2);
        for &(a, b) in list {
            if a != b {
                pairs.push((a, b));
                pairs.push((b, a));
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = vec![0usize; n + 1];
        for &(a, _) in &pairs {
            offsets[a as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let edges = pairs.into_iter().map(|(_, b)| b).collect();
        Graph { offsets, edges }
    }

    /// Seeded preferential-attachment generator: `n` vertices, about
    /// `n × m` undirected edges, power-law degree distribution.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or `m == 0`.
    #[must_use]
    pub fn power_law(n: usize, m: usize, seed: u64) -> Self {
        assert!(n >= 2 && m >= 1, "power_law: degenerate parameters");
        let mut rng = SimRng::seed_from_u64(seed);
        let mut list: Vec<(u32, u32)> = Vec::with_capacity(n * m);
        // Endpoint pool for degree-proportional sampling.
        let mut pool: Vec<u32> = vec![0, 1];
        list.push((0, 1));
        for v in 2..n as u32 {
            let attach = m.min(v as usize);
            for _ in 0..attach {
                // 80% preferential, 20% uniform — keeps one giant component
                // plus a heavy tail, like real social graphs.
                let t = if rng.gen_bool(0.8) {
                    pool[rng.gen_range(0..pool.len())]
                } else {
                    rng.gen_range(0..v)
                };
                if t != v {
                    list.push((v, t));
                    pool.push(v);
                    pool.push(t);
                }
            }
        }
        Graph::from_edges(n, &list)
    }

    /// The log-gowalla-scale graph used by the paper's BFS/CC experiments
    /// (cached globally; generation is seeded and deterministic).
    #[must_use]
    pub fn log_gowalla() -> &'static Graph {
        static CACHE: OnceLock<Graph> = OnceLock::new();
        CACHE.get_or_init(|| Graph::power_law(196_591, 5, 0x0060_A11A))
    }

    /// Vertex count.
    #[must_use]
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Directed edge count (2× the undirected count).
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Neighbours of `v`.
    #[must_use]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.edges[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Degree of `v`.
    #[must_use]
    pub fn degree(&self, v: u32) -> usize {
        self.neighbors(v).len()
    }

    /// The highest-degree vertex (the BFS source the workloads use).
    #[must_use]
    pub fn hub(&self) -> u32 {
        (0..self.vertex_count() as u32)
            .max_by_key(|&v| self.degree(v))
            .unwrap_or(0)
    }

    /// Breadth-first search from `src`: distance per vertex (`u32::MAX` if
    /// unreachable) plus per-level statistics.
    #[must_use]
    pub fn bfs(&self, src: u32) -> (Vec<u32>, Vec<LevelStats>) {
        let n = self.vertex_count();
        let mut dist = vec![u32::MAX; n];
        dist[src as usize] = 0;
        let mut frontier = vec![src];
        let mut levels = Vec::new();
        let mut depth = 0u32;
        while !frontier.is_empty() {
            let mut stats = LevelStats {
                frontier: frontier.len(),
                edges_scanned: 0,
            };
            let mut next = Vec::new();
            for &v in &frontier {
                stats.edges_scanned += self.degree(v);
                for &w in self.neighbors(v) {
                    if dist[w as usize] == u32::MAX {
                        dist[w as usize] = depth + 1;
                        next.push(w);
                    }
                }
            }
            levels.push(stats);
            frontier = next;
            depth += 1;
        }
        (dist, levels)
    }

    /// Connected components by synchronous label propagation (min-label):
    /// returns the labels and the number of sweeps until stable — the same
    /// iteration count the PIM implementation's AllReduce loop runs.
    #[must_use]
    pub fn connected_components(&self) -> (Vec<u32>, usize) {
        let n = self.vertex_count();
        let mut labels: Vec<u32> = (0..n as u32).collect();
        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut changed = false;
            let prev = labels.clone();
            for v in 0..n as u32 {
                let mut best = prev[v as usize];
                for &w in self.neighbors(v) {
                    best = best.min(prev[w as usize]);
                }
                if best < labels[v as usize] {
                    labels[v as usize] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        (labels, iterations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Graph {
        Graph::power_law(2_000, 5, 7)
    }

    #[test]
    fn csr_is_consistent() {
        let g = small();
        assert_eq!(g.vertex_count(), 2_000);
        // Every edge appears in both directions.
        for v in 0..g.vertex_count() as u32 {
            for &w in g.neighbors(v) {
                assert!(g.neighbors(w).contains(&v), "asymmetric edge {v}-{w}");
            }
        }
    }

    #[test]
    fn power_law_has_hubs() {
        let g = small();
        let max_deg = g.degree(g.hub());
        let avg = g.edge_count() as f64 / g.vertex_count() as f64;
        assert!(
            max_deg as f64 > avg * 10.0,
            "no hub: max {max_deg}, avg {avg:.1}"
        );
    }

    #[test]
    fn bfs_levels_cover_the_reachable_set() {
        let g = small();
        let (dist, levels) = g.bfs(g.hub());
        let reached = dist.iter().filter(|&&d| d != u32::MAX).count();
        let level_total: usize = levels.iter().map(|l| l.frontier).sum();
        assert_eq!(reached, level_total);
        // Small-world: a hub-rooted BFS finishes in a few levels.
        assert!(levels.len() <= 12, "diameter too large: {}", levels.len());
        // Distances are consistent with levels.
        for (d, l) in levels.iter().enumerate() {
            assert_eq!(dist.iter().filter(|&&x| x == d as u32).count(), l.frontier);
        }
    }

    #[test]
    fn bfs_from_isolated_region_is_fine() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let (dist, levels) = g.bfs(0);
        assert_eq!(dist[1], 1);
        assert_eq!(dist[2], u32::MAX);
        assert_eq!(levels.len(), 2);
    }

    #[test]
    fn cc_labels_match_bfs_reachability() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (3, 4)]);
        let (labels, iters) = g.connected_components();
        assert!(iters >= 1);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(labels[5], 5);
    }

    #[test]
    fn generator_is_deterministic() {
        let a = Graph::power_law(500, 4, 42);
        let b = Graph::power_law(500, 4, 42);
        assert_eq!(a, b);
        let c = Graph::power_law(500, 4, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn log_gowalla_scale_matches_the_dataset() {
        let g = Graph::log_gowalla();
        assert_eq!(g.vertex_count(), 196_591);
        let undirected = g.edge_count() / 2;
        assert!(
            (800_000..1_200_000).contains(&undirected),
            "undirected edges {undirected} not at gowalla scale"
        );
    }
}
