//! Dense matrix–vector multiplication (Table VII: GEMV, ReduceScatter).
//!
//! Tensor-parallel partitioning, as in PID-Comm \[67\]: the matrix is split
//! column-wise across DPUs, each DPU produces a full-length *partial*
//! output vector, and a ReduceScatter combines the partials — after every
//! single GEMV of the batch, which is why GEMV sees more communication
//! benefit than MLP despite identical multiply counts (§VI-B).

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::program::{Phase, Program, Workload};

/// A batched square GEMV: `batch` products with an `n × n` matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemv {
    /// Matrix dimension (the paper evaluates 1024 and 2048).
    pub n: u64,
    /// Number of input vectors (64 and 128 in the paper).
    pub batch: u64,
}

impl Gemv {
    /// Creates a batched GEMV workload.
    #[must_use]
    pub fn new(n: u64, batch: u64) -> Self {
        Gemv { n, batch }
    }
}

impl Workload for Gemv {
    fn name(&self) -> &str {
        "GEMV"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::ReduceScatter
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let cols_per_dpu = self.n.div_ceil(p);
        // One GEMV on one DPU: n rows x cols_per_dpu MACs.
        let macs = self.n * cols_per_dpu;
        // Same ~20-cycle per-MAC loop/addressing overhead as MLP.
        let per_gemv = OpCounts::new()
            .with_muls(macs)
            .with_adds(macs)
            .with_loads(macs + self.n)
            .with_stores(self.n)
            .with_other(macs * 20);
        // Partial output: n x 4 B per DPU, reduce-scattered each iteration.
        let rs_bytes = Bytes::new(self.n * 4);
        let mut phases = Vec::with_capacity(self.batch as usize * 2);
        for _ in 0..self.batch {
            phases.push(Phase::compute(per_gemv));
            phases.push(Phase::collective(CollectiveKind::ReduceScatter, rs_bytes));
        }
        Program::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn communicates_after_every_gemv() {
        let p = Gemv::new(1024, 64).program(&SystemConfig::paper());
        assert_eq!(p.phases.len(), 128);
        assert_eq!(p.collective_kinds(), vec![CollectiveKind::ReduceScatter]);
        assert_eq!(p.total_collective_bytes(), Bytes::kib(4) * 64);
    }

    #[test]
    fn work_scales_with_matrix_size() {
        let sys = SystemConfig::paper();
        let small = crate::program::run_program(
            &Gemv::new(1024, 64).program(&sys),
            &sys,
            &pimnet::backends::PimnetBackend::paper(),
        )
        .unwrap();
        let large = crate::program::run_program(
            &Gemv::new(2048, 64).program(&sys),
            &sys,
            &pimnet::backends::PimnetBackend::paper(),
        )
        .unwrap();
        assert!(large.compute.as_ps() >= small.compute.as_ps() * 3);
    }
}
