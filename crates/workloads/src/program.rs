//! Workload programs: alternating compute and collective phases, and the
//! runner that times them on a system + backend pair.

use std::fmt;

use pim_sim::{Bytes, Probe, SimTime};

use pim_arch::{OpCounts, SystemConfig};
use pimnet::backends::CollectiveBackend;
use pimnet::collective::{CollectiveKind, CollectiveSpec};
use pimnet::timing::CommBreakdown;
use pimnet::PimnetError;

/// One phase of a workload's execution on the PIM side.
#[derive(Debug, Clone, PartialEq)]
pub enum Phase {
    /// Every DPU runs a kernel with (mean) per-DPU instruction counts;
    /// `imbalance` is the fractional spread between the mean and the
    /// slowest DPU, which the next collective pays as synchronization skew.
    Compute {
        /// Mean per-DPU instruction counts.
        per_dpu: OpCounts,
        /// `(max − mean) / mean` finish-time spread across DPUs.
        imbalance: f64,
    },
    /// A collective over all DPUs of the channel.
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Payload per DPU.
        bytes_per_dpu: Bytes,
        /// Element width in bytes.
        elem_bytes: u32,
    },
}

impl Phase {
    /// A compute phase with the suite's default 5 % imbalance.
    #[must_use]
    pub fn compute(per_dpu: OpCounts) -> Self {
        Phase::Compute {
            per_dpu,
            imbalance: 0.05,
        }
    }

    /// A collective phase with 4-byte elements.
    #[must_use]
    pub fn collective(kind: CollectiveKind, bytes_per_dpu: Bytes) -> Self {
        Phase::Collective {
            kind,
            bytes_per_dpu,
            elem_bytes: 4,
        }
    }
}

/// A compiled workload: the phase sequence one end-to-end run executes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Phases, in execution order.
    pub phases: Vec<Phase>,
}

impl Program {
    /// Creates a program from phases.
    #[must_use]
    pub fn new(phases: Vec<Phase>) -> Self {
        Program { phases }
    }

    /// The distinct collective kinds this program uses.
    #[must_use]
    pub fn collective_kinds(&self) -> Vec<CollectiveKind> {
        let mut kinds: Vec<CollectiveKind> = self
            .phases
            .iter()
            .filter_map(|p| match p {
                Phase::Collective { kind, .. } => Some(*kind),
                Phase::Compute { .. } => None,
            })
            .collect();
        kinds.sort_unstable();
        kinds.dedup();
        kinds
    }

    /// Total bytes per DPU sent through collectives.
    #[must_use]
    pub fn total_collective_bytes(&self) -> Bytes {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Collective { bytes_per_dpu, .. } => *bytes_per_dpu,
                Phase::Compute { .. } => Bytes::ZERO,
            })
            .sum()
    }
}

/// A workload that can compile itself for a system.
pub trait Workload {
    /// Stable display name (matches the paper's Fig 10 labels).
    fn name(&self) -> &str;

    /// The dominant collective (the paper's Table VII "Comm." column).
    fn comm_pattern(&self) -> CollectiveKind;

    /// Compiles the workload for a system (geometry-aware partitioning).
    fn program(&self, system: &SystemConfig) -> Program;
}

/// Timing outcome of one program on one backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecutionReport {
    /// Total DPU compute time (identical across backends).
    pub compute: SimTime,
    /// Accumulated communication breakdown.
    pub comm: CommBreakdown,
    /// Number of phases executed.
    pub phases: usize,
}

impl ExecutionReport {
    /// End-to-end execution time.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.compute + self.comm.total()
    }

    /// Fraction of time spent communicating (the paper quotes e.g. 83 %
    /// for CC on the baseline).
    #[must_use]
    pub fn comm_fraction(&self) -> f64 {
        self.comm.total().ratio(self.total())
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (compute {}, comm {} = {:.1}%)",
            self.total(),
            self.compute,
            self.comm.total(),
            self.comm_fraction() * 100.0
        )
    }
}

/// Times a program on a system with one collective backend.
///
/// Compute phases go through the DPU model; each collective inherits the
/// preceding compute phase's imbalance as synchronization skew.
///
/// # Errors
///
/// Propagates backend errors (e.g., unsupported collectives).
pub fn run_program(
    program: &Program,
    system: &SystemConfig,
    backend: &dyn CollectiveBackend,
) -> Result<ExecutionReport, PimnetError> {
    run_program_probed(program, system, backend, Probe::disabled())
}

/// [`run_program`] with observability: each collective phase's
/// [`CommBreakdown`] lands in `probe`'s metrics sink — per-tier
/// communication time plus the sync / memory-staging / host buckets — so
/// figure generators can source their columns from one
/// [`pim_sim::MetricsReport`] instead of hand-rolled accumulators. With a
/// disabled probe this is exactly [`run_program`].
///
/// # Errors
///
/// Same as [`run_program`].
pub fn run_program_probed(
    program: &Program,
    system: &SystemConfig,
    backend: &dyn CollectiveBackend,
    probe: &Probe,
) -> Result<ExecutionReport, PimnetError> {
    let mut report = ExecutionReport::default();
    let mut pending_skew = SimTime::ZERO;
    for phase in &program.phases {
        report.phases += 1;
        match phase {
            Phase::Compute { per_dpu, imbalance } => {
                // Every backend waits for the slowest DPU before it can
                // communicate, so the straggler time is compute, not
                // synchronization; only residual jitter (the spread right
                // at the barrier, ~10% of the imbalance) lands in the
                // collective's sync bucket.
                let mean = system.dpu.compute_time(per_dpu);
                let max = SimTime::from_secs_f64(mean.as_secs_f64() * (1.0 + imbalance));
                report.compute += max;
                pending_skew = SimTime::from_secs_f64(mean.as_secs_f64() * imbalance * 0.1);
            }
            Phase::Collective {
                kind,
                bytes_per_dpu,
                elem_bytes,
            } => {
                let spec = CollectiveSpec::new(*kind, *bytes_per_dpu)
                    .with_elem_bytes(*elem_bytes)
                    .with_skew(pending_skew);
                let comm = backend.collective(&spec)?;
                if probe.is_active() {
                    probe.metrics.comm_time(1, comm.inter_bank.as_ps());
                    probe.metrics.comm_time(2, comm.inter_chip.as_ps());
                    probe.metrics.comm_time(3, comm.inter_rank.as_ps());
                    probe.metrics.program_time(
                        comm.sync.as_ps(),
                        comm.mem.as_ps(),
                        comm.host.as_ps(),
                    );
                }
                report.comm = report.comm + comm;
                pending_skew = SimTime::ZERO;
            }
        }
    }
    if probe.is_active() {
        probe.metrics.wall(report.total().as_ps());
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    fn toy_program() -> Program {
        Program::new(vec![
            Phase::compute(OpCounts::new().with_adds(100_000).with_muls(10_000)),
            Phase::collective(CollectiveKind::AllReduce, Bytes::kib(8)),
            Phase::compute(OpCounts::new().with_adds(50_000)),
            Phase::collective(CollectiveKind::ReduceScatter, Bytes::kib(4)),
        ])
    }

    #[test]
    fn compute_is_backend_invariant() {
        let sys = SystemConfig::paper();
        let p = toy_program();
        let a = run_program(&p, &sys, &PimnetBackend::paper()).unwrap();
        let b = run_program(&p, &sys, &BaselineHostBackend::new(sys)).unwrap();
        assert_eq!(a.compute, b.compute);
        assert!(a.comm.total() < b.comm.total());
    }

    #[test]
    fn skew_feeds_the_following_collective() {
        let sys = SystemConfig::paper();
        let heavy = Program::new(vec![
            Phase::Compute {
                per_dpu: OpCounts::new().with_muls(10_000_000),
                imbalance: 0.5,
            },
            Phase::collective(CollectiveKind::AllReduce, Bytes::kib(1)),
        ]);
        let light = Program::new(vec![
            Phase::Compute {
                per_dpu: OpCounts::new().with_muls(10_000_000),
                imbalance: 0.0,
            },
            Phase::collective(CollectiveKind::AllReduce, Bytes::kib(1)),
        ]);
        let h = run_program(&heavy, &sys, &PimnetBackend::paper()).unwrap();
        let l = run_program(&light, &sys, &PimnetBackend::paper()).unwrap();
        // Residual jitter feeds the barrier; the straggler tail itself is
        // accounted as compute (every backend waits for the slowest DPU).
        assert!(h.comm.sync > l.comm.sync);
        assert!(h.compute > l.compute);
    }

    #[test]
    fn report_accounting() {
        let sys = SystemConfig::paper();
        let r = run_program(&toy_program(), &sys, &PimnetBackend::paper()).unwrap();
        assert_eq!(r.phases, 4);
        assert!(r.total() >= r.compute);
        assert!((0.0..=1.0).contains(&r.comm_fraction()));
        assert!(r.to_string().contains("comm"));
    }

    #[test]
    fn program_introspection() {
        let p = toy_program();
        assert_eq!(
            p.collective_kinds(),
            vec![CollectiveKind::ReduceScatter, CollectiveKind::AllReduce]
        );
        assert_eq!(p.total_collective_bytes(), Bytes::kib(12));
    }
}
