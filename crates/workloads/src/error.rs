//! Typed errors for the executable reference kernels.
//!
//! The workload suite carries *functional* models (COO SpMV, pooled
//! embedding lookup, hash join, the event-driven program runner) next to
//! the analytic timing models. Their failure modes — mismatched shapes,
//! out-of-range indices, degenerate partition counts — are caller errors,
//! not bugs, so they surface as [`WorkloadError`] values instead of
//! panics.

use std::error::Error;
use std::fmt;

use pimnet::PimnetError;

/// Errors returned by the workload suite's executable kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkloadError {
    /// An input's length does not match the shape the kernel was built
    /// with (e.g., an SpMV input vector shorter than the matrix side).
    ShapeMismatch {
        /// Which input was mis-shaped.
        what: &'static str,
        /// The length the kernel requires.
        expected: usize,
        /// The length it was given.
        got: usize,
    },
    /// An index refers past the end of its table or matrix.
    IndexOutOfBounds {
        /// Which structure was indexed.
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid entries.
        len: usize,
    },
    /// A partitioned kernel was asked to split its data zero ways.
    ZeroPartitions {
        /// Which kernel rejected the partition count.
        what: &'static str,
    },
    /// The event-driven runner finished a compute phase with completion
    /// events still outstanding — a lost-event bug surfaced as an error
    /// rather than a poisoned timeline.
    LostCompletions {
        /// DPU completions that never arrived.
        missing: u32,
    },
    /// The collective backend rejected a communication phase.
    Backend(PimnetError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ShapeMismatch {
                what,
                expected,
                got,
            } => {
                write!(f, "{what}: expected length {expected}, got {got}")
            }
            WorkloadError::IndexOutOfBounds { what, index, len } => {
                write!(f, "{what}: index {index} out of bounds for {len} entries")
            }
            WorkloadError::ZeroPartitions { what } => {
                write!(f, "{what}: cannot partition into zero parts")
            }
            WorkloadError::LostCompletions { missing } => {
                write!(
                    f,
                    "event-driven run lost {missing} compute completion event(s)"
                )
            }
            WorkloadError::Backend(e) => write!(f, "collective backend: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Backend(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PimnetError> for WorkloadError {
    fn from(e: PimnetError) -> Self {
        WorkloadError::Backend(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        let e = WorkloadError::ShapeMismatch {
            what: "spmv input vector",
            expected: 8,
            got: 3,
        };
        assert_eq!(e.to_string(), "spmv input vector: expected length 8, got 3");
        let e = WorkloadError::IndexOutOfBounds {
            what: "embedding table",
            index: 10,
            len: 10,
        };
        assert!(e.to_string().contains("index 10 out of bounds"));
        let e = WorkloadError::ZeroPartitions { what: "hash join" };
        assert!(e.to_string().contains("zero parts"));
        let e = WorkloadError::LostCompletions { missing: 3 };
        assert!(e.to_string().contains("3 compute completion"));
    }

    #[test]
    fn backend_errors_wrap_with_a_source() {
        let inner = PimnetError::InvalidMessage {
            reason: "zero element size".into(),
        };
        let e = WorkloadError::from(inner.clone());
        assert_eq!(e, WorkloadError::Backend(inner));
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("zero element size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WorkloadError>();
    }
}
