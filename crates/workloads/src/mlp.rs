//! Multi-layer perceptron inference (Table VII: MLP, AllReduce).
//!
//! Three fully-connected `d × d` layers, tensor-parallel: each layer's
//! weight matrix is column-split across DPUs and an AllReduce combines the
//! activations after every layer. On UPMEM the software-emulated multiply
//! dominates, which is why the paper sees only ~1.3× from PIMnet here —
//! and ~40× once Fig 15 swaps in GDDR6-AiM-class compute.

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::program::{Phase, Program, Workload};

/// An MLP with square layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mlp {
    /// Layer width (256 / 512 / 1024 in the paper).
    pub width: u64,
    /// Number of layers.
    pub layers: u32,
}

impl Mlp {
    /// Creates a 3-layer MLP of the given width.
    #[must_use]
    pub fn new(width: u64) -> Self {
        Mlp { width, layers: 3 }
    }
}

impl Workload for Mlp {
    fn name(&self) -> &str {
        "MLP"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::AllReduce
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let cols_per_dpu = self.width.div_ceil(p);
        let macs = self.width * cols_per_dpu;
        // ~20 extra cycles per MAC: loop control, operand addressing and
        // WRAM tile management around the emulated multiply.
        let per_layer = OpCounts::new()
            .with_muls(macs)
            .with_adds(macs + self.width) // MACs + activation
            .with_loads(macs + self.width)
            .with_stores(self.width)
            .with_other(macs * 20);
        let ar_bytes = Bytes::new(self.width * 4);
        let mut phases = Vec::new();
        for _ in 0..self.layers {
            phases.push(Phase::compute(per_layer));
            phases.push(Phase::collective(CollectiveKind::AllReduce, ar_bytes));
        }
        Program::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    #[test]
    fn three_layers_three_allreduces() {
        let p = Mlp::new(1024).program(&SystemConfig::paper());
        assert_eq!(p.phases.len(), 6);
        assert_eq!(p.collective_kinds(), vec![CollectiveKind::AllReduce]);
    }

    #[test]
    fn mlp_is_compute_bound_on_upmem() {
        // §VI-B: the emulated multiply makes MLP mostly compute, so the
        // PIMnet speedup is modest (the paper reports ~1.3x).
        let sys = SystemConfig::paper();
        let prog = Mlp::new(1024).program(&sys);
        let pim = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        let base = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        assert!(
            pim.comm_fraction() < 0.3,
            "MLP on PIMnet should be compute-dominated: {:.2}",
            pim.comm_fraction()
        );
        let speedup = base.total().ratio(pim.total());
        assert!(
            (1.0..4.0).contains(&speedup),
            "MLP speedup {speedup:.2} should be modest"
        );
    }
}
