//! Sparse matrix–vector multiplication (Table VII: SpMV, ReduceScatter).
//!
//! SparseP-style \[31\] 2D DBCOO partitioning with 32 vertical partitions:
//! the matrix is tiled into a `vertical × horizontal` grid of COO blocks,
//! one per DPU. After the local block-SpMV, the DPUs sharing a row stripe
//! hold partial output vectors that a ReduceScatter merges — the paper
//! reports 2.43× from doing that merge over PIMnet instead of the host.

use pim_sim::rng::SimRng;
use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::error::WorkloadError;
use crate::program::{Phase, Program, Workload};

/// A sparse matrix in COO form (the DBCOO partitioning unit of SparseP).
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    /// Rows (= columns; square).
    pub n: usize,
    /// `(row, col, value)` triples, unsorted.
    pub entries: Vec<(u32, u32, f64)>,
}

impl CooMatrix {
    /// Seeded random sparse matrix with about `nnz` non-zeros.
    #[must_use]
    pub fn random(n: usize, nnz: usize, seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let entries = (0..nnz)
            .map(|_| {
                (
                    rng.gen_range(0..n as u32),
                    rng.gen_range(0..n as u32),
                    f64::from(rng.gen_range(-100i32..=100)),
                )
            })
            .collect();
        CooMatrix { n, entries }
    }

    /// Dense reference SpMV: `y = A x`.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::ShapeMismatch`] if `x.len() != n`;
    /// [`WorkloadError::IndexOutOfBounds`] if an entry's row or column
    /// lies outside the matrix.
    pub fn spmv(&self, x: &[f64]) -> Result<Vec<f64>, WorkloadError> {
        if x.len() != self.n {
            return Err(WorkloadError::ShapeMismatch {
                what: "spmv input vector",
                expected: self.n,
                got: x.len(),
            });
        }
        let mut y = vec![0.0; self.n];
        for &(r, c, v) in &self.entries {
            let (r, c) = (r as usize, c as usize);
            let oob = r.max(c);
            if oob >= self.n {
                return Err(WorkloadError::IndexOutOfBounds {
                    what: "coo matrix entry",
                    index: oob,
                    len: self.n,
                });
            }
            y[r] += v * x[c];
        }
        Ok(y)
    }

    /// 2D DBCOO partitioning into a `vertical × horizontal` grid of COO
    /// blocks — one block per PIM bank, exactly as the workload maps it.
    ///
    /// # Errors
    ///
    /// [`WorkloadError::ZeroPartitions`] if either grid dimension is zero;
    /// [`WorkloadError::IndexOutOfBounds`] if an entry lies outside the
    /// matrix (it would not map to any block).
    pub fn partition_2d(
        &self,
        vertical: usize,
        horizontal: usize,
    ) -> Result<Vec<CooMatrix>, WorkloadError> {
        if vertical == 0 || horizontal == 0 {
            return Err(WorkloadError::ZeroPartitions {
                what: "2d dbcoo partitioning",
            });
        }
        let row_stripe = self.n.div_ceil(vertical).max(1);
        let col_stripe = self.n.div_ceil(horizontal).max(1);
        let mut blocks = vec![
            CooMatrix {
                n: self.n,
                entries: Vec::new()
            };
            vertical * horizontal
        ];
        for &(r, c, v) in &self.entries {
            let (r, c) = (r as usize, c as usize);
            let oob = r.max(c);
            if oob >= self.n {
                return Err(WorkloadError::IndexOutOfBounds {
                    what: "coo matrix entry",
                    index: oob,
                    len: self.n,
                });
            }
            let bi = (r / row_stripe) * horizontal + c / col_stripe;
            blocks[bi].entries.push((r as u32, c as u32, v));
        }
        Ok(blocks)
    }

    /// The partitioned SpMV the PIM system runs: every block computes a
    /// partial output, and the per-stripe partials are reduced — the data
    /// movement the ReduceScatter phase performs. Must equal [`Self::spmv`].
    ///
    /// # Errors
    ///
    /// Propagates [`Self::partition_2d`] and [`Self::spmv`] errors.
    pub fn partitioned_spmv(
        &self,
        x: &[f64],
        vertical: usize,
        horizontal: usize,
    ) -> Result<Vec<f64>, WorkloadError> {
        let mut y = vec![0.0; self.n];
        for block in self.partition_2d(vertical, horizontal)? {
            // Each block's partial is produced independently on its bank...
            let partial = block.spmv(x)?;
            // ...and reduced into the stripe's output (the collective).
            for (i, v) in partial.into_iter().enumerate() {
                y[i] += v;
            }
        }
        Ok(y)
    }
}

/// A 2D-partitioned SpMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Spmv {
    /// Matrix rows (= columns; square, graph-like).
    pub rows: u64,
    /// Non-zero count.
    pub nnz: u64,
    /// Vertical partitions (32 in the paper's configuration).
    pub vertical_partitions: u64,
}

impl Spmv {
    /// The paper configuration: a gowalla-scale sparse matrix with 32
    /// vertical partitions.
    #[must_use]
    pub fn paper() -> Self {
        Spmv {
            rows: 196_591,
            nnz: 1_900_000,
            vertical_partitions: 32,
        }
    }
}

impl Workload for Spmv {
    fn name(&self) -> &str {
        "SpMV"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::ReduceScatter
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        // Each DPU's COO block: nnz/p entries; per entry one MAC plus COO
        // index decoding.
        let nnz_per_dpu = self.nnz.div_ceil(p);
        // ~220 effective cycles per non-zero: COO decode plus a random
        // x[col] gather from MRAM (SparseP measures DPUs heavily
        // latency-bound on exactly this access).
        let compute = OpCounts::new()
            .with_muls(nnz_per_dpu)
            .with_adds(nnz_per_dpu)
            .with_loads(nnz_per_dpu * 3) // value + row + col
            .with_stores(nnz_per_dpu)
            .with_other(nnz_per_dpu * 220);
        // Partial outputs: each DPU holds its row stripe's partial vector
        // (rows / vertical_partitions values), reduced across the stripe.
        let rs_bytes = Bytes::new(self.rows.div_ceil(self.vertical_partitions) * 4);
        Program::new(vec![
            Phase::Compute {
                per_dpu: compute,
                imbalance: 0.3, // COO blocks are very uneven
            },
            Phase::collective(CollectiveKind::ReduceScatter, rs_bytes),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    #[test]
    fn paper_speedup_band() {
        // The paper reports 2.43x end-to-end from accelerating the partial
        // sum Reduce-Scatter.
        let sys = SystemConfig::paper();
        let prog = Spmv::paper().program(&sys);
        let base = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        let pim = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        let speedup = base.total().ratio(pim.total());
        assert!(
            (1.3..8.0).contains(&speedup),
            "SpMV speedup {speedup:.2}x out of band"
        );
    }

    #[test]
    fn partitioned_spmv_equals_direct() {
        let m = CooMatrix::random(500, 4_000, 42);
        let x: Vec<f64> = (0..500).map(|i| f64::from(i % 17) - 8.0).collect();
        let direct = m.spmv(&x).unwrap();
        for (v, h) in [(32usize, 8usize), (4, 4), (1, 1), (500, 1)] {
            let part = m.partitioned_spmv(&x, v, h).unwrap();
            for (a, b) in direct.iter().zip(&part) {
                assert!((a - b).abs() < 1e-9, "({v},{h}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn malformed_inputs_are_typed_errors() {
        use crate::error::WorkloadError;
        let m = CooMatrix::random(100, 500, 3);
        // Wrong input-vector length.
        assert_eq!(
            m.spmv(&[0.0; 99]),
            Err(WorkloadError::ShapeMismatch {
                what: "spmv input vector",
                expected: 100,
                got: 99,
            })
        );
        // Zero-way partitioning.
        assert!(matches!(
            m.partition_2d(0, 8),
            Err(WorkloadError::ZeroPartitions { .. })
        ));
        assert!(matches!(
            m.partitioned_spmv(&[1.0; 100], 4, 0),
            Err(WorkloadError::ZeroPartitions { .. })
        ));
        // An entry outside the matrix surfaces instead of panicking.
        let bad = CooMatrix {
            n: 10,
            entries: vec![(3, 12, 1.0)],
        };
        assert_eq!(
            bad.spmv(&[1.0; 10]),
            Err(WorkloadError::IndexOutOfBounds {
                what: "coo matrix entry",
                index: 12,
                len: 10,
            })
        );
        assert!(bad.partition_2d(2, 2).is_err());
    }

    #[test]
    fn partition_preserves_every_entry() {
        let m = CooMatrix::random(200, 1_500, 7);
        let blocks = m.partition_2d(32, 8).unwrap();
        assert_eq!(blocks.len(), 256);
        let total: usize = blocks.iter().map(|b| b.entries.len()).sum();
        assert_eq!(total, m.entries.len());
        // Blocks are genuinely uneven — the source of the workload's high
        // compute imbalance.
        let max = blocks.iter().map(|b| b.entries.len()).max().unwrap();
        let min = blocks.iter().map(|b| b.entries.len()).min().unwrap();
        assert!(max > min);
    }

    #[test]
    fn rs_payload_is_the_row_stripe() {
        let prog = Spmv::paper().program(&SystemConfig::paper());
        // 196591 / 32 ~= 6144 values x 4 B ~= 24 KiB.
        let bytes = prog.total_collective_bytes().as_u64();
        assert!((20_000..30_000).contains(&bytes), "{bytes}");
    }
}
