//! Breadth-first search (Table VII: BFS, AllReduce).
//!
//! Vertex-partitioned frontier BFS as in the PrIM suite \[39\]: each DPU owns
//! a slice of the vertices, expands its part of the frontier, and an
//! AllReduce (bitwise OR, modeled as an elementwise reduce of the frontier
//! bitmap) merges the next frontier after every level. The phase structure
//! comes from *actually running* BFS on the graph, so frontier sizes and
//! level counts are real.

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::graph::{Graph, LevelStats};
use crate::program::{Phase, Program, Workload};

/// BFS over a fixed graph, rooted at its highest-degree vertex.
#[derive(Debug, Clone)]
pub struct Bfs {
    graph: &'static Graph,
    levels: Vec<LevelStats>,
}

impl Bfs {
    /// BFS on the log-gowalla-scale graph (cached globally).
    #[must_use]
    pub fn log_gowalla() -> Self {
        let graph = Graph::log_gowalla();
        let (_, levels) = graph.bfs(graph.hub());
        Bfs { graph, levels }
    }

    /// The level statistics the traversal produced.
    #[must_use]
    pub fn levels(&self) -> &[LevelStats] {
        &self.levels
    }
}

impl Workload for Bfs {
    fn name(&self) -> &str {
        "BFS"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::AllReduce
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let v = self.graph.vertex_count() as u64;
        // Frontier bitmap: one bit per vertex, AllReduced (OR) per level.
        let bitmap_bytes = Bytes::new(v.div_ceil(8));
        let mut phases = Vec::new();
        for level in &self.levels {
            let edges = level.edges_scanned as u64;
            // Edge expansion: per scanned edge, load the neighbour, test and
            // set the bitmap. Graph partitions are degree-skewed, hence the
            // higher imbalance.
            // ~400 effective cycles per scanned edge: random neighbour
            // fetches from MRAM through the DMA engine, bitmap tests and
            // branchy frontier updates (PrIM [39] measures BFS at hundreds
            // of cycles per edge on real DPUs).
            let per_dpu = OpCounts::new()
                .with_adds(edges.div_ceil(p) * 2)
                .with_loads(edges.div_ceil(p) * 2)
                .with_stores((level.frontier as u64).div_ceil(p))
                .with_other(edges.div_ceil(p) * 400);
            phases.push(Phase::Compute {
                per_dpu,
                imbalance: 0.25,
            });
            phases.push(Phase::collective(CollectiveKind::AllReduce, bitmap_bytes));
        }
        Program::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    #[test]
    fn level_structure_is_real() {
        let bfs = Bfs::log_gowalla();
        assert!((3..=12).contains(&bfs.levels().len()));
        // The middle levels carry most of the graph.
        let total: usize = bfs.levels().iter().map(|l| l.frontier).sum();
        assert!(total > 150_000, "giant component too small: {total}");
    }

    #[test]
    fn baseline_bfs_is_communication_bound() {
        // Fig 10: AllReduce is up to ~80% of baseline BFS/CC time.
        let sys = SystemConfig::paper();
        let prog = Bfs::log_gowalla().program(&sys);
        let base = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        assert!(
            base.comm_fraction() > 0.5,
            "baseline BFS comm fraction {:.2}",
            base.comm_fraction()
        );
        let pim = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        assert!(
            pim.comm_fraction() < base.comm_fraction(),
            "PIMnet must shrink the communication share"
        );
        assert!(base.total() > pim.total());
    }
}
