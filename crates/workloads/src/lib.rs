//! Workload suite for the PIMnet reproduction (paper Table VII).
//!
//! Every workload of the paper's evaluation is implemented as a [`Workload`]
//! that compiles itself — for a given [`pim_arch::SystemConfig`] — into a
//! [`program::Program`]: an alternating sequence of per-DPU compute phases
//! (instruction counts fed through the DPU timing model) and collective
//! communication phases (timed by whichever
//! [`pimnet::backends::CollectiveBackend`] is under evaluation). The
//! compute side is identical across backends by construction, exactly as
//! the paper requires for its Fig 10 comparison.
//!
//! | workload | description | collective |
//! |----------|-------------|------------|
//! | [`emb::Emb`] | DLRM embedding-table lookup (synthetic + RM1–RM3 profiles) | ReduceScatter |
//! | [`ntt::NttWorkload`] | 2D Number Theoretic Transform, `N = 2^16` | All-to-All |
//! | [`gemv::Gemv`] | dense matrix–vector multiplication | ReduceScatter |
//! | [`mlp::Mlp`] | multi-layer perceptron (tensor parallel) | AllReduce |
//! | [`spmv::Spmv`] | sparse matrix–vector (SparseP DBCOO, 32 vertical partitions) | ReduceScatter |
//! | [`bfs::Bfs`] | breadth-first search on a log-gowalla-like graph | AllReduce |
//! | [`cc::Cc`] | connected components on the same graph | AllReduce |
//! | [`join::HashJoin`] | hash join, 64 M tuples | All-to-All |
//!
//! The irregular workloads are *actually executed*: [`graph`] generates a
//! seeded power-law graph at the published log-gowalla scale and the
//! BFS/CC phase structure comes from running the real traversal;
//! [`ntt`] contains a complete NTT implementation over the Goldilocks
//! prime, property-tested against the naive DFT.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod cc;
pub mod des;
pub mod emb;
pub mod error;
pub mod gemv;
pub mod graph;
pub mod join;
pub mod mlp;
pub mod ntt;
pub mod program;
pub mod spmv;

pub use error::WorkloadError;
pub use program::{run_program, run_program_probed, ExecutionReport, Phase, Program, Workload};

use pim_arch::SystemConfig;

/// Every paper workload with its representative configuration, in the
/// Fig 10 order.
#[must_use]
pub fn paper_suite() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(bfs::Bfs::log_gowalla()),
        Box::new(cc::Cc::log_gowalla()),
        Box::new(mlp::Mlp::new(1024)),
        Box::new(gemv::Gemv::new(1024, 64)),
        Box::new(emb::Emb::synth()),
        Box::new(emb::Emb::rm1()),
        Box::new(emb::Emb::rm2()),
        Box::new(emb::Emb::rm3()),
        Box::new(ntt::NttWorkload::paper()),
        Box::new(spmv::Spmv::paper()),
        Box::new(join::HashJoin::paper()),
    ]
}

/// Runs every suite workload against one backend (convenience for the
/// figures and tests).
///
/// # Errors
///
/// Propagates the first backend error (unsupported collectives are mapped
/// to `None` instead of failing the sweep).
pub fn run_suite(
    system: &SystemConfig,
    backend: &dyn pimnet::backends::CollectiveBackend,
) -> Result<Vec<(String, Option<ExecutionReport>)>, pimnet::PimnetError> {
    let mut out = Vec::new();
    for w in paper_suite() {
        let program = w.program(system);
        if program
            .collective_kinds()
            .iter()
            .any(|&k| !backend.supports(k))
        {
            out.push((w.name().to_string(), None));
            continue;
        }
        let report = program::run_program(&program, system, backend)?;
        out.push((w.name().to_string(), Some(report)));
    }
    Ok(out)
}
