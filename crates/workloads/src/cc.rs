//! Connected components (Table VII: CC, AllReduce).
//!
//! Synchronous min-label propagation: every sweep relaxes each vertex's
//! label to the minimum over its neighbourhood, then an AllReduce (min)
//! over the full label array merges the partitions' views. The sweep count
//! comes from really running the algorithm on the graph. Labels are a full
//! `4 B × V` array per DPU, so the per-iteration collective is much larger
//! than BFS's bitmap — which is why the paper sees CC gain more from
//! PIMnet than BFS (5.6× vs less), and why its Fig 11 breakdown shows a
//! visible `Mem` component (the array exceeds the WRAM staging budget).

use pim_sim::Bytes;

use pim_arch::{OpCounts, SystemConfig};
use pimnet::collective::CollectiveKind;

use crate::graph::Graph;
use crate::program::{Phase, Program, Workload};

/// Connected components over a fixed graph.
#[derive(Debug, Clone)]
pub struct Cc {
    graph: &'static Graph,
    iterations: usize,
}

impl Cc {
    /// CC on the log-gowalla-scale graph (cached globally).
    #[must_use]
    pub fn log_gowalla() -> Self {
        let graph = Graph::log_gowalla();
        let (_, iterations) = graph.connected_components();
        Cc { graph, iterations }
    }

    /// Label-propagation sweeps until convergence.
    #[must_use]
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

impl Workload for Cc {
    fn name(&self) -> &str {
        "CC"
    }

    fn comm_pattern(&self) -> CollectiveKind {
        CollectiveKind::AllReduce
    }

    fn program(&self, system: &SystemConfig) -> Program {
        let p = u64::from(system.geometry.dpus_per_channel());
        let v = self.graph.vertex_count() as u64;
        let e = self.graph.edge_count() as u64;
        // Per sweep, only the labels that changed (boundary vertices,
        // ~1/8 of V on power-law graphs) are exchanged; each sweep streams
        // every edge with a random label lookup (~125 effective cycles).
        let label_bytes = Bytes::new(v * 4 / 8);
        let per_sweep = OpCounts::new()
            .with_adds(e.div_ceil(p)) // min comparisons
            .with_loads(e.div_ceil(p) * 2)
            .with_stores(v.div_ceil(p))
            .with_other(e.div_ceil(p) * 125);
        let mut phases = Vec::new();
        for _ in 0..self.iterations {
            phases.push(Phase::Compute {
                per_dpu: per_sweep,
                imbalance: 0.2,
            });
            phases.push(Phase::collective(CollectiveKind::AllReduce, label_bytes));
        }
        Program::new(phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::run_program;
    use pimnet::backends::{BaselineHostBackend, PimnetBackend};

    #[test]
    fn converges_in_a_handful_of_sweeps() {
        let cc = Cc::log_gowalla();
        assert!((3..=20).contains(&cc.iterations()), "{}", cc.iterations());
    }

    #[test]
    fn paper_headline_cc_speedup_band() {
        // Fig 10: baseline CC is >80% AllReduce; PIMnet cuts it to a few
        // percent and gains ~5.6x end to end.
        let sys = SystemConfig::paper();
        let prog = Cc::log_gowalla().program(&sys);
        let base = run_program(&prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
        let pim = run_program(&prog, &sys, &PimnetBackend::paper()).unwrap();
        assert!(
            base.comm_fraction() > 0.7,
            "baseline CC comm fraction {:.2}",
            base.comm_fraction()
        );
        let speedup = base.total().ratio(pim.total());
        assert!(
            (2.0..30.0).contains(&speedup),
            "CC speedup {speedup:.1}x out of band"
        );
        // The big label array overflows WRAM: Mem shows up under PIMnet.
        assert!(pim.comm.mem > pim_sim::SimTime::ZERO);
    }

    #[test]
    fn cc_gains_more_than_bfs() {
        // §VI-B: "the larger amount of communication for CC results in
        // higher performance improvement [than BFS]".
        let sys = SystemConfig::paper();
        let speedup = |prog: &crate::Program| {
            let b = run_program(prog, &sys, &BaselineHostBackend::new(sys)).unwrap();
            let p = run_program(prog, &sys, &PimnetBackend::paper()).unwrap();
            b.total().ratio(p.total())
        };
        let cc = speedup(&Cc::log_gowalla().program(&sys));
        let bfs = speedup(&crate::bfs::Bfs::log_gowalla().program(&sys));
        assert!(cc > bfs, "CC {cc:.2}x should exceed BFS {bfs:.2}x");
    }
}
