//! # PIMnet — a PIM-controlled interconnection network for collective communication
//!
//! This crate is the primary contribution of the reproduced paper
//! (*PIMnet: A Domain-Specific Network for Efficient Collective Communication
//! in Scalable PIM*, HPCA 2025): a multi-tier interconnect that lets
//! bank-level PIM compute units talk to each other directly instead of
//! round-tripping through the host CPU.
//!
//! The three tiers mirror the DRAM packaging hierarchy (paper §IV-B,
//! Table IV):
//!
//! * **inter-bank** — a bidirectional ring over the chip's internal I/O bus
//!   (four 16-bit, 0.7 GB/s channels per bank), with a bufferless,
//!   arbitration-free *PIMnet stop* at every bank;
//! * **inter-chip** — the chip's DQ pins, split into one 1.05 GB/s send and
//!   one 1.05 GB/s receive channel, meeting in an 8×8 crossbar on the DIMM
//!   buffer chip;
//! * **inter-rank** — the existing multi-drop DDR bus (16.8 GB/s,
//!   half-duplex), used as a scheduled broadcast medium.
//!
//! Because collective traffic is *deterministic* (source, destination and
//! size are known before the kernel launches), PIMnet needs no routing, no
//! buffering and no arbitration: communication is compiled to a static
//! [`schedule::CommSchedule`] whose contention-freedom is machine-checkable
//! ([`schedule::validate`]), timed analytically ([`timing`]), and executable
//! on real data ([`exec`]).
//!
//! Comparison systems from the paper's evaluation (baseline host-mediated
//! collectives, the idealized software stack, DIMM-Link, NDPBridge) live in
//! [`backends`] behind a single [`backends::CollectiveBackend`] trait.
//!
//! # Quick start
//!
//! ```
//! use pimnet::api::PimnetSystem;
//! use pimnet::collective::CollectiveKind;
//! use pim_sim::Bytes;
//!
//! // The paper's 256-DPU system, with PIMnet attached.
//! let sys = PimnetSystem::paper();
//!
//! // Time a 32 KiB-per-DPU AllReduce over PIMnet.
//! let report = sys.collective(CollectiveKind::AllReduce, Bytes::kib(32))?;
//! assert!(report.total().as_us() < 500.0);
//!
//! // The same collective through the host takes milliseconds.
//! let base = sys.baseline_collective(CollectiveKind::AllReduce, Bytes::kib(32))?;
//! assert!(base.total() > report.total() * 10);
//! # Ok::<(), pimnet::PimnetError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod backends;
pub mod collective;
pub mod energy;
mod error;
pub mod exec;
pub mod fabric;
pub mod framework;
pub mod hwcost;
pub mod isa;
pub mod recovery;
pub mod resilience;
pub mod roofline;
pub mod schedule;
pub mod serve;
pub mod sync;
pub mod timeline;
pub mod timing;
pub mod topology;

pub use api::PimnetSystem;
pub use collective::{CollectiveKind, CollectiveSpec};
pub use error::PimnetError;
pub use fabric::FabricConfig;
pub use timing::CommBreakdown;
