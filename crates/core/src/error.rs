//! Error type for the PIMnet public API.

use std::error::Error;
use std::fmt;

use pim_arch::geometry::PimGeometry;

use crate::collective::CollectiveKind;

/// Errors returned by PIMnet's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PimnetError {
    /// The requested collective is not supported by the selected backend
    /// (e.g., NDPBridge has no in-network reduction, so no AllReduce).
    UnsupportedCollective {
        /// The collective that was requested.
        kind: CollectiveKind,
        /// The backend that rejected it.
        backend: &'static str,
    },
    /// The geometry violates a requirement of the schedule builder (e.g.,
    /// All-to-All pairwise exchange needs power-of-two dimensions).
    InvalidGeometry {
        /// The offending geometry.
        geometry: PimGeometry,
        /// Why it was rejected.
        reason: String,
    },
    /// The message is malformed for the collective (e.g., zero element size).
    InvalidMessage {
        /// Why it was rejected.
        reason: String,
    },
    /// A schedule failed static validation — this indicates a bug in a
    /// schedule builder and is surfaced rather than silently mistimed.
    ScheduleInvalid {
        /// Validator diagnostic.
        reason: String,
    },
}

impl fmt::Display for PimnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimnetError::UnsupportedCollective { kind, backend } => {
                write!(f, "collective {kind} is not supported by backend {backend}")
            }
            PimnetError::InvalidGeometry { geometry, reason } => {
                write!(f, "invalid geometry {geometry}: {reason}")
            }
            PimnetError::InvalidMessage { reason } => {
                write!(f, "invalid message: {reason}")
            }
            PimnetError::ScheduleInvalid { reason } => {
                write!(f, "schedule failed validation: {reason}")
            }
        }
    }
}

impl Error for PimnetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_complete() {
        let e = PimnetError::UnsupportedCollective {
            kind: CollectiveKind::AllReduce,
            backend: "ndp-bridge",
        };
        assert_eq!(
            e.to_string(),
            "collective AllReduce is not supported by backend ndp-bridge"
        );

        let e = PimnetError::InvalidMessage {
            reason: "zero element size".into(),
        };
        assert!(e.to_string().contains("zero element size"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PimnetError>();
    }
}
