//! Error type for the PIMnet public API.

use std::error::Error;
use std::fmt;

use pim_arch::geometry::PimGeometry;

use crate::collective::CollectiveKind;

/// Errors returned by PIMnet's public API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PimnetError {
    /// The requested collective is not supported by the selected backend
    /// (e.g., NDPBridge has no in-network reduction, so no AllReduce).
    UnsupportedCollective {
        /// The collective that was requested.
        kind: CollectiveKind,
        /// The backend that rejected it.
        backend: &'static str,
    },
    /// The geometry violates a requirement of the schedule builder (e.g.,
    /// All-to-All pairwise exchange needs power-of-two dimensions).
    InvalidGeometry {
        /// The offending geometry.
        geometry: PimGeometry,
        /// Why it was rejected.
        reason: String,
    },
    /// The message is malformed for the collective (e.g., zero element size).
    InvalidMessage {
        /// Why it was rejected.
        reason: String,
    },
    /// A schedule failed static validation — this indicates a bug in a
    /// schedule builder and is surfaced rather than silently mistimed.
    ScheduleInvalid {
        /// Validator diagnostic.
        reason: String,
    },
    /// A transfer stayed corrupted through its whole bounded-retry budget
    /// (every attempt failed its CRC check).
    TransferFailed {
        /// Phase index within the schedule.
        phase: usize,
        /// Step index within the phase.
        step: usize,
        /// Transfer index within the step.
        transfer: usize,
        /// Attempts made (the original send plus every retry).
        attempts: u32,
    },
    /// The READY/START barrier did not close before the watchdog fired —
    /// either participants are hard-dead and will never raise READY, or a
    /// straggler overran the timeout.
    SyncTimeout {
        /// Watchdog timeout that expired, in nanoseconds.
        timeout_ns: u64,
        /// Participants that never raised READY (empty when a straggler,
        /// rather than a dead node, blew the deadline).
        missing: Vec<u32>,
    },
    /// The collective's plan names a hard-dead DPU; the schedule must be
    /// rebuilt around it (see `resilience`).
    DeadDpu {
        /// The dead participant.
        dpu: u32,
    },
    /// A rank's DQ lanes are permanently dead, so every DPU on it is
    /// unreachable; the plan must exclude the whole rank.
    DeadRank {
        /// The dead rank (within its channel).
        rank: u32,
    },
    /// A permanent fabric fault leaves part of the schedule with no
    /// surviving route — repair cannot preserve the full participant set
    /// and the plan must degrade further down the ladder.
    Unroutable {
        /// What could not be routed around, and why.
        reason: String,
    },
    /// A cycle-level simulation hit its deadlock guard: traffic stopped
    /// making progress before every packet was delivered (e.g. a fault
    /// scenario wedged the flow control). Surfaced as a typed error on
    /// fault paths instead of a panic, so chaos harnesses can count it.
    SimulationStalled {
        /// Cycle count at which the guard fired.
        cycles: u64,
        /// Packets still undelivered.
        remaining: usize,
    },
    /// The serving engine refused to enqueue a request: the tenant's
    /// bounded queue was full, its token bucket was empty, or the
    /// overload ladder / quarantine policy is shedding its class.
    /// Backpressure is explicit — requests are rejected with this typed
    /// error rather than queued forever.
    AdmissionRejected {
        /// The tenant whose request was turned away.
        tenant: u32,
        /// Why admission control said no.
        reason: String,
    },
    /// A queued request's deadline passed before (or while) it could be
    /// dispatched; the serving engine sheds it rather than serving a
    /// result nobody is waiting for.
    DeadlineExceeded {
        /// The tenant whose request slipped its deadline.
        tenant: u32,
        /// The absolute deadline, integer picoseconds on the serve clock.
        deadline_ps: u64,
        /// The serve-clock time at which the slip was detected.
        now_ps: u64,
    },
}

impl fmt::Display for PimnetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PimnetError::UnsupportedCollective { kind, backend } => {
                write!(f, "collective {kind} is not supported by backend {backend}")
            }
            PimnetError::InvalidGeometry { geometry, reason } => {
                write!(f, "invalid geometry {geometry}: {reason}")
            }
            PimnetError::InvalidMessage { reason } => {
                write!(f, "invalid message: {reason}")
            }
            PimnetError::ScheduleInvalid { reason } => {
                write!(f, "schedule failed validation: {reason}")
            }
            PimnetError::TransferFailed {
                phase,
                step,
                transfer,
                attempts,
            } => {
                write!(
                    f,
                    "transfer {transfer} of phase {phase} step {step} failed \
                     CRC on all {attempts} attempts"
                )
            }
            PimnetError::SyncTimeout {
                timeout_ns,
                missing,
            } => {
                if missing.is_empty() {
                    write!(f, "READY/START barrier timed out after {timeout_ns} ns")
                } else {
                    write!(
                        f,
                        "READY/START barrier timed out after {timeout_ns} ns; \
                         {} participant(s) never raised READY: {missing:?}",
                        missing.len()
                    )
                }
            }
            PimnetError::DeadDpu { dpu } => {
                write!(f, "collective plan includes hard-dead DPU{dpu}")
            }
            PimnetError::DeadRank { rank } => {
                write!(f, "rank {rank}'s DQ lanes are permanently dead")
            }
            PimnetError::Unroutable { reason } => {
                write!(f, "permanent fault leaves no surviving route: {reason}")
            }
            PimnetError::SimulationStalled { cycles, remaining } => {
                write!(
                    f,
                    "simulation stalled after {cycles} cycles with {remaining} \
                     packet(s) undelivered"
                )
            }
            PimnetError::AdmissionRejected { tenant, reason } => {
                write!(f, "tenant {tenant} request rejected at admission: {reason}")
            }
            PimnetError::DeadlineExceeded {
                tenant,
                deadline_ps,
                now_ps,
            } => {
                write!(
                    f,
                    "tenant {tenant} request shed: deadline {deadline_ps} ps \
                     passed at {now_ps} ps"
                )
            }
        }
    }
}

impl Error for PimnetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_complete() {
        let e = PimnetError::UnsupportedCollective {
            kind: CollectiveKind::AllReduce,
            backend: "ndp-bridge",
        };
        assert_eq!(
            e.to_string(),
            "collective AllReduce is not supported by backend ndp-bridge"
        );

        let e = PimnetError::InvalidMessage {
            reason: "zero element size".into(),
        };
        assert!(e.to_string().contains("zero element size"));

        let e = PimnetError::AdmissionRejected {
            tenant: 3,
            reason: "queue full (cap 8)".into(),
        };
        assert_eq!(
            e.to_string(),
            "tenant 3 request rejected at admission: queue full (cap 8)"
        );

        let e = PimnetError::DeadlineExceeded {
            tenant: 1,
            deadline_ps: 5_000,
            now_ps: 7_500,
        };
        assert_eq!(
            e.to_string(),
            "tenant 1 request shed: deadline 5000 ps passed at 7500 ps"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PimnetError>();
    }
}
