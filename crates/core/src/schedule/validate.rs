//! Static schedule validation — the machine-checkable form of PIMnet's
//! "no contention, no buffering, no arbitration" claim.
//!
//! The validator proves three families of properties about a
//! [`CommSchedule`]:
//!
//! 1. **Structural soundness** — every transfer's resource path actually
//!    connects its endpoints at the right tier, spans stay inside the
//!    buffer, reductions only appear in reducing collectives.
//! 2. **Ring exclusivity** — in phases not marked `multiplexed`, no fabric
//!    resource carries two different flows in the same step. This is the
//!    hard hardware constraint: a PIMnet stop has no input buffer, so a
//!    ring segment cannot serve two flows at once.
//! 3. **Contention metrics** — for multiplexed phases (the WAIT-scheduled
//!    DQ channels and bus), the maximum number of flows sharing a resource
//!    per step, which the timing model turns into deterministic
//!    time-multiplexing.

use std::collections::HashMap;

use crate::error::PimnetError;
use crate::topology::{ChipLoc, Resource};

use super::{CommSchedule, Transfer};

/// Result of a successful validation, with contention metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Steps examined.
    pub steps: usize,
    /// Non-local transfers examined.
    pub transfers: usize,
    /// Max flows sharing one ring segment in any step (1 for ring phases by
    /// rule 2; may exceed 1 in multiplexed phases such as All-to-All).
    pub max_ring_sharing: usize,
    /// Max flows sharing one chip DQ channel in any step.
    pub max_chip_sharing: usize,
    /// Max flows sharing the rank bus in any step.
    pub max_bus_sharing: usize,
}

/// Validates a schedule. See the [module docs](self) for the rules.
///
/// # Errors
///
/// Returns [`PimnetError::ScheduleInvalid`] with a diagnostic naming the
/// first violated rule.
pub fn validate(schedule: &CommSchedule) -> Result<ValidationReport, PimnetError> {
    let mut report = ValidationReport::default();
    let g = &schedule.geometry;

    for (pi, phase) in schedule.phases.iter().enumerate() {
        for (si, step) in phase.steps.iter().enumerate() {
            report.steps += 1;
            // A "flow" is a distinct (source, destination-set) pair: several
            // back-to-back transfers of one pair count once, since they form
            // a single scheduled slot on the wire.
            let mut usage: HashMap<Resource, std::collections::HashSet<(u32, Vec<u32>)>> =
                HashMap::new();
            for t in &step.transfers {
                check_transfer(schedule, t, pi, si)?;
                if t.is_local() {
                    continue;
                }
                report.transfers += 1;
                let flow = (t.src.0, t.dsts.iter().map(|d| d.0).collect::<Vec<_>>());
                for r in &t.resources {
                    usage.entry(*r).or_default().insert(flow.clone());
                }
            }
            let usage: HashMap<Resource, usize> =
                usage.into_iter().map(|(r, s)| (r, s.len())).collect();
            for (r, n) in &usage {
                match r {
                    Resource::RingSegment { .. } => {
                        report.max_ring_sharing = report.max_ring_sharing.max(*n);
                        if !phase.multiplexed && *n > 1 {
                            return Err(invalid(format!(
                                "phase {pi} step {si}: ring segment {r} carries {n} flows \
                                 in a non-multiplexed phase"
                            )));
                        }
                    }
                    Resource::ChipTx { .. } | Resource::ChipRx { .. } => {
                        report.max_chip_sharing = report.max_chip_sharing.max(*n);
                        if !phase.multiplexed && *n > 1 {
                            return Err(invalid(format!(
                                "phase {pi} step {si}: chip channel {r} carries {n} flows \
                                 in a non-multiplexed phase"
                            )));
                        }
                    }
                    Resource::RankBus { .. } => {
                        report.max_bus_sharing = report.max_bus_sharing.max(*n);
                    }
                }
            }
        }
    }
    let _ = g;
    Ok(report)
}

fn invalid(reason: String) -> PimnetError {
    PimnetError::ScheduleInvalid { reason }
}

fn check_transfer(
    schedule: &CommSchedule,
    t: &Transfer,
    pi: usize,
    si: usize,
) -> Result<(), PimnetError> {
    let g = &schedule.geometry;
    let ctx = format!("phase {pi} step {si} ({} -> {:?})", t.src, t.dsts);

    if t.dsts.is_empty() {
        return Err(invalid(format!("{ctx}: transfer with no destination")));
    }
    if t.src_span.len != t.dst_span.len {
        return Err(invalid(format!("{ctx}: span length mismatch")));
    }
    if t.src_span.end() > schedule.buffer_len || t.dst_span.end() > schedule.buffer_len {
        return Err(invalid(format!(
            "{ctx}: span beyond buffer ({} elems)",
            schedule.buffer_len
        )));
    }
    if t.combine && !schedule.kind.reduces() {
        return Err(invalid(format!(
            "{ctx}: reduction in non-reducing collective {}",
            schedule.kind
        )));
    }

    if t.is_local() {
        if t.dsts != [t.src] {
            return Err(invalid(format!(
                "{ctx}: resource-less transfer must be local"
            )));
        }
        return Ok(());
    }
    if t.dsts.contains(&t.src) {
        return Err(invalid(format!(
            "{ctx}: node sends to itself over the fabric"
        )));
    }

    // Path/endpoint consistency per tier.
    let src = g.coord(t.src);
    let all_same_chip = t.dsts.iter().all(|&d| g.same_chip(t.src, d));
    let all_same_rank = t.dsts.iter().all(|&d| g.same_rank(t.src, d));
    let crosses_rank = t.dsts.iter().any(|&d| !g.same_rank(t.src, d));
    let uses_bus = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::RankBus { .. }));
    let uses_ring = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::RingSegment { .. }));

    if all_same_chip {
        if !t
            .resources
            .iter()
            .all(|r| matches!(r, Resource::RingSegment { chip, .. } if *chip == ChipLoc::of(src)))
        {
            return Err(invalid(format!(
                "{ctx}: same-chip transfer must use only its own ring segments"
            )));
        }
    } else if all_same_rank {
        if uses_bus || uses_ring {
            return Err(invalid(format!(
                "{ctx}: same-rank transfer must use only DQ channels"
            )));
        }
        expect_dq_endpoints(g, t, &ctx)?;
    } else {
        if !crosses_rank || !uses_bus {
            return Err(invalid(format!(
                "{ctx}: cross-rank transfer must traverse the rank bus"
            )));
        }
        expect_dq_endpoints(g, t, &ctx)?;
    }
    Ok(())
}

fn expect_dq_endpoints(
    g: &pim_arch::geometry::PimGeometry,
    t: &Transfer,
    ctx: &str,
) -> Result<(), PimnetError> {
    let src_chip = ChipLoc::of(g.coord(t.src));
    let has_tx = t
        .resources
        .iter()
        .any(|r| matches!(r, Resource::ChipTx { chip } if *chip == src_chip));
    if !has_tx {
        return Err(invalid(format!(
            "{ctx}: missing source chip Tx channel in path"
        )));
    }
    for &d in &t.dsts {
        let dst_chip = ChipLoc::of(g.coord(d));
        let has_rx = t
            .resources
            .iter()
            .any(|r| matches!(r, Resource::ChipRx { chip } if *chip == dst_chip));
        if !has_rx {
            return Err(invalid(format!(
                "{ctx}: missing destination chip Rx channel for {d}"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use crate::schedule::CommSchedule;
    use pim_arch::geometry::PimGeometry;

    fn build(kind: CollectiveKind, g: &PimGeometry, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, g, elems, 4).expect("build")
    }

    #[test]
    fn every_collective_validates_on_the_paper_geometry() {
        let g = PimGeometry::paper();
        for kind in CollectiveKind::ALL {
            let s = build(kind, &g, 1024);
            let report = validate(&s).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(report.steps > 0, "{kind}: empty schedule");
        }
    }

    #[test]
    fn allreduce_ring_phases_are_exclusive() {
        let g = PimGeometry::paper();
        let s = build(CollectiveKind::AllReduce, &g, 4096);
        let report = validate(&s).unwrap();
        // Rule 2 held (validate succeeded), and the metric agrees:
        assert_eq!(report.max_ring_sharing, 1);
    }

    #[test]
    fn alltoall_multiplexes_but_validates() {
        let g = PimGeometry::paper();
        let s = build(CollectiveKind::AllToAll, &g, 2560);
        let report = validate(&s).unwrap();
        // Pairwise intra-chip exchange shares ring segments (WAIT-slotted).
        assert!(report.max_ring_sharing >= 1);
        // 8 banks per chip funnel through one DQ channel in chip steps.
        assert_eq!(report.max_chip_sharing, 8);
        // Every bank crosses the bus in a rank step.
        assert_eq!(report.max_bus_sharing, 256);
    }

    #[test]
    fn validates_across_geometries_and_sizes() {
        for n in [1u32, 2, 8, 32, 64, 128, 256] {
            let g = PimGeometry::paper_scaled(n);
            for kind in CollectiveKind::ALL {
                for elems in [1usize, 7, 256, 1000] {
                    let s = build(kind, &g, elems);
                    validate(&s).unwrap_or_else(|e| panic!("{kind} n={n} elems={elems}: {e}"));
                }
            }
        }
    }

    #[test]
    fn fabric_self_transfers_are_rejected_but_local_copies_pass() {
        let g = PimGeometry::paper();
        // All-to-All keeps each node's own chunk as a resource-less local
        // copy; those validate and stay out of the fabric transfer count.
        let s = build(CollectiveKind::AllToAll, &g, 2560);
        let locals = s
            .phases
            .iter()
            .flat_map(|p| &p.steps)
            .flat_map(|st| &st.transfers)
            .filter(|t| t.is_local())
            .count();
        assert!(locals > 0, "expected local own-chunk copies");
        let report = validate(&s).unwrap();
        assert_eq!(report.transfers, s.transfer_count());

        // A self-send *over the fabric* is structurally invalid: a stop
        // never loops traffic back onto its own port.
        let mut bad = s.clone();
        let t = bad
            .phases
            .iter_mut()
            .flat_map(|p| &mut p.steps)
            .flat_map(|st| &mut st.transfers)
            .find(|t| !t.is_local())
            .expect("non-local transfer");
        t.dsts = vec![t.src];
        let err = validate(&bad).unwrap_err();
        assert!(err.to_string().contains("sends to itself"), "{err}");

        // Conversely, a transfer with no resources must be a self-copy.
        let mut bad = s;
        let t = bad
            .phases
            .iter_mut()
            .flat_map(|p| &mut p.steps)
            .flat_map(|st| &mut st.transfers)
            .find(|t| !t.is_local())
            .expect("non-local transfer");
        t.resources.clear();
        let err = validate(&bad).unwrap_err();
        assert!(err.to_string().contains("must be local"), "{err}");
    }

    #[test]
    fn multiplexed_phases_tolerate_sharing_exclusive_phases_do_not() {
        let g = PimGeometry::paper();
        // All-to-All's chip/rank phases deliberately time-multiplex the DQ
        // channels and bus; the validator records the sharing degree.
        let mut s = build(CollectiveKind::AllToAll, &g, 2560);
        let report = validate(&s).unwrap();
        assert!(report.max_chip_sharing > 1);
        // Strip the multiplexed marker: the identical traffic is now a
        // hard contention error (a bufferless stop cannot serve two flows).
        for p in &mut s.phases {
            p.multiplexed = false;
        }
        let err = validate(&s).unwrap_err();
        assert!(err.to_string().contains("flows"), "{err}");
    }

    #[test]
    fn injected_ring_sharing_is_rejected_until_marked_multiplexed() {
        // One chip, 8 banks: the AllReduce bank ring is exclusive. Force a
        // segment to carry a second flow and watch rule 2 fire; marking the
        // phase multiplexed downgrades the same traffic to a metric.
        let g = PimGeometry::paper_scaled(8);
        let mut s = build(CollectiveKind::AllReduce, &g, 64);
        let mut found = None;
        'outer: for (pi, p) in s.phases.iter().enumerate() {
            if p.multiplexed {
                continue;
            }
            for (si, step) in p.steps.iter().enumerate() {
                let fabric: Vec<usize> = step
                    .transfers
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.is_local())
                    .map(|(i, _)| i)
                    .collect();
                for &ai in &fabric {
                    for &bi in &fabric {
                        if step.transfers[ai].src == step.transfers[bi].src {
                            continue; // same flow would legally share
                        }
                        if let Some(&r) = step.transfers[bi].resources.first() {
                            found = Some((pi, si, ai, r));
                            break 'outer;
                        }
                    }
                }
            }
        }
        let (pi, si, ai, shared) = found.expect("an exclusive step with two flows");
        s.phases[pi].steps[si].transfers[ai].resources.push(shared);
        let err = validate(&s).unwrap_err();
        assert!(err.to_string().contains("carries 2 flows"), "{err}");
        s.phases[pi].multiplexed = true;
        let report = validate(&s).unwrap();
        assert!(report.max_ring_sharing >= 2);
    }

    #[test]
    fn corrupted_schedule_is_rejected() {
        let g = PimGeometry::paper();
        let mut s = build(CollectiveKind::AllReduce, &g, 1024);
        // Push a span beyond the buffer.
        for phase in &mut s.phases {
            for step in &mut phase.steps {
                if let Some(t) = step.transfers.first_mut() {
                    t.src_span = crate::schedule::Span::new(s.buffer_len, 8);
                    t.dst_span = t.src_span;
                    let err = validate(&s).unwrap_err();
                    assert!(matches!(err, PimnetError::ScheduleInvalid { .. }));
                    return;
                }
            }
        }
        panic!("no transfer found to corrupt");
    }

    #[test]
    fn reduction_flag_is_policed() {
        let g = PimGeometry::paper();
        let mut s = build(CollectiveKind::AllGather, &g, 64);
        'outer: for phase in &mut s.phases {
            for step in &mut phase.steps {
                if let Some(t) = step.transfers.first_mut() {
                    t.combine = true;
                    break 'outer;
                }
            }
        }
        let err = validate(&s).unwrap_err();
        assert!(err.to_string().contains("non-reducing"));
    }
}
