//! Boost mode: representative-slice timing for large symmetric geometries.
//!
//! Large geometries make full-schedule timing and timeline construction
//! O(total transfers) — at 256 DPUs an AllReduce carries thousands of
//! transfers per phase, nearly all of them byte-for-byte copies of the
//! traffic through one representative chip. Boost mode exploits that
//! symmetry: [`plan`] thins a compiled [`CommSchedule`] down to the
//! transfers that touch one *representative chip* (the least-loaded
//! chip, so rooted collectives keep their slices thin too) and records,
//! per step, the aggregate [`StepFacts`] the analytic
//! reconstruction needs. [`BoostPlan::breakdown`] and
//! [`BoostPlan::timeline`] then reproduce the full-fabric numbers from
//! the plan alone — O(1) per step for the breakdown, O(kept transfers)
//! for the timeline — instead of re-walking every transfer of the full
//! schedule.
//!
//! The facts are *per resource class*, which is what makes a thin plan
//! sufficient: every resource of a class shares one bandwidth
//! ([`Resource::bandwidth`] depends only on the variant), so one
//! `(transfer count, largest payload)` pair for the busiest resource of
//! each class prices the whole class under any [`TimingModel`]. This is
//! also why the facts must cover *all* classes rather than lean on the
//! representative slice: a rank-broadcast step concentrates its send-side
//! occupancy on the sending rank's DQ channels, which a fixed
//! representative chip only carries in one step out of `R`.
//!
//! **Accuracy contract** (pinned by `tests/boost_accuracy.rs`): when the
//! busiest resource of every class carries uniform payloads — true for
//! the Table V collectives whenever the payload divides evenly — the
//! reconstruction is *exact*: `count x serialization(largest)` is then
//! precisely the resource's occupancy sum. On uneven splits each class
//! reconstructs from its byte sum instead, and the only divergence from
//! the full walk is picosecond ceiling-rounding slack — at most one
//! picosecond per transfer of the step, vanishing against microsecond
//! step times.
//!
//! A [`BoostPlan`] is a pure function of the schedule — no
//! [`TimingModel`] is involved at plan time — so the schedule cache can
//! store one plan and re-price it under any fabric configuration.

use std::collections::BTreeMap;

use pim_sim::{Bandwidth, Bytes, SimTime};

use pim_arch::geometry::DpuId;

use crate::sync::SyncModel;
use crate::timeline::{Timeline, TransferWindow};
use crate::timing::{CommBreakdown, TimingModel};
use crate::topology::{ChipLoc, Resource};

use super::{CommSchedule, CommStep, Phase, Transfer};

/// The busiest resource of one bandwidth class within one step: how many
/// transfers cross it, the largest single payload among them, and their
/// byte sum.
///
/// Its reconstructed occupancy is `transfers x serialization(unit_bytes)`
/// when the payloads are uniform (the symmetric-schedule case) — exactly
/// the resource's occupancy sum. On a non-uniform mix it falls back to
/// `serialization(total_bytes)` plus the class's ceiling slack: each
/// transfer's serialization rounds up to a whole picosecond, so the sum
/// of `transfers` roundings exceeds the rounding of the sum by at most
/// `slack - 1` ps — a bound, not an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClassFacts {
    /// Transfers crossing the class's busiest resource.
    pub transfers: u32,
    /// Largest single payload among them.
    pub unit_bytes: Bytes,
    /// Byte sum across them.
    pub total_bytes: Bytes,
    /// Largest transfer count of *any* resource in the class this step
    /// (the ceiling-rounding slack of the non-uniform bound).
    pub slack: u32,
}

/// Per-step aggregates recorded over the *full* schedule at plan time,
/// from which [`BoostPlan`] reconstructs whole-fabric step times without
/// the full transfer list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StepFacts {
    /// Busiest inter-bank ring segment.
    pub ring: ClassFacts,
    /// Busiest DQ channel (send or receive side, whichever is busier).
    pub dq: ClassFacts,
    /// The rank bus (one per channel; single-channel schedules have
    /// exactly one).
    pub bus: ClassFacts,
    /// Longest resource path of any transfer in the full step.
    pub max_hops: u32,
}

/// The representative slice of a schedule plus the per-step facts that
/// re-price it: the product of [`plan`], consumed by
/// [`BoostPlan::breakdown`] and [`BoostPlan::timeline`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoostPlan {
    /// The thin slice: the full schedule's phase/step skeleton with only
    /// the transfers touching the representative chip retained (and its
    /// `result_spans` dropped). Timing-only — it neither executes nor
    /// validates as a collective; it exists so the boosted timeline can
    /// emit real per-transfer windows.
    pub thin: CommSchedule,
    /// Per-step aggregates, phase-major (one entry per step of `thin`).
    pub facts: Vec<StepFacts>,
    /// Full-schedule wire bytes per tier, indexed like
    /// [`super::PhaseLabel::tier_index`].
    pub tier_wire_bytes: [Bytes; 4],
    /// Non-local transfers kept in the thin slice.
    pub kept_transfers: usize,
    /// Non-local transfers in the full schedule.
    pub total_transfers: usize,
}

/// Running per-resource tallies while scanning one step.
#[derive(Default, Clone, Copy)]
struct Tally {
    bytes_sum: u64,
    transfers: u32,
    max_single: u64,
}

/// Picks the representative chip: the chip whose resources the fewest
/// non-local transfers occupy (smallest [`ChipLoc`] on ties, so the
/// choice is deterministic). On symmetric collectives every chip carries
/// the same slice; on rooted ones (gather, reduce, broadcast) this
/// steers the slice away from the root's funnel, keeping the reduction
/// high. Falls back to DPU 0's chip when no transfer names a chip.
fn representative_chip(schedule: &CommSchedule) -> ChipLoc {
    let mut touch: BTreeMap<ChipLoc, usize> = BTreeMap::new();
    for phase in &schedule.phases {
        for step in &phase.steps {
            for t in &step.transfers {
                if t.is_local() {
                    continue;
                }
                let mut chips: Vec<ChipLoc> = t
                    .resources
                    .iter()
                    .filter_map(|r| match r {
                        Resource::RingSegment { chip, .. }
                        | Resource::ChipTx { chip }
                        | Resource::ChipRx { chip } => Some(*chip),
                        Resource::RankBus { .. } => None,
                    })
                    .collect();
                chips.sort_unstable();
                chips.dedup();
                for chip in chips {
                    *touch.entry(chip).or_default() += 1;
                }
            }
        }
    }
    let mut best: Option<(ChipLoc, usize)> = None;
    for (chip, count) in touch {
        if best.is_none_or(|(_, c)| count < c) {
            best = Some((chip, count));
        }
    }
    best.map_or_else(
        || ChipLoc::of(schedule.geometry.coord(DpuId(0))),
        |(chip, _)| chip,
    )
}

/// Thins `schedule` to its representative slice and records the per-step
/// reconstruction facts.
///
/// The representative chip is the least-loaded chip
/// (`representative_chip`). A transfer is kept in the thin slice iff it
/// occupies any of that chip's resources (its ring segments or its DQ
/// send/receive channels). A step none of whose transfers touch the
/// representative chip (possible on asymmetric or repaired schedules)
/// keeps its single largest transfer, so the step skeleton — and with it
/// the phase-major facts alignment — stays 1:1 with the full schedule.
#[must_use]
pub fn plan(schedule: &CommSchedule) -> BoostPlan {
    let rep = representative_chip(schedule);
    let is_rep = |r: &Resource| match r {
        Resource::RingSegment { chip, .. }
        | Resource::ChipTx { chip }
        | Resource::ChipRx { chip } => *chip == rep,
        Resource::RankBus { .. } => false,
    };

    let mut facts = Vec::with_capacity(schedule.step_count());
    let mut tier_bytes = [0u64; 4];
    let mut kept_transfers = 0usize;
    let mut total_transfers = 0usize;
    let mut phases = Vec::with_capacity(schedule.phases.len());
    for phase in &schedule.phases {
        let tier = phase.label.tier_index();
        let mut steps = Vec::with_capacity(phase.steps.len());
        for step in &phase.steps {
            let mut tallies: BTreeMap<Resource, Tally> = BTreeMap::new();
            let mut max_hops = 0u32;
            let mut kept: Vec<Transfer> = Vec::new();
            let mut longest: Option<&Transfer> = None;
            for t in &step.transfers {
                if t.is_local() {
                    continue;
                }
                total_transfers += 1;
                let bytes = t.bytes(schedule.elem_bytes).as_u64();
                tier_bytes[tier] += bytes;
                max_hops = max_hops.max(t.resources.len() as u32);
                for r in &t.resources {
                    let tally = tallies.entry(*r).or_default();
                    tally.bytes_sum += bytes;
                    tally.transfers += 1;
                    tally.max_single = tally.max_single.max(bytes);
                }
                if t.resources.iter().any(is_rep) {
                    kept.push(t.clone());
                } else if longest.is_none_or(|l| t.src_span.len > l.src_span.len) {
                    longest = Some(t);
                }
            }
            // The busiest resource of each bandwidth class, by byte sum
            // (BTreeMap order makes ties deterministic); the slack is the
            // class-wide maximum transfer count, so the non-uniform bound
            // dominates every resource of the class, not just the
            // busiest-by-bytes one.
            let mut f = StepFacts {
                max_hops,
                ..StepFacts::default()
            };
            let mut best = [0u64; 3];
            let mut slack = [0u32; 3];
            for (r, tally) in &tallies {
                let (slot, class) = match r {
                    Resource::RingSegment { .. } => (0, &mut f.ring),
                    Resource::ChipTx { .. } | Resource::ChipRx { .. } => (1, &mut f.dq),
                    Resource::RankBus { .. } => (2, &mut f.bus),
                };
                slack[slot] = slack[slot].max(tally.transfers);
                if tally.bytes_sum > best[slot] {
                    best[slot] = tally.bytes_sum;
                    *class = ClassFacts {
                        transfers: tally.transfers,
                        unit_bytes: Bytes::new(tally.max_single),
                        total_bytes: Bytes::new(tally.bytes_sum),
                        slack: 0,
                    };
                }
            }
            f.ring.slack = slack[0];
            f.dq.slack = slack[1];
            f.bus.slack = slack[2];
            if kept.is_empty() {
                if let Some(t) = longest {
                    kept.push(t.clone());
                }
            }
            kept_transfers += kept.len();
            facts.push(f);
            steps.push(CommStep { transfers: kept });
        }
        phases.push(Phase {
            label: phase.label,
            steps,
            multiplexed: phase.multiplexed,
        });
    }
    BoostPlan {
        thin: CommSchedule {
            kind: schedule.kind,
            geometry: schedule.geometry,
            elems_per_node: schedule.elems_per_node,
            elem_bytes: schedule.elem_bytes,
            buffer_len: schedule.buffer_len,
            result_spans: Vec::new(),
            phases,
        },
        facts,
        tier_wire_bytes: tier_bytes.map(Bytes::new),
        kept_transfers,
        total_transfers,
    }
}

/// Reconstructed occupancy of one class's busiest resource: exact
/// `count x serialization(unit)` for uniform payloads, the byte-sum
/// ceiling bound otherwise (see [`ClassFacts`]).
fn class_time(bw: Bandwidth, f: ClassFacts) -> SimTime {
    if f.transfers == 0 {
        return SimTime::ZERO;
    }
    if u64::from(f.transfers) * f.unit_bytes.as_u64() == f.total_bytes.as_u64() {
        bw.transfer_time(f.unit_bytes) * u64::from(f.transfers)
    } else {
        bw.transfer_time(f.total_bytes) + SimTime::from_ps(u64::from(f.slack.max(1) - 1))
    }
}

impl BoostPlan {
    /// Transfer-count reduction of the thin slice over the full schedule
    /// (the per-pricing speedup boost mode buys).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.kept_transfers == 0 {
            1.0
        } else {
            self.total_transfers as f64 / self.kept_transfers as f64
        }
    }

    /// Reconstructed duration of one step from its facts alone: the
    /// busiest class occupancy plus the longest path's hop propagation —
    /// the boosted analogue of [`TimingModel::step_time`].
    #[must_use]
    pub fn step_time(&self, timing: &TimingModel, f: &StepFacts) -> SimTime {
        let busiest = class_time(timing.fabric.ring_segment_bw(), f.ring)
            .max(class_time(timing.fabric.chip_channel_bw, f.dq))
            .max(class_time(timing.fabric.rank_bus_bw, f.bus));
        busiest + timing.fabric.hop_latency * u64::from(f.max_hops)
    }

    /// Reconstructed [`CommBreakdown`] of the *full* schedule — the boost
    /// replacement for [`TimingModel::time_schedule`], O(steps) instead
    /// of O(total transfers).
    #[must_use]
    pub fn breakdown(&self, timing: &TimingModel, skew: SimTime) -> CommBreakdown {
        let mut b = CommBreakdown::zero();
        let sync = SyncModel::from_fabric(&timing.fabric);
        b.sync = sync.barrier(TimingModel::scope_of_geometry(&self.thin.geometry), skew);
        let mut fi = 0usize;
        for phase in &self.thin.phases {
            let mut t = SimTime::ZERO;
            for _ in &phase.steps {
                t += self.step_time(timing, &self.facts[fi]);
                fi += 1;
            }
            b.add_phase(phase.label, t);
        }
        b.mem = timing.mem_overhead_of(self.thin.buffer_len, self.thin.elem_bytes);
        b
    }

    /// Reconstructed [`Timeline`] of the representative slice — the boost
    /// replacement for [`Timeline::build`].
    ///
    /// Step cursors advance by the reconstructed step times, so wherever
    /// the reconstruction is exact the kept windows are *exactly* the
    /// corresponding windows of the full timeline (a subsequence) and
    /// `end` matches the full build.
    #[must_use]
    pub fn timeline(&self, timing: &TimingModel) -> Timeline {
        let sync = SyncModel::from_fabric(&timing.fabric).barrier(
            TimingModel::scope_of_geometry(&self.thin.geometry),
            SimTime::ZERO,
        );
        let mut cursor = sync;
        let mut windows = Vec::with_capacity(self.kept_transfers);
        let mut fi = 0usize;
        for (pi, phase) in self.thin.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                let step_time = self.step_time(timing, &self.facts[fi]);
                fi += 1;
                for t in &step.transfers {
                    if t.is_local() {
                        continue;
                    }
                    let bytes = t.bytes(self.thin.elem_bytes);
                    let dur = t
                        .resources
                        .iter()
                        .map(|r| r.bandwidth(&timing.fabric).transfer_time(bytes))
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    windows.push(TransferWindow {
                        phase: pi,
                        label: phase.label,
                        step: si,
                        src: t.src,
                        dsts: t.dsts.clone(),
                        bytes: bytes.as_u64(),
                        start: cursor,
                        end: (cursor + dur).min(cursor + step_time),
                    });
                }
                cursor += step_time;
            }
        }
        Timeline {
            sync,
            windows,
            end: cursor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::geometry::PimGeometry;

    fn build(kind: CollectiveKind, dpus: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(dpus), elems, 4).expect("builds")
    }

    #[test]
    fn thin_preserves_the_step_skeleton() {
        let s = build(CollectiveKind::AllReduce, 256, 1024);
        let p = plan(&s);
        assert_eq!(p.thin.phases.len(), s.phases.len());
        for (a, b) in p.thin.phases.iter().zip(&s.phases) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.multiplexed, b.multiplexed);
            assert_eq!(a.steps.len(), b.steps.len());
        }
        assert_eq!(p.facts.len(), s.step_count());
        assert!(p.kept_transfers > 0);
        assert!(p.kept_transfers <= p.total_transfers);
        assert_eq!(p.total_transfers, s.transfer_count());
    }

    #[test]
    fn tier_wire_bytes_sum_to_the_full_schedule() {
        for dpus in [8u32, 64, 256] {
            let s = build(CollectiveKind::AllReduce, dpus, 512);
            let p = plan(&s);
            let sum: u64 = p.tier_wire_bytes.iter().map(|b| b.as_u64()).sum();
            assert_eq!(sum, s.total_wire_bytes().as_u64(), "x{dpus}");
        }
    }

    #[test]
    fn symmetric_reconstruction_is_exact() {
        let m = TimingModel::paper();
        for kind in CollectiveKind::ALL {
            for dpus in [8u32, 64, 256] {
                let s = build(kind, dpus, 1024);
                let p = plan(&s);
                assert_eq!(
                    p.breakdown(&m, SimTime::ZERO),
                    m.time_schedule(&s, SimTime::ZERO),
                    "{kind} x{dpus}"
                );
            }
        }
    }

    #[test]
    fn skew_lands_in_the_sync_bucket() {
        let m = TimingModel::paper();
        let p = plan(&build(CollectiveKind::AllReduce, 64, 1024));
        let zero = p.breakdown(&m, SimTime::ZERO);
        let skewed = p.breakdown(&m, SimTime::from_us(3));
        assert_eq!(skewed.sync, zero.sync + SimTime::from_us(3));
        assert_eq!(skewed.inter_bank, zero.inter_bank);
    }

    #[test]
    fn reduction_exceeds_ten_x_at_256_dpus() {
        let p = plan(&build(CollectiveKind::AllReduce, 256, 1024));
        assert!(p.reduction() >= 10.0, "only {:.1}x", p.reduction());
    }

    #[test]
    fn timeline_windows_are_a_subsequence_of_the_full_build() {
        let m = TimingModel::paper();
        let s = build(CollectiveKind::AllReduce, 64, 1024);
        let p = plan(&s);
        let full = Timeline::build(&s, &m);
        let thin = p.timeline(&m);
        assert_eq!(thin.sync, full.sync);
        assert_eq!(thin.end, full.end);
        assert!(thin.windows.len() < full.windows.len());
        let mut it = full.windows.iter();
        for w in &thin.windows {
            assert!(
                it.any(|fw| fw == w),
                "thin window {:?} missing from the full timeline",
                (w.phase, w.step, w.src)
            );
        }
    }
}
