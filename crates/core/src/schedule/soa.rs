//! Flat structure-of-arrays schedule representation and the view layer
//! that lets every consumer run on either layout.
//!
//! The nested [`CommSchedule`] — `Vec<Phase>` of `Vec<CommStep>` of
//! `Vec<Transfer>`, each transfer owning two more heap `Vec`s — is the
//! builders' natural shape, but it is a poor *execution* shape: a paper
//! geometry AllReduce allocates tens of thousands of small vectors, and
//! walking them chases pointers all over the heap. [`FlatSchedule`] is
//! the same schedule rearranged into contiguous arrays: phases, steps and
//! transfers become index *ranges* over flat columns, and every
//! destination list and resource path lives in one shared arena each.
//! Converting is lossless ([`FlatSchedule::from_schedule`] /
//! [`FlatSchedule::to_schedule`] round-trip exactly) and iteration order
//! is identical by construction, which is what makes the two layouts
//! bit-equivalent to every consumer.
//!
//! Consumers do not choose a layout: they are written against the view
//! types here —
//!
//! * [`ScheduleHeader`]: the borrowed schedule-level metadata (kind,
//!   geometry, element width, buffer length, result table);
//! * [`StepRef`] / [`TransferRef`]: one step / one transfer from either
//!   layout, with the transfer's destination and resource lists exposed
//!   as slices;
//! * [`ScheduleView`]: the trait [`CommSchedule`] and [`FlatSchedule`]
//!   both implement, giving `exec`, `timeline`, `sync` and the four
//!   `analysis` passes a single generic code path.
//!
//! `scripts/determinism_lint.sh` covers this module: the arena layout
//! uses only `Vec`s and index arithmetic — no hash-ordered collections,
//! no clocks — so flattening cannot perturb any deterministic output.

use pim_sim::Bytes;

use pim_arch::geometry::{DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::topology::Resource;

use super::{CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

/// Borrowed schedule-level metadata, identical for both layouts.
///
/// Everything a pass needs *besides* the phase/step/transfer structure:
/// the header is what [`crate::analysis::incremental`] pins equal before
/// aligning steps, and what the dataflow interpreter seeds its state
/// from.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleHeader<'a> {
    /// The collective the schedule implements.
    pub kind: CollectiveKind,
    /// The geometry it was compiled for.
    pub geometry: &'a PimGeometry,
    /// Elements contributed per node.
    pub elems_per_node: usize,
    /// Element width in bytes.
    pub elem_bytes: u32,
    /// Per-node communication buffer length in elements.
    pub buffer_len: usize,
    /// Where each node's result lives after execution.
    pub result_spans: &'a [Vec<Span>],
}

/// One transfer viewed from either layout: owned scalars plus borrowed
/// destination/resource slices (no clone, no allocation).
#[derive(Debug, Clone, Copy)]
pub struct TransferRef<'a> {
    /// Sending DPU.
    pub src: DpuId,
    /// Receiving DPU(s).
    pub dsts: &'a [DpuId],
    /// Element range read at the source.
    pub src_span: Span,
    /// Element range written at every destination.
    pub dst_span: Span,
    /// Whether the destination reduces rather than overwrites.
    pub combine: bool,
    /// Fabric resources held for the transfer's duration.
    pub resources: &'a [Resource],
}

impl<'a> TransferRef<'a> {
    /// Wire bytes moved (mirrors [`Transfer::bytes`]).
    #[must_use]
    pub fn bytes(&self, elem_bytes: u32) -> Bytes {
        Bytes::new(self.src_span.len as u64 * u64::from(elem_bytes))
    }

    /// True for purely local movements (mirrors [`Transfer::is_local`]).
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.resources.is_empty()
    }

    /// The transfer as an owned nested-layout [`Transfer`].
    #[must_use]
    pub fn to_transfer(&self) -> Transfer {
        Transfer {
            src: self.src,
            dsts: self.dsts.to_vec(),
            src_span: self.src_span,
            dst_span: self.dst_span,
            combine: self.combine,
            resources: self.resources.to_vec(),
        }
    }
}

impl<'a> From<&'a Transfer> for TransferRef<'a> {
    fn from(t: &'a Transfer) -> TransferRef<'a> {
        TransferRef {
            src: t.src,
            dsts: &t.dsts,
            src_span: t.src_span,
            dst_span: t.dst_span,
            combine: t.combine,
            resources: &t.resources,
        }
    }
}

/// One step viewed from either layout.
#[derive(Debug, Clone, Copy)]
pub enum StepRef<'a> {
    /// A step of a nested [`CommSchedule`].
    Nested(&'a CommStep),
    /// A step of a [`FlatSchedule`], by flat step index.
    Flat {
        /// The flat schedule the step belongs to.
        soa: &'a FlatSchedule,
        /// Flat step index (across all phases).
        step: usize,
    },
}

impl<'a> StepRef<'a> {
    /// Number of transfers in the step.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            StepRef::Nested(s) => s.transfers.len(),
            StepRef::Flat { soa, step } => {
                let (lo, hi) = soa.step_transfer_ranges[*step];
                (hi - lo) as usize
            }
        }
    }

    /// True when the step has no transfers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The step's `ti`-th transfer.
    ///
    /// # Panics
    ///
    /// Panics if `ti` is out of range.
    #[must_use]
    pub fn transfer(&self, ti: usize) -> TransferRef<'a> {
        match self {
            StepRef::Nested(s) => TransferRef::from(&s.transfers[ti]),
            StepRef::Flat { soa, step } => {
                let (lo, hi) = soa.step_transfer_ranges[*step];
                let i = lo as usize + ti;
                assert!(i < hi as usize, "transfer {ti} out of range");
                soa.transfer(i)
            }
        }
    }

    /// Iterates the step's transfers in schedule order.
    #[must_use]
    pub fn transfers(&self) -> TransferIter<'a> {
        match self {
            StepRef::Nested(s) => TransferIter {
                inner: IterInner::Nested(s.transfers.iter()),
            },
            StepRef::Flat { soa, step } => {
                let (lo, hi) = soa.step_transfer_ranges[*step];
                TransferIter {
                    inner: IterInner::Flat {
                        soa,
                        next: lo,
                        end: hi,
                    },
                }
            }
        }
    }
}

enum IterInner<'a> {
    Nested(std::slice::Iter<'a, Transfer>),
    Flat {
        soa: &'a FlatSchedule,
        next: u32,
        end: u32,
    },
}

/// Iterator over a [`StepRef`]'s transfers.
pub struct TransferIter<'a> {
    inner: IterInner<'a>,
}

impl<'a> Iterator for TransferIter<'a> {
    type Item = TransferRef<'a>;

    fn next(&mut self) -> Option<TransferRef<'a>> {
        match &mut self.inner {
            IterInner::Nested(it) => it.next().map(TransferRef::from),
            IterInner::Flat { soa, next, end } => {
                if next < end {
                    let i = *next as usize;
                    *next += 1;
                    Some(soa.transfer(i))
                } else {
                    None
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = match &self.inner {
            IterInner::Nested(it) => it.len(),
            IterInner::Flat { next, end, .. } => (*end - *next) as usize,
        };
        (n, Some(n))
    }
}

impl ExactSizeIterator for TransferIter<'_> {}

/// Uniform read access to a schedule in either layout.
///
/// Implemented by [`CommSchedule`] (nested) and [`FlatSchedule`] (SoA);
/// the executor, the timeline builder, the sync model and the analysis
/// passes are generic over it, so both layouts run the *same* code and
/// produce bit-identical results.
pub trait ScheduleView {
    /// The schedule-level metadata.
    fn header(&self) -> ScheduleHeader<'_>;
    /// Number of phases.
    fn phase_count(&self) -> usize;
    /// Tier label of phase `p`.
    fn phase_label(&self, p: usize) -> PhaseLabel;
    /// Whether phase `p` time-multiplexes shared resources within steps.
    fn phase_multiplexed(&self, p: usize) -> bool;
    /// Number of steps in phase `p`.
    fn steps_in(&self, p: usize) -> usize;
    /// The step at `(p, s)`.
    fn step(&self, p: usize, s: usize) -> StepRef<'_>;

    /// Number of non-local transfers across all steps.
    fn view_transfer_count(&self) -> usize {
        let mut count = 0;
        for p in 0..self.phase_count() {
            for s in 0..self.steps_in(p) {
                count += self
                    .step(p, s)
                    .transfers()
                    .filter(|t| !t.is_local())
                    .count();
            }
        }
        count
    }
}

impl<S: ScheduleView + ?Sized> ScheduleView for &S {
    fn header(&self) -> ScheduleHeader<'_> {
        (**self).header()
    }
    fn phase_count(&self) -> usize {
        (**self).phase_count()
    }
    fn phase_label(&self, p: usize) -> PhaseLabel {
        (**self).phase_label(p)
    }
    fn phase_multiplexed(&self, p: usize) -> bool {
        (**self).phase_multiplexed(p)
    }
    fn steps_in(&self, p: usize) -> usize {
        (**self).steps_in(p)
    }
    fn step(&self, p: usize, s: usize) -> StepRef<'_> {
        (**self).step(p, s)
    }
}

impl<S: ScheduleView + ?Sized> ScheduleView for std::sync::Arc<S> {
    fn header(&self) -> ScheduleHeader<'_> {
        (**self).header()
    }
    fn phase_count(&self) -> usize {
        (**self).phase_count()
    }
    fn phase_label(&self, p: usize) -> PhaseLabel {
        (**self).phase_label(p)
    }
    fn phase_multiplexed(&self, p: usize) -> bool {
        (**self).phase_multiplexed(p)
    }
    fn steps_in(&self, p: usize) -> usize {
        (**self).steps_in(p)
    }
    fn step(&self, p: usize, s: usize) -> StepRef<'_> {
        (**self).step(p, s)
    }
}

impl ScheduleView for CommSchedule {
    fn header(&self) -> ScheduleHeader<'_> {
        ScheduleHeader {
            kind: self.kind,
            geometry: &self.geometry,
            elems_per_node: self.elems_per_node,
            elem_bytes: self.elem_bytes,
            buffer_len: self.buffer_len,
            result_spans: &self.result_spans,
        }
    }

    fn phase_count(&self) -> usize {
        self.phases.len()
    }

    fn phase_label(&self, p: usize) -> PhaseLabel {
        self.phases[p].label
    }

    fn phase_multiplexed(&self, p: usize) -> bool {
        self.phases[p].multiplexed
    }

    fn steps_in(&self, p: usize) -> usize {
        self.phases[p].steps.len()
    }

    fn step(&self, p: usize, s: usize) -> StepRef<'_> {
        StepRef::Nested(&self.phases[p].steps[s])
    }
}

/// Arena-backed structure-of-arrays layout of one [`CommSchedule`].
///
/// Phases, steps and transfers are contiguous index ranges over flat
/// columns; destination lists and resource paths are ranges into two
/// shared arenas. Iterating a `FlatSchedule` visits exactly the same
/// transfers in exactly the same order as the nested schedule it came
/// from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatSchedule {
    kind: CollectiveKind,
    geometry: PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    buffer_len: usize,
    result_spans: Vec<Vec<Span>>,
    /// Per-phase tier label.
    phase_labels: Vec<PhaseLabel>,
    /// Per-phase multiplexing flag.
    phase_multiplexed: Vec<bool>,
    /// Per-phase `[start, end)` range of flat step indices.
    phase_step_ranges: Vec<(u32, u32)>,
    /// Per-step `[start, end)` range of flat transfer indices.
    step_transfer_ranges: Vec<(u32, u32)>,
    /// Transfer columns, indexed by flat transfer index.
    t_src: Vec<DpuId>,
    t_src_span: Vec<Span>,
    t_dst_span: Vec<Span>,
    t_combine: Vec<bool>,
    /// Per-transfer `[start, end)` range into `dst_arena`.
    t_dst_range: Vec<(u32, u32)>,
    /// Per-transfer `[start, end)` range into `res_arena`.
    t_res_range: Vec<(u32, u32)>,
    /// Shared destination arena.
    dst_arena: Vec<DpuId>,
    /// Shared resource-path arena.
    res_arena: Vec<Resource>,
}

impl FlatSchedule {
    /// Flattens a nested schedule. Lossless: [`FlatSchedule::to_schedule`]
    /// reconstructs an equal [`CommSchedule`].
    #[must_use]
    pub fn from_schedule(schedule: &CommSchedule) -> FlatSchedule {
        let step_total: usize = schedule.phases.iter().map(|p| p.steps.len()).sum();
        let transfer_total: usize = schedule
            .phases
            .iter()
            .flat_map(|p| &p.steps)
            .map(|s| s.transfers.len())
            .sum();
        let mut flat = FlatSchedule {
            kind: schedule.kind,
            geometry: schedule.geometry,
            elems_per_node: schedule.elems_per_node,
            elem_bytes: schedule.elem_bytes,
            buffer_len: schedule.buffer_len,
            result_spans: schedule.result_spans.clone(),
            phase_labels: Vec::with_capacity(schedule.phases.len()),
            phase_multiplexed: Vec::with_capacity(schedule.phases.len()),
            phase_step_ranges: Vec::with_capacity(schedule.phases.len()),
            step_transfer_ranges: Vec::with_capacity(step_total),
            t_src: Vec::with_capacity(transfer_total),
            t_src_span: Vec::with_capacity(transfer_total),
            t_dst_span: Vec::with_capacity(transfer_total),
            t_combine: Vec::with_capacity(transfer_total),
            t_dst_range: Vec::with_capacity(transfer_total),
            t_res_range: Vec::with_capacity(transfer_total),
            dst_arena: Vec::new(),
            res_arena: Vec::new(),
        };
        for phase in &schedule.phases {
            let step_lo = flat.step_transfer_ranges.len() as u32;
            for step in &phase.steps {
                let t_lo = flat.t_src.len() as u32;
                for t in &step.transfers {
                    let d_lo = flat.dst_arena.len() as u32;
                    flat.dst_arena.extend_from_slice(&t.dsts);
                    let r_lo = flat.res_arena.len() as u32;
                    flat.res_arena.extend_from_slice(&t.resources);
                    flat.t_src.push(t.src);
                    flat.t_src_span.push(t.src_span);
                    flat.t_dst_span.push(t.dst_span);
                    flat.t_combine.push(t.combine);
                    flat.t_dst_range.push((d_lo, flat.dst_arena.len() as u32));
                    flat.t_res_range.push((r_lo, flat.res_arena.len() as u32));
                }
                flat.step_transfer_ranges
                    .push((t_lo, flat.t_src.len() as u32));
            }
            flat.phase_labels.push(phase.label);
            flat.phase_multiplexed.push(phase.multiplexed);
            flat.phase_step_ranges
                .push((step_lo, flat.step_transfer_ranges.len() as u32));
        }
        flat
    }

    /// Reconstructs the nested layout. Exact inverse of
    /// [`FlatSchedule::from_schedule`].
    #[must_use]
    pub fn to_schedule(&self) -> CommSchedule {
        let phases = (0..self.phase_labels.len())
            .map(|p| {
                let (s_lo, s_hi) = self.phase_step_ranges[p];
                let steps = (s_lo as usize..s_hi as usize)
                    .map(|s| {
                        let (t_lo, t_hi) = self.step_transfer_ranges[s];
                        CommStep {
                            transfers: (t_lo as usize..t_hi as usize)
                                .map(|t| self.transfer(t).to_transfer())
                                .collect(),
                        }
                    })
                    .collect();
                Phase {
                    label: self.phase_labels[p],
                    steps,
                    multiplexed: self.phase_multiplexed[p],
                }
            })
            .collect();
        CommSchedule {
            kind: self.kind,
            geometry: self.geometry,
            elems_per_node: self.elems_per_node,
            elem_bytes: self.elem_bytes,
            buffer_len: self.buffer_len,
            result_spans: self.result_spans.clone(),
            phases,
        }
    }

    /// The transfer at flat index `i`.
    #[must_use]
    pub fn transfer(&self, i: usize) -> TransferRef<'_> {
        let (d_lo, d_hi) = self.t_dst_range[i];
        let (r_lo, r_hi) = self.t_res_range[i];
        TransferRef {
            src: self.t_src[i],
            dsts: &self.dst_arena[d_lo as usize..d_hi as usize],
            src_span: self.t_src_span[i],
            dst_span: self.t_dst_span[i],
            combine: self.t_combine[i],
            resources: &self.res_arena[r_lo as usize..r_hi as usize],
        }
    }

    /// Total transfers (local included), across all steps.
    #[must_use]
    pub fn transfers_total(&self) -> usize {
        self.t_src.len()
    }

    /// Number of steps across all phases (mirrors
    /// [`CommSchedule::step_count`]).
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.step_transfer_ranges.len()
    }

    /// Total bytes serialized onto fabric resources (mirrors
    /// [`CommSchedule::total_wire_bytes`]).
    #[must_use]
    pub fn total_wire_bytes(&self) -> Bytes {
        (0..self.transfers_total())
            .map(|i| self.transfer(i))
            .filter(|t| !t.is_local())
            .map(|t| t.bytes(self.elem_bytes))
            .sum()
    }
}

impl ScheduleView for FlatSchedule {
    fn header(&self) -> ScheduleHeader<'_> {
        ScheduleHeader {
            kind: self.kind,
            geometry: &self.geometry,
            elems_per_node: self.elems_per_node,
            elem_bytes: self.elem_bytes,
            buffer_len: self.buffer_len,
            result_spans: &self.result_spans,
        }
    }

    fn phase_count(&self) -> usize {
        self.phase_labels.len()
    }

    fn phase_label(&self, p: usize) -> PhaseLabel {
        self.phase_labels[p]
    }

    fn phase_multiplexed(&self, p: usize) -> bool {
        self.phase_multiplexed[p]
    }

    fn steps_in(&self, p: usize) -> usize {
        let (lo, hi) = self.phase_step_ranges[p];
        (hi - lo) as usize
    }

    fn step(&self, p: usize, s: usize) -> StepRef<'_> {
        let (lo, hi) = self.phase_step_ranges[p];
        let step = lo as usize + s;
        assert!(step < hi as usize, "step ({p}, {s}) out of range");
        StepRef::Flat { soa: self, step }
    }
}

impl CommSchedule {
    /// This schedule in the flat SoA layout (see [`FlatSchedule`]).
    #[must_use]
    pub fn to_flat(&self) -> FlatSchedule {
        FlatSchedule::from_schedule(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;

    fn build(kind: CollectiveKind, dpus: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(dpus), elems, 4).expect("builds")
    }

    #[test]
    fn roundtrip_is_lossless_for_every_collective() {
        for kind in CollectiveKind::ALL {
            for dpus in [2u32, 8, 64] {
                let nested = build(kind, dpus, 96);
                let flat = nested.to_flat();
                assert_eq!(flat.to_schedule(), nested, "{kind} x{dpus} roundtrip");
            }
        }
    }

    #[test]
    fn flat_iteration_matches_nested_order_exactly() {
        let nested = build(CollectiveKind::AllReduce, 64, 128);
        let flat = nested.to_flat();
        assert_eq!(flat.phase_count(), nested.phase_count());
        let mut flat_idx = 0usize;
        for (pi, phase) in nested.phases.iter().enumerate() {
            assert_eq!(flat.phase_label(pi), phase.label);
            assert_eq!(flat.phase_multiplexed(pi), phase.multiplexed);
            assert_eq!(flat.steps_in(pi), phase.steps.len());
            for (si, step) in phase.steps.iter().enumerate() {
                let sref = ScheduleView::step(&flat, pi, si);
                assert_eq!(sref.len(), step.transfers.len());
                for (t, tref) in step.transfers.iter().zip(sref.transfers()) {
                    assert_eq!(tref.src, t.src);
                    assert_eq!(tref.dsts, &t.dsts[..]);
                    assert_eq!(tref.src_span, t.src_span);
                    assert_eq!(tref.dst_span, t.dst_span);
                    assert_eq!(tref.combine, t.combine);
                    assert_eq!(tref.resources, &t.resources[..]);
                    assert_eq!(tref.is_local(), t.is_local());
                    assert_eq!(tref.bytes(4), t.bytes(4));
                    flat_idx += 1;
                }
            }
        }
        assert_eq!(flat.transfers_total(), flat_idx);
    }

    #[test]
    fn flat_aggregates_match_nested() {
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllToAll,
            CollectiveKind::Broadcast,
        ] {
            let nested = build(kind, 64, 96);
            let flat = nested.to_flat();
            assert_eq!(flat.total_wire_bytes(), nested.total_wire_bytes());
            assert_eq!(flat.step_count(), nested.step_count());
            assert_eq!(flat.view_transfer_count(), nested.transfer_count());
            assert_eq!(nested.view_transfer_count(), nested.transfer_count());
        }
    }

    #[test]
    fn headers_agree_across_layouts() {
        let nested = build(CollectiveKind::ReduceScatter, 8, 40);
        let flat = nested.to_flat();
        let (a, b) = (nested.header(), flat.header());
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.geometry, b.geometry);
        assert_eq!(a.elems_per_node, b.elems_per_node);
        assert_eq!(a.elem_bytes, b.elem_bytes);
        assert_eq!(a.buffer_len, b.buffer_len);
        assert_eq!(a.result_spans, b.result_spans);
    }

    #[test]
    fn phase_count_counts_phases() {
        let nested = build(CollectiveKind::AllReduce, 8, 64);
        // Single chip at 8 DPUs: bank RS + bank AG.
        assert_eq!(nested.phase_count(), nested.phases.len());
    }
}
