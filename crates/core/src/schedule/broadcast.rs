//! Broadcast, Reduce and Gather schedule builders.
//!
//! Broadcast follows Table V (`Ring(inter-chip) → Broadcast(inter-rank) →
//! Ring(inter-bank)`): the root scatters chunks across its rank's chips,
//! each chip's leader bank broadcasts its chunk to the other ranks over the
//! bus, a chip-ring AllGather completes every leader's copy, and the bank
//! tier fans the full message around each chip's ring.
//!
//! Reduce and Gather are the N-to-1 collectives the paper sketches at the
//! end of §V-E ("a single DPU can be used"): leaves converge on chip
//! leaders, chip leaders on rank leaders, rank leaders on the root.

use pim_arch::geometry::{DpuCoord, DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::topology::{chip_path, rank_path, ring_path, shorter_direction};

use super::ring::ring_all_gather;
use super::{chip_ring_path, CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

/// The fixed root of the one-to-N / N-to-one collectives.
pub(super) const ROOT: DpuId = DpuId(0);

fn at(geometry: &PimGeometry, rank: u32, chip: u32, bank: u32) -> DpuId {
    geometry.id(DpuCoord {
        channel: 0,
        rank,
        chip,
        bank,
    })
}

pub(super) fn build_broadcast(
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
) -> CommSchedule {
    let (banks, chips, ranks) = (
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    );
    let total = geometry.total_dpus() as usize;
    let chunks = Span::new(0, elems).split(chips as usize);
    let root = geometry.coord(ROOT);
    let mut phases = Vec::new();

    // ---- Phase 1: root scatters one chunk to each chip leader of its rank.
    if chips > 1 {
        let transfers = (0..chips)
            .filter(|&c| c != root.chip)
            .map(|c| {
                let dst = at(geometry, root.rank, c, 0);
                Transfer {
                    src: ROOT,
                    dsts: vec![dst],
                    src_span: chunks[c as usize],
                    dst_span: chunks[c as usize],
                    combine: false,
                    resources: chip_path(geometry, ROOT, dst),
                }
            })
            .collect();
        phases.push(Phase::new(
            PhaseLabel::InterChip,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    // ---- Phase 2: each chip leader broadcasts its chunk across ranks.
    if ranks > 1 {
        let mut transfers = Vec::new();
        for c in 0..chips {
            let src = at(geometry, root.rank, c, 0);
            let dsts: Vec<DpuId> = (0..ranks)
                .filter(|&r| r != root.rank)
                .map(|r| at(geometry, r, c, 0))
                .collect();
            transfers.push(Transfer {
                src,
                dsts: dsts.clone(),
                src_span: chunks[c as usize],
                dst_span: chunks[c as usize],
                combine: false,
                resources: rank_path(geometry, src, &dsts),
            });
        }
        phases.push(Phase::new(
            PhaseLabel::InterRank,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    // ---- Phase 3: chip-ring AllGather completes every leader's message.
    if chips > 1 {
        let mut steps: Vec<Vec<Transfer>> = vec![Vec::new(); chips as usize - 1];
        for rank in 0..ranks {
            let nodes: Vec<DpuId> = (0..chips).map(|c| at(geometry, rank, c, 0)).collect();
            let owners: Vec<usize> = (0..chips as usize).collect();
            for (s, transfers) in ring_all_gather(&nodes, &chunks, &owners, |a, b| {
                chip_ring_path(geometry, a, b)
            })
            .into_iter()
            .enumerate()
            {
                steps[s].extend(transfers);
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterChip,
            steps.into_iter().map(CommStep::new).collect(),
            true,
        ));
    }

    // ---- Phase 4: each chip leader fans the full message around its ring.
    if banks > 1 {
        let mut transfers = Vec::new();
        for rank in 0..ranks {
            for chip in 0..chips {
                let src = at(geometry, rank, chip, 0);
                for bank in 1..banks {
                    let dst = at(geometry, rank, chip, bank);
                    transfers.push(Transfer {
                        src,
                        dsts: vec![dst],
                        src_span: Span::new(0, elems),
                        dst_span: Span::new(0, elems),
                        combine: false,
                        resources: ring_path(geometry, src, dst, shorter_direction(banks, 0, bank)),
                    });
                }
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterBank,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    CommSchedule {
        kind: CollectiveKind::Broadcast,
        geometry: *geometry,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans: vec![vec![Span::new(0, elems)]; total],
        phases,
    }
}

pub(super) fn build_reduce(geometry: &PimGeometry, elems: usize, elem_bytes: u32) -> CommSchedule {
    let full = Span::new(0, elems);
    let spans = vec![(full, full); geometry.total_dpus() as usize];
    let mut schedule = converge(geometry, elem_bytes, &spans, true, CollectiveKind::Reduce);
    schedule.elems_per_node = elems;
    schedule.buffer_len = elems;
    schedule.result_spans = result_at_root(geometry, vec![full]);
    schedule
}

pub(super) fn build_gather(geometry: &PimGeometry, elems: usize, elem_bytes: u32) -> CommSchedule {
    let total = geometry.total_dpus() as usize;
    // Node i's contribution sits (and stays) at piece i of the N·n buffer.
    let spans: Vec<(Span, Span)> = (0..total)
        .map(|i| {
            let p = Span::new(i * elems, elems);
            (p, p)
        })
        .collect();
    let mut schedule = converge(geometry, elem_bytes, &spans, false, CollectiveKind::Gather);
    schedule.elems_per_node = elems;
    schedule.buffer_len = total * elems;
    schedule.result_spans = result_at_root(geometry, vec![Span::new(0, total * elems)]);
    schedule
}

fn result_at_root(geometry: &PimGeometry, root_spans: Vec<Span>) -> Vec<Vec<Span>> {
    let mut out = vec![Vec::new(); geometry.total_dpus() as usize];
    out[ROOT.index()] = root_spans;
    out
}

/// Shared N-to-1 convergecast structure for Reduce and Gather.
///
/// `spans[i]` is the (src, dst) span pair for node `i`'s contribution; with
/// `combine = true` all contributions share one span and reduce in place.
/// For Gather, a forwarding node must relay everything it has accumulated
/// so far, which is why the per-tier span sets below grow as the data
/// converges.
fn converge(
    geometry: &PimGeometry,
    elem_bytes: u32,
    spans: &[(Span, Span)],
    combine: bool,
    kind: CollectiveKind,
) -> CommSchedule {
    let (banks, chips, ranks) = (
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    );
    let mut phases = Vec::new();

    // What each node currently holds (indices into `spans`).
    let total = geometry.total_dpus() as usize;
    let mut holds: Vec<Vec<usize>> = (0..total).map(|i| vec![i]).collect();

    // ---- Tier 1: banks -> chip leader (bank 0). ----
    if banks > 1 {
        let mut transfers = Vec::new();
        for rank in 0..ranks {
            for chip in 0..chips {
                let leader = at(geometry, rank, chip, 0);
                for bank in 1..banks {
                    let src = at(geometry, rank, chip, bank);
                    for &item in &holds[src.index()].clone() {
                        transfers.push(Transfer {
                            src,
                            dsts: vec![leader],
                            src_span: spans[item].0,
                            dst_span: spans[item].1,
                            combine,
                            resources: ring_path(
                                geometry,
                                src,
                                leader,
                                shorter_direction(banks, bank, 0),
                            ),
                        });
                        // Reductions fold in place: the leader still forwards
                        // a single (now reduced) span, not one per leaf.
                        if !combine {
                            holds[leader.index()].push(item);
                        }
                    }
                }
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterBank,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    // ---- Tier 2: chip leaders -> rank leader (chip 0, bank 0). ----
    if chips > 1 {
        let mut transfers = Vec::new();
        for rank in 0..ranks {
            let leader = at(geometry, rank, 0, 0);
            for chip in 1..chips {
                let src = at(geometry, rank, chip, 0);
                for &item in &holds[src.index()].clone() {
                    transfers.push(Transfer {
                        src,
                        dsts: vec![leader],
                        src_span: spans[item].0,
                        dst_span: spans[item].1,
                        combine,
                        resources: chip_path(geometry, src, leader),
                    });
                    if !combine {
                        holds[leader.index()].push(item);
                    }
                }
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterChip,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    // ---- Tier 3: rank leaders -> root. ----
    if ranks > 1 {
        let root_rank = geometry.coord(ROOT).rank;
        let mut transfers = Vec::new();
        for rank in (0..ranks).filter(|&r| r != root_rank) {
            let src = at(geometry, rank, 0, 0);
            for &item in &holds[src.index()].clone() {
                transfers.push(Transfer {
                    src,
                    dsts: vec![ROOT],
                    src_span: spans[item].0,
                    dst_span: spans[item].1,
                    combine,
                    resources: rank_path(geometry, src, &[ROOT]),
                });
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterRank,
            vec![CommStep::new(transfers)],
            true,
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    CommSchedule {
        kind,
        geometry: *geometry,
        elems_per_node: 0, // caller fills in
        elem_bytes,
        buffer_len: 0, // caller fills in
        result_spans: Vec::new(),
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_phase_order_matches_table_v_spirit() {
        let g = PimGeometry::paper();
        let s = build_broadcast(&g, 256, 4);
        let labels: Vec<PhaseLabel> = s.phases.iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            vec![
                PhaseLabel::InterChip,
                PhaseLabel::InterRank,
                PhaseLabel::InterChip,
                PhaseLabel::InterBank,
            ]
        );
    }

    #[test]
    fn reduce_converges_to_root_only() {
        let g = PimGeometry::paper();
        let s = build_reduce(&g, 64, 4);
        assert_eq!(s.result_spans[0], vec![Span::new(0, 64)]);
        assert!(s.result_spans[1..].iter().all(Vec::is_empty));
        assert!(s
            .phases
            .iter()
            .flat_map(|p| &p.steps)
            .flat_map(|st| &st.transfers)
            .all(|t| t.combine));
    }

    #[test]
    fn gather_relays_accumulated_pieces() {
        let g = PimGeometry::new(2, 2, 2, 1);
        let s = build_gather(&g, 4, 4);
        assert_eq!(s.buffer_len, 8 * 4);
        // The rank-leader hop must carry more than one piece (its own plus
        // everything it collected from its rank).
        let rank_phase = s
            .phases
            .iter()
            .find(|p| p.label == PhaseLabel::InterRank)
            .unwrap();
        let from_rank1: Vec<_> = rank_phase.steps[0]
            .transfers
            .iter()
            .filter(|t| t.src == DpuId(4))
            .collect();
        assert_eq!(from_rank1.len(), 4, "rank leader must relay 4 pieces");
        assert!(from_rank1.iter().all(|t| !t.combine));
    }

    #[test]
    fn broadcast_result_is_everywhere() {
        let g = PimGeometry::paper_scaled(32);
        let s = build_broadcast(&g, 128, 4);
        assert!(s.result_spans.iter().all(|r| r == &vec![Span::new(0, 128)]));
    }

    #[test]
    fn single_bank_geometry_broadcast_has_no_bank_phase() {
        let g = PimGeometry::new(1, 4, 2, 1);
        let s = build_broadcast(&g, 16, 4);
        assert!(s.phases.iter().all(|p| p.label != PhaseLabel::InterBank));
    }
}
