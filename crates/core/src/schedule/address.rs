//! Algorithm 1: per-bank address generation and timing offsets for
//! AllReduce.
//!
//! Because the host is not involved during PIMnet communication, every PIM
//! bank must know, *before the kernel launches*, (a) the local WRAM address
//! of the data it sends in each phase and (b) the time offset at which each
//! phase begins — communication is self-timed after the single READY/START
//! barrier. This module reproduces the paper's Algorithm 1 verbatim for the
//! logical unidirectional ring: the hierarchical schedule builders in this
//! crate generalize it (bidirectional bank rings), but Algorithm 1 remains
//! the programmer-visible contract and is what the host-side "compiler"
//! hands to each DPU.

use pim_sim::SimTime;

use pim_arch::geometry::{DpuId, PimGeometry};

/// Durations of the six AllReduce tiers, in schedule order
/// (`RS_bank → RS_chip → RS_rank → AG_rank → AG_chip → AG_bank`).
///
/// With the paper's broadcast-based inter-rank reduction, `ag_rank` is zero
/// (one bus pass reduces *and* redistributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TierTimes {
    /// Inter-bank ReduceScatter duration (`T_RS_B`).
    pub rs_bank: SimTime,
    /// Inter-chip ReduceScatter duration (`T_RS_C`).
    pub rs_chip: SimTime,
    /// Inter-rank reduction duration (`T_RS_R`).
    pub rs_rank: SimTime,
    /// Inter-rank AllGather duration (`T_AG_R`; zero for broadcast-based
    /// reduction).
    pub ag_rank: SimTime,
    /// Inter-chip AllGather duration (`T_AG_C`).
    pub ag_chip: SimTime,
    /// Inter-bank AllGather duration (`T_AG_B`).
    pub ag_bank: SimTime,
}

impl TierTimes {
    /// End-to-end AllReduce duration.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.rs_bank + self.rs_chip + self.rs_rank + self.ag_rank + self.ag_chip + self.ag_bank
    }
}

/// The `(offset, start_address)` pair Algorithm 1 returns for one phase on
/// one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PhaseAddr {
    /// When the phase begins, relative to START.
    pub offset: SimTime,
    /// Element index of the first chunk this bank sends in the phase.
    pub start_addr: usize,
}

/// Everything one bank needs to run an AllReduce without the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankAddressInfo {
    /// The bank this information is compiled for.
    pub bank: DpuId,
    /// Inter-bank ReduceScatter phase.
    pub rs_bank: PhaseAddr,
    /// Inter-chip ReduceScatter phase.
    pub rs_chip: PhaseAddr,
    /// Inter-rank reduction phase.
    pub rs_rank: PhaseAddr,
    /// Inter-chip AllGather phase.
    pub ag_chip: PhaseAddr,
    /// Inter-bank AllGather phase.
    pub ag_bank: PhaseAddr,
}

/// The compiled Algorithm 1 output for a whole AllReduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllReduceAddressPlan {
    /// Geometry the plan was compiled for.
    pub geometry: PimGeometry,
    /// Vector length per node, in elements (`D` in Algorithm 1).
    pub elems: usize,
    /// Tier durations used for the offsets.
    pub times: TierTimes,
    /// Per-bank addresses, indexed by linear DPU id.
    pub banks: Vec<BankAddressInfo>,
}

impl AllReduceAddressPlan {
    /// Compiles Algorithm 1 for every bank.
    ///
    /// `Schedule_AllReduce(domain, phase)` of the paper computes, for each
    /// `(domain, phase)` pair, a time offset (a prefix sum of earlier tier
    /// durations) and a start address derived from the bank/chip/rank IDs.
    #[must_use]
    pub fn compile(geometry: &PimGeometry, elems: usize, times: TierTimes) -> Self {
        let nb = geometry.banks_per_chip as usize;
        let nc = geometry.chips_per_rank as usize;
        let nr = geometry.ranks_per_channel as usize;
        let banks = geometry
            .dpus()
            .map(|id| {
                let c = geometry.coord(id);
                let (ib, ic, ir) = (c.bank as usize, c.chip as usize, c.rank as usize);
                let _ = ir;
                // domain == bank, phase == RS: offset 0, Addr_s = D/N_B * I_B.
                let rs_bank = PhaseAddr {
                    offset: SimTime::ZERO,
                    start_addr: elems / nb * ib,
                };
                // domain == chip, phase == RS: starts after the bank RS; the
                // bank owns chunk (I_B + 1) % N_B, and sends its I_C-th
                // sub-chunk of it.
                let owned_bank = elems / nb * ((ib + 1) % nb);
                let rs_chip = PhaseAddr {
                    offset: times.rs_bank,
                    start_addr: owned_bank + elems / (nb * nc) * ic,
                };
                // domain == rank, phase == RS: starts after the chip RS; the
                // bank owns sub-chunk (I_C + 1) % N_C and broadcasts it.
                let owned_chip = owned_bank + elems / (nb * nc) * ((ic + 1) % nc);
                let rs_rank = PhaseAddr {
                    offset: times.rs_bank + times.rs_chip,
                    start_addr: owned_chip,
                };
                let _ = nr;
                // domain == chip, phase == AG.
                let ag_chip = PhaseAddr {
                    offset: times.rs_bank + times.rs_chip + times.rs_rank + times.ag_rank,
                    start_addr: owned_chip,
                };
                // domain == bank, phase == AG: Algorithm 1's published case:
                // offset = T_RS_B + T_RS_C + T_RS_R + T_AG_R + T_AG_C,
                // Addr_s = D/N_B * ((I_B + N_B - 1) % N_B) — one chunk
                // "behind" the owned chunk, i.e. the chunk just received.
                let ag_bank = PhaseAddr {
                    offset: times.rs_bank
                        + times.rs_chip
                        + times.rs_rank
                        + times.ag_rank
                        + times.ag_chip,
                    start_addr: elems / nb * ((ib + nb - 1) % nb),
                };
                BankAddressInfo {
                    bank: id,
                    rs_bank,
                    rs_chip,
                    rs_rank,
                    ag_chip,
                    ag_bank,
                }
            })
            .collect();
        AllReduceAddressPlan {
            geometry: *geometry,
            elems,
            times,
            banks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times() -> TierTimes {
        TierTimes {
            rs_bank: SimTime::from_us(20),
            rs_chip: SimTime::from_us(27),
            rs_rank: SimTime::from_us(8),
            ag_rank: SimTime::ZERO,
            ag_chip: SimTime::from_us(27),
            ag_bank: SimTime::from_us(20),
        }
    }

    #[test]
    fn offsets_are_prefix_sums_of_tier_times() {
        let g = PimGeometry::paper();
        let plan = AllReduceAddressPlan::compile(&g, 8192, times());
        let b = &plan.banks[37];
        assert_eq!(b.rs_bank.offset, SimTime::ZERO);
        assert_eq!(b.rs_chip.offset, SimTime::from_us(20));
        assert_eq!(b.rs_rank.offset, SimTime::from_us(47));
        assert_eq!(b.ag_chip.offset, SimTime::from_us(55));
        assert_eq!(b.ag_bank.offset, SimTime::from_us(82));
        assert_eq!(plan.times.total(), SimTime::from_us(102));
    }

    #[test]
    fn rs_bank_addresses_tile_the_vector() {
        let g = PimGeometry::paper();
        let elems = 8192;
        let plan = AllReduceAddressPlan::compile(&g, elems, times());
        // Within one chip, the 8 banks start at 8 distinct, evenly spaced
        // addresses (Fig 9(a)).
        let starts: Vec<usize> = (0..8).map(|b| plan.banks[b].rs_bank.start_addr).collect();
        assert_eq!(starts, vec![0, 1024, 2048, 3072, 4096, 5120, 6144, 7168]);
    }

    #[test]
    fn ag_bank_address_is_one_chunk_behind_ownership() {
        let g = PimGeometry::paper();
        let elems = 8192;
        let plan = AllReduceAddressPlan::compile(&g, elems, times());
        // Bank 0 owns chunk 1 after RS; in AG it first forwards chunk
        // (0 + 8 - 1) % 8 = 7.
        assert_eq!(plan.banks[0].ag_bank.start_addr, elems / 8 * 7);
    }

    #[test]
    fn chip_phase_addresses_nest_inside_bank_chunks() {
        let g = PimGeometry::paper();
        let elems = 8192;
        let plan = AllReduceAddressPlan::compile(&g, elems, times());
        for id in g.dpus().take(64) {
            let c = g.coord(id);
            let b = &plan.banks[id.index()];
            let owned = elems / 8 * ((c.bank as usize + 1) % 8);
            assert!(b.rs_chip.start_addr >= owned);
            assert!(b.rs_chip.start_addr < owned + elems / 8);
        }
    }

    #[test]
    fn same_position_banks_of_different_ranks_share_addresses() {
        // The inter-rank broadcast pairs twin banks; their addresses match.
        let g = PimGeometry::paper();
        let plan = AllReduceAddressPlan::compile(&g, 4096, times());
        let a = &plan.banks[DpuId(5).index()]; // rank 0
        let b = &plan.banks[DpuId(5 + 64).index()]; // rank 1, same (chip, bank)
        assert_eq!(a.rs_rank.start_addr, b.rs_rank.start_addr);
    }
}
