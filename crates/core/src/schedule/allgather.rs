//! AllGather schedule builder (Table V:
//! `Broadcast(inter-rank) → Ring(inter-chip) → Ring(inter-bank)`).
//!
//! Every node contributes `n` elements; the per-node buffer holds all
//! `N × n` elements, with node `i`'s contribution pre-placed at piece `i`
//! (pieces are laid out in linear DPU order). The rank-level broadcast runs
//! *first* — while the data is still one piece per bank — then ring
//! AllGathers fan the accumulated piece-sets out across chips and banks.

use pim_arch::geometry::{DpuCoord, DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::topology::{rank_path, ring_path, Direction};

use super::{chip_ring_path, CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

pub(super) fn build(geometry: &PimGeometry, elems: usize, elem_bytes: u32) -> CommSchedule {
    let (banks, chips, ranks) = (
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    );
    let total = geometry.total_dpus() as usize;
    let buffer_len = total * elems;
    let piece = |id: DpuId| Span::new(id.index() * elems, elems);
    let mut phases = Vec::new();

    // ---- Phase 1: inter-rank broadcast of each bank's own piece. ----
    // After this phase, bank (r, c, b) holds the pieces of every rank's
    // (c, b) twin: {piece(r'', c, b) for all r''}.
    if ranks > 1 {
        let mut steps = Vec::new();
        for src_rank in 0..ranks {
            let mut transfers = Vec::new();
            for chip in 0..chips {
                for bank in 0..banks {
                    let src = geometry.id(DpuCoord {
                        channel: 0,
                        rank: src_rank,
                        chip,
                        bank,
                    });
                    let dsts: Vec<DpuId> = (0..ranks)
                        .filter(|&r| r != src_rank)
                        .map(|r| {
                            geometry.id(DpuCoord {
                                channel: 0,
                                rank: r,
                                chip,
                                bank,
                            })
                        })
                        .collect();
                    transfers.push(Transfer {
                        src,
                        dsts: dsts.clone(),
                        src_span: piece(src),
                        dst_span: piece(src),
                        combine: false,
                        resources: rank_path(geometry, src, &dsts),
                    });
                }
            }
            steps.push(CommStep::new(transfers));
        }
        phases.push(Phase::new(PhaseLabel::InterRank, steps, true));
    }

    // The set of pieces a bank at (chip, bank) holds after phase 1: the
    // pieces of every rank's (chip, bank) twin.
    let column = |chip: u32, bank: u32| -> Vec<Span> {
        (0..ranks)
            .map(|r| {
                piece(geometry.id(DpuCoord {
                    channel: 0,
                    rank: r,
                    chip,
                    bank,
                }))
            })
            .collect()
    };

    // ---- Phase 2: inter-chip ring AllGather of piece-sets. ----
    // Node (r, c, b) circulates its R-piece set around the chip ring; after
    // C-1 steps every bank holds {piece(r'', c'', b)} for all r'', c''.
    if chips > 1 {
        let mut steps: Vec<Vec<Transfer>> = vec![Vec::new(); chips as usize - 1];
        for rank in 0..ranks {
            for bank in 0..banks {
                let nodes: Vec<DpuId> = (0..chips)
                    .map(|chip| {
                        geometry.id(DpuCoord {
                            channel: 0,
                            rank,
                            chip,
                            bank,
                        })
                    })
                    .collect();
                // cur[i] = index of the piece-set node i forwards this step.
                let mut cur: Vec<u32> = (0..chips).collect();
                for step in steps.iter_mut() {
                    let mut next_cur = cur.clone();
                    for (i, &node) in nodes.iter().enumerate() {
                        let dst_i = (i + 1) % chips as usize;
                        let dst = nodes[dst_i];
                        for span in column(cur[i], bank) {
                            step.push(Transfer {
                                src: node,
                                dsts: vec![dst],
                                src_span: span,
                                dst_span: span,
                                combine: false,
                                resources: chip_ring_path(geometry, node, dst),
                            });
                        }
                        next_cur[dst_i] = cur[i];
                    }
                    cur = next_cur;
                }
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterChip,
            steps.into_iter().map(CommStep::new).collect(),
            true,
        ));
    }

    // ---- Phase 3: inter-bank ring AllGather of piece-sets. ----
    // Node (r, c, b) circulates its R·C-piece set (everything with bank
    // index b) around the bank ring. Sets are split across the two ring
    // directions to use all four bank channels.
    if banks > 1 {
        let mut steps: Vec<Vec<Transfer>> = vec![Vec::new(); banks as usize - 1];
        for rank in 0..ranks {
            for chip in 0..chips {
                for (h, dir) in [(0usize, Direction::East), (1usize, Direction::West)] {
                    let mut nodes: Vec<DpuId> = (0..banks)
                        .map(|bank| {
                            geometry.id(DpuCoord {
                                channel: 0,
                                rank,
                                chip,
                                bank,
                            })
                        })
                        .collect();
                    if dir == Direction::West {
                        nodes.reverse();
                    }
                    // Piece-set of logical node i: all pieces with that bank
                    // index, halved by direction.
                    let set_of = |node: DpuId| -> Vec<Span> {
                        let b = geometry.coord(node).bank;
                        let mut spans = Vec::new();
                        for r in 0..ranks {
                            for c in 0..chips {
                                spans.push(piece(geometry.id(DpuCoord {
                                    channel: 0,
                                    rank: r,
                                    chip: c,
                                    bank: b,
                                })));
                            }
                        }
                        let mid = spans.len() / 2;
                        if h == 0 {
                            spans.truncate(mid.max(1));
                        } else {
                            spans.drain(..mid.max(1));
                        }
                        spans
                    };
                    let mut cur: Vec<DpuId> = nodes.clone();
                    for step in steps.iter_mut() {
                        let mut next_cur = cur.clone();
                        for (i, &node) in nodes.iter().enumerate() {
                            let dst_i = (i + 1) % banks as usize;
                            let dst = nodes[dst_i];
                            for span in set_of(cur[i]) {
                                step.push(Transfer {
                                    src: node,
                                    dsts: vec![dst],
                                    src_span: span,
                                    dst_span: span,
                                    combine: false,
                                    resources: ring_path(geometry, node, dst, dir),
                                });
                            }
                            next_cur[dst_i] = cur[i];
                        }
                        cur = next_cur;
                    }
                }
            }
        }
        phases.push(Phase::new(
            PhaseLabel::InterBank,
            steps.into_iter().map(CommStep::new).collect(),
            false,
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    let full = Span::new(0, buffer_len);
    CommSchedule {
        kind: CollectiveKind::AllGather,
        geometry: *geometry,
        elems_per_node: elems,
        elem_bytes,
        buffer_len,
        result_spans: vec![vec![full]; total],
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_order_matches_table_v() {
        let g = PimGeometry::paper();
        let s = build(&g, 16, 4);
        let labels: Vec<PhaseLabel> = s.phases.iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            vec![
                PhaseLabel::InterRank,
                PhaseLabel::InterChip,
                PhaseLabel::InterBank,
            ]
        );
    }

    #[test]
    fn buffer_holds_all_pieces() {
        let g = PimGeometry::paper_scaled(16);
        let s = build(&g, 8, 4);
        assert_eq!(s.buffer_len, 16 * 8);
        assert_eq!(s.result_spans[0], vec![Span::new(0, 128)]);
    }

    #[test]
    fn single_rank_skips_bus() {
        let g = PimGeometry::new(8, 8, 1, 1);
        let s = build(&g, 8, 4);
        assert!(s.phases.iter().all(|p| p.label != PhaseLabel::InterRank));
    }

    #[test]
    fn wire_bytes_grow_linearly_with_piece_size() {
        let g = PimGeometry::paper_scaled(32);
        let a = build(&g, 64, 4).total_wire_bytes().as_u64();
        let b = build(&g, 128, 4).total_wire_bytes().as_u64();
        assert_eq!(b, a * 2);
    }
}
