//! Recursive halving–doubling AllReduce — an *alternative* scheduler used
//! as an ablation against the paper's hierarchical ring (Table V).
//!
//! Halving–doubling finishes in `2·log₂(N)` steps instead of the ring's
//! `O(N)` and is the textbook choice on fat networks. On PIMnet's fabric
//! it is the wrong choice, and building it makes the reason measurable:
//! its early steps exchange *half the vector* between bank-level partners
//! over the shared intra-chip ring segments (multi-hop, time-multiplexed),
//! and its late steps throw large halves across the rank bus **before**
//! any hierarchical reduction has shrunk them. The `ablation_allreduce`
//! binary prints the comparison.

use pim_arch::geometry::{DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::topology::{chip_path, rank_path, ring_path, shorter_direction};

use super::{CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};
use crate::error::PimnetError;

/// Builds a recursive halving–doubling AllReduce over all DPUs.
///
/// # Errors
///
/// [`PimnetError::InvalidGeometry`] unless every dimension is a power of
/// two (XOR pairing) on a single channel.
pub fn build_halving_doubling(
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
) -> Result<CommSchedule, PimnetError> {
    if geometry.channels != 1
        || !geometry.banks_per_chip.is_power_of_two()
        || !geometry.chips_per_rank.is_power_of_two()
        || !geometry.ranks_per_channel.is_power_of_two()
    {
        return Err(PimnetError::InvalidGeometry {
            geometry: *geometry,
            reason: "halving-doubling needs power-of-two dimensions on one channel".into(),
        });
    }
    let total = geometry.total_dpus() as usize;
    let stages = total.trailing_zeros();

    let path = |src: DpuId, dst: DpuId| {
        if geometry.same_chip(src, dst) {
            let (a, b) = (geometry.coord(src).bank, geometry.coord(dst).bank);
            ring_path(
                geometry,
                src,
                dst,
                shorter_direction(geometry.banks_per_chip, a, b),
            )
        } else if geometry.same_rank(src, dst) {
            chip_path(geometry, src, dst)
        } else {
            rank_path(geometry, src, &[dst])
        }
    };
    let label_for = |distance: usize| {
        if distance < geometry.banks_per_chip as usize {
            PhaseLabel::InterBank
        } else if distance < (geometry.banks_per_chip * geometry.chips_per_rank) as usize {
            PhaseLabel::InterChip
        } else {
            PhaseLabel::InterRank
        }
    };

    // Working span per node; halves on every reduce-scatter stage.
    let mut span: Vec<Span> = vec![Span::new(0, elems); total];
    let mut phases: Vec<Phase> = Vec::new();
    let push_step = |phases: &mut Vec<Phase>, label: PhaseLabel, transfers: Vec<Transfer>| {
        // One step per stage; group stages of the same tier into one phase
        // for breakdown purposes.
        match phases.last_mut() {
            Some(p) if p.label == label => p.steps.push(CommStep::new(transfers)),
            _ => phases.push(Phase::new(label, vec![CommStep::new(transfers)], true)),
        }
    };

    // ---- Reduce-scatter by recursive halving. ----
    for k in 0..stages {
        let d = 1usize << k;
        let label = label_for(d);
        let mut transfers = Vec::with_capacity(total);
        for (i, s) in span.iter().enumerate() {
            let p = i ^ d;
            let halves = s.split(2);
            // The lower-id partner keeps the low half; it *sends* the high
            // half to the partner (which reduces it), and vice versa.
            let send = if i < p { halves[1] } else { halves[0] };
            transfers.push(Transfer {
                src: DpuId(i as u32),
                dsts: vec![DpuId(p as u32)],
                src_span: send,
                dst_span: send,
                combine: true,
                resources: path(DpuId(i as u32), DpuId(p as u32)),
            });
        }
        for (i, s) in span.iter_mut().enumerate() {
            let halves = s.split(2);
            *s = if i < (i ^ d) { halves[0] } else { halves[1] };
        }
        push_step(&mut phases, label, transfers);
    }

    // ---- All-gather by recursive doubling (reverse order). ----
    for k in (0..stages).rev() {
        let d = 1usize << k;
        let label = label_for(d);
        let mut transfers = Vec::with_capacity(total);
        for (i, &s) in span.iter().enumerate() {
            let p = i ^ d;
            transfers.push(Transfer {
                src: DpuId(i as u32),
                dsts: vec![DpuId(p as u32)],
                src_span: s,
                dst_span: s,
                combine: false,
                resources: path(DpuId(i as u32), DpuId(p as u32)),
            });
        }
        let before = span.clone();
        for i in 0..total {
            let p = i ^ d;
            // After the exchange both partners hold the union of their
            // *pre-stage* spans (adjacent siblings at this level).
            let (lo, hi) = if before[i].start < before[p].start {
                (before[i], before[p])
            } else {
                (before[p], before[i])
            };
            debug_assert_eq!(lo.end(), hi.start);
            span[i] = Span::new(lo.start, lo.len + hi.len);
        }
        push_step(&mut phases, label, transfers);
    }

    phases.retain(|p| !p.steps.is_empty());
    Ok(CommSchedule {
        kind: CollectiveKind::AllReduce,
        geometry: *geometry,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans: vec![vec![Span::new(0, elems)]; total],
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_collective, ReduceOp};
    use crate::schedule::validate::validate;
    use crate::timing::TimingModel;
    use pim_sim::SimTime;

    #[test]
    fn halving_doubling_is_functionally_an_allreduce() {
        for n in [8u32, 64, 256] {
            let g = PimGeometry::paper_scaled(n);
            let elems = 512usize;
            let s = build_halving_doubling(&g, elems, 4).unwrap();
            validate(&s).unwrap();
            let m =
                run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; elems]).unwrap();
            let expected: u64 = (1..=u64::from(n)).sum();
            for id in s.participants() {
                assert!(
                    m.result(&s, id).iter().all(|&x| x == expected),
                    "n={n} node {id}"
                );
            }
        }
    }

    #[test]
    fn has_logarithmic_step_count() {
        let g = PimGeometry::paper();
        let s = build_halving_doubling(&g, 8192, 4).unwrap();
        assert_eq!(s.step_count(), 16); // 2 * log2(256)
    }

    #[test]
    fn the_hierarchical_ring_beats_it_on_this_fabric() {
        // The ablation claim: fewer steps do not help when the early steps
        // saturate the shared ring segments and the late steps flood the
        // bus with unreduced halves.
        let g = PimGeometry::paper();
        let m = TimingModel::paper();
        let ring = CommSchedule::build(CollectiveKind::AllReduce, &g, 8192, 4).unwrap();
        let hd = build_halving_doubling(&g, 8192, 4).unwrap();
        let t_ring = m.time_schedule(&ring, SimTime::ZERO).total();
        let t_hd = m.time_schedule(&hd, SimTime::ZERO).total();
        assert!(
            t_ring < t_hd,
            "hierarchical ring ({t_ring}) should beat halving-doubling ({t_hd})"
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        let g = PimGeometry::new(3, 2, 1, 1);
        assert!(build_halving_doubling(&g, 64, 4).is_err());
    }

    #[test]
    fn single_node_is_a_noop() {
        let g = PimGeometry::paper_scaled(1);
        let s = build_halving_doubling(&g, 64, 4).unwrap();
        assert_eq!(s.step_count(), 0);
    }
}
