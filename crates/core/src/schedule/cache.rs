//! Memoized schedule construction.
//!
//! Schedules are pure functions of their build parameters: the same
//! `(collective kind, geometry, payload split, permanent-fault set)` always
//! compiles to the same `CommSchedule`. Yet the sweeps that dominate this
//! workspace's wall-clock — chaos soaks, preset lint matrices, the
//! figure-scaling curves, `resilience::plan_degraded` under storms —
//! rebuild identical schedules thousands of times, once per seed or per
//! backend. This module memoizes the build **and the validation**: a cache
//! hit hands back a schedule that already passed
//! [`validate::validate`], shared behind an
//! [`Arc`].
//!
//! # Key derivation
//!
//! The cache key is the exact quadruple that determines builder output:
//!
//! * the [`CollectiveKind`],
//! * the full [`PimGeometry`] (all four dimensions, not just the DPU
//!   count — two geometries with equal products build different rings),
//! * the payload split `(elems_per_node, elem_bytes)`,
//! * a **fingerprint of the permanent-fault set** for repaired schedules:
//!   an FNV-1a hash folded over the set's segments, ports and dead ranks in
//!   their canonical (`BTreeSet`) order, so the fingerprint is stable
//!   across runs and platforms. The empty set hashes to the fault-free
//!   fingerprint, which is the plain builder's key space.
//!
//! Entries are never invalidated (build parameters fully determine the
//! value); [`clear`] exists for benchmarks that want a cold start. The
//! cache is process-global and thread-safe — the deterministic fan-out in
//! [`pim_sim::par`] shares it across workers, and because every worker
//! would build bit-identical schedules anyway, sharing is unobservable in
//! results.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use pim_arch::geometry::PimGeometry;
use pim_faults::permanent::PermanentFaultSet;
use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use crate::analysis::{self, AnalysisSummary, DeltaStats};
use crate::collective::CollectiveKind;
use crate::error::PimnetError;

use super::algos::{self, Composition};
use super::autotune::TunedChoice;
use super::boost::{self, BoostPlan};
use super::repair::RepairedSchedule;
use super::{validate, CommSchedule};

/// Cache key: everything that determines builder (and repair) output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    kind: CollectiveKind,
    geometry: PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    /// [`fault_fingerprint`] of the permanent-fault set; `EMPTY_FAULTS`
    /// for plain (unrepaired) schedules.
    repair: u64,
    /// Separates plain entries from (identity-)repaired entries whose
    /// fault fingerprint is the empty-set fingerprint.
    repaired: bool,
    /// Degradation/health epoch: bumped by the recovery manager whenever
    /// mid-run quarantine or fault arrival changes the live scenario, so a
    /// post-quarantine replan can never be answered from a pre-fault
    /// entry whose fault fingerprint happens to coincide. Static planning
    /// uses epoch 0.
    epoch: u64,
    /// Separates boost plans ([`BoostPlan`]) from the full schedules they
    /// were thinned from: a boosted lookup must never be answered with a
    /// plain entry (or vice versa) for otherwise identical parameters.
    boost: bool,
    /// Which builder produced the entry: [`PAPER_ALGO`] for the paper's
    /// Table V builder ([`CommSchedule::build`]), [`composed_algo_code`]
    /// for a per-tier [`Composition`] (chunk split folded in), and
    /// [`TUNED_ALGO`] for the autotuner's memoized winner. Composed and
    /// paper entries for identical parameters must never collide.
    algo: u32,
}

/// [`Key::algo`] code of the paper's fixed Table V builder.
const PAPER_ALGO: u32 = 0;

/// [`Key::algo`] sentinel for memoized autotuner winners
/// ([`Entry::Tuned`]): the tuned entry is keyed by the *request*
/// (kind, geometry, payload), not by whichever composition won.
const TUNED_ALGO: u32 = u32::MAX;

/// Folds a per-tier [`Composition`] and chunk split into a stable
/// [`Key::algo`] code, disjoint from [`PAPER_ALGO`] and [`TUNED_ALGO`]:
/// bits 0..=7 carry `1 + bank + 4·chip + 16·rank` (1..=64), bits 8..=15
/// carry `chunks - 1`.
fn composed_algo_code(comp: Composition, chunks: usize) -> u32 {
    debug_assert!((1..=256).contains(&chunks), "chunk split out of range");
    let c = 1 + comp.bank.code() + 4 * comp.chip.code() + 16 * comp.rank.code();
    c + (((chunks - 1) as u32) << 8)
}

/// One memoized value: a validated plain schedule, a repaired one, a
/// boost plan thinned from a validated plain schedule, or an autotuner
/// winner.
#[derive(Debug, Clone)]
enum Entry {
    Plain(Arc<CommSchedule>),
    Repaired(Arc<RepairedSchedule>),
    Boost(Arc<BoostPlan>),
    Tuned(Arc<TunedChoice>),
}

/// A table slot: either a finished entry, or a build in flight. Pending
/// slots are what make concurrent misses on the same key build **once**:
/// the first worker claims the slot and builds outside the table lock,
/// later workers block on the slot's condvar instead of duplicating the
/// build.
#[derive(Debug, Clone)]
enum Slot {
    Ready(Entry),
    Pending(Arc<Pending>),
}

/// Rendezvous for workers waiting on an in-flight build.
#[derive(Debug)]
struct Pending {
    state: Mutex<PendState>,
    cv: Condvar,
}

#[derive(Debug)]
enum PendState {
    Building,
    Done(Entry),
    /// The build errored; waiters retry (and typically reproduce the
    /// error themselves, since errors are not cached).
    Failed,
}

impl Pending {
    fn new() -> Self {
        Pending {
            state: Mutex::new(PendState::Building),
            cv: Condvar::new(),
        }
    }

    fn finish(&self, outcome: Option<Entry>) {
        let mut state = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *state = match outcome {
            Some(e) => PendState::Done(e),
            None => PendState::Failed,
        };
        self.cv.notify_all();
    }

    /// Blocks until the in-flight build resolves; `None` means it failed
    /// and the caller should retry from the top.
    fn wait(&self) -> Option<Entry> {
        let mut state = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        loop {
            match &*state {
                PendState::Done(e) => return Some(e.clone()),
                PendState::Failed => return None,
                PendState::Building => {
                    state = match self.cv.wait(state) {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
            }
        }
    }
}

/// Running cache counters (process-global, monotone until
/// [`reset_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build (and validate) a schedule.
    pub misses: u64,
    /// Schedules actually constructed (equals `misses` that succeeded).
    pub schedules_built: u64,
}

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static BUILT: AtomicU64 = AtomicU64::new(0);

fn table() -> &'static Mutex<HashMap<Key, Slot>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, Slot>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_table() -> std::sync::MutexGuard<'static, HashMap<Key, Slot>> {
    // A poisoned cache means a builder panicked mid-insert; the map itself
    // is still a plain HashMap in a consistent state, so keep serving.
    match table().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Looks `key` up, waiting out any in-flight build; on a cold key, runs
/// `build` (outside the table lock) and publishes the result.
///
/// Exactly one worker builds a given key no matter how many miss on it
/// concurrently, so `schedules_built` is invariant in the worker count.
/// Errors are not cached: the pending slot is removed and every waiter
/// retries (reproducing the cheap, request-specific error itself).
fn get_or_build(
    key: Key,
    probe: &Probe,
    build: impl Fn() -> Result<Entry, PimnetError>,
) -> Result<Entry, PimnetError> {
    loop {
        let pending = {
            let mut map = lock_table();
            match map.get(&key) {
                Some(Slot::Ready(e)) => {
                    HITS.fetch_add(1, Ordering::Relaxed);
                    record_cache_event(codes::CACHE_HIT, &key, probe);
                    return Ok(e.clone());
                }
                Some(Slot::Pending(p)) => p.clone(),
                None => {
                    let p = Arc::new(Pending::new());
                    map.insert(key, Slot::Pending(p.clone()));
                    drop(map);
                    MISSES.fetch_add(1, Ordering::Relaxed);
                    record_cache_event(codes::CACHE_MISS, &key, probe);
                    match build() {
                        Ok(entry) => {
                            BUILT.fetch_add(1, Ordering::Relaxed);
                            lock_table().insert(key, Slot::Ready(entry.clone()));
                            p.finish(Some(entry.clone()));
                            return Ok(entry);
                        }
                        Err(e) => {
                            // Drop our pending slot (unless clear() or a
                            // retrying waiter already replaced it).
                            let mut map = lock_table();
                            if matches!(map.get(&key),
                                Some(Slot::Pending(q)) if Arc::ptr_eq(q, &p))
                            {
                                map.remove(&key);
                            }
                            drop(map);
                            p.finish(None);
                            return Err(e);
                        }
                    }
                }
            }
        };
        // Someone else is building this key: wait for them. A successful
        // build counts as a hit for us; a failed one sends us back around
        // the loop to try building it ourselves.
        record_cache_event(codes::CACHE_DEDUP_WAIT, &key, probe);
        if let Some(entry) = pending.wait() {
            HITS.fetch_add(1, Ordering::Relaxed);
            record_cache_event(codes::CACHE_HIT, &key, probe);
            return Ok(entry);
        }
    }
}

/// Emits one cache event (hit/miss/dedup-wait) and bumps the matching
/// metrics counter. Cache events have no simulated time, so they carry
/// timestamp zero; golden-trace tests filter the cache group out, since
/// hit/miss patterns legitimately differ between cold and warm runs.
fn record_cache_event(code: u16, key: &Key, probe: &Probe) {
    if !probe.is_active() {
        return;
    }
    probe.trace.instant(
        SimTime::ZERO,
        code,
        [
            key.kind as u64,
            u64::from(key.geometry.total_dpus()),
            key.elems_per_node as u64,
            u64::from(key.elem_bytes),
        ],
    );
    match code {
        codes::CACHE_HIT => probe.metrics.cache_hit(),
        codes::CACHE_MISS => probe.metrics.cache_miss(),
        _ => probe.metrics.cache_dedup_wait(),
    }
}

/// Fingerprint of the empty fault set (FNV-1a offset basis).
const EMPTY_FAULTS: u64 = 0xcbf2_9ce4_8422_2325;

/// Stable FNV-1a fingerprint of a permanent-fault set, folded over the
/// set's canonical (`BTreeSet`-ordered) contents. Identical sets — however
/// they were produced (parsed tokens, seeded sampling, merges) — hash
/// identically on every platform; the empty set hashes to the fault-free
/// fingerprint.
#[must_use]
pub fn fault_fingerprint(faults: &PermanentFaultSet) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = EMPTY_FAULTS;
    let mut fold = |tag: u64, vals: [u64; 3]| {
        for v in std::iter::once(tag).chain(vals) {
            h = (h ^ v).wrapping_mul(PRIME);
        }
    };
    for s in &faults.segments {
        fold(
            1,
            [
                u64::from(s.rank) << 32 | u64::from(s.chip),
                u64::from(s.from_bank),
                u64::from(s.east),
            ],
        );
    }
    for p in &faults.ports {
        fold(
            2,
            [
                u64::from(p.rank) << 32 | u64::from(p.chip),
                p.side as u64,
                0,
            ],
        );
    }
    for &r in &faults.dead_ranks {
        fold(3, [u64::from(r), 0, 0]);
    }
    h
}

/// Builds (or recalls) the schedule for `kind` on `geometry`, validated.
///
/// On a miss this is [`CommSchedule::build`] followed by
/// [`validate::validate`]; on a hit it is a map lookup and an `Arc` clone.
/// Build or validation errors are returned and **not** cached (they are
/// cheap to reproduce and carry request-specific messages).
///
/// # Errors
///
/// Whatever [`CommSchedule::build`] or [`validate::validate`] return.
pub fn build_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
) -> Result<Arc<CommSchedule>, PimnetError> {
    build_cached_probed(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        Probe::disabled(),
    )
}

/// [`build_cached`] with hit/miss/dedup-wait observability: each lookup
/// outcome lands in `probe` as a `cache-*` trace event and a metrics
/// counter. With a disabled probe this is exactly [`build_cached`].
///
/// # Errors
///
/// Whatever [`CommSchedule::build`] or [`validate::validate`] return.
pub fn build_cached_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
) -> Result<Arc<CommSchedule>, PimnetError> {
    build_cached_at_epoch(kind, geometry, elems_per_node, elem_bytes, 0, probe)
}

/// [`build_cached_probed`] under a degradation/health `epoch`: entries
/// built at different epochs never collide, even for identical geometry
/// and fault fingerprints. Epoch 0 is the static-planning key space, so
/// `build_cached_at_epoch(.., 0, ..)` ≡ `build_cached_probed(..)`.
///
/// # Errors
///
/// Whatever [`CommSchedule::build`] or [`validate::validate`] return.
pub fn build_cached_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    epoch: u64,
    probe: &Probe,
) -> Result<Arc<CommSchedule>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch,
        boost: false,
        algo: PAPER_ALGO,
    };
    let entry = get_or_build(key, probe, || {
        let schedule = CommSchedule::build(kind, geometry, elems_per_node, elem_bytes)?;
        validate::validate(&schedule)?;
        Ok(Entry::Plain(Arc::new(schedule)))
    })?;
    match entry {
        Entry::Plain(s) => Ok(s),
        _ => unreachable!("plain key holds a non-plain entry"),
    }
}

/// Builds (or recalls) the [`BoostPlan`] for `kind` on `geometry`: the
/// representative-slice thinning of the validated full schedule, with
/// per-step class facts for analytic timing reconstruction.
///
/// The full schedule comes through [`build_cached`] (so a warm plain
/// entry makes a cold boost lookup cheap); the thinning itself runs only
/// on a miss. The cache key carries a `boost` discriminator, so boosted
/// and plain entries for identical parameters never collide.
///
/// # Errors
///
/// Whatever [`build_cached`] returns — planning itself is infallible.
pub fn boost_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
) -> Result<Arc<BoostPlan>, PimnetError> {
    boost_cached_probed(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        Probe::disabled(),
    )
}

/// [`boost_cached`] with hit/miss/dedup-wait observability (see
/// [`build_cached_probed`]). With a disabled probe this is exactly
/// [`boost_cached`].
///
/// # Errors
///
/// Whatever [`build_cached`] returns.
pub fn boost_cached_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
) -> Result<Arc<BoostPlan>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch: 0,
        boost: true,
        algo: PAPER_ALGO,
    };
    let entry = get_or_build(key, probe, || {
        let base = build_cached_probed(kind, geometry, elems_per_node, elem_bytes, probe)?;
        Ok(Entry::Boost(Arc::new(boost::plan(&base))))
    })?;
    match entry {
        Entry::Boost(p) => Ok(p),
        _ => unreachable!("boost key holds a non-boost entry"),
    }
}

/// Builds (or recalls) the *repaired* schedule for `kind` on `geometry`
/// under `faults`, keyed by the fault set's [`fault_fingerprint`].
///
/// The base schedule comes through [`build_cached`]; the repair itself
/// (which re-validates its output) runs only on a miss. An empty fault set
/// degenerates to the identity repair of the cached base schedule.
///
/// # Errors
///
/// Whatever [`build_cached`] or
/// [`repair`](super::repair::repair) return.
pub fn repair_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    faults: &PermanentFaultSet,
) -> Result<Arc<RepairedSchedule>, PimnetError> {
    repair_cached_probed(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        faults,
        Probe::disabled(),
    )
}

/// [`repair_cached`] with hit/miss/dedup-wait observability, including the
/// inner base-schedule lookup. With a disabled probe this is exactly
/// [`repair_cached`].
///
/// # Errors
///
/// Whatever [`build_cached`] or
/// [`repair`](super::repair::repair) return.
pub fn repair_cached_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    faults: &PermanentFaultSet,
    probe: &Probe,
) -> Result<Arc<RepairedSchedule>, PimnetError> {
    repair_cached_at_epoch(kind, geometry, elems_per_node, elem_bytes, faults, 0, probe)
}

/// [`repair_cached_probed`] under a degradation/health `epoch` (see
/// [`build_cached_at_epoch`]): a quarantined-link replan at epoch `e > 0`
/// misses every entry the pre-fault plan cached at epoch 0, even when the
/// fault fingerprints coincide.
///
/// # Errors
///
/// Whatever [`build_cached`] or
/// [`repair`](super::repair::repair) return.
pub fn repair_cached_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    faults: &PermanentFaultSet,
    epoch: u64,
    probe: &Probe,
) -> Result<Arc<RepairedSchedule>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: fault_fingerprint(faults),
        repaired: true,
        epoch,
        boost: false,
        algo: PAPER_ALGO,
    };
    let entry = get_or_build(key, probe, || {
        let base = build_cached_at_epoch(kind, geometry, elems_per_node, elem_bytes, epoch, probe)?;
        let repaired = super::repair::repair(&base, faults)?;
        Ok(Entry::Repaired(Arc::new(repaired)))
    })?;
    match entry {
        Entry::Repaired(r) => Ok(r),
        _ => unreachable!("repaired key holds a non-repaired entry"),
    }
}

/// Builds (or recalls) the *composed* schedule for `kind` on `geometry`
/// under a per-tier algorithm [`Composition`] and `chunks` payload
/// split, validated. Composed entries live in their own cache-key
/// `algo` space, so they never collide with the paper builder's
/// entries for identical parameters.
///
/// # Errors
///
/// Whatever [`algos::build_composed_chunked`] or
/// [`validate::validate`] return.
pub fn build_composed_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    comp: Composition,
    chunks: usize,
) -> Result<Arc<CommSchedule>, PimnetError> {
    build_composed_cached_probed(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        comp,
        chunks,
        Probe::disabled(),
    )
}

/// [`build_composed_cached`] with hit/miss/dedup-wait observability (see
/// [`build_cached_probed`]).
///
/// # Errors
///
/// Whatever [`algos::build_composed_chunked`] or
/// [`validate::validate`] return.
pub fn build_composed_cached_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    comp: Composition,
    chunks: usize,
    probe: &Probe,
) -> Result<Arc<CommSchedule>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch: 0,
        boost: false,
        algo: composed_algo_code(comp, chunks),
    };
    let entry = get_or_build(key, probe, || {
        let schedule = algos::build_composed_chunked(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            comp,
            chunks,
        )?;
        validate::validate(&schedule)?;
        Ok(Entry::Plain(Arc::new(schedule)))
    })?;
    match entry {
        Entry::Plain(s) => Ok(s),
        _ => unreachable!("composed key holds a non-plain entry"),
    }
}

/// Recalls (or runs `tune` to produce) the autotuner's memoized winner
/// for one `(kind, geometry, payload)` request. The entry is keyed by
/// the request under the [`TUNED_ALGO`] sentinel — *not* by the winning
/// composition — so concurrent tuners dedup to a single sweep.
///
/// # Errors
///
/// Whatever `tune` returns.
pub(crate) fn tuned_cached_with(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
    tune: impl Fn() -> Result<TunedChoice, PimnetError>,
) -> Result<Arc<TunedChoice>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch: 0,
        boost: false,
        algo: TUNED_ALGO,
    };
    let entry = get_or_build(key, probe, || Ok(Entry::Tuned(Arc::new(tune()?))))?;
    match entry {
        Entry::Tuned(t) => Ok(t),
        _ => unreachable!("tuned key holds a non-tuned entry"),
    }
}

// ---------------------------------------------------------------------
// Analysis-summary cache: pass summaries memoized alongside the
// schedules they prove, so a warm hit skips re-proving entirely and a
// repaired variant re-proves only its delta against the cached base.
// ---------------------------------------------------------------------

/// One memoized verification: the summary, plus (for repaired entries)
/// the delta-work stats of the original proof. The stats are cached so
/// the `lint-delta` trace event carries identical arguments on hits and
/// misses — traces must not depend on cache warmth.
#[derive(Debug)]
struct LintEntry {
    summary: Arc<AnalysisSummary>,
    delta: Option<DeltaStats>,
}

static LINT_HITS: AtomicU64 = AtomicU64::new(0);
static LINT_MISSES: AtomicU64 = AtomicU64::new(0);

fn lint_table() -> &'static Mutex<HashMap<Key, Arc<LintEntry>>> {
    static TABLE: OnceLock<Mutex<HashMap<Key, Arc<LintEntry>>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn lock_lint_table() -> std::sync::MutexGuard<'static, HashMap<Key, Arc<LintEntry>>> {
    match lint_table().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Looks a summary up; on a miss, verifies outside the lock. Two workers
/// racing the same cold key may both verify, but the first insert wins
/// and both produce byte-identical summaries, so the race is unobservable
/// in results.
fn lint_get_or_build(
    key: Key,
    build: impl FnOnce() -> Result<LintEntry, PimnetError>,
) -> Result<Arc<LintEntry>, PimnetError> {
    if let Some(e) = lock_lint_table().get(&key).cloned() {
        LINT_HITS.fetch_add(1, Ordering::Relaxed);
        return Ok(e);
    }
    LINT_MISSES.fetch_add(1, Ordering::Relaxed);
    let built = Arc::new(build()?);
    Ok(lock_lint_table().entry(key).or_insert(built).clone())
}

/// Emits one `lint-*` trace event. Exactly one event per analyze call,
/// with arguments derived from the (warmth-independent) summary — never
/// from hit/miss state — so run-after-run traces stay byte-identical.
fn record_lint_event(code: u16, kind: CollectiveKind, dpus: u32, a2: u64, a3: u64, probe: &Probe) {
    if !probe.is_active() {
        return;
    }
    probe
        .trace
        .instant(SimTime::ZERO, code, [kind as u64, u64::from(dpus), a2, a3]);
}

/// The cached plain-schedule summary, without emitting any event (shared
/// by the public analyze entry points, which each emit exactly one).
fn plain_summary_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    epoch: u64,
) -> Result<Arc<AnalysisSummary>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch,
        boost: false,
        algo: PAPER_ALGO,
    };
    let entry = lint_get_or_build(key, || {
        let schedule = build_cached_at_epoch(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            epoch,
            Probe::disabled(),
        )?;
        Ok(LintEntry {
            summary: Arc::new(analysis::verify_full_arc(schedule)),
            delta: None,
        })
    })?;
    Ok(entry.summary.clone())
}

/// Verifies (or recalls the verification of) the plain schedule for
/// `kind` on `geometry`: a full four-pass [`AnalysisSummary`] whose
/// report is byte-identical to [`crate::analysis::run_all`] on the built
/// schedule. Warm hits skip re-proving entirely. Emits one `lint-full`
/// trace event per call (hit or miss alike).
///
/// # Errors
///
/// Whatever [`build_cached`] returns. Analysis itself never errors — a
/// broken schedule yields a summary whose report has errors.
pub fn analyze_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
) -> Result<Arc<AnalysisSummary>, PimnetError> {
    analyze_cached_at_epoch(kind, geometry, elems_per_node, elem_bytes, 0, probe)
}

/// [`analyze_cached`] under a degradation/health `epoch` (see
/// [`build_cached_at_epoch`]).
///
/// # Errors
///
/// Whatever [`build_cached`] returns.
pub fn analyze_cached_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    epoch: u64,
    probe: &Probe,
) -> Result<Arc<AnalysisSummary>, PimnetError> {
    let summary = plain_summary_at_epoch(kind, geometry, elems_per_node, elem_bytes, epoch)?;
    record_lint_event(
        codes::LINT_FULL,
        kind,
        geometry.total_dpus(),
        summary.steps() as u64,
        summary.report.error_count() as u64,
        probe,
    );
    Ok(summary)
}

/// Verifies (or recalls the verification of) a *composed* schedule
/// (per-tier [`Composition`] + chunk split): a full four-pass
/// [`AnalysisSummary`] whose report is byte-identical to
/// [`crate::analysis::run_all`] on the built schedule. This is the
/// autotuner's proof path: every candidate it prices first passes
/// through here, and warm hits make re-tuning (or re-admitting) cheap.
/// Emits one `lint-full` trace event per call.
///
/// # Errors
///
/// Whatever [`build_composed_cached`] returns.
pub fn analyze_composed_cached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    comp: Composition,
    chunks: usize,
    probe: &Probe,
) -> Result<Arc<AnalysisSummary>, PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: EMPTY_FAULTS,
        repaired: false,
        epoch: 0,
        boost: false,
        algo: composed_algo_code(comp, chunks),
    };
    let entry = lint_get_or_build(key, || {
        let schedule =
            build_composed_cached(kind, geometry, elems_per_node, elem_bytes, comp, chunks)?;
        Ok(LintEntry {
            summary: Arc::new(analysis::verify_full_arc(schedule)),
            delta: None,
        })
    })?;
    let summary = entry.summary.clone();
    record_lint_event(
        codes::LINT_FULL,
        kind,
        geometry.total_dpus(),
        summary.steps() as u64,
        summary.report.error_count() as u64,
        probe,
    );
    Ok(summary)
}

/// Verifies (or recalls the verification of) the *repaired* schedule for
/// `kind` under `faults`, by delta re-lint against the cached base
/// summary: only the steps the repair dirtied (and their
/// state-dependent suffix) are re-proven. The returned report is
/// byte-identical to a from-scratch [`crate::analysis::run_all`] of the
/// repaired schedule. Emits one `lint-delta` trace event per call, whose
/// arguments come from the cached [`DeltaStats`] — identical on hits and
/// misses.
///
/// # Errors
///
/// Whatever [`build_cached`] or [`repair`](super::repair::repair) return.
pub fn analyze_repaired_cached_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    faults: &PermanentFaultSet,
    epoch: u64,
    probe: &Probe,
) -> Result<(Arc<AnalysisSummary>, DeltaStats), PimnetError> {
    let key = Key {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        repair: fault_fingerprint(faults),
        repaired: true,
        epoch,
        boost: false,
        algo: PAPER_ALGO,
    };
    let entry = lint_get_or_build(key, || {
        let base = plain_summary_at_epoch(kind, geometry, elems_per_node, elem_bytes, epoch)?;
        let repaired = repair_cached_at_epoch(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            faults,
            epoch,
            Probe::disabled(),
        )?;
        let (summary, delta) = analysis::reverify_repair(&base, &repaired);
        Ok(LintEntry {
            summary: Arc::new(summary),
            delta: Some(delta),
        })
    })?;
    let delta = entry.delta.unwrap_or_default();
    record_lint_event(
        codes::LINT_DELTA,
        kind,
        geometry.total_dpus(),
        delta.reused() as u64,
        delta.relinted as u64,
        probe,
    );
    Ok((entry.summary.clone(), delta))
}

/// Running analysis-cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LintCacheStats {
    /// Analyze calls answered from the cache.
    pub hits: u64,
    /// Analyze calls that had to (re-)prove a schedule.
    pub misses: u64,
}

/// Current analysis-cache counters.
#[must_use]
pub fn lint_stats() -> LintCacheStats {
    LintCacheStats {
        hits: LINT_HITS.load(Ordering::Relaxed),
        misses: LINT_MISSES.load(Ordering::Relaxed),
    }
}

/// Current counters.
#[must_use]
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        schedules_built: BUILT.load(Ordering::Relaxed),
    }
}

/// Zeroes the counters (the cached entries stay).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    BUILT.store(0, Ordering::Relaxed);
    LINT_HITS.store(0, Ordering::Relaxed);
    LINT_MISSES.store(0, Ordering::Relaxed);
}

/// Drops every cached schedule and analysis summary (counters stay).
/// Benchmarks use this to measure cold-cache builds.
pub fn clear() {
    lock_table().clear();
    lock_lint_table().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(n: u32) -> PimGeometry {
        PimGeometry::paper_scaled(n)
    }

    #[test]
    fn hit_returns_the_same_validated_schedule() {
        clear();
        let a = build_cached(CollectiveKind::AllReduce, &g(16), 96, 4).unwrap();
        let before = stats();
        let b = build_cached(CollectiveKind::AllReduce, &g(16), 96, 4).unwrap();
        let after = stats();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the entry");
        assert_eq!(after.hits, before.hits + 1);
        assert_eq!(after.schedules_built, before.schedules_built);
        // Structurally equal to a fresh, uncached build.
        let fresh = CommSchedule::build(CollectiveKind::AllReduce, &g(16), 96, 4).unwrap();
        assert_eq!(*a, fresh);
    }

    #[test]
    fn distinct_parameters_do_not_collide() {
        clear();
        let a = build_cached(CollectiveKind::AllReduce, &g(8), 64, 4).unwrap();
        let b = build_cached(CollectiveKind::AllGather, &g(8), 64, 4).unwrap();
        let c = build_cached(CollectiveKind::AllReduce, &g(8), 65, 4).unwrap();
        let d = build_cached(CollectiveKind::AllReduce, &g(8), 64, 8).unwrap();
        assert_ne!(*a, *b);
        assert_ne!(*a, *c);
        assert_ne!(*a, *d);
    }

    #[test]
    fn errors_are_not_cached() {
        clear();
        let bad = build_cached(CollectiveKind::AllReduce, &g(8), 64, 0);
        assert!(bad.is_err());
        assert!(build_cached(CollectiveKind::AllReduce, &g(8), 64, 4).is_ok());
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let empty = PermanentFaultSet::none();
        assert_eq!(fault_fingerprint(&empty), EMPTY_FAULTS);
        let a = PermanentFaultSet::parse_tokens("r0c0b1E,r0c1tx").unwrap();
        let b = PermanentFaultSet::parse_tokens("r0c1tx,r0c0b1E").unwrap();
        assert_eq!(
            fault_fingerprint(&a),
            fault_fingerprint(&b),
            "token order is canonicalized by the BTreeSets"
        );
        let c = PermanentFaultSet::parse_tokens("r0c0b1W").unwrap();
        assert_ne!(fault_fingerprint(&a), fault_fingerprint(&c));
        let d = PermanentFaultSet::parse_tokens("rank1").unwrap();
        assert_ne!(fault_fingerprint(&c), fault_fingerprint(&d));
    }

    #[test]
    fn repair_cached_matches_a_fresh_repair() {
        clear();
        let faults = PermanentFaultSet::parse_tokens("r0c0b2E").unwrap();
        let a = repair_cached(CollectiveKind::AllReduce, &g(8), 128, 4, &faults).unwrap();
        let b = repair_cached(CollectiveKind::AllReduce, &g(8), 128, 4, &faults).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let base = CommSchedule::build(CollectiveKind::AllReduce, &g(8), 128, 4).unwrap();
        let fresh = super::super::repair::repair(&base, &faults).unwrap();
        assert_eq!(*a, fresh);
        // The fault-free fingerprint shares the plain builder's key space
        // but the entry kinds do not collide.
        let plain = build_cached(CollectiveKind::AllReduce, &g(8), 128, 4).unwrap();
        let identity = repair_cached(
            CollectiveKind::AllReduce,
            &g(8),
            128,
            4,
            &PermanentFaultSet::none(),
        );
        assert!(identity.is_ok());
        assert_eq!(identity.unwrap().schedule, *plain);
    }

    #[test]
    fn boost_entries_do_not_collide_with_plain() {
        clear();
        let plain = build_cached(CollectiveKind::AllReduce, &g(64), 97, 4).unwrap();
        let built_before = stats().schedules_built;
        let boosted = boost_cached(CollectiveKind::AllReduce, &g(64), 97, 4).unwrap();
        assert_eq!(
            stats().schedules_built,
            built_before + 1,
            "the miss constructs only the boost entry; the full schedule is a hit"
        );
        assert_eq!(
            boosted.total_transfers,
            plain.transfer_count(),
            "the plan was thinned from the same schedule"
        );
        // Warm boost lookups share the entry; the plan matches a fresh
        // thinning of the cached schedule.
        let again = boost_cached(CollectiveKind::AllReduce, &g(64), 97, 4).unwrap();
        assert!(Arc::ptr_eq(&boosted, &again));
        assert_eq!(*boosted, boost::plan(&plain));
    }

    #[test]
    fn health_epoch_separates_replan_entries() {
        // Regression: a replan after mid-run quarantine used to share the
        // pre-fault key whenever the fault fingerprints coincided. With
        // the epoch in the key, a quarantined-link replan (epoch > 0) must
        // never be answered from the pre-fault (epoch 0) entry.
        clear();
        let faults = PermanentFaultSet::parse_tokens("r0c0b2E").unwrap();
        let p = Probe::disabled();
        let pre = repair_cached_at_epoch(CollectiveKind::AllReduce, &g(8), 128, 4, &faults, 0, p)
            .unwrap();
        let built_before = stats().schedules_built;
        let post = repair_cached_at_epoch(CollectiveKind::AllReduce, &g(8), 128, 4, &faults, 1, p)
            .unwrap();
        assert!(
            !Arc::ptr_eq(&pre, &post),
            "epoch 1 replan must not return the cached epoch-0 entry"
        );
        assert!(
            stats().schedules_built > built_before,
            "the epoch-1 entry is a fresh build, not a hit"
        );
        // Same epoch still hits.
        let again = repair_cached_at_epoch(CollectiveKind::AllReduce, &g(8), 128, 4, &faults, 1, p)
            .unwrap();
        assert!(Arc::ptr_eq(&post, &again));
        // Plain builds are epoch-separated too, and epoch 0 is the legacy
        // key space.
        let plain0 = build_cached(CollectiveKind::AllReduce, &g(8), 512, 4).unwrap();
        let plain0b =
            build_cached_at_epoch(CollectiveKind::AllReduce, &g(8), 512, 4, 0, p).unwrap();
        assert!(Arc::ptr_eq(&plain0, &plain0b));
        let plain1 = build_cached_at_epoch(CollectiveKind::AllReduce, &g(8), 512, 4, 1, p).unwrap();
        assert!(!Arc::ptr_eq(&plain0, &plain1));
        assert_eq!(*plain0, *plain1, "same parameters build equal schedules");
    }
}
