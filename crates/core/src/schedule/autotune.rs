//! Per-geometry collective autotuner.
//!
//! The paper commits to one schedule per collective (Table V). This
//! module instead *searches*: for one `(collective kind, geometry,
//! payload)` request it sweeps a deterministic candidate set of per-tier
//! algorithm [`Composition`]s × chunk splits, **re-proves** every
//! candidate with the full four-pass [`crate::analysis`] suite
//! (rejecting anything with a diagnostic — the tuner never trades
//! correctness for speed), prices the survivors through the same
//! boost-plan timing path the sweeps use, and memoizes the winner in the
//! schedule cache under a composition-aware key.
//!
//! The paper's own Table V schedule is always candidate zero and wins
//! all ties, so [`TunedChoice::tuned_time`] is never worse than
//! [`TunedChoice::paper_time`] *by construction* — tuning can only help.
//!
//! # Candidate grammar
//!
//! Sweeping all `4³` compositions × chunk splits per request would make
//! admission-path tuning (see [`crate::serve`]) pay a large cold-start
//! cost for candidates that are never competitive. The set is instead:
//!
//! * the paper's Table V schedule (the incumbent),
//! * every *uniform* composition (`ring_ring_ring`, `direct_direct_…`),
//! * every all-ring composition with exactly **one** tier swapped,
//!
//! filtered by [`Composition::applies_to`] and by concrete geometry
//! (power-of-two groups for Rabenseifner tiers), with trivial tiers
//! (group size 1) canonicalized to ring so degenerate geometries do not
//! enumerate duplicates. AllReduce additionally sweeps a 2-way chunk
//! split. The order is fixed, so the tuner is deterministic and its
//! winner is byte-stable across worker counts and cache warmth.

use std::sync::Arc;

use pim_arch::geometry::PimGeometry;
use pim_sim::{Probe, SimTime};

use crate::collective::CollectiveKind;
use crate::error::PimnetError;
use crate::timing::TimingModel;

use super::algos::{Composition, TierAlgo};
use super::{boost, cache, CommSchedule};

/// The autotuner's memoized decision for one request.
#[derive(Debug, Clone)]
pub struct TunedChoice {
    /// The collective that was tuned.
    pub kind: CollectiveKind,
    /// The geometry it was tuned for.
    pub geometry: PimGeometry,
    /// Elements contributed per node.
    pub elems_per_node: usize,
    /// Element width in bytes.
    pub elem_bytes: u32,
    /// The winning composition and chunk split, or `None` when the
    /// paper's Table V schedule won (or tied — the incumbent keeps ties).
    pub winner: Option<(Composition, usize)>,
    /// The winning schedule itself (validated, analysis-clean).
    pub schedule: Arc<CommSchedule>,
    /// Modeled completion time of the winner.
    pub tuned_time: SimTime,
    /// Modeled completion time of the paper's Table V schedule.
    pub paper_time: SimTime,
    /// Composed candidates enumerated for this request (excluding the
    /// paper incumbent).
    pub candidates: usize,
    /// Candidates rejected because analysis reported a diagnostic.
    pub rejected: usize,
}

impl TunedChoice {
    /// The winning composition spec (`paper` for the incumbent).
    #[must_use]
    pub fn spec(&self) -> String {
        match self.winner {
            Some((comp, 1)) => comp.spec(),
            Some((comp, chunks)) => format!("{comp}/c{chunks}"),
            None => "paper".to_string(),
        }
    }

    /// Paper time over tuned time (≥ 1.0 by construction).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.tuned_time.as_ps() == 0 {
            return 1.0;
        }
        self.paper_time.as_ps() as f64 / self.tuned_time.as_ps() as f64
    }
}

/// The deterministic candidate list for one request: `(composition,
/// chunk split)` pairs in sweep order, already filtered for
/// applicability to `kind` and to the concrete `geometry`. The paper's
/// incumbent schedule is *not* in the list — it is always priced
/// separately and wins ties.
#[must_use]
pub fn candidates(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
) -> Vec<(Composition, usize)> {
    let group_sizes = [
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    ];
    // Canonicalize trivial tiers (group size 1: the algorithm is a
    // no-op) to ring, then dedup while preserving order.
    let canonical = |mut c: Composition| {
        if group_sizes[0] == 1 {
            c.bank = TierAlgo::Ring;
        }
        if group_sizes[1] == 1 {
            c.chip = TierAlgo::Ring;
        }
        if group_sizes[2] == 1 {
            c.rank = TierAlgo::Ring;
        }
        c
    };
    let geometry_ok = |c: Composition| {
        c.tiers()
            .into_iter()
            .zip(group_sizes)
            .all(|(a, k)| a != TierAlgo::Rabenseifner || k.is_power_of_two())
    };

    let mut comps: Vec<Composition> = Vec::new();
    let mut push = |raw: Composition| {
        if !raw.applies_to(kind) {
            return;
        }
        // Canonicalizing a trivial tier must not destroy applicability
        // (all-to-all admits only the all-direct composition): keep the
        // raw spelling when it would.
        let c = canonical(raw);
        let c = if c.applies_to(kind) { c } else { raw };
        if geometry_ok(c) && !comps.contains(&c) {
            comps.push(c);
        }
    };
    for a in TierAlgo::ALL {
        push(Composition {
            bank: a,
            chip: a,
            rank: a,
        });
    }
    for tier in 0..3 {
        for a in TierAlgo::ALL {
            if a == TierAlgo::Ring {
                continue;
            }
            let mut c = Composition::RING;
            match tier {
                0 => c.bank = a,
                1 => c.chip = a,
                _ => c.rank = a,
            }
            push(c);
        }
    }

    let chunk_splits: &[usize] = if kind == CollectiveKind::AllReduce && elems_per_node >= 2 {
        &[1, 2]
    } else {
        &[1]
    };
    let mut out = Vec::with_capacity(comps.len() * chunk_splits.len());
    for &chunks in chunk_splits {
        for &c in &comps {
            out.push((c, chunks));
        }
    }
    out
}

/// Prices one schedule the way the figure sweeps do: boost-plan
/// reconstruction under the paper timing model, zero skew.
fn price(schedule: &CommSchedule, timing: &TimingModel) -> SimTime {
    boost::plan(schedule)
        .breakdown(timing, SimTime::ZERO)
        .total()
}

/// Tunes one request: sweeps [`candidates`], proves each with the full
/// analysis suite, prices the survivors and the paper incumbent, and
/// memoizes the winner in the schedule cache. Warm calls are a map
/// lookup.
///
/// # Errors
///
/// Whatever the paper builder, composed builder or validator return for
/// this request. Candidates that fail to *build* or *prove* are skipped,
/// not errors; the paper incumbent failing is an error.
pub fn tune(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
) -> Result<Arc<TunedChoice>, PimnetError> {
    tune_probed(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        Probe::disabled(),
    )
}

/// [`tune`] with cache observability for the underlying lookups.
///
/// # Errors
///
/// See [`tune`].
pub fn tune_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
) -> Result<Arc<TunedChoice>, PimnetError> {
    cache::tuned_cached_with(kind, geometry, elems_per_node, elem_bytes, probe, || {
        tune_uncached(kind, geometry, elems_per_node, elem_bytes, probe)
    })
}

fn tune_uncached(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    probe: &Probe,
) -> Result<TunedChoice, PimnetError> {
    let timing = TimingModel::paper();
    let paper = cache::build_cached_probed(kind, geometry, elems_per_node, elem_bytes, probe)?;
    let paper_time = price(&paper, &timing);

    let cands = candidates(kind, geometry, elems_per_node);
    let mut best: Option<(Composition, usize)> = None;
    let mut best_schedule = paper;
    let mut best_time = paper_time;
    let mut rejected = 0usize;

    for &(comp, chunks) in &cands {
        // Re-prove the candidate: any diagnostic at all disqualifies it.
        let summary = match cache::analyze_composed_cached(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            comp,
            chunks,
            probe,
        ) {
            Ok(s) => s,
            Err(_) => {
                rejected += 1;
                continue;
            }
        };
        if !summary.report.is_clean() {
            rejected += 1;
            continue;
        }
        let schedule = cache::build_composed_cached_probed(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            comp,
            chunks,
            probe,
        )?;
        let t = price(&schedule, &timing);
        // Strict improvement only: the incumbent (and earlier
        // candidates) keep ties, making the sweep order a total
        // tie-break and the winner deterministic.
        if t < best_time {
            best = Some((comp, chunks));
            best_schedule = schedule;
            best_time = t;
        }
    }

    Ok(TunedChoice {
        kind,
        geometry: *geometry,
        elems_per_node,
        elem_bytes,
        winner: best,
        schedule: best_schedule,
        tuned_time: best_time,
        paper_time,
        candidates: cands.len(),
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;

    #[test]
    fn candidate_order_is_deterministic_and_deduped() {
        let g = PimGeometry::paper_scaled(64);
        let a = candidates(CollectiveKind::AllReduce, &g, 1024);
        let b = candidates(CollectiveKind::AllReduce, &g, 1024);
        assert_eq!(a, b);
        let mut seen = a.clone();
        seen.dedup();
        assert_eq!(seen.len(), a.len(), "duplicate candidates");
        // Chunked variants only for AllReduce with payload >= 2.
        assert!(a.iter().any(|&(_, c)| c == 2));
        assert!(candidates(CollectiveKind::AllGather, &g, 1024)
            .iter()
            .all(|&(_, c)| c == 1));
        assert!(candidates(CollectiveKind::AllReduce, &g, 1)
            .iter()
            .all(|&(_, c)| c == 1));
    }

    #[test]
    fn trivial_tiers_are_canonicalized_to_ring() {
        // 8 DPUs = 8 banks x 1 chip x 1 rank: chip/rank tier choices are
        // no-ops and must not multiply the candidate list.
        let g = PimGeometry::paper_scaled(8);
        for (comp, _) in candidates(CollectiveKind::AllReduce, &g, 64) {
            assert_eq!(comp.chip, TierAlgo::Ring, "{comp}");
            assert_eq!(comp.rank, TierAlgo::Ring, "{comp}");
        }
    }

    #[test]
    fn winner_is_never_worse_than_paper_and_is_clean() {
        let g = PimGeometry::paper_scaled(64);
        let choice = tune(CollectiveKind::AllReduce, &g, 64, 4).unwrap();
        assert!(choice.tuned_time <= choice.paper_time);
        assert!(choice.speedup() >= 1.0);
        let report = analysis::run_all(&*choice.schedule);
        assert!(report.is_clean(), "winner not clean:\n{report}");
        // Memoized: the second call shares the entry.
        let again = tune(CollectiveKind::AllReduce, &g, 64, 4).unwrap();
        assert!(Arc::ptr_eq(&choice, &again));
    }

    #[test]
    fn reduce_and_gather_tune_to_the_paper_schedule() {
        // No composed form exists for the rooted converge collectives:
        // the candidate list is empty and the incumbent wins.
        let g = PimGeometry::paper_scaled(16);
        assert!(candidates(CollectiveKind::Reduce, &g, 64).is_empty());
        let choice = tune(CollectiveKind::Reduce, &g, 64, 4).unwrap();
        assert!(choice.winner.is_none());
        assert_eq!(choice.spec(), "paper");
        assert_eq!(choice.tuned_time, choice.paper_time);
    }
}
