//! Hierarchical AllReduce / ReduceScatter schedule builder (Table V,
//! Algorithm 1).
//!
//! The AllReduce pipeline is
//! `Ring(inter-bank) → Ring(inter-chip) → Broadcast(inter-rank) →
//! Ring(inter-chip) → Ring(inter-bank)`:
//!
//! 1. **Inter-bank ReduceScatter** — each chip's banks run a ring RS. The
//!    message is split in two halves that travel the ring in opposite
//!    directions simultaneously, using all four of Table IV's bank channels
//!    (2.8 GB/s send+receive per bank). All 32 chips of the paper system
//!    proceed in parallel — the "PIM bandwidth parallelism" of §IV.
//! 2. **Inter-chip ReduceScatter** — for every bank position, the chips of a
//!    rank form a logical ring through the buffer-chip crossbar. The eight
//!    banks of a chip share the chip's single DQ send channel, which the
//!    WAIT phase time-multiplexes deterministically (§IV-C).
//! 3. **Inter-rank reduction on the bus** — each rank in turn broadcasts its
//!    rank-partial pieces; every other rank's corresponding banks reduce
//!    them in place. One bus pass both reduces *and* re-distributes, so no
//!    inter-rank AllGather is needed afterwards.
//! 4. **AllGather back down** — inter-chip ring AG, then inter-bank ring
//!    AG (two mirror stages), reversing the scatter.
//!
//! With `scatter = true` the builder stops after the reduction and delivers
//! a **ReduceScatter**: the inter-rank stage then sends each rank only the
//! quarter it owns, and the result is a distinct, fully-reduced piece per
//! bank (exposed in [`CommSchedule::result_spans`]).

use pim_arch::geometry::{DpuCoord, DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::topology::{rank_path, ring_path, Direction};

use super::ring::{ring_all_gather, ring_reduce_scatter};
use super::{chip_ring_path, CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

/// Ablatable design choices of the AllReduce/ReduceScatter builder
/// (DESIGN.md's ablation index; exercised by the `ablation_allreduce`
/// bench binary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllReduceOptions {
    /// Use both ring directions for the inter-bank tier (all four Table IV
    /// channels). `false` degrades to a unidirectional East ring — half
    /// the bank-tier bandwidth.
    pub bidirectional_ring: bool,
    /// Reduce across ranks with bus *broadcasts* (one pass reduces and
    /// redistributes; 4/4 of the partial volume on the bus). `false` uses
    /// scatter-quarters + a rank AllGather instead (3/4 + 3/4 volume —
    /// more bus time, which is why the paper broadcasts).
    pub rank_broadcast: bool,
}

impl Default for AllReduceOptions {
    fn default() -> Self {
        AllReduceOptions {
            bidirectional_ring: true,
            rank_broadcast: true,
        }
    }
}

/// Per-bank state threaded between the hierarchy levels: the spans this
/// bank owns after each ReduceScatter level, one per ring direction half.
#[derive(Debug, Clone, Copy, Default)]
struct Owned {
    half: [Span; 2],
    /// Logical ring position's chunk index at bank level (for the AG).
    bank_owner: [usize; 2],
    /// Chunk index at chip level (for the AG).
    chip_owner: [usize; 2],
}

pub(super) fn build(
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    scatter: bool,
) -> CommSchedule {
    build_with(
        geometry,
        elems,
        elem_bytes,
        scatter,
        AllReduceOptions::default(),
    )
}

pub(super) fn build_with(
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    scatter: bool,
    opts: AllReduceOptions,
) -> CommSchedule {
    let (banks, chips, ranks) = (
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    );
    let total = geometry.total_dpus() as usize;
    let halves = if opts.bidirectional_ring {
        Span::new(0, elems).split(2)
    } else {
        vec![Span::new(0, elems), Span::new(elems, 0)]
    };
    let mut owned = vec![Owned::default(); total];
    let mut phases = Vec::new();

    // Chunk tables shared by every chip (identical layout on all chips).
    let bank_chunks: [Vec<Span>; 2] = [
        halves[0].split(banks as usize),
        halves[1].split(banks as usize),
    ];

    // ---- Phase 1: inter-bank ring ReduceScatter (both directions). ----
    let mut bank_rs_steps: Vec<Vec<Transfer>> = vec![Vec::new(); banks.saturating_sub(1) as usize];
    for rank in 0..ranks {
        for chip in 0..chips {
            for (h, dir) in [(0usize, Direction::East), (1usize, Direction::West)] {
                let nodes = ring_nodes(geometry, rank, chip, dir);
                let (steps, owners) = ring_reduce_scatter(&nodes, &bank_chunks[h], |src, dst| {
                    ring_path(geometry, src, dst, dir)
                });
                for (s, transfers) in steps.into_iter().enumerate() {
                    bank_rs_steps[s].extend(transfers);
                }
                for (pos, node) in nodes.iter().enumerate() {
                    let st = &mut owned[node.index()];
                    st.bank_owner[h] = owners[pos];
                    st.half[h] = bank_chunks[h][owners[pos]];
                }
            }
        }
    }
    phases.push(Phase::new(
        PhaseLabel::InterBank,
        bank_rs_steps.into_iter().map(CommStep::new).collect(),
        false,
    ));

    // ---- Phase 2: inter-chip ring ReduceScatter. ----
    let mut chip_rs_steps: Vec<Vec<Transfer>> = vec![Vec::new(); chips.saturating_sub(1) as usize];
    for rank in 0..ranks {
        for bank in 0..banks {
            for h in 0..2 {
                let nodes = chip_ring_nodes(geometry, rank, bank);
                // All nodes in this ring share the same bank index, hence
                // the same bank-level owned span.
                let parent = owned[nodes[0].index()].half[h];
                let chunks = parent.split(chips as usize);
                let (steps, owners) = ring_reduce_scatter(&nodes, &chunks, |src, dst| {
                    chip_ring_path(geometry, src, dst)
                });
                for (s, transfers) in steps.into_iter().enumerate() {
                    chip_rs_steps[s].extend(transfers);
                }
                for (pos, node) in nodes.iter().enumerate() {
                    let st = &mut owned[node.index()];
                    st.chip_owner[h] = owners[pos];
                    st.half[h] = chunks[owners[pos]];
                }
            }
        }
    }
    phases.push(Phase::new(
        PhaseLabel::InterChip,
        chip_rs_steps.into_iter().map(CommStep::new).collect(),
        true,
    ));

    // ---- Phase 3: inter-rank reduction over the bus. ----
    let use_broadcast = !scatter && opts.rank_broadcast;
    let mut result_spans: Vec<Vec<Span>> = vec![Vec::new(); total];
    if ranks > 1 {
        let mut rank_steps = Vec::new();
        for src_rank in 0..ranks {
            let mut transfers = Vec::new();
            for chip in 0..chips {
                for bank in 0..banks {
                    let src = geometry.id(DpuCoord {
                        channel: 0,
                        rank: src_rank,
                        chip,
                        bank,
                    });
                    for h in 0..2 {
                        let span = owned[src.index()].half[h];
                        if !use_broadcast {
                            // ReduceScatter: ship each quarter to the rank
                            // that owns it (deterministic unicast slots).
                            let quarters = span.split(ranks as usize);
                            for (q, quarter) in quarters.iter().enumerate() {
                                if q as u32 == src_rank {
                                    continue;
                                }
                                let dst = geometry.id(DpuCoord {
                                    channel: 0,
                                    rank: q as u32,
                                    chip,
                                    bank,
                                });
                                transfers.push(Transfer {
                                    src,
                                    dsts: vec![dst],
                                    src_span: *quarter,
                                    dst_span: *quarter,
                                    combine: true,
                                    resources: rank_path(geometry, src, &[dst]),
                                });
                            }
                        } else {
                            // AllReduce: broadcast the whole piece; every
                            // other rank's twin bank reduces it.
                            let dsts: Vec<DpuId> = (0..ranks)
                                .filter(|&r| r != src_rank)
                                .map(|r| {
                                    geometry.id(DpuCoord {
                                        channel: 0,
                                        rank: r,
                                        chip,
                                        bank,
                                    })
                                })
                                .collect();
                            transfers.push(Transfer {
                                src,
                                dsts: dsts.clone(),
                                src_span: span,
                                dst_span: span,
                                combine: true,
                                resources: rank_path(geometry, src, &dsts),
                            });
                        }
                    }
                }
            }
            rank_steps.push(CommStep::new(transfers));
        }
        if use_broadcast {
            // All broadcasts read the *pre-phase* rank partials: they must
            // share one step's snapshot semantics, or a later rank would
            // re-broadcast contributions it already absorbed. (The bus still
            // serializes them in time; the occupancy model accounts for it.)
            let merged = rank_steps
                .into_iter()
                .flat_map(|s| s.transfers)
                .collect::<Vec<_>>();
            rank_steps = vec![CommStep::new(merged)];
        } else if !scatter {
            // Ablation path (rank_broadcast = false): the scatter-quarters
            // reduction leaves each rank owning only its quarter, so a rank
            // AllGather must push the reduced quarters back out — a second
            // bus pass the broadcast scheme avoids.
            let mut transfers = Vec::new();
            for src_rank in 0..ranks {
                for chip in 0..chips {
                    for bank in 0..banks {
                        let src = geometry.id(DpuCoord {
                            channel: 0,
                            rank: src_rank,
                            chip,
                            bank,
                        });
                        for h in 0..2 {
                            let quarter =
                                owned[src.index()].half[h].split(ranks as usize)[src_rank as usize];
                            let dsts: Vec<DpuId> = (0..ranks)
                                .filter(|&r| r != src_rank)
                                .map(|r| {
                                    geometry.id(DpuCoord {
                                        channel: 0,
                                        rank: r,
                                        chip,
                                        bank,
                                    })
                                })
                                .collect();
                            if quarter.is_empty() {
                                continue;
                            }
                            transfers.push(Transfer {
                                src,
                                dsts: dsts.clone(),
                                src_span: quarter,
                                dst_span: quarter,
                                combine: false,
                                resources: rank_path(geometry, src, &dsts),
                            });
                        }
                    }
                }
            }
            rank_steps.push(CommStep::new(transfers));
        }
        phases.push(Phase::new(PhaseLabel::InterRank, rank_steps, true));
    }

    if scatter {
        // Record where each bank's fully-reduced, exclusive piece lives.
        for id in geometry.dpus() {
            let coord = geometry.coord(id);
            let st = &owned[id.index()];
            for h in 0..2 {
                let piece = if ranks > 1 {
                    st.half[h].split(ranks as usize)[coord.rank as usize]
                } else {
                    st.half[h]
                };
                if !piece.is_empty() {
                    result_spans[id.index()].push(piece);
                }
            }
        }
        phases.retain(|p| !p.steps.is_empty());
        return CommSchedule {
            kind: CollectiveKind::ReduceScatter,
            geometry: *geometry,
            elems_per_node: elems,
            elem_bytes,
            buffer_len: elems,
            result_spans,
            phases,
        };
    }

    // ---- Phase 4: inter-chip ring AllGather. ----
    let mut chip_ag_steps: Vec<Vec<Transfer>> = vec![Vec::new(); chips.saturating_sub(1) as usize];
    for rank in 0..ranks {
        for bank in 0..banks {
            for h in 0..2 {
                let nodes = chip_ring_nodes(geometry, rank, bank);
                let parent = bank_chunks[h][owned[nodes[0].index()].bank_owner[h]];
                let chunks = parent.split(chips as usize);
                let owners: Vec<usize> = nodes
                    .iter()
                    .map(|n| owned[n.index()].chip_owner[h])
                    .collect();
                let steps = ring_all_gather(&nodes, &chunks, &owners, |src, dst| {
                    chip_ring_path(geometry, src, dst)
                });
                for (s, transfers) in steps.into_iter().enumerate() {
                    chip_ag_steps[s].extend(transfers);
                }
            }
        }
    }
    phases.push(Phase::new(
        PhaseLabel::InterChip,
        chip_ag_steps.into_iter().map(CommStep::new).collect(),
        true,
    ));

    // ---- Phase 5: inter-bank ring AllGather. ----
    let mut bank_ag_steps: Vec<Vec<Transfer>> = vec![Vec::new(); banks.saturating_sub(1) as usize];
    for rank in 0..ranks {
        for chip in 0..chips {
            for (h, dir) in [(0usize, Direction::East), (1usize, Direction::West)] {
                let nodes = ring_nodes(geometry, rank, chip, dir);
                let owners: Vec<usize> = nodes
                    .iter()
                    .map(|n| owned[n.index()].bank_owner[h])
                    .collect();
                let steps = ring_all_gather(&nodes, &bank_chunks[h], &owners, |src, dst| {
                    ring_path(geometry, src, dst, dir)
                });
                for (s, transfers) in steps.into_iter().enumerate() {
                    bank_ag_steps[s].extend(transfers);
                }
            }
        }
    }
    phases.push(Phase::new(
        PhaseLabel::InterBank,
        bank_ag_steps.into_iter().map(CommStep::new).collect(),
        false,
    ));

    phases.retain(|p| !p.steps.is_empty());
    let full = Span::new(0, elems);
    CommSchedule {
        kind: CollectiveKind::AllReduce,
        geometry: *geometry,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans: vec![vec![full]; total],
        phases,
    }
}

/// Banks of one chip, ordered along the logical ring for `dir`: East rings
/// follow increasing bank index, West rings the reverse, so that each
/// adjacent logical hop is exactly one physical segment in that direction.
fn ring_nodes(geometry: &PimGeometry, rank: u32, chip: u32, dir: Direction) -> Vec<DpuId> {
    let mut nodes: Vec<DpuId> = (0..geometry.banks_per_chip)
        .map(|bank| {
            geometry.id(DpuCoord {
                channel: 0,
                rank,
                chip,
                bank,
            })
        })
        .collect();
    if dir == Direction::West {
        nodes.reverse();
    }
    nodes
}

/// Bank `bank` of every chip of `rank`, in chip order (the logical
/// inter-chip ring the crossbar is configured into).
fn chip_ring_nodes(geometry: &PimGeometry, rank: u32, bank: u32) -> Vec<DpuId> {
    (0..geometry.chips_per_rank)
        .map(|chip| {
            geometry.id(DpuCoord {
                channel: 0,
                rank,
                chip,
                bank,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_allreduce_phase_structure_matches_table_v() {
        let g = PimGeometry::paper();
        let s = build(&g, 8192, 4, false);
        let labels: Vec<PhaseLabel> = s.phases.iter().map(|p| p.label).collect();
        assert_eq!(
            labels,
            vec![
                PhaseLabel::InterBank,
                PhaseLabel::InterChip,
                PhaseLabel::InterRank,
                PhaseLabel::InterChip,
                PhaseLabel::InterBank,
            ]
        );
        // Ring step counts: B-1 bank steps, C-1 chip steps; the rank
        // broadcast is one concurrent (bus-serialized) step.
        assert_eq!(s.phases[0].steps.len(), 7);
        assert_eq!(s.phases[1].steps.len(), 7);
        assert_eq!(s.phases[2].steps.len(), 1);
        assert_eq!(s.phases[3].steps.len(), 7);
        assert_eq!(s.phases[4].steps.len(), 7);
    }

    #[test]
    fn bank_phases_are_contention_free() {
        let g = PimGeometry::paper();
        let s = build(&g, 4096, 4, false);
        assert!(!s.phases[0].multiplexed);
        assert!(!s.phases[4].multiplexed);
        assert!(s.phases[1].multiplexed); // DQ channels are WAIT-scheduled
    }

    #[test]
    fn single_rank_allreduce_skips_the_bus() {
        let g = PimGeometry::new(8, 8, 1, 1);
        let s = build(&g, 4096, 4, false);
        assert!(s.phases.iter().all(|p| p.label != PhaseLabel::InterRank));
    }

    #[test]
    fn single_chip_allreduce_is_bank_rings_only() {
        let g = PimGeometry::new(8, 1, 1, 1);
        let s = build(&g, 4096, 4, false);
        assert_eq!(s.phases.len(), 2); // RS ring + AG ring (empty phases dropped)
        assert!(s.phases.iter().all(|p| p.label == PhaseLabel::InterBank));
    }

    #[test]
    fn reduce_scatter_pieces_partition_the_vector() {
        let g = PimGeometry::paper();
        let elems = 256 * 7; // deliberately not divisible by 512
        let s = build(&g, elems, 4, true);
        // Collect every result span; they must tile [0, elems) exactly.
        let mut spans: Vec<Span> = s.result_spans.iter().flatten().copied().collect();
        spans.sort_by_key(|sp| sp.start);
        assert_eq!(spans.iter().map(|sp| sp.len).sum::<usize>(), elems);
        let mut cursor = 0;
        for sp in &spans {
            assert_eq!(sp.start, cursor, "gap or overlap at {cursor}");
            cursor = sp.end();
        }
        assert_eq!(cursor, elems);
    }

    #[test]
    fn allreduce_total_wire_bytes_scale_with_message() {
        let g = PimGeometry::paper();
        let small = build(&g, 1024, 4, false).total_wire_bytes();
        let large = build(&g, 4096, 4, false).total_wire_bytes();
        let ratio = large.as_u64() as f64 / small.as_u64() as f64;
        assert!((ratio - 4.0).abs() < 0.1, "ratio = {ratio}");
    }

    #[test]
    fn ablation_unidirectional_ring_halves_bank_bandwidth() {
        use crate::timing::TimingModel;
        let g = PimGeometry::paper();
        let m = TimingModel::paper();
        let bi = build_with(&g, 8192, 4, false, AllReduceOptions::default());
        let uni = build_with(
            &g,
            8192,
            4,
            false,
            AllReduceOptions {
                bidirectional_ring: false,
                ..AllReduceOptions::default()
            },
        );
        let t_bi = m.time_schedule(&bi, pim_sim::SimTime::ZERO).inter_bank;
        let t_uni = m.time_schedule(&uni, pim_sim::SimTime::ZERO).inter_bank;
        let ratio = t_uni.ratio(t_bi);
        assert!(
            (1.6..2.4).contains(&ratio),
            "unidirectional bank tier should be ~2x slower, got {ratio:.2}"
        );
    }

    #[test]
    fn ablation_broadcast_beats_scatter_on_the_bus() {
        use crate::timing::TimingModel;
        let g = PimGeometry::paper();
        let m = TimingModel::paper();
        let bcast = build_with(&g, 8192, 4, false, AllReduceOptions::default());
        let scat = build_with(
            &g,
            8192,
            4,
            false,
            AllReduceOptions {
                rank_broadcast: false,
                ..AllReduceOptions::default()
            },
        );
        let t_b = m.time_schedule(&bcast, pim_sim::SimTime::ZERO).inter_rank;
        let t_s = m.time_schedule(&scat, pim_sim::SimTime::ZERO).inter_rank;
        assert!(
            t_s > t_b,
            "scatter+AG ({t_s}) should cost more bus time than broadcast ({t_b})"
        );
    }

    #[test]
    fn ablated_variants_stay_functionally_correct() {
        use crate::exec::{run_collective, ReduceOp};
        let g = PimGeometry::paper_scaled(64);
        let elems = 96usize;
        for opts in [
            AllReduceOptions {
                bidirectional_ring: false,
                rank_broadcast: true,
            },
            AllReduceOptions {
                bidirectional_ring: true,
                rank_broadcast: false,
            },
            AllReduceOptions {
                bidirectional_ring: false,
                rank_broadcast: false,
            },
        ] {
            let s = build_with(&g, elems, 4, false, opts);
            let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; elems])
                .unwrap_or_else(|e| panic!("{opts:?}: {e}"));
            let expected: u64 = (1..=64).sum();
            for id in s.participants() {
                assert!(
                    m.result(&s, id).iter().all(|&x| x == expected),
                    "{opts:?} node {id}"
                );
            }
        }
    }

    #[test]
    fn tiny_message_still_builds() {
        let g = PimGeometry::paper();
        let s = build(&g, 3, 4, false); // fewer elements than banks
        assert!(s.phases.is_empty() || s.step_count() > 0);
        // No transfer may have an empty span (CommStep::new filters them).
        for p in &s.phases {
            for st in &p.steps {
                assert!(st.transfers.iter().all(|t| !t.src_span.is_empty()));
            }
        }
    }
}
