//! Logical-ring ReduceScatter / AllGather step generators.
//!
//! These are the building blocks of every hierarchical collective in
//! Table V: the same ring algorithm runs over the physical inter-bank ring
//! (adjacent banks) and over the inter-chip crossbar configured as a
//! logical ring. The generators are *symbolic* — they produce
//! [`Transfer`]s with element spans and resource paths; execution and
//! timing happen elsewhere.

use pim_arch::geometry::DpuId;

use crate::topology::Resource;

use super::{Span, Transfer};

/// Generates the steps of a ring ReduceScatter among `nodes` over `chunks`.
///
/// `chunks[j]` is the buffer span of logical chunk `j`; `nodes` are ordered
/// along the logical ring (node `i` sends to node `(i+1) % k`). `path(src,
/// dst)` yields the fabric resources of one adjacent hop.
///
/// Returns one transfer list per ring step (`k - 1` steps) and the
/// *ownership* vector: after the last step, `nodes[i]` holds chunk
/// `owners[i] = (i + 1) % k`, fully reduced across all `k` nodes.
///
/// # Panics
///
/// Panics if `nodes` and `chunks` have different lengths or are empty.
///
/// # Example
///
/// ```
/// use pim_arch::geometry::DpuId;
/// use pimnet::schedule::{ring_reduce_scatter, Span};
///
/// let nodes = [DpuId(0), DpuId(1), DpuId(2), DpuId(3)];
/// let chunks = Span::new(0, 16).split(4);
/// let (steps, owners) = ring_reduce_scatter(&nodes, &chunks, |_, _| vec![]);
/// assert_eq!(steps.len(), 3);
/// assert_eq!(owners, vec![1, 2, 3, 0]);
/// ```
pub fn ring_reduce_scatter(
    nodes: &[DpuId],
    chunks: &[Span],
    mut path: impl FnMut(DpuId, DpuId) -> Vec<Resource>,
) -> (Vec<Vec<Transfer>>, Vec<usize>) {
    let k = nodes.len();
    assert_eq!(
        k,
        chunks.len(),
        "ring_reduce_scatter: nodes/chunks mismatch"
    );
    assert!(k > 0, "ring_reduce_scatter: empty ring");
    let mut steps = Vec::with_capacity(k.saturating_sub(1));
    for s in 0..k - 1 {
        let mut transfers = Vec::with_capacity(k);
        for i in 0..k {
            let chunk = (i + k - s) % k;
            let dst = (i + 1) % k;
            transfers.push(Transfer {
                src: nodes[i],
                dsts: vec![nodes[dst]],
                src_span: chunks[chunk],
                dst_span: chunks[chunk],
                combine: true,
                resources: path(nodes[i], nodes[dst]),
            });
        }
        steps.push(transfers);
    }
    let owners = (0..k).map(|i| (i + 1) % k).collect();
    (steps, owners)
}

/// Generates the steps of a ring AllGather among `nodes` over `chunks`,
/// where `nodes[i]` initially holds chunk `owners[i]` (typically the output
/// of [`ring_reduce_scatter`]). After `k - 1` steps every node holds every
/// chunk.
///
/// # Panics
///
/// Panics if the slice lengths disagree or the ring is empty.
pub fn ring_all_gather(
    nodes: &[DpuId],
    chunks: &[Span],
    owners: &[usize],
    mut path: impl FnMut(DpuId, DpuId) -> Vec<Resource>,
) -> Vec<Vec<Transfer>> {
    let k = nodes.len();
    assert_eq!(k, chunks.len(), "ring_all_gather: nodes/chunks mismatch");
    assert_eq!(k, owners.len(), "ring_all_gather: nodes/owners mismatch");
    assert!(k > 0, "ring_all_gather: empty ring");
    let mut cur = owners.to_vec();
    let mut steps = Vec::with_capacity(k.saturating_sub(1));
    for _ in 0..k - 1 {
        let mut transfers = Vec::with_capacity(k);
        let mut next_cur = cur.clone();
        for i in 0..k {
            let dst = (i + 1) % k;
            transfers.push(Transfer {
                src: nodes[i],
                dsts: vec![nodes[dst]],
                src_span: chunks[cur[i]],
                dst_span: chunks[cur[i]],
                combine: false,
                resources: path(nodes[i], nodes[dst]),
            });
            next_cur[dst] = cur[i];
        }
        cur = next_cur;
        steps.push(transfers);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn nodes(k: u32) -> Vec<DpuId> {
        (0..k).map(DpuId).collect()
    }

    #[test]
    fn rs_step_and_owner_structure() {
        let n = nodes(4);
        let chunks = Span::new(0, 16).split(4);
        let (steps, owners) = ring_reduce_scatter(&n, &chunks, |_, _| vec![]);
        assert_eq!(steps.len(), 3);
        assert_eq!(owners, vec![1, 2, 3, 0]);
        // Every step has one send per node and everything reduces.
        for step in &steps {
            assert_eq!(step.len(), 4);
            assert!(step.iter().all(|t| t.combine));
            // Each node sends exactly once and receives exactly once.
            let srcs: HashSet<_> = step.iter().map(|t| t.src).collect();
            let dsts: HashSet<_> = step.iter().map(|t| t.dsts[0]).collect();
            assert_eq!(srcs.len(), 4);
            assert_eq!(dsts.len(), 4);
        }
    }

    #[test]
    fn rs_chunk_reaches_owner_fully_reduced() {
        // Symbolically accumulate contributions per (node, chunk) and check
        // the ownership claim: owner ends with all k contributions.
        let k = 5;
        let n = nodes(k as u32);
        let chunks = Span::new(0, 25).split(k);
        let (steps, owners) = ring_reduce_scatter(&n, &chunks, |_, _| vec![]);
        // contributions[node][chunk] = set of original contributors folded in.
        let mut contrib: Vec<Vec<HashSet<usize>>> = (0..k)
            .map(|i| (0..k).map(|_| HashSet::from([i])).collect())
            .collect();
        for step in &steps {
            let snapshot = contrib.clone();
            for t in step {
                let chunk = chunks.iter().position(|c| *c == t.src_span).unwrap();
                let src = t.src.index();
                let dst = t.dsts[0].index();
                let incoming = snapshot[src][chunk].clone();
                contrib[dst][chunk].extend(incoming);
            }
        }
        for (i, &own) in owners.iter().enumerate() {
            assert_eq!(contrib[i][own].len(), k, "node {i} chunk {own} incomplete");
        }
    }

    #[test]
    fn ag_distributes_every_chunk_everywhere() {
        let k = 6;
        let n = nodes(k as u32);
        let chunks = Span::new(0, 36).split(k);
        let owners: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
        let steps = ring_all_gather(&n, &chunks, &owners, |_, _| vec![]);
        assert_eq!(steps.len(), k - 1);
        // Track which chunks each node holds.
        let mut holds: Vec<HashSet<usize>> = owners.iter().map(|&o| HashSet::from([o])).collect();
        for step in &steps {
            let snapshot = holds.clone();
            for t in step {
                assert!(!t.combine);
                let chunk = chunks.iter().position(|c| *c == t.src_span).unwrap();
                assert!(
                    snapshot[t.src.index()].contains(&chunk),
                    "node sent a chunk it does not hold"
                );
                holds[t.dsts[0].index()].insert(chunk);
            }
        }
        for h in &holds {
            assert_eq!(h.len(), k, "a node is missing chunks after AllGather");
        }
    }

    #[test]
    fn single_node_ring_is_trivial() {
        let n = nodes(1);
        let chunks = vec![Span::new(0, 8)];
        let (steps, owners) = ring_reduce_scatter(&n, &chunks, |_, _| vec![]);
        assert!(steps.is_empty());
        assert_eq!(owners, vec![0]);
        let steps = ring_all_gather(&n, &chunks, &owners, |_, _| vec![]);
        assert!(steps.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_lengths_panic() {
        let n = nodes(3);
        let chunks = Span::new(0, 8).split(2);
        let _ = ring_reduce_scatter(&n, &chunks, |_, _| vec![]);
    }
}
