//! All-to-All schedule builder (Table V: `Ring(inter-bank) →
//! Permutation(inter-chip) → Unicast(inter-rank)`).
//!
//! The builder uses the paper's *pairwise* exchange (§V-D, Fig 8): at step
//! `d` node `i` swaps chunks with node `i ⊕ d`, so data never needs an
//! intermediate staging location. XOR pairing partitions the steps cleanly
//! by tier — `d < B` stays on the bank ring, `B ≤ d < B·C` crosses the
//! inter-chip crossbar in a contention-free permutation (every chip talks
//! to exactly one other chip), and `d ≥ B·C` crosses the rank bus as
//! scheduled unicasts.
//!
//! The per-node buffer is `2n` elements: the *in* region (`n` elements,
//! chunk `j` destined to node `j`) followed by the *out* region (`n`
//! elements, chunk `j` received from node `j`).

use pim_arch::geometry::{DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::error::PimnetError;
use crate::topology::{chip_path, rank_path, ring_path, shorter_direction};

use super::{CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

pub(super) fn build(
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
) -> Result<CommSchedule, PimnetError> {
    let (banks, chips, ranks) = (
        geometry.banks_per_chip,
        geometry.chips_per_rank,
        geometry.ranks_per_channel,
    );
    if !(banks.is_power_of_two() && chips.is_power_of_two() && ranks.is_power_of_two()) {
        return Err(PimnetError::InvalidGeometry {
            geometry: *geometry,
            reason: "All-to-All pairwise exchange needs power-of-two banks/chips/ranks".into(),
        });
    }
    let total = geometry.total_dpus() as usize;
    // Pairwise swaps need uniform chunks; round the per-peer chunk up and
    // pad the buffer (the trailing padding elements are defaulted/ignored).
    let chunk = elems.div_ceil(total).max(1);
    let padded = chunk * total;
    let in_chunks: Vec<Span> = (0..total).map(|j| Span::new(j * chunk, chunk)).collect();
    let out = |j: usize| in_chunks[j].offset(padded);

    // Local phase: every node keeps its own chunk.
    let local = Phase::new(
        PhaseLabel::Local,
        vec![CommStep::new(
            (0..total)
                .map(|i| Transfer {
                    src: DpuId(i as u32),
                    dsts: vec![DpuId(i as u32)],
                    src_span: in_chunks[i],
                    dst_span: out(i),
                    combine: false,
                    resources: vec![],
                })
                .collect(),
        )],
        false,
    );

    let step_for = |d: usize| -> CommStep {
        let mut transfers = Vec::with_capacity(total);
        for i in 0..total {
            let p = i ^ d;
            let src = DpuId(i as u32);
            let dst = DpuId(p as u32);
            let resources = if geometry.same_chip(src, dst) {
                let (a, b) = (geometry.coord(src).bank, geometry.coord(dst).bank);
                ring_path(geometry, src, dst, shorter_direction(banks, a, b))
            } else if geometry.same_rank(src, dst) {
                chip_path(geometry, src, dst)
            } else {
                rank_path(geometry, src, &[dst])
            };
            transfers.push(Transfer {
                src,
                dsts: vec![dst],
                src_span: in_chunks[p],
                dst_span: out(i),
                combine: false,
                resources,
            });
        }
        CommStep::new(transfers)
    };

    let bank_span = banks as usize;
    let chip_span = (banks * chips) as usize;
    let mut phases = vec![local];
    if banks > 1 {
        phases.push(Phase::new(
            PhaseLabel::InterBank,
            (1..bank_span).map(step_for).collect(),
            true,
        ));
    }
    if chips > 1 {
        phases.push(Phase::new(
            PhaseLabel::InterChip,
            (bank_span..chip_span).map(step_for).collect(),
            true,
        ));
    }
    if ranks > 1 {
        phases.push(Phase::new(
            PhaseLabel::InterRank,
            (chip_span..total).map(step_for).collect(),
            true,
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    Ok(CommSchedule {
        kind: CollectiveKind::AllToAll,
        geometry: *geometry,
        elems_per_node: padded,
        elem_bytes,
        buffer_len: 2 * padded,
        result_spans: (0..total)
            .map(|_| vec![Span::new(padded, padded)])
            .collect(),
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Resource;
    use std::collections::HashSet;

    #[test]
    fn step_counts_partition_by_tier() {
        let g = PimGeometry::paper();
        let s = build(&g, 2560, 4).unwrap();
        // local + 3 tiers
        assert_eq!(s.phases.len(), 4);
        assert_eq!(s.phases[1].steps.len(), 7); // d in 1..8
        assert_eq!(s.phases[2].steps.len(), 56); // d in 8..64
        assert_eq!(s.phases[3].steps.len(), 192); // d in 64..256
    }

    #[test]
    fn every_step_is_a_perfect_matching() {
        let g = PimGeometry::paper_scaled(16);
        let s = build(&g, 160, 4).unwrap();
        for phase in &s.phases[1..] {
            for step in &phase.steps {
                let mut seen = HashSet::new();
                for t in &step.transfers {
                    assert_eq!(t.dsts.len(), 1);
                    assert!(seen.insert(t.src), "duplicate sender");
                }
                assert_eq!(seen.len(), 16);
            }
        }
    }

    #[test]
    fn pairs_swap_symmetrically() {
        let g = PimGeometry::paper_scaled(8);
        let s = build(&g, 64, 4).unwrap();
        for phase in &s.phases[1..] {
            for step in &phase.steps {
                for t in &step.transfers {
                    // The partner transfer in the same step goes the other way.
                    let back = step
                        .transfers
                        .iter()
                        .find(|u| u.src == t.dsts[0] && u.dsts[0] == t.src);
                    assert!(back.is_some(), "pairwise exchange is not symmetric");
                }
            }
        }
    }

    #[test]
    fn inter_chip_steps_form_chip_permutations() {
        let g = PimGeometry::paper_scaled(64); // 8 banks x 8 chips x 1 rank
        let s = build(&g, 64 * 8, 4).unwrap();
        let inter_chip = &s.phases[2];
        for step in &inter_chip.steps {
            // Each chip's Tx channel pairs with exactly one Rx chip.
            let mut tx_to_rx: std::collections::HashMap<u32, HashSet<u32>> =
                std::collections::HashMap::new();
            for t in &step.transfers {
                let mut tx = None;
                let mut rx = None;
                for r in &t.resources {
                    match r {
                        Resource::ChipTx { chip } => tx = Some(chip.chip),
                        Resource::ChipRx { chip } => rx = Some(chip.chip),
                        other => panic!("unexpected resource {other} in inter-chip step"),
                    }
                }
                tx_to_rx.entry(tx.unwrap()).or_default().insert(rx.unwrap());
            }
            for (_, rxs) in tx_to_rx {
                assert_eq!(rxs.len(), 1, "a chip sends to two chips in one step");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two_dims() {
        let g = PimGeometry::new(3, 8, 4, 1);
        assert!(matches!(
            build(&g, 96, 4),
            Err(PimnetError::InvalidGeometry { .. })
        ));
    }

    #[test]
    fn out_region_is_the_result() {
        let g = PimGeometry::paper_scaled(8);
        let s = build(&g, 64, 4).unwrap();
        assert_eq!(s.buffer_len, 128);
        assert_eq!(s.result_spans[3], vec![Span::new(64, 64)]);
    }
}
