//! Self-healing static schedules: repair around permanent fabric faults.
//!
//! A [`CommSchedule`] is compiled against a healthy fabric. A permanently
//! dead component — a ring segment, a crossbar port, a whole rank — does
//! not drop packets at runtime; it invalidates the *plan*. This module
//! rewrites a built schedule around a [`PermanentFaultSet`] while
//! preserving PIMnet's two core properties:
//!
//! * **No arbitration.** The repaired schedule is still static and
//!   contention-checked: it must pass [`super::validate::validate`] like
//!   any other schedule.
//! * **Bit-identical results.** Repair never touches element spans or
//!   reduction flags — only resource paths and step boundaries — so
//!   executing the repaired schedule produces exactly the fault-free
//!   collective result.
//!
//! Three repairs, in increasing blast radius:
//!
//! 1. **Ring reroute** — a transfer whose path crosses a dead segment is
//!    sent the *other way around* the ring (the skip-segment route). The
//!    longer path costs more hops and more segment occupancy, which the
//!    timing model prices automatically; if the reverse path is also dead,
//!    the pair is unreachable and repair fails typed
//!    ([`PimnetError::Unroutable`]).
//! 2. **Port remap** — a chip whose crossbar Tx (or Rx) port is dead
//!    borrows the port of a surviving *buddy* chip in the same rank. The
//!    transfer then occupies both its own DQ channel and the buddy's port,
//!    so steps where the buddy is also active must serialize.
//! 3. **Step serialization** — rerouted/remapped transfers that now
//!    contend inside a non-multiplexed step are split into sequential
//!    sub-steps (readers-before-writers, so snapshot semantics are
//!    preserved) until every step is contention-free again.
//!
//! Faults that no rewrite can absorb — a dead rank, a partitioned ring, a
//! rank with no surviving port — surface as typed errors so
//! [`crate::resilience::plan_degraded`] can fall down the degradation
//! ladder (`Full → Repaired → Shrunk → HostFallback`) instead of
//! panicking. [`unusable_dpus`] is the planner's predictor for that fall:
//! the DPUs that *cannot* be kept even by repair.

use std::collections::HashSet;

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_faults::permanent::{PermanentFaultSet, PortId, PortSide, SegmentId};

use crate::error::PimnetError;
use crate::topology::{ring_path, ChipLoc, Direction, Resource};

use super::{CommSchedule, CommStep, Phase, Transfer};

/// What a successful repair did to the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Dead ring segments the schedule actually routed around.
    pub rerouted_transfers: usize,
    /// Total ring hops added by reroutes (the price of going the long way).
    pub extra_hops: usize,
    /// Transfers remapped onto a buddy chip's crossbar port.
    pub remapped_transfers: usize,
    /// Serialization steps added to restore contention-freedom.
    pub extra_steps: usize,
}

impl RepairReport {
    /// `true` when the schedule needed no rewriting (identity repair).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        *self == RepairReport::default()
    }
}

/// A repaired schedule plus the account of what the repair cost.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairedSchedule {
    /// The rewritten, re-validated schedule.
    pub schedule: CommSchedule,
    /// What changed.
    pub report: RepairReport,
}

/// Is this exact segment resource dead? (Fault sets are per-channel; the
/// schedule's single channel is implied.)
fn segment_dead(faults: &PermanentFaultSet, chip: ChipLoc, from_bank: u32, dir: Direction) -> bool {
    faults.segments.contains(&SegmentId {
        rank: chip.rank,
        chip: chip.chip,
        from_bank,
        east: dir == Direction::East,
    })
}

fn port_dead(faults: &PermanentFaultSet, chip: ChipLoc, side: PortSide) -> bool {
    faults.ports.contains(&PortId {
        rank: chip.rank,
        chip: chip.chip,
        side,
    })
}

/// The surviving chip (same rank) whose `side` port a dead-ported chip
/// borrows: the next chip index cyclically whose own port is alive.
fn buddy_port(
    g: &PimGeometry,
    faults: &PermanentFaultSet,
    chip: ChipLoc,
    side: PortSide,
) -> Option<ChipLoc> {
    let chips = g.chips_per_rank;
    (1..chips)
        .map(|d| ChipLoc {
            chip: (chip.chip + d) % chips,
            ..chip
        })
        .find(|&c| !port_dead(faults, c, side))
}

/// Does any resource of this path name a dead segment?
fn path_hits_dead_segment(faults: &PermanentFaultSet, resources: &[Resource]) -> bool {
    resources.iter().any(|r| {
        matches!(
            r,
            Resource::RingSegment { chip, from_bank, dir }
                if segment_dead(faults, *chip, *from_bank, *dir)
        )
    })
}

/// Rewrites one transfer around the fault set. Spans and reduction flags
/// are never touched; only `resources` changes.
fn repair_transfer(
    schedule: &CommSchedule,
    faults: &PermanentFaultSet,
    t: &Transfer,
    report: &mut RepairReport,
) -> Result<Transfer, PimnetError> {
    let g = &schedule.geometry;
    let mut out = t.clone();
    if t.is_local() {
        return Ok(out);
    }

    // 1. Ring reroute (same-chip transfers: the path is pure segments).
    let is_ring = t
        .resources
        .iter()
        .all(|r| matches!(r, Resource::RingSegment { .. }));
    if is_ring {
        if path_hits_dead_segment(faults, &t.resources) {
            let dir = match t.resources[0] {
                Resource::RingSegment { dir, .. } => dir,
                _ => unreachable!("is_ring checked above"),
            };
            let dst = t.dsts[0];
            let reverse = ring_path(g, t.src, dst, dir.opposite());
            if path_hits_dead_segment(faults, &reverse) {
                return Err(PimnetError::Unroutable {
                    reason: format!("ring pair {} -> {dst} is dead in both directions", t.src),
                });
            }
            report.rerouted_transfers += 1;
            report.extra_hops += reverse.len().saturating_sub(t.resources.len());
            out.resources = reverse;
        }
        return Ok(out);
    }

    // 2. Crossbar port remap (DQ transfers: inter-chip and inter-rank).
    let src_chip = ChipLoc::of(g.coord(t.src));
    let mut borrowed = false;
    if port_dead(faults, src_chip, PortSide::Tx) {
        let buddy = buddy_port(g, faults, src_chip, PortSide::Tx).ok_or_else(|| {
            PimnetError::Unroutable {
                reason: format!("no surviving Tx port in rank {}", src_chip.rank),
            }
        })?;
        let extra = Resource::ChipTx { chip: buddy };
        if !out.resources.contains(&extra) {
            out.resources.push(extra);
        }
        borrowed = true;
    }
    for &d in &t.dsts {
        let dst_chip = ChipLoc::of(g.coord(d));
        if port_dead(faults, dst_chip, PortSide::Rx) {
            let buddy = buddy_port(g, faults, dst_chip, PortSide::Rx).ok_or_else(|| {
                PimnetError::Unroutable {
                    reason: format!("no surviving Rx port in rank {}", dst_chip.rank),
                }
            })?;
            let extra = Resource::ChipRx { chip: buddy };
            if !out.resources.contains(&extra) {
                out.resources.push(extra);
            }
            borrowed = true;
        }
    }
    if borrowed {
        report.remapped_transfers += 1;
    }
    Ok(out)
}

/// Resources the validator requires to be exclusive within a step of a
/// non-multiplexed phase (the bus is broadcast/WAIT-slotted everywhere).
fn is_exclusive(r: &Resource) -> bool {
    matches!(
        r,
        Resource::RingSegment { .. } | Resource::ChipTx { .. } | Resource::ChipRx { .. }
    )
}

fn spans_overlap(a: super::Span, b: super::Span) -> bool {
    a.start < b.end() && b.start < a.end()
}

/// Splits one step's transfers into sequential contention-free sub-steps.
///
/// Two constraints:
/// * transfers in one sub-step must not share an exclusive resource;
/// * a transfer that *writes* a span another transfer *reads* (on the same
///   node) must not run in an earlier sub-step than the reader — the
///   original step's snapshot semantics read pre-step data, and keeping
///   readers at-or-before their writers preserves that exactly.
fn split_step(transfers: Vec<Transfer>) -> Result<Vec<CommStep>, PimnetError> {
    let mut remaining = transfers;
    let mut out = Vec::new();
    while !remaining.is_empty() {
        let n = remaining.len();
        let mut picked = vec![false; n];
        // Writers unpicked by the hazard pass stay out of *this* sub-step,
        // freeing their resources for the readers they would have clobbered
        // (and bounding the loop: each iteration bans or breaks).
        let mut banned = vec![false; n];
        let mut used: HashSet<Resource> = HashSet::new();
        loop {
            // Greedy fill: first-fit by exclusive-resource compatibility.
            for (i, t) in remaining.iter().enumerate() {
                if picked[i]
                    || banned[i]
                    || t.resources
                        .iter()
                        .any(|r| is_exclusive(r) && used.contains(r))
                {
                    continue;
                }
                picked[i] = true;
                used.extend(t.resources.iter().filter(|r| is_exclusive(r)).copied());
            }
            // Hazard pass: a picked writer whose reader would be left
            // behind must wait — the reader needs the pre-write value.
            let mut any_unpicked = false;
            for i in 0..n {
                if !picked[i] {
                    continue;
                }
                let w = &remaining[i];
                let leaves_reader = remaining.iter().enumerate().any(|(j, u)| {
                    j != i
                        && !picked[j]
                        && w.dsts.contains(&u.src)
                        && spans_overlap(w.dst_span, u.src_span)
                });
                if leaves_reader {
                    picked[i] = false;
                    banned[i] = true;
                    any_unpicked = true;
                }
            }
            if !any_unpicked {
                break;
            }
            used.clear();
            for (i, t) in remaining.iter().enumerate() {
                if picked[i] {
                    used.extend(t.resources.iter().filter(|r| is_exclusive(r)).copied());
                }
            }
        }
        if !picked.iter().any(|&p| p) {
            return Err(PimnetError::Unroutable {
                reason: "repair serialization deadlock: cyclic read/write hazard \
                         among contending transfers"
                    .into(),
            });
        }
        let mut kept = Vec::new();
        let mut rest = Vec::new();
        for (t, p) in remaining.into_iter().zip(picked) {
            if p {
                kept.push(t);
            } else {
                rest.push(t);
            }
        }
        out.push(CommStep::new(kept));
        remaining = rest;
    }
    Ok(out)
}

/// Does a step of a non-multiplexed phase violate exclusivity? (Distinct
/// flows — `(src, dsts)` pairs, matching the validator — sharing an
/// exclusive resource.)
fn step_has_contention(step: &CommStep) -> bool {
    let mut seen: std::collections::HashMap<Resource, (DpuId, &[DpuId])> =
        std::collections::HashMap::new();
    for t in &step.transfers {
        for r in &t.resources {
            if !is_exclusive(r) {
                continue;
            }
            match seen.get(r) {
                Some(&(src, dsts)) if src != t.src || dsts != t.dsts.as_slice() => {
                    return true;
                }
                _ => {
                    seen.insert(*r, (t.src, &t.dsts));
                }
            }
        }
    }
    false
}

/// Repairs `schedule` around `faults`.
///
/// The repaired schedule moves exactly the same element spans with exactly
/// the same reductions — executing it is bit-identical to the fault-free
/// plan — but its resource paths avoid every dead component, and it passes
/// [`super::validate::validate`] (the result is re-checked before being
/// returned). The [`RepairReport`] accounts for the price: rerouted
/// transfers, extra ring hops, borrowed ports, serialization steps.
///
/// # Errors
///
/// * [`PimnetError::DeadRank`] — a participating rank's DQ lanes are dead;
///   no rewrite keeps its DPUs reachable.
/// * [`PimnetError::Unroutable`] — a ring pair is dead in both directions,
///   a rank has no surviving crossbar port, or serialization cannot
///   restore contention-freedom.
/// * [`PimnetError::ScheduleInvalid`] — the repaired schedule failed
///   re-validation (a repair bug surfaced, never silently mistimed).
pub fn repair(
    schedule: &CommSchedule,
    faults: &PermanentFaultSet,
) -> Result<RepairedSchedule, PimnetError> {
    if faults.is_empty() {
        return Ok(RepairedSchedule {
            schedule: schedule.clone(),
            report: RepairReport::default(),
        });
    }
    let g = &schedule.geometry;
    if let Some(&rank) = faults.dead_ranks.iter().find(|&&r| r < g.ranks_per_channel) {
        return Err(PimnetError::DeadRank { rank });
    }

    let mut report = RepairReport::default();
    let mut phases = Vec::with_capacity(schedule.phases.len());
    for phase in &schedule.phases {
        let mut steps = Vec::with_capacity(phase.steps.len());
        for step in &phase.steps {
            let repaired: Vec<Transfer> = step
                .transfers
                .iter()
                .map(|t| repair_transfer(schedule, faults, t, &mut report))
                .collect::<Result<_, _>>()?;
            let repaired_step = CommStep::new(repaired);
            if !phase.multiplexed && step_has_contention(&repaired_step) {
                let sub = split_step(repaired_step.transfers)?;
                report.extra_steps += sub.len().saturating_sub(1);
                steps.extend(sub);
            } else {
                steps.push(repaired_step);
            }
        }
        phases.push(Phase::new(phase.label, steps, phase.multiplexed));
    }

    let repaired = CommSchedule {
        phases,
        ..schedule.clone()
    };
    super::validate::validate(&repaired)?;
    Ok(RepairedSchedule {
        schedule: repaired,
        report,
    })
}

/// The DPUs that not even repair can keep in the collective: every DPU of
/// a dead rank, of a rank with no surviving Tx (or Rx) crossbar port when
/// the geometry needs DQ traffic, and of a chip whose internal ring is
/// *partitioned* (some bank pair unreachable in both directions).
///
/// [`crate::resilience::plan_degraded`] excludes exactly these before
/// choosing a ladder tier: when the list is empty the full participant set
/// survives (Full or Repaired); otherwise the plan shrinks around them.
/// The analysis is conservative per component, not per schedule — a
/// partitioned chip is excluded even if a particular collective never
/// routes the broken pair.
#[must_use]
pub fn unusable_dpus(geometry: &PimGeometry, faults: &PermanentFaultSet) -> Vec<u32> {
    let mut unusable: Vec<u32> = Vec::new();
    if faults.is_empty() {
        return unusable;
    }
    let needs_dq = geometry.chips_per_rank > 1 || geometry.ranks_per_channel > 1;
    for id in geometry.dpus() {
        let c = geometry.coord(id);
        let chip = ChipLoc::of(c);
        let dead_rank = faults.dead_ranks.contains(&c.rank);
        let portless = needs_dq
            && ((port_dead(faults, chip, PortSide::Tx)
                && buddy_port(geometry, faults, chip, PortSide::Tx).is_none())
                || (port_dead(faults, chip, PortSide::Rx)
                    && buddy_port(geometry, faults, chip, PortSide::Rx).is_none()));
        if dead_rank || portless || chip_ring_partitioned(geometry, faults, chip) {
            unusable.push(id.0);
        }
    }
    unusable
}

/// Is some bank pair of this chip unreachable in both ring directions?
fn chip_ring_partitioned(g: &PimGeometry, faults: &PermanentFaultSet, chip: ChipLoc) -> bool {
    let banks = g.banks_per_chip;
    let has_dead = (0..banks).any(|b| {
        segment_dead(faults, chip, b, Direction::East)
            || segment_dead(faults, chip, b, Direction::West)
    });
    if !has_dead {
        return false;
    }
    let blocked = |a: u32, b: u32, dir: Direction| {
        let mut cur = a;
        while cur != b {
            if segment_dead(faults, chip, cur, dir) {
                return true;
            }
            cur = dir.next(cur, banks);
        }
        false
    };
    for a in 0..banks {
        for b in 0..banks {
            if a != b && blocked(a, b, Direction::East) && blocked(a, b, Direction::West) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use crate::exec::{ExecMachine, ReduceOp};
    use crate::timing::TimingModel;
    use pim_sim::SimTime;

    fn build(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    fn faults(tokens: &str) -> PermanentFaultSet {
        PermanentFaultSet::parse_tokens(tokens).unwrap()
    }

    fn exec_sum(s: &CommSchedule, elems: usize) -> ExecMachine<u64> {
        let mut m = ExecMachine::init(s, |id| vec![u64::from(id.0) + 1; elems]);
        m.run(s, ReduceOp::Sum);
        m
    }

    #[test]
    fn empty_fault_set_is_the_identity() {
        let s = build(CollectiveKind::AllReduce, 64, 256);
        let r = repair(&s, &PermanentFaultSet::none()).unwrap();
        assert_eq!(r.schedule, s);
        assert!(r.report.is_identity());
    }

    #[test]
    fn dead_segment_reroutes_and_stays_bit_identical() {
        // Single chip, 8 banks: kill one eastbound segment.
        let s = build(CollectiveKind::AllReduce, 8, 64);
        let f = faults("r0c0b2E");
        let r = repair(&s, &f).unwrap();
        assert!(r.report.rerouted_transfers > 0);
        assert!(r.report.extra_hops > 0);
        // The reversed route collides with the opposite ring direction's
        // traffic in the (non-multiplexed) bank phase, forcing sub-steps.
        assert!(r.report.extra_steps > 0);
        // No repaired transfer touches the dead segment.
        for phase in &r.schedule.phases {
            for step in &phase.steps {
                for t in &step.transfers {
                    assert!(!path_hits_dead_segment(&f, &t.resources));
                }
            }
        }
        super::super::validate::validate(&r.schedule).unwrap();
        assert_eq!(exec_sum(&r.schedule, 64), exec_sum(&s, 64));
        // The longer route costs time.
        let m = TimingModel::paper();
        assert!(
            m.time_schedule(&r.schedule, SimTime::ZERO).total()
                >= m.time_schedule(&s, SimTime::ZERO).total()
        );
    }

    #[test]
    fn tiny_payloads_repair_without_empty_span_panics() {
        // Fewer elements than participants: span splitting yields empty
        // pieces (dropped by the builders), and repair must survive the
        // sparse schedules that result — validating and staying
        // bit-identical, never indexing an empty span.
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::AllGather,
            CollectiveKind::AllToAll,
            CollectiveKind::Broadcast,
        ] {
            for elems in [1usize, 3] {
                let s = build(kind, 64, elems);
                let f = faults("r0c0b1E, r0c2tx");
                let r = repair(&s, &f).unwrap_or_else(|e| panic!("{kind} elems={elems}: {e}"));
                super::super::validate::validate(&r.schedule)
                    .unwrap_or_else(|e| panic!("{kind} elems={elems}: {e}"));
                assert_eq!(
                    exec_sum(&r.schedule, elems),
                    exec_sum(&s, elems),
                    "{kind} elems={elems}: repaired result diverged"
                );
            }
        }
    }

    #[test]
    fn dead_port_remaps_to_a_buddy_and_serializes() {
        // 64 DPUs = 8 banks x 8 chips, one rank: kill chip 1's Tx port.
        let s = build(CollectiveKind::AllReduce, 64, 256);
        let f = faults("r0c1tx");
        let r = repair(&s, &f).unwrap();
        assert!(r.report.remapped_transfers > 0);
        super::super::validate::validate(&r.schedule).unwrap();
        assert_eq!(exec_sum(&r.schedule, 256), exec_sum(&s, 256));
        // Inter-chip phases are multiplexed (WAIT-slot DQ scheduling), so
        // the borrowed port shows up as doubled occupancy — priced by the
        // timing model — rather than as extra steps.
        let m = TimingModel::paper();
        assert!(
            m.time_schedule(&r.schedule, SimTime::ZERO).total()
                > m.time_schedule(&s, SimTime::ZERO).total()
        );
    }

    #[test]
    fn repairs_every_collective_on_a_multi_tier_geometry() {
        let f = faults("r0c0b1E, r0c1rx");
        for kind in CollectiveKind::ALL {
            let s = build(kind, 128, 128);
            let r = repair(&s, &f).unwrap_or_else(|e| panic!("{kind}: {e}"));
            super::super::validate::validate(&r.schedule).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert_eq!(
                exec_sum(&r.schedule, 128),
                exec_sum(&s, 128),
                "{kind}: repaired run diverged"
            );
        }
    }

    #[test]
    fn dead_rank_is_a_typed_error() {
        let s = build(CollectiveKind::AllReduce, 256, 64);
        let err = repair(&s, &faults("rank1")).unwrap_err();
        assert_eq!(err, PimnetError::DeadRank { rank: 1 });
    }

    #[test]
    fn pair_dead_both_ways_is_unroutable() {
        // 8 banks, one chip. Kill the eastbound segment out of bank 0 and
        // every westbound segment: bank 0 -> 1 has no surviving route.
        let mut f = faults("r0c0b0E");
        for b in 0..8 {
            f.segments.insert(SegmentId {
                rank: 0,
                chip: 0,
                from_bank: b,
                east: false,
            });
        }
        let s = build(CollectiveKind::AllReduce, 8, 64);
        let err = repair(&s, &f).unwrap_err();
        assert!(matches!(err, PimnetError::Unroutable { .. }));
        // And the predictor agrees: the chip is partitioned.
        let g = PimGeometry::paper_scaled(8);
        assert_eq!(unusable_dpus(&g, &f).len(), 8);
    }

    #[test]
    fn unusable_covers_ranks_ports_and_partitions() {
        let g = PimGeometry::paper_scaled(256); // 8 banks, 8 chips, 4 ranks
        assert!(unusable_dpus(&g, &PermanentFaultSet::none()).is_empty());
        // Dead rank: all 64 of its DPUs.
        assert_eq!(unusable_dpus(&g, &faults("rank2")).len(), 64);
        // One dead port with 7 surviving buddies: nothing unusable.
        assert!(unusable_dpus(&g, &faults("r0c1tx")).is_empty());
        // Every Tx port of rank 0 dead: the whole rank is unusable.
        let all_tx: String = (0..8).map(|c| format!("r0c{c}tx,")).collect();
        assert_eq!(unusable_dpus(&g, &faults(&all_tx)).len(), 64);
        // A single dead segment is repairable, not unusable.
        assert!(unusable_dpus(&g, &faults("r0c0b3W")).is_empty());
    }

    #[test]
    fn repair_is_deterministic() {
        let s = build(CollectiveKind::AllToAll, 64, 128);
        let f = faults("r0c0b1E, r0c2tx, r0c5rx");
        let a = repair(&s, &f).unwrap();
        let b = repair(&s, &f).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn split_step_preserves_reader_before_writer() {
        use super::super::Span;
        // A writes into node 2's [0..4); B reads node 2's [0..4). Both
        // fight over one exclusive segment, so they must serialize with B
        // (the reader) first.
        let seg = Resource::RingSegment {
            chip: ChipLoc {
                channel: 0,
                rank: 0,
                chip: 0,
            },
            from_bank: 0,
            dir: Direction::East,
        };
        let a = Transfer {
            src: DpuId(1),
            dsts: vec![DpuId(2)],
            src_span: Span::new(4, 4),
            dst_span: Span::new(0, 4),
            combine: false,
            resources: vec![seg],
        };
        let b = Transfer {
            src: DpuId(2),
            dsts: vec![DpuId(3)],
            src_span: Span::new(0, 4),
            dst_span: Span::new(0, 4),
            combine: false,
            resources: vec![seg],
        };
        let steps = split_step(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].transfers, vec![b]);
        assert_eq!(steps[1].transfers, vec![a]);
    }
}
