//! Per-tier collective algorithm library and hierarchical composition.
//!
//! The paper fixes one hand-crafted schedule per collective (Table V).
//! Real communication stacks instead compose an algorithm *per topology
//! dimension* and pick the winner per (geometry, payload) — ASTRA-sim's
//! `ring_doubleBinaryTree` spellings are the exemplar. This module adds
//! that layer: four per-tier builders —
//!
//! * [`TierAlgo::Ring`] — the paper's logical ring (k-1 steps, exclusive
//!   adjacent hops),
//! * [`TierAlgo::Direct`] — fully-connected exchange (1 step, every pair
//!   at once, WAIT-multiplexed),
//! * [`TierAlgo::DoubleBinaryTree`] — two complementary binomial trees,
//!   each carrying one half of the payload (reduce up, broadcast down),
//! * [`TierAlgo::Rabenseifner`] — reduce-scatter by recursive halving +
//!   allgather by recursive doubling (power-of-two groups),
//!
//! and a [`Composition`] that assigns one algorithm per dimension
//! (bank / chip / rank) and splices the per-tier phases into one valid
//! hierarchical [`CommSchedule`]. Composed schedules are ordinary
//! schedules: the SoA layout, executor, timeline, boost planner and all
//! four analysis passes consume them unchanged.
//!
//! Not every algorithm applies to every collective: double binary tree
//! does not scatter (its result would not partition the vector), so it
//! is an AllReduce/Broadcast device; Rabenseifner needs power-of-two
//! group sizes; All-to-All is inherently a direct exchange.
//! [`Composition::applies_to`] encodes the matrix and
//! [`build_composed`] returns a typed error for anything else.

use std::fmt;

use pim_arch::geometry::{DpuCoord, DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::error::PimnetError;
use crate::topology::{chip_path, rank_path, ring_path, shorter_direction, Resource};

use super::ring::{ring_all_gather, ring_reduce_scatter};
use super::{alltoall, CommSchedule, CommStep, Phase, PhaseLabel, Span, Transfer};

/// One per-tier collective algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TierAlgo {
    /// Logical ring: `k-1` steps of adjacent exchange (Table V's choice).
    Ring,
    /// Fully-connected exchange: one step, every pair simultaneously,
    /// deterministically time-multiplexed on shared resources.
    Direct,
    /// Two complementary binomial trees, each carrying one half of the
    /// payload: reduce up both trees, then broadcast back down.
    DoubleBinaryTree,
    /// Reduce-scatter by recursive halving, allgather by recursive
    /// doubling; requires a power-of-two group.
    Rabenseifner,
}

impl TierAlgo {
    /// Every algorithm, in the tuner's deterministic sweep order.
    pub const ALL: [TierAlgo; 4] = [
        TierAlgo::Ring,
        TierAlgo::Direct,
        TierAlgo::DoubleBinaryTree,
        TierAlgo::Rabenseifner,
    ];

    /// The spec token (`ring`, `direct`, `dbtree`, `rabenseifner`).
    #[must_use]
    pub const fn token(self) -> &'static str {
        match self {
            TierAlgo::Ring => "ring",
            TierAlgo::Direct => "direct",
            TierAlgo::DoubleBinaryTree => "dbtree",
            TierAlgo::Rabenseifner => "rabenseifner",
        }
    }

    /// Parses one spec token.
    ///
    /// # Errors
    ///
    /// Returns the unrecognized token.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "ring" => Ok(TierAlgo::Ring),
            "direct" => Ok(TierAlgo::Direct),
            "dbtree" => Ok(TierAlgo::DoubleBinaryTree),
            "rabenseifner" => Ok(TierAlgo::Rabenseifner),
            other => Err(format!(
                "unknown tier algorithm '{other}' (expected ring|direct|dbtree|rabenseifner)"
            )),
        }
    }

    /// Stable small code for cache keys (index into [`TierAlgo::ALL`]).
    #[must_use]
    pub(crate) const fn code(self) -> u32 {
        match self {
            TierAlgo::Ring => 0,
            TierAlgo::Direct => 1,
            TierAlgo::DoubleBinaryTree => 2,
            TierAlgo::Rabenseifner => 3,
        }
    }
}

impl fmt::Display for TierAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// One algorithm per hierarchy dimension, spelled `bank_chip_rank`
/// (e.g. `ring_direct_dbtree`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Composition {
    /// Inter-bank (intra-chip ring) tier algorithm.
    pub bank: TierAlgo,
    /// Inter-chip (crossbar) tier algorithm.
    pub chip: TierAlgo,
    /// Inter-rank (bus) tier algorithm.
    pub rank: TierAlgo,
}

impl Composition {
    /// The all-ring composition (closest to the paper's Table V).
    pub const RING: Composition = Composition {
        bank: TierAlgo::Ring,
        chip: TierAlgo::Ring,
        rank: TierAlgo::Ring,
    };

    /// Parses a `bank_chip_rank` spec, e.g. `ring_direct_rabenseifner`.
    ///
    /// # Errors
    ///
    /// Describes the malformed spec or the unknown token.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split('_').collect();
        if parts.len() != 3 {
            return Err(format!(
                "composition spec '{spec}' must have exactly three '_'-separated \
                 tokens (bank_chip_rank), e.g. ring_direct_dbtree"
            ));
        }
        Ok(Composition {
            bank: TierAlgo::parse(parts[0])?,
            chip: TierAlgo::parse(parts[1])?,
            rank: TierAlgo::parse(parts[2])?,
        })
    }

    /// The canonical spec string (`bank_chip_rank` tokens).
    #[must_use]
    pub fn spec(&self) -> String {
        format!("{}_{}_{}", self.bank, self.chip, self.rank)
    }

    /// The per-tier algorithms in tier order (bank, chip, rank).
    #[must_use]
    pub const fn tiers(&self) -> [TierAlgo; 3] {
        [self.bank, self.chip, self.rank]
    }

    /// True when every tier algorithm applies to `kind` (ignoring
    /// geometry constraints such as Rabenseifner's power-of-two rule,
    /// which [`build_composed`] checks against the concrete geometry).
    ///
    /// | kind | bank | chip | rank |
    /// |------|------|------|------|
    /// | AllReduce | all four | all four | all four |
    /// | ReduceScatter | ring, direct, rabenseifner | same | same |
    /// | AllGather | ring, direct, rabenseifner | same | ring, direct, rabenseifner |
    /// | Broadcast | ring, direct, dbtree | ring, direct, rabenseifner | ring, direct |
    /// | AllToAll | direct | direct | direct |
    /// | Reduce / Gather | — (no composed form) |
    #[must_use]
    pub fn applies_to(&self, kind: CollectiveKind) -> bool {
        use TierAlgo::{DoubleBinaryTree, Rabenseifner};
        let scatters = |a: TierAlgo| a != DoubleBinaryTree;
        match kind {
            CollectiveKind::AllReduce => true,
            CollectiveKind::ReduceScatter => self.tiers().into_iter().all(scatters),
            CollectiveKind::AllGather => self.tiers().into_iter().all(scatters),
            CollectiveKind::Broadcast => {
                self.bank != Rabenseifner
                    && scatters(self.chip)
                    && matches!(self.rank, TierAlgo::Ring | TierAlgo::Direct)
            }
            CollectiveKind::AllToAll => self.tiers().into_iter().all(|a| a == TierAlgo::Direct),
            CollectiveKind::Reduce | CollectiveKind::Gather => false,
        }
    }
}

impl fmt::Display for Composition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}_{}", self.bank, self.chip, self.rank)
    }
}

/// Which fabric a tier's transfers ride, fixing path construction and
/// whether multi-destination (broadcast) transfers exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wire {
    /// Intra-chip ring segments, shorter direction per pair.
    BankRing,
    /// Buffer-chip crossbar DQ channels.
    ChipXbar,
    /// The multi-drop inter-rank bus (broadcast-capable).
    RankBus,
}

/// Tier context: the geometry plus the wire the tier's groups span.
#[derive(Clone, Copy)]
struct TierCtx<'g> {
    g: &'g PimGeometry,
    wire: Wire,
}

impl TierCtx<'_> {
    /// Unicast path between two group members.
    fn path(&self, src: DpuId, dst: DpuId) -> Vec<Resource> {
        match self.wire {
            Wire::BankRing => {
                let (a, b) = (self.g.coord(src).bank, self.g.coord(dst).bank);
                ring_path(
                    self.g,
                    src,
                    dst,
                    shorter_direction(self.g.banks_per_chip, a, b),
                )
            }
            Wire::ChipXbar => chip_path(self.g, src, dst),
            Wire::RankBus => rank_path(self.g, src, &[dst]),
        }
    }

    /// One transfer of `span` from `src` to `dsts`: a single broadcast on
    /// the bus, one unicast per destination elsewhere.
    fn sends(&self, src: DpuId, dsts: &[DpuId], span: Span, combine: bool) -> Vec<Transfer> {
        if dsts.is_empty() || span.is_empty() {
            return Vec::new();
        }
        if self.wire == Wire::RankBus {
            return vec![Transfer {
                src,
                dsts: dsts.to_vec(),
                src_span: span,
                dst_span: span,
                combine,
                resources: rank_path(self.g, src, dsts),
            }];
        }
        dsts.iter()
            .map(|&dst| Transfer {
                src,
                dsts: vec![dst],
                src_span: span,
                dst_span: span,
                combine,
                resources: self.path(src, dst),
            })
            .collect()
    }
}

/// Steps of a group-local reduce-scatter of `parent` among `nodes`, plus
/// the span each position owns (fully reduced over the group) afterwards.
/// For [`TierAlgo::DoubleBinaryTree`] the "scatter" is a full allreduce:
/// every position owns all of `parent` and the mirror allgather is empty.
fn tier_reduce_scatter(
    algo: TierAlgo,
    ctx: TierCtx<'_>,
    nodes: &[DpuId],
    parent: Span,
) -> Result<(Vec<Vec<Transfer>>, Vec<Span>), PimnetError> {
    let k = nodes.len();
    if k <= 1 {
        return Ok((Vec::new(), vec![parent; k]));
    }
    match algo {
        TierAlgo::Ring => {
            let chunks = parent.split(k);
            let (steps, owners) =
                ring_reduce_scatter(nodes, &chunks, |src, dst| ctx.path(src, dst));
            let owned = owners.iter().map(|&o| chunks[o]).collect();
            Ok((steps, owned))
        }
        TierAlgo::Direct => {
            let chunks = parent.split(k);
            let mut transfers = Vec::new();
            for (i, &src) in nodes.iter().enumerate() {
                for (j, &dst) in nodes.iter().enumerate() {
                    if i != j {
                        transfers.extend(ctx.sends(src, &[dst], chunks[j], true));
                    }
                }
            }
            Ok((vec![transfers], chunks))
        }
        TierAlgo::Rabenseifner => {
            require_pow2(ctx.g, k, "Rabenseifner reduce-scatter")?;
            Ok(halving_reduce_scatter(ctx, nodes, parent))
        }
        TierAlgo::DoubleBinaryTree => Ok((dbtree_allreduce(ctx, nodes, parent), vec![parent; k])),
    }
}

/// Mirror allgather: restores `parent` everywhere from the ownership
/// state [`tier_reduce_scatter`] left (a pure function of `parent` and
/// the group positions, so nothing needs to be threaded between them).
fn tier_all_gather(
    algo: TierAlgo,
    ctx: TierCtx<'_>,
    nodes: &[DpuId],
    parent: Span,
) -> Vec<Vec<Transfer>> {
    let k = nodes.len();
    if k <= 1 {
        return Vec::new();
    }
    match algo {
        TierAlgo::Ring => {
            let chunks = parent.split(k);
            let owners: Vec<usize> = (0..k).map(|i| (i + 1) % k).collect();
            ring_all_gather(nodes, &chunks, &owners, |src, dst| ctx.path(src, dst))
        }
        TierAlgo::Direct => {
            let chunks = parent.split(k);
            let mut transfers = Vec::new();
            for (i, &src) in nodes.iter().enumerate() {
                let dsts: Vec<DpuId> = nodes
                    .iter()
                    .copied()
                    .enumerate()
                    .filter_map(|(j, n)| (j != i).then_some(n))
                    .collect();
                transfers.extend(ctx.sends(src, &dsts, chunks[i], false));
            }
            vec![transfers]
        }
        TierAlgo::Rabenseifner => doubling_all_gather(ctx, nodes, parent),
        TierAlgo::DoubleBinaryTree => Vec::new(),
    }
}

/// Recursive-halving reduce-scatter among a power-of-two group: round
/// `r` pairs position `i` with `i ^ 2^r`; each pair splits its working
/// span in two, the lower position keeps (and receives contributions
/// for) the low half. The owned spans are exactly
/// [`Span::split_pow2`]'s partition at the bit-reversed position.
fn halving_reduce_scatter(
    ctx: TierCtx<'_>,
    nodes: &[DpuId],
    parent: Span,
) -> (Vec<Vec<Transfer>>, Vec<Span>) {
    let k = nodes.len();
    let mut span = vec![parent; k];
    let mut steps = Vec::new();
    let mut d = 1usize;
    while d < k {
        let mut transfers = Vec::with_capacity(k);
        for (i, s) in span.iter().enumerate() {
            let p = i ^ d;
            let halves = s.split(2);
            let send = if i & d == 0 { halves[1] } else { halves[0] };
            transfers.extend(ctx.sends(nodes[i], &[nodes[p]], send, true));
        }
        for (i, s) in span.iter_mut().enumerate() {
            let halves = s.split(2);
            *s = if i & d == 0 { halves[0] } else { halves[1] };
        }
        steps.push(transfers);
        d <<= 1;
    }
    debug_assert_eq!(
        span,
        halving_partition(parent, k),
        "operational halving must match Span::split_pow2's partition"
    );
    (steps, span)
}

/// The per-position owned spans recursive halving converges to: leaf
/// `bitrev(i)` of [`Span::split_pow2`]'s partition (round `r` descends
/// by bit `r`, while the split tree's outermost level is the *first*
/// round, so position bits read the leaf path inside-out).
fn halving_partition(parent: Span, k: usize) -> Vec<Span> {
    debug_assert!(k.is_power_of_two());
    let leaves = parent.split_pow2(k);
    let levels = k.trailing_zeros();
    (0..k)
        .map(|i| {
            let mut leaf = 0usize;
            for r in 0..levels {
                leaf = (leaf << 1) | ((i >> r) & 1);
            }
            leaves[leaf]
        })
        .collect()
}

/// Recursive-doubling allgather: the mirror of
/// [`halving_reduce_scatter`], re-deriving the per-round spans from
/// `parent` and merging sibling spans back up in reverse round order.
fn doubling_all_gather(ctx: TierCtx<'_>, nodes: &[DpuId], parent: Span) -> Vec<Vec<Transfer>> {
    let k = nodes.len();
    // Re-thread the halving to recover the post-scatter spans.
    let mut span = halving_partition(parent, k);
    let mut steps = Vec::new();
    let mut d = k >> 1;
    while d >= 1 {
        let mut transfers = Vec::with_capacity(k);
        for (i, &s) in span.iter().enumerate() {
            let p = i ^ d;
            transfers.extend(ctx.sends(nodes[i], &[nodes[p]], s, false));
        }
        let before = span.clone();
        for (i, s) in span.iter_mut().enumerate() {
            let p = i ^ d;
            let (lo, hi) = if before[i].start <= before[p].start {
                (before[i], before[p])
            } else {
                (before[p], before[i])
            };
            debug_assert_eq!(lo.end(), hi.start, "siblings must be adjacent");
            *s = Span::new(lo.start, lo.len + hi.len);
        }
        steps.push(transfers);
        d >>= 1;
    }
    steps
}

/// Double-binary-tree allreduce of `parent` among `nodes`: two
/// complementary binomial trees (tree 0 rooted at the first position,
/// tree 1 at the last) each reduce one half of `parent` up to their
/// root, then broadcast it back down. Works for any group size; every
/// position ends holding all of `parent`, fully reduced.
fn dbtree_allreduce(ctx: TierCtx<'_>, nodes: &[DpuId], parent: Span) -> Vec<Vec<Transfer>> {
    let k = nodes.len();
    if k <= 1 {
        return Vec::new();
    }
    let halves = parent.split(2);
    let levels = usize::BITS - (k - 1).leading_zeros();
    // Tree t maps group position p to tree position q; tree 1 reverses
    // the group so the two roots (and every internal node) differ.
    let tree_pos = |t: usize, p: usize| if t == 0 { p } else { k - 1 - p };
    let mut steps = Vec::new();
    // Reduce up: at round r, tree positions whose lowest set bit is r
    // send their half to the parent (that bit cleared), which combines.
    for r in 0..levels {
        let d = 1usize << r;
        let mut transfers = Vec::new();
        for (t, &half) in halves.iter().enumerate() {
            for p in 0..k {
                let q = tree_pos(t, p);
                if q & ((d << 1) - 1) == d {
                    let parent_p = tree_pos(t, q - d);
                    transfers.extend(ctx.sends(nodes[p], &[nodes[parent_p]], half, true));
                }
            }
        }
        steps.push(transfers);
    }
    // Broadcast down: the mirror, in reverse round order, parents
    // overwriting their children with the fully-reduced half.
    for r in (0..levels).rev() {
        let d = 1usize << r;
        let mut transfers = Vec::new();
        for (t, &half) in halves.iter().enumerate() {
            for p in 0..k {
                let q = tree_pos(t, p);
                if q & ((d << 1) - 1) == d {
                    let parent_p = tree_pos(t, q - d);
                    transfers.extend(ctx.sends(nodes[parent_p], &[nodes[p]], half, false));
                }
            }
        }
        steps.push(transfers);
    }
    steps
}

/// One-to-all fan-out of `span` from `nodes[0]` (which alone holds it)
/// to the whole group. Ring pipelines hop by hop; direct unicasts (or
/// bus-broadcasts) in one step; double binary tree broadcasts each half
/// down one of two complementary binomial trees rooted at position 0.
fn fan_out(algo: TierAlgo, ctx: TierCtx<'_>, nodes: &[DpuId], span: Span) -> Vec<Vec<Transfer>> {
    let k = nodes.len();
    if k <= 1 || span.is_empty() {
        return Vec::new();
    }
    match algo {
        TierAlgo::Ring => {
            // Store-and-forward pipeline along the group order.
            (0..k - 1)
                .map(|s| ctx.sends(nodes[s], &[nodes[s + 1]], span, false))
                .collect()
        }
        TierAlgo::Direct => {
            vec![ctx.sends(nodes[0], &nodes[1..], span, false)]
        }
        TierAlgo::DoubleBinaryTree => {
            let halves = span.split(2);
            let levels = usize::BITS - (k - 1).leading_zeros();
            // Both trees root at position 0: tree 0 on q = p, tree 1 on
            // q = (k - p) mod k (a reflection fixing the root).
            let tree_pos = |t: usize, q: usize| if t == 0 { q } else { (k - q) % k };
            let mut steps = Vec::new();
            for r in (0..levels).rev() {
                let d = 1usize << r;
                let mut transfers = Vec::new();
                for (t, &half) in halves.iter().enumerate() {
                    for q in 0..k {
                        if q & ((d << 1) - 1) == d {
                            let (src, dst) = (tree_pos(t, q - d), tree_pos(t, q));
                            transfers.extend(ctx.sends(nodes[src], &[nodes[dst]], half, false));
                        }
                    }
                }
                steps.push(transfers);
            }
            steps
        }
        // Not reachable through the applicability matrix; fall back to
        // the direct fan-out rather than panicking.
        TierAlgo::Rabenseifner => vec![ctx.sends(nodes[0], &nodes[1..], span, false)],
    }
}

/// Per-step transfer lists plus every group position's owned-piece set
/// afterwards — the working state circulated by the set-based tiers.
type StepsAndSets = (Vec<Vec<Transfer>>, Vec<Vec<Span>>);

/// Group-local allgather over per-position piece *sets* (AllGather-style
/// buffers hold many owner-indexed pieces). Returns the steps and every
/// position's set afterwards, in canonical (group-order) concatenation.
fn tier_all_gather_sets(
    algo: TierAlgo,
    ctx: TierCtx<'_>,
    nodes: &[DpuId],
    sets: &[Vec<Span>],
) -> Result<StepsAndSets, PimnetError> {
    let k = nodes.len();
    let union: Vec<Span> = sets.iter().flatten().copied().collect();
    if k <= 1 {
        return Ok((Vec::new(), vec![union; k]));
    }
    match algo {
        TierAlgo::Ring => {
            // Circulate original sets: position i forwards the set it
            // received last step (starting with its own), like the
            // paper's piece-set rings.
            let mut cur: Vec<usize> = (0..k).collect();
            let mut steps = Vec::new();
            for _ in 0..k - 1 {
                let mut transfers = Vec::new();
                let mut next = cur.clone();
                for (i, &src) in nodes.iter().enumerate() {
                    let dst_i = (i + 1) % k;
                    for &span in &sets[cur[i]] {
                        transfers.extend(ctx.sends(src, &[nodes[dst_i]], span, false));
                    }
                    next[dst_i] = cur[i];
                }
                cur = next;
                steps.push(transfers);
            }
            Ok((steps, vec![union; k]))
        }
        TierAlgo::Direct => {
            let mut transfers = Vec::new();
            for (i, &src) in nodes.iter().enumerate() {
                let dsts: Vec<DpuId> = nodes
                    .iter()
                    .copied()
                    .enumerate()
                    .filter_map(|(j, n)| (j != i).then_some(n))
                    .collect();
                for &span in &sets[i] {
                    transfers.extend(ctx.sends(src, &dsts, span, false));
                }
            }
            Ok((vec![transfers], vec![union; k]))
        }
        TierAlgo::Rabenseifner => {
            require_pow2(ctx.g, k, "recursive-doubling allgather")?;
            let mut acc: Vec<Vec<Span>> = sets.to_vec();
            let mut steps = Vec::new();
            let mut d = 1usize;
            while d < k {
                let mut transfers = Vec::new();
                for (i, &src) in nodes.iter().enumerate() {
                    let p = i ^ d;
                    for &span in &acc[i] {
                        transfers.extend(ctx.sends(src, &[nodes[p]], span, false));
                    }
                }
                let before = acc.clone();
                for (i, set) in acc.iter_mut().enumerate() {
                    let p = i ^ d;
                    // Canonical order: lower position's pieces first.
                    if i & d == 0 {
                        set.extend(before[p].iter().copied());
                    } else {
                        let mut merged = before[p].clone();
                        merged.extend(before[i].iter().copied());
                        *set = merged;
                    }
                }
                steps.push(transfers);
                d <<= 1;
            }
            Ok((steps, acc))
        }
        TierAlgo::DoubleBinaryTree => Err(PimnetError::ScheduleInvalid {
            reason: "double binary tree does not apply to allgather tiers".into(),
        }),
    }
}

fn require_pow2(g: &PimGeometry, k: usize, what: &str) -> Result<(), PimnetError> {
    if k.is_power_of_two() {
        Ok(())
    } else {
        Err(PimnetError::InvalidGeometry {
            geometry: *g,
            reason: format!("{what} needs a power-of-two group, got {k} nodes"),
        })
    }
}

fn at(g: &PimGeometry, rank: u32, chip: u32, bank: u32) -> DpuId {
    g.id(DpuCoord {
        channel: 0,
        rank,
        chip,
        bank,
    })
}

/// Banks of one chip, in ring order.
fn bank_group(g: &PimGeometry, rank: u32, chip: u32) -> Vec<DpuId> {
    (0..g.banks_per_chip)
        .map(|b| at(g, rank, chip, b))
        .collect()
}

/// Bank `bank` of every chip of one rank (the logical crossbar ring).
fn chip_group(g: &PimGeometry, rank: u32, bank: u32) -> Vec<DpuId> {
    (0..g.chips_per_rank)
        .map(|c| at(g, rank, c, bank))
        .collect()
}

/// The rank twins of one (chip, bank) position.
fn rank_group(g: &PimGeometry, chip: u32, bank: u32) -> Vec<DpuId> {
    (0..g.ranks_per_channel)
        .map(|r| at(g, r, chip, bank))
        .collect()
}

/// Extends `acc` step-wise with `steps` (parallel groups share steps).
fn merge_steps(acc: &mut Vec<Vec<Transfer>>, steps: Vec<Vec<Transfer>>) {
    for (s, transfers) in steps.into_iter().enumerate() {
        if acc.len() <= s {
            acc.resize_with(s + 1, Vec::new);
        }
        acc[s].extend(transfers);
    }
}

fn into_phase(label: PhaseLabel, steps: Vec<Vec<Transfer>>, multiplexed: bool) -> Phase {
    Phase::new(
        label,
        steps.into_iter().map(CommStep::new).collect(),
        multiplexed,
    )
}

/// Bank-tier phases are exclusive only for the ring (single flow per
/// adjacent segment); every other algorithm rides multi-hop
/// shorter-direction paths that overlap and are WAIT-multiplexed.
fn bank_multiplexed(algo: TierAlgo) -> bool {
    algo != TierAlgo::Ring
}

/// Compiles `kind` on `geometry` under a per-tier algorithm
/// [`Composition`], as [`build_composed_chunked`] with one chunk.
///
/// # Errors
///
/// See [`build_composed_chunked`].
pub fn build_composed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
) -> Result<CommSchedule, PimnetError> {
    build_composed_chunked(kind, geometry, elems, elem_bytes, comp, 1)
}

/// Compiles `kind` on `geometry` under a per-tier algorithm
/// [`Composition`], optionally pipelined over `chunks` payload splits
/// (AllReduce only: the full hierarchy runs once per chunk, phases
/// spliced in chunk order).
///
/// The output is a standard [`CommSchedule`]: it passes
/// [`validate`](super::validate::validate), executes bit-identical to
/// the functional reference, and feeds the timeline/boost/analysis
/// machinery unchanged.
///
/// # Errors
///
/// * [`PimnetError::InvalidGeometry`] — multi-channel geometry, or a
///   Rabenseifner tier whose group size is not a power of two.
/// * [`PimnetError::InvalidMessage`] — zero-sized elements, or
///   `chunks > 1` for a collective other than AllReduce.
/// * [`PimnetError::ScheduleInvalid`] — the composition does not apply
///   to `kind` (see [`Composition::applies_to`]).
pub fn build_composed_chunked(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
    chunks: usize,
) -> Result<CommSchedule, PimnetError> {
    if geometry.channels != 1 {
        return Err(PimnetError::InvalidGeometry {
            geometry: *geometry,
            reason: "composed schedules span a single memory channel".into(),
        });
    }
    if elem_bytes == 0 {
        return Err(PimnetError::InvalidMessage {
            reason: "zero element size".into(),
        });
    }
    if chunks == 0 {
        return Err(PimnetError::InvalidMessage {
            reason: "chunk split must be at least 1".into(),
        });
    }
    if chunks > 1 && kind != CollectiveKind::AllReduce {
        return Err(PimnetError::InvalidMessage {
            reason: format!("chunk-split pipelining applies to AllReduce only, not {kind}"),
        });
    }
    if !comp.applies_to(kind) {
        return Err(PimnetError::ScheduleInvalid {
            reason: format!("composition '{comp}' does not apply to {kind}"),
        });
    }
    match kind {
        CollectiveKind::AllReduce => build_allreduce(geometry, elems, elem_bytes, comp, chunks),
        CollectiveKind::ReduceScatter => build_reduce_scatter(geometry, elems, elem_bytes, comp),
        CollectiveKind::AllGather => build_all_gather(geometry, elems, elem_bytes, comp),
        CollectiveKind::Broadcast => build_broadcast(geometry, elems, elem_bytes, comp),
        // applies_to admits only the all-direct composition, which is
        // exactly the paper's pairwise exchange.
        CollectiveKind::AllToAll => alltoall::build(geometry, elems, elem_bytes),
        CollectiveKind::Reduce | CollectiveKind::Gather => unreachable!("applies_to rejected"),
    }
}

/// The reduce-scatter half of the hierarchy (bank then chip tiers),
/// shared by AllReduce and ReduceScatter. Mutates `owned` (the current
/// span per node) and returns the two phases plus the snapshot of
/// bank-tier ownership (the chip tier's parent spans, needed by the
/// mirror allgather).
fn up_phases(
    g: &PimGeometry,
    comp: Composition,
    owned: &mut [Span],
) -> Result<(Vec<Phase>, Vec<Span>), PimnetError> {
    let bank_ctx = TierCtx {
        g,
        wire: Wire::BankRing,
    };
    let chip_ctx = TierCtx {
        g,
        wire: Wire::ChipXbar,
    };
    let mut phases = Vec::new();

    let mut bank_steps = Vec::new();
    for rank in 0..g.ranks_per_channel {
        for chip in 0..g.chips_per_rank {
            let nodes = bank_group(g, rank, chip);
            let parent = owned[nodes[0].index()];
            let (steps, new_owned) = tier_reduce_scatter(comp.bank, bank_ctx, &nodes, parent)?;
            merge_steps(&mut bank_steps, steps);
            for (pos, n) in nodes.iter().enumerate() {
                owned[n.index()] = new_owned[pos];
            }
        }
    }
    phases.push(into_phase(
        PhaseLabel::InterBank,
        bank_steps,
        bank_multiplexed(comp.bank),
    ));

    let bank_owned = owned.to_vec();
    let mut chip_steps = Vec::new();
    for rank in 0..g.ranks_per_channel {
        for bank in 0..g.banks_per_chip {
            let nodes = chip_group(g, rank, bank);
            let parent = owned[nodes[0].index()];
            let (steps, new_owned) = tier_reduce_scatter(comp.chip, chip_ctx, &nodes, parent)?;
            merge_steps(&mut chip_steps, steps);
            for (pos, n) in nodes.iter().enumerate() {
                owned[n.index()] = new_owned[pos];
            }
        }
    }
    phases.push(into_phase(PhaseLabel::InterChip, chip_steps, true));
    Ok((phases, bank_owned))
}

/// The mirror allgather phases (chip then bank tiers) restoring every
/// node's span from `bank_owned` back up to `root` (the tier parent).
fn down_phases(g: &PimGeometry, comp: Composition, bank_owned: &[Span], root: Span) -> Vec<Phase> {
    let bank_ctx = TierCtx {
        g,
        wire: Wire::BankRing,
    };
    let chip_ctx = TierCtx {
        g,
        wire: Wire::ChipXbar,
    };
    let mut phases = Vec::new();

    let mut chip_steps = Vec::new();
    for rank in 0..g.ranks_per_channel {
        for bank in 0..g.banks_per_chip {
            let nodes = chip_group(g, rank, bank);
            let parent = bank_owned[nodes[0].index()];
            merge_steps(
                &mut chip_steps,
                tier_all_gather(comp.chip, chip_ctx, &nodes, parent),
            );
        }
    }
    phases.push(into_phase(PhaseLabel::InterChip, chip_steps, true));

    let mut bank_steps = Vec::new();
    for rank in 0..g.ranks_per_channel {
        for chip in 0..g.chips_per_rank {
            let nodes = bank_group(g, rank, chip);
            merge_steps(
                &mut bank_steps,
                tier_all_gather(comp.bank, bank_ctx, &nodes, root),
            );
        }
    }
    phases.push(into_phase(
        PhaseLabel::InterBank,
        bank_steps,
        bank_multiplexed(comp.bank),
    ));
    phases
}

/// The inter-rank middle of a composed AllReduce: reduce (and
/// re-distribute) every node's chip-tier span across its rank twins.
/// Direct uses the paper's one-pass broadcast-reduce; ring and
/// Rabenseifner run an explicit reduce-scatter + allgather on the bus;
/// double binary tree reduces up and broadcasts down. All leave `owned`
/// unchanged (each node ends holding its full chip-tier span, reduced
/// across ranks).
fn rank_mid_phase(
    g: &PimGeometry,
    rank_algo: TierAlgo,
    owned: &[Span],
) -> Result<Option<Phase>, PimnetError> {
    let ranks = g.ranks_per_channel;
    if ranks <= 1 {
        return Ok(None);
    }
    let ctx = TierCtx {
        g,
        wire: Wire::RankBus,
    };
    let mut steps: Vec<Vec<Transfer>> = Vec::new();
    match rank_algo {
        TierAlgo::Direct => {
            // The paper's scheme: every rank broadcasts its partial, every
            // twin reduces in place. All broadcasts read the *pre-phase*
            // partials, so they share one step's snapshot semantics (the
            // bus still serializes them; occupancy accounts for it).
            let mut transfers = Vec::new();
            for chip in 0..g.chips_per_rank {
                for bank in 0..g.banks_per_chip {
                    let nodes = rank_group(g, chip, bank);
                    for (i, &src) in nodes.iter().enumerate() {
                        let dsts: Vec<DpuId> = nodes
                            .iter()
                            .copied()
                            .enumerate()
                            .filter_map(|(j, n)| (j != i).then_some(n))
                            .collect();
                        transfers.extend(ctx.sends(src, &dsts, owned[src.index()], true));
                    }
                }
            }
            steps.push(transfers);
        }
        TierAlgo::Ring | TierAlgo::Rabenseifner => {
            for chip in 0..g.chips_per_rank {
                for bank in 0..g.banks_per_chip {
                    let nodes = rank_group(g, chip, bank);
                    let parent = owned[nodes[0].index()];
                    let (rs, _) = tier_reduce_scatter(rank_algo, ctx, &nodes, parent)?;
                    merge_steps(&mut steps, rs);
                }
            }
            let rs_len = steps.len();
            for chip in 0..g.chips_per_rank {
                for bank in 0..g.banks_per_chip {
                    let nodes = rank_group(g, chip, bank);
                    let parent = owned[nodes[0].index()];
                    let ag = tier_all_gather(rank_algo, ctx, &nodes, parent);
                    for (s, transfers) in ag.into_iter().enumerate() {
                        let idx = rs_len + s;
                        if steps.len() <= idx {
                            steps.resize_with(idx + 1, Vec::new);
                        }
                        steps[idx].extend(transfers);
                    }
                }
            }
        }
        TierAlgo::DoubleBinaryTree => {
            for chip in 0..g.chips_per_rank {
                for bank in 0..g.banks_per_chip {
                    let nodes = rank_group(g, chip, bank);
                    let parent = owned[nodes[0].index()];
                    merge_steps(&mut steps, dbtree_allreduce(ctx, &nodes, parent));
                }
            }
        }
    }
    Ok(Some(into_phase(PhaseLabel::InterRank, steps, true)))
}

fn build_allreduce(
    g: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
    chunks: usize,
) -> Result<CommSchedule, PimnetError> {
    let total = g.total_dpus() as usize;
    let mut phases = Vec::new();
    for chunk in Span::new(0, elems).split(chunks) {
        let mut owned = vec![chunk; total];
        let (up, bank_owned) = up_phases(g, comp, &mut owned)?;
        phases.extend(up);
        if let Some(mid) = rank_mid_phase(g, comp.rank, &owned)? {
            phases.push(mid);
        }
        phases.extend(down_phases(g, comp, &bank_owned, chunk));
    }
    phases.retain(|p| !p.steps.is_empty());
    let full = Span::new(0, elems);
    Ok(CommSchedule {
        kind: CollectiveKind::AllReduce,
        geometry: *g,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans: vec![vec![full]; total],
        phases,
    })
}

fn build_reduce_scatter(
    g: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
) -> Result<CommSchedule, PimnetError> {
    let total = g.total_dpus() as usize;
    let mut owned = vec![Span::new(0, elems); total];
    let (mut phases, _bank_owned) = up_phases(g, comp, &mut owned)?;

    let ranks = g.ranks_per_channel;
    if ranks > 1 {
        let ctx = TierCtx {
            g,
            wire: Wire::RankBus,
        };
        let mut steps: Vec<Vec<Transfer>> = Vec::new();
        for chip in 0..g.chips_per_rank {
            for bank in 0..g.banks_per_chip {
                let nodes = rank_group(g, chip, bank);
                let parent = owned[nodes[0].index()];
                let (rs, new_owned) = tier_reduce_scatter(comp.rank, ctx, &nodes, parent)?;
                merge_steps(&mut steps, rs);
                for (pos, n) in nodes.iter().enumerate() {
                    owned[n.index()] = new_owned[pos];
                }
            }
        }
        phases.push(into_phase(PhaseLabel::InterRank, steps, true));
    }

    phases.retain(|p| !p.steps.is_empty());
    let mut result_spans: Vec<Vec<Span>> = vec![Vec::new(); total];
    for (i, span) in owned.iter().enumerate() {
        if !span.is_empty() {
            result_spans[i].push(*span);
        }
    }
    Ok(CommSchedule {
        kind: CollectiveKind::ReduceScatter,
        geometry: *g,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans,
        phases,
    })
}

fn build_all_gather(
    g: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
) -> Result<CommSchedule, PimnetError> {
    let total = g.total_dpus() as usize;
    let buffer_len = total * elems;
    let piece = |id: DpuId| Span::new(id.index() * elems, elems);
    let mut sets: Vec<Vec<Span>> = g.dpus().map(|id| vec![piece(id)]).collect();
    let mut phases = Vec::new();

    // Rank tier first (pieces are still one per node), then chip, then
    // bank — the paper's AllGather order, with the tier algorithm free.
    if g.ranks_per_channel > 1 {
        let ctx = TierCtx {
            g,
            wire: Wire::RankBus,
        };
        let mut steps = Vec::new();
        for chip in 0..g.chips_per_rank {
            for bank in 0..g.banks_per_chip {
                let nodes = rank_group(g, chip, bank);
                let group_sets: Vec<Vec<Span>> =
                    nodes.iter().map(|n| sets[n.index()].clone()).collect();
                let (s, new_sets) = tier_all_gather_sets(comp.rank, ctx, &nodes, &group_sets)?;
                merge_steps(&mut steps, s);
                for (pos, n) in nodes.iter().enumerate() {
                    sets[n.index()] = new_sets[pos].clone();
                }
            }
        }
        phases.push(into_phase(PhaseLabel::InterRank, steps, true));
    }

    if g.chips_per_rank > 1 {
        let ctx = TierCtx {
            g,
            wire: Wire::ChipXbar,
        };
        let mut steps = Vec::new();
        for rank in 0..g.ranks_per_channel {
            for bank in 0..g.banks_per_chip {
                let nodes = chip_group(g, rank, bank);
                let group_sets: Vec<Vec<Span>> =
                    nodes.iter().map(|n| sets[n.index()].clone()).collect();
                let (s, new_sets) = tier_all_gather_sets(comp.chip, ctx, &nodes, &group_sets)?;
                merge_steps(&mut steps, s);
                for (pos, n) in nodes.iter().enumerate() {
                    sets[n.index()] = new_sets[pos].clone();
                }
            }
        }
        phases.push(into_phase(PhaseLabel::InterChip, steps, true));
    }

    if g.banks_per_chip > 1 {
        let ctx = TierCtx {
            g,
            wire: Wire::BankRing,
        };
        let mut steps = Vec::new();
        for rank in 0..g.ranks_per_channel {
            for chip in 0..g.chips_per_rank {
                let nodes = bank_group(g, rank, chip);
                let group_sets: Vec<Vec<Span>> =
                    nodes.iter().map(|n| sets[n.index()].clone()).collect();
                let (s, new_sets) = tier_all_gather_sets(comp.bank, ctx, &nodes, &group_sets)?;
                merge_steps(&mut steps, s);
                for (pos, n) in nodes.iter().enumerate() {
                    sets[n.index()] = new_sets[pos].clone();
                }
            }
        }
        phases.push(into_phase(
            PhaseLabel::InterBank,
            steps,
            bank_multiplexed(comp.bank),
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    let full = Span::new(0, buffer_len);
    Ok(CommSchedule {
        kind: CollectiveKind::AllGather,
        geometry: *g,
        elems_per_node: elems,
        elem_bytes,
        buffer_len,
        result_spans: vec![vec![full]; total],
        phases,
    })
}

fn build_broadcast(
    g: &PimGeometry,
    elems: usize,
    elem_bytes: u32,
    comp: Composition,
) -> Result<CommSchedule, PimnetError> {
    let root = DpuId(0);
    let root_coord = g.coord(root);
    let total = g.total_dpus() as usize;
    let chips = g.chips_per_rank;
    let chunks = Span::new(0, elems).split(chips as usize);
    let mut phases = Vec::new();
    let chip_ctx = TierCtx {
        g,
        wire: Wire::ChipXbar,
    };
    let bus_ctx = TierCtx {
        g,
        wire: Wire::RankBus,
    };
    let bank_ctx = TierCtx {
        g,
        wire: Wire::BankRing,
    };

    // ---- Phase 1 (fixed): root scatters one chunk per chip leader of
    // its rank, exactly as in the paper's Table V broadcast.
    if chips > 1 {
        let mut transfers = Vec::new();
        for c in 0..chips {
            if c != root_coord.chip {
                let dst = at(g, root_coord.rank, c, 0);
                transfers.extend(chip_ctx.sends(root, &[dst], chunks[c as usize], false));
            }
        }
        phases.push(into_phase(PhaseLabel::InterChip, vec![transfers], true));
    }

    // ---- Phase 2: each chip leader delivers its chunk to its rank
    // twins (holder-first group order so ring pipelining starts at the
    // leader that owns the chunk).
    if g.ranks_per_channel > 1 {
        let mut steps = Vec::new();
        for c in 0..chips {
            let nodes: Vec<DpuId> = (0..g.ranks_per_channel)
                .map(|dr| at(g, (root_coord.rank + dr) % g.ranks_per_channel, c, 0))
                .collect();
            merge_steps(
                &mut steps,
                fan_out(comp.rank, bus_ctx, &nodes, chunks[c as usize]),
            );
        }
        phases.push(into_phase(PhaseLabel::InterRank, steps, true));
    }

    // ---- Phase 3: chip-tier allgather completes every leader's copy.
    if chips > 1 {
        let mut steps = Vec::new();
        for rank in 0..g.ranks_per_channel {
            let nodes = chip_group(g, rank, 0);
            let group_sets: Vec<Vec<Span>> = (0..chips as usize).map(|c| vec![chunks[c]]).collect();
            let (s, _) = tier_all_gather_sets(comp.chip, chip_ctx, &nodes, &group_sets)?;
            merge_steps(&mut steps, s);
        }
        phases.push(into_phase(PhaseLabel::InterChip, steps, true));
    }

    // ---- Phase 4: leaders fan the full message around their bank ring.
    if g.banks_per_chip > 1 {
        let mut steps = Vec::new();
        for rank in 0..g.ranks_per_channel {
            for chip in 0..chips {
                let nodes = bank_group(g, rank, chip);
                merge_steps(
                    &mut steps,
                    fan_out(comp.bank, bank_ctx, &nodes, Span::new(0, elems)),
                );
            }
        }
        phases.push(into_phase(
            PhaseLabel::InterBank,
            steps,
            bank_multiplexed(comp.bank),
        ));
    }

    phases.retain(|p| !p.steps.is_empty());
    Ok(CommSchedule {
        kind: CollectiveKind::Broadcast,
        geometry: *g,
        elems_per_node: elems,
        elem_bytes,
        buffer_len: elems,
        result_spans: vec![vec![Span::new(0, elems)]; total],
        phases,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_collective, ReduceOp};
    use crate::schedule::validate::validate;

    #[test]
    fn spec_round_trips() {
        for spec in ["ring_ring_ring", "direct_dbtree_rabenseifner"] {
            let c = Composition::parse(spec).unwrap();
            assert_eq!(c.spec(), spec);
            assert_eq!(c.to_string(), spec);
        }
        assert!(Composition::parse("ring_ring").is_err());
        assert!(Composition::parse("ring_ring_warp").is_err());
    }

    #[test]
    fn applicability_matrix() {
        let dbt = Composition::parse("dbtree_ring_ring").unwrap();
        assert!(dbt.applies_to(CollectiveKind::AllReduce));
        assert!(!dbt.applies_to(CollectiveKind::ReduceScatter));
        assert!(!dbt.applies_to(CollectiveKind::AllGather));
        let direct = Composition::parse("direct_direct_direct").unwrap();
        assert!(direct.applies_to(CollectiveKind::AllToAll));
        assert!(!Composition::RING.applies_to(CollectiveKind::AllToAll));
        assert!(!Composition::RING.applies_to(CollectiveKind::Reduce));
    }

    #[test]
    fn composed_allreduce_is_functionally_correct() {
        let g = PimGeometry::paper_scaled(64);
        let elems = 96usize;
        for spec in [
            "ring_ring_ring",
            "direct_direct_direct",
            "dbtree_dbtree_dbtree",
            "rabenseifner_rabenseifner_rabenseifner",
            "ring_direct_dbtree",
        ] {
            let comp = Composition::parse(spec).unwrap();
            let s = build_composed(CollectiveKind::AllReduce, &g, elems, 4, comp).unwrap();
            validate(&s).unwrap_or_else(|e| panic!("{spec}: {e}"));
            let m = run_collective(&s, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; elems])
                .unwrap_or_else(|e| panic!("{spec}: {e}"));
            let expected: u64 = (1..=64).sum();
            for id in s.participants() {
                assert!(
                    m.result(&s, id).iter().all(|&x| x == expected),
                    "{spec} node {id}"
                );
            }
        }
    }

    #[test]
    fn composed_reduce_scatter_partitions_the_vector() {
        let g = PimGeometry::paper_scaled(64);
        let elems = 67usize;
        for spec in ["direct_direct_direct", "rabenseifner_ring_direct"] {
            let comp = Composition::parse(spec).unwrap();
            let s = build_composed(CollectiveKind::ReduceScatter, &g, elems, 4, comp).unwrap();
            validate(&s).unwrap();
            let mut spans: Vec<Span> = s.result_spans.iter().flatten().copied().collect();
            spans.sort_by_key(|sp| sp.start);
            let mut cursor = 0;
            for sp in &spans {
                assert_eq!(sp.start, cursor, "{spec}: gap or overlap at {cursor}");
                cursor = sp.end();
            }
            assert_eq!(cursor, elems, "{spec}");
        }
    }

    #[test]
    fn chunked_allreduce_matches_unchunked_results() {
        let g = PimGeometry::paper_scaled(16);
        let elems = 50usize;
        let comp = Composition::RING;
        let s2 = build_composed_chunked(CollectiveKind::AllReduce, &g, elems, 4, comp, 2).unwrap();
        validate(&s2).unwrap();
        let m = run_collective(&s2, ReduceOp::Sum, |id| vec![u64::from(id.0) + 1; elems]).unwrap();
        let expected: u64 = (1..=16).sum();
        for id in s2.participants() {
            assert!(m.result(&s2, id).iter().all(|&x| x == expected));
        }
        assert!(
            build_composed_chunked(CollectiveKind::AllGather, &g, elems, 4, comp, 2).is_err(),
            "chunking is AllReduce-only"
        );
    }

    #[test]
    fn rabenseifner_rejects_non_power_of_two_groups() {
        let g = PimGeometry::new(3, 2, 1, 1);
        let comp = Composition::parse("rabenseifner_ring_ring").unwrap();
        assert!(build_composed(CollectiveKind::AllReduce, &g, 64, 4, comp).is_err());
    }
}
