//! Static communication schedules — PIMnet's replacement for routing,
//! buffering and arbitration.
//!
//! A [`CommSchedule`] is the compiled form of one collective operation:
//! an ordered list of [`Phase`]s (one per network tier the collective
//! touches), each a list of [`CommStep`]s, each a set of [`Transfer`]s that
//! run concurrently. Because the traffic pattern of a collective is known
//! before the PIM kernel launches (paper §IV), the schedule is computed
//! offline — on the host, at "compile" time — and the hardware merely plays
//! it back: this is what lets the PIMnet stop omit input buffers,
//! arbitration, and routing logic entirely.
//!
//! Builders for each collective live in the submodules and follow the
//! paper's Table V tier algorithms:
//!
//! | collective     | inter-bank | inter-chip   | inter-rank |
//! |----------------|-----------|---------------|------------|
//! | ReduceScatter  | ring      | ring          | broadcast  |
//! | AllGather      | ring      | ring          | broadcast  |
//! | AllReduce      | ring      | ring          | broadcast  |
//! | All-to-All     | ring      | permutation   | unicast    |
//! | Broadcast      | ring      | ring          | broadcast  |
//!
//! Schedules are *functional* objects as well as timing objects: every
//! transfer names the element ranges it moves, so [`crate::exec`] can run a
//! schedule on real data and tests can assert collective semantics
//! end-to-end.

mod address;
pub mod algos;
mod allgather;
mod allreduce;
mod alltoall;
pub mod autotune;
pub mod boost;
mod broadcast;
pub mod cache;
pub mod halving;
pub mod repair;
mod ring;
pub mod soa;
pub mod validate;

pub use address::{AllReduceAddressPlan, BankAddressInfo, PhaseAddr, TierTimes};
pub use algos::{build_composed, build_composed_chunked, Composition, TierAlgo};
pub use allreduce::AllReduceOptions;
pub use boost::{BoostPlan, StepFacts};
pub use ring::{ring_all_gather, ring_reduce_scatter};
pub use soa::{FlatSchedule, ScheduleHeader, ScheduleView, StepRef, TransferRef};

use std::fmt;

use pim_sim::Bytes;

use pim_arch::geometry::{DpuId, PimGeometry};

use crate::collective::CollectiveKind;
use crate::error::PimnetError;
use crate::topology::Resource;

/// A contiguous range of elements within a node's communication buffer.
///
/// (A `Copy` stand-in for `Range<usize>`, which is not `Copy`.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// First element index.
    pub start: usize,
    /// Number of elements.
    pub len: usize,
}

impl Span {
    /// Creates a span.
    #[must_use]
    pub const fn new(start: usize, len: usize) -> Self {
        Span { start, len }
    }

    /// One-past-the-end element index.
    #[must_use]
    pub const fn end(self) -> usize {
        self.start + self.len
    }

    /// True iff the span covers no elements.
    #[must_use]
    pub const fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The span as a `std::ops::Range` for indexing.
    #[must_use]
    pub fn range(self) -> std::ops::Range<usize> {
        self.start..self.end()
    }

    /// The span shifted right by `offset` elements.
    #[must_use]
    pub fn offset(self, offset: usize) -> Span {
        Span::new(self.start + offset, self.len)
    }

    /// Splits the span into `k` contiguous, near-equal pieces (earlier
    /// pieces get the remainder; pieces may be empty when `k > len`).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    #[must_use]
    pub fn split(self, k: usize) -> Vec<Span> {
        assert!(k > 0, "Span::split: zero pieces");
        let base = self.len / k;
        let extra = self.len % k;
        let mut out = Vec::with_capacity(k);
        let mut start = self.start;
        for i in 0..k {
            let len = base + usize::from(i < extra);
            out.push(Span::new(start, len));
            start += len;
        }
        out
    }

    /// Splits the span into `k` pieces by *recursive halving* (`k` must
    /// be a power of two): the span is cut with [`Span::split`]`(2)`,
    /// then each half recursively, left before right.
    ///
    /// For lengths that are not a multiple of `k` this is **not** the
    /// same partition as [`Span::split`]: flat splitting gives all the
    /// remainder to the earliest pieces, while recursive halving pushes
    /// remainders down level by level (e.g. `len = 11, k = 8` flat-splits
    /// as `2,2,2,1,1,1,1,1` but halves as `2,1,2,1,2,1,1,1`). Halving /
    /// doubling exchanges (Rabenseifner) carve the payload recursively,
    /// so their builders must use this partition — mixing it with a
    /// flat chunk table silently corrupts ownership.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not a power of two.
    #[must_use]
    pub fn split_pow2(self, k: usize) -> Vec<Span> {
        assert!(
            k.is_power_of_two(),
            "Span::split_pow2: {k} pieces is not a power of two"
        );
        if k == 1 {
            return vec![self];
        }
        let halves = self.split(2);
        let mut out = halves[0].split_pow2(k / 2);
        out.extend(halves[1].split_pow2(k / 2));
        out
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

/// One scheduled data movement: `src` sends `src_span` of its buffer to
/// every node in `dsts` (more than one destination = a bus broadcast),
/// landing at `dst_span`, optionally combined (reduced) with the
/// destination's existing data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Transfer {
    /// Sending DPU.
    pub src: DpuId,
    /// Receiving DPU(s); more than one only on the broadcast-capable
    /// inter-rank bus.
    pub dsts: Vec<DpuId>,
    /// Element range read at the source.
    pub src_span: Span,
    /// Element range written at every destination.
    pub dst_span: Span,
    /// `true`: destination reduces the payload into `dst_span`;
    /// `false`: destination overwrites `dst_span`.
    pub combine: bool,
    /// Every fabric resource this transfer occupies for its duration
    /// (bufferless stops mean multi-hop transfers hold their whole path).
    pub resources: Vec<Resource>,
}

impl Transfer {
    /// Wire bytes moved by this transfer (per destination; the bus delivers
    /// broadcasts in a single serialization).
    #[must_use]
    pub fn bytes(&self, elem_bytes: u32) -> Bytes {
        Bytes::new(self.src_span.len as u64 * u64::from(elem_bytes))
    }

    /// True for purely local movements (no fabric resources), e.g. the
    /// "own chunk" copy of an All-to-All.
    #[must_use]
    pub fn is_local(&self) -> bool {
        self.resources.is_empty()
    }
}

/// A set of transfers that run concurrently; the step completes when the
/// slowest finishes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommStep {
    /// The concurrent transfers.
    pub transfers: Vec<Transfer>,
}

impl CommStep {
    /// Creates a step, dropping empty (zero-length) transfers.
    #[must_use]
    pub fn new(transfers: Vec<Transfer>) -> Self {
        CommStep {
            transfers: transfers
                .into_iter()
                .filter(|t| !t.src_span.is_empty())
                .collect(),
        }
    }

    /// True iff the step moves no data.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transfers.is_empty()
    }
}

/// Which tier (and so which bucket of the paper's Fig 11 breakdown) a phase
/// belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PhaseLabel {
    /// Local (in-WRAM) data movement; free in the network model.
    Local,
    /// Inter-bank ring traffic.
    InterBank,
    /// Inter-chip crossbar traffic.
    InterChip,
    /// Inter-rank bus traffic.
    InterRank,
}

impl PhaseLabel {
    /// Stable tier index for per-tier metrics arrays
    /// (`pim_sim::metrics::TIERS` slots, matching `metrics::tier_name`).
    #[must_use]
    pub const fn tier_index(self) -> usize {
        match self {
            PhaseLabel::Local => 0,
            PhaseLabel::InterBank => 1,
            PhaseLabel::InterChip => 2,
            PhaseLabel::InterRank => 3,
        }
    }
}

impl fmt::Display for PhaseLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PhaseLabel::Local => "local",
            PhaseLabel::InterBank => "inter-bank",
            PhaseLabel::InterChip => "inter-chip",
            PhaseLabel::InterRank => "inter-rank",
        };
        f.write_str(s)
    }
}

/// A run of steps on one tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Tier attribution for timing breakdowns.
    pub label: PhaseLabel,
    /// The steps, executed in order.
    pub steps: Vec<CommStep>,
    /// `true` when the schedule deliberately time-multiplexes shared
    /// resources within a step (the paper's WAIT-phase slot scheduling on
    /// the DQ channels and the bus); `false` when every resource in a step
    /// carries a single flow (the validator enforces this for ring phases).
    pub multiplexed: bool,
}

impl Phase {
    /// Creates a phase, dropping empty steps.
    #[must_use]
    pub fn new(label: PhaseLabel, steps: Vec<CommStep>, multiplexed: bool) -> Self {
        Phase {
            label,
            steps: steps.into_iter().filter(|s| !s.is_empty()).collect(),
            multiplexed,
        }
    }
}

/// A compiled collective: the complete, statically-scheduled communication
/// plan for one collective operation on one geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommSchedule {
    /// The collective this schedule implements.
    pub kind: CollectiveKind,
    /// The geometry it was compiled for.
    pub geometry: PimGeometry,
    /// Elements contributed per node.
    pub elems_per_node: usize,
    /// Element width in bytes.
    pub elem_bytes: u32,
    /// Per-node communication buffer length in elements (layout depends on
    /// the collective: `n` for AllReduce/ReduceScatter/Broadcast, `2n` for
    /// All-to-All (in + out regions), `N·n` for AllGather/Gather).
    pub buffer_len: usize,
    /// Where each node's *result* lives in its buffer after execution.
    pub result_spans: Vec<Vec<Span>>,
    /// The phases, executed in order.
    pub phases: Vec<Phase>,
}

impl CommSchedule {
    /// Compiles a collective for a geometry.
    ///
    /// This is the library's analogue of the paper's host-side "compilation"
    /// step (§V-D): given the pattern, the node count and the topology, it
    /// produces every address and every scheduled movement.
    ///
    /// # Errors
    ///
    /// * [`PimnetError::InvalidGeometry`] — the geometry spans multiple
    ///   memory channels (PIMnet connects one channel; callers split
    ///   multi-channel collectives per channel and reduce through the host),
    ///   or All-to-All is requested on non-power-of-two dimensions.
    /// * [`PimnetError::InvalidMessage`] — zero-sized elements.
    pub fn build(
        kind: CollectiveKind,
        geometry: &PimGeometry,
        elems_per_node: usize,
        elem_bytes: u32,
    ) -> Result<CommSchedule, PimnetError> {
        if geometry.channels != 1 {
            return Err(PimnetError::InvalidGeometry {
                geometry: *geometry,
                reason: "PIMnet schedules span a single memory channel; \
                         build one schedule per channel"
                    .into(),
            });
        }
        if elem_bytes == 0 {
            return Err(PimnetError::InvalidMessage {
                reason: "zero element size".into(),
            });
        }
        let schedule = match kind {
            CollectiveKind::AllReduce => {
                allreduce::build(
                    geometry,
                    elems_per_node,
                    elem_bytes,
                    /*scatter=*/ false,
                )
            }
            CollectiveKind::ReduceScatter => {
                allreduce::build(geometry, elems_per_node, elem_bytes, /*scatter=*/ true)
            }
            CollectiveKind::AllGather => allgather::build(geometry, elems_per_node, elem_bytes),
            CollectiveKind::AllToAll => alltoall::build(geometry, elems_per_node, elem_bytes)?,
            CollectiveKind::Broadcast => {
                broadcast::build_broadcast(geometry, elems_per_node, elem_bytes)
            }
            CollectiveKind::Reduce => broadcast::build_reduce(geometry, elems_per_node, elem_bytes),
            CollectiveKind::Gather => broadcast::build_gather(geometry, elems_per_node, elem_bytes),
        };
        Ok(schedule)
    }

    /// Compiles an AllReduce with explicit design choices (ablations of
    /// the bidirectional bank ring and the broadcast-based inter-rank
    /// reduction; see [`AllReduceOptions`]).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CommSchedule::build`].
    pub fn build_allreduce_with(
        geometry: &PimGeometry,
        elems_per_node: usize,
        elem_bytes: u32,
        opts: AllReduceOptions,
    ) -> Result<CommSchedule, PimnetError> {
        if geometry.channels != 1 {
            return Err(PimnetError::InvalidGeometry {
                geometry: *geometry,
                reason: "PIMnet schedules span a single memory channel".into(),
            });
        }
        if elem_bytes == 0 {
            return Err(PimnetError::InvalidMessage {
                reason: "zero element size".into(),
            });
        }
        Ok(allreduce::build_with(
            geometry,
            elems_per_node,
            elem_bytes,
            false,
            opts,
        ))
    }

    /// Total bytes serialized onto fabric resources (bus broadcasts counted
    /// once, as the hardware sends them).
    #[must_use]
    pub fn total_wire_bytes(&self) -> Bytes {
        self.phases
            .iter()
            .flat_map(|p| &p.steps)
            .flat_map(|s| &s.transfers)
            .filter(|t| !t.is_local())
            .map(|t| t.bytes(self.elem_bytes))
            .sum()
    }

    /// Number of non-local transfers across all steps.
    #[must_use]
    pub fn transfer_count(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| &p.steps)
            .map(|s| s.transfers.iter().filter(|t| !t.is_local()).count())
            .sum()
    }

    /// Number of steps across all phases.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.phases.iter().map(|p| p.steps.len()).sum()
    }

    /// All participating DPUs (every DPU of the single channel).
    pub fn participants(&self) -> impl Iterator<Item = DpuId> {
        self.geometry.dpus()
    }
}

/// Splits `n` elements into `k` near-equal contiguous spans starting at 0.
#[must_use]
pub fn split_elems(n: usize, k: usize) -> Vec<Span> {
    Span::new(0, n).split(k)
}

/// Resources for one hop of a logical inter-chip ring (an adjacency the
/// buffer-chip crossbar is configured into): the source chip's DQ send
/// channel and the destination chip's DQ receive channel.
pub(crate) fn chip_ring_path(geometry: &PimGeometry, src: DpuId, dst: DpuId) -> Vec<Resource> {
    crate::topology::chip_path(geometry, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_split_covers_exactly() {
        let s = Span::new(10, 23);
        let parts = s.split(4);
        assert_eq!(parts.len(), 4);
        assert_eq!(parts[0], Span::new(10, 6));
        assert_eq!(parts[1], Span::new(16, 6));
        assert_eq!(parts[2], Span::new(22, 6));
        assert_eq!(parts[3], Span::new(28, 5));
        assert_eq!(parts.iter().map(|p| p.len).sum::<usize>(), 23);
        assert_eq!(parts.last().unwrap().end(), s.end());
    }

    #[test]
    fn span_split_smaller_than_k_yields_empties() {
        let parts = Span::new(0, 2).split(4);
        assert_eq!(parts.iter().filter(|p| p.is_empty()).count(), 2);
        assert_eq!(parts.iter().map(|p| p.len).sum::<usize>(), 2);
    }

    #[test]
    fn split_elems_handles_fewer_elems_than_parts() {
        // The n < k edge (fewer elements than participants) that repaired
        // and shrunk schedules hit with tiny payloads: every part exists,
        // the non-empty ones are contiguous from 0, and nothing panics.
        for (n, k) in [(0usize, 5usize), (1, 8), (3, 8), (7, 8), (8, 8)] {
            let parts = split_elems(n, k);
            assert_eq!(parts.len(), k, "n={n} k={k}");
            assert_eq!(parts.iter().map(|p| p.len).sum::<usize>(), n);
            let mut cursor = 0;
            for p in &parts {
                assert_eq!(p.start, cursor, "n={n} k={k}: gap before {p}");
                cursor = p.end();
            }
            if n < k {
                // Earlier parts absorb the remainder one element each; the
                // tail is empty rather than out of bounds.
                assert!(parts.iter().take(n).all(|p| p.len == 1));
                assert!(parts.iter().skip(n).all(|p| p.is_empty()));
            }
        }
    }

    #[test]
    fn split_pow2_covers_exactly_and_diverges_from_flat_split() {
        // The latent Rabenseifner trap: for non-power-of-two lengths the
        // flat and recursive partitions are different covers. Both must
        // tile the span; only the shapes differ.
        let s = Span::new(0, 11);
        let flat: Vec<usize> = s.split(8).iter().map(|p| p.len).collect();
        let rec: Vec<usize> = s.split_pow2(8).iter().map(|p| p.len).collect();
        assert_eq!(flat, vec![2, 2, 2, 1, 1, 1, 1, 1]);
        assert_eq!(rec, vec![2, 1, 2, 1, 2, 1, 1, 1]);
        for n in [0usize, 1, 3, 7, 11, 64, 193, 1030] {
            for k in [1usize, 2, 4, 8, 16] {
                let parts = Span::new(5, n).split_pow2(k);
                assert_eq!(parts.len(), k, "n={n} k={k}");
                let mut cursor = 5;
                for p in &parts {
                    assert_eq!(p.start, cursor, "n={n} k={k}");
                    cursor = p.end();
                }
                assert_eq!(cursor, 5 + n, "n={n} k={k}");
            }
        }
        // Power-of-two-multiple lengths agree with the flat split.
        assert_eq!(Span::new(0, 64).split_pow2(8), Span::new(0, 64).split(8));
    }

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn split_pow2_rejects_non_power_of_two_k() {
        let _ = Span::new(0, 8).split_pow2(3);
    }

    #[test]
    fn span_helpers() {
        let s = Span::new(4, 4);
        assert_eq!(s.end(), 8);
        assert_eq!(s.range(), 4..8);
        assert_eq!(s.offset(10), Span::new(14, 4));
        assert_eq!(s.to_string(), "[4..8)");
        assert!(!s.is_empty());
        assert!(Span::new(9, 0).is_empty());
    }

    #[test]
    fn comm_step_drops_empty_transfers() {
        let t = Transfer {
            src: DpuId(0),
            dsts: vec![DpuId(1)],
            src_span: Span::new(0, 0),
            dst_span: Span::new(0, 0),
            combine: false,
            resources: vec![],
        };
        let step = CommStep::new(vec![t]);
        assert!(step.is_empty());
    }

    #[test]
    fn build_rejects_multichannel_geometry() {
        let g = PimGeometry::new(8, 8, 4, 2);
        let err = CommSchedule::build(CollectiveKind::AllReduce, &g, 64, 4).unwrap_err();
        assert!(matches!(err, PimnetError::InvalidGeometry { .. }));
    }

    #[test]
    fn build_rejects_zero_elem_bytes() {
        let g = PimGeometry::paper();
        let err = CommSchedule::build(CollectiveKind::AllReduce, &g, 64, 0).unwrap_err();
        assert!(matches!(err, PimnetError::InvalidMessage { .. }));
    }

    #[test]
    fn transfer_bytes_scale_with_elem_width() {
        let t = Transfer {
            src: DpuId(0),
            dsts: vec![DpuId(1)],
            src_span: Span::new(0, 10),
            dst_span: Span::new(0, 10),
            combine: true,
            resources: vec![],
        };
        assert_eq!(t.bytes(4), Bytes::new(40));
        assert_eq!(t.bytes(8), Bytes::new(80));
        assert!(t.is_local());
    }
}
