//! Collective communication vocabulary: kinds, reduction operators, specs.

use std::fmt;

use pim_sim::{Bytes, SimTime};

/// The collective communication patterns PIMnet implements (paper Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CollectiveKind {
    /// Every node contributes a vector; each node ends with a distinct,
    /// fully-reduced 1/N piece.
    ReduceScatter,
    /// Every node contributes a piece; each node ends with the concatenation
    /// of all pieces.
    AllGather,
    /// Every node contributes a vector; every node ends with the elementwise
    /// reduction (ReduceScatter ∘ AllGather).
    AllReduce,
    /// Every pair of nodes exchanges a distinct chunk (matrix transpose of
    /// the data distribution).
    AllToAll,
    /// One root's vector is replicated to every node.
    Broadcast,
    /// Every node's vector is reduced into a single root node.
    Reduce,
    /// Every node's piece is concatenated at a single root node.
    Gather,
}

impl CollectiveKind {
    /// All kinds, in a stable order (useful for exhaustive tests/benches).
    pub const ALL: [CollectiveKind; 7] = [
        CollectiveKind::ReduceScatter,
        CollectiveKind::AllGather,
        CollectiveKind::AllReduce,
        CollectiveKind::AllToAll,
        CollectiveKind::Broadcast,
        CollectiveKind::Reduce,
        CollectiveKind::Gather,
    ];

    /// Whether the collective performs a reduction (needs compute at the
    /// receiving PIM bank — the "collective operation" row of Table I).
    #[must_use]
    pub fn reduces(self) -> bool {
        matches!(
            self,
            CollectiveKind::ReduceScatter | CollectiveKind::AllReduce | CollectiveKind::Reduce
        )
    }

    /// The short form used in the paper's workload table (Table VII).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            CollectiveKind::ReduceScatter => "RS",
            CollectiveKind::AllGather => "AG",
            CollectiveKind::AllReduce => "AR",
            CollectiveKind::AllToAll => "A2A",
            CollectiveKind::Broadcast => "BC",
            CollectiveKind::Reduce => "RD",
            CollectiveKind::Gather => "GA",
        }
    }
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CollectiveKind::ReduceScatter => "ReduceScatter",
            CollectiveKind::AllGather => "AllGather",
            CollectiveKind::AllReduce => "AllReduce",
            CollectiveKind::AllToAll => "All-to-All",
            CollectiveKind::Broadcast => "Broadcast",
            CollectiveKind::Reduce => "Reduce",
            CollectiveKind::Gather => "Gather",
        };
        f.write_str(s)
    }
}

/// A fully-specified collective operation, ready to be scheduled and timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CollectiveSpec {
    /// Which collective.
    pub kind: CollectiveKind,
    /// Payload contributed per DPU. For AllReduce this is the vector length;
    /// for All-to-All the total of all chunks a node sends.
    pub bytes_per_dpu: Bytes,
    /// Element width in bytes (4 for the paper's 32-bit workloads).
    pub elem_bytes: u32,
    /// Compute skew between the earliest- and latest-finishing DPU entering
    /// the collective (feeds the READY/START barrier; Fig 13).
    pub skew: SimTime,
}

impl CollectiveSpec {
    /// Creates a spec with 4-byte elements and zero skew.
    #[must_use]
    pub fn new(kind: CollectiveKind, bytes_per_dpu: Bytes) -> Self {
        CollectiveSpec {
            kind,
            bytes_per_dpu,
            elem_bytes: 4,
            skew: SimTime::ZERO,
        }
    }

    /// Sets the element width.
    #[must_use]
    pub fn with_elem_bytes(mut self, elem_bytes: u32) -> Self {
        self.elem_bytes = elem_bytes;
        self
    }

    /// Sets the compute skew.
    #[must_use]
    pub fn with_skew(mut self, skew: SimTime) -> Self {
        self.skew = skew;
        self
    }

    /// Number of elements each DPU contributes (rounded up to cover
    /// `bytes_per_dpu`).
    #[must_use]
    pub fn elems_per_dpu(&self) -> usize {
        (self
            .bytes_per_dpu
            .as_u64()
            .div_ceil(u64::from(self.elem_bytes))) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_kinds() {
        assert!(CollectiveKind::AllReduce.reduces());
        assert!(CollectiveKind::ReduceScatter.reduces());
        assert!(CollectiveKind::Reduce.reduces());
        assert!(!CollectiveKind::AllGather.reduces());
        assert!(!CollectiveKind::AllToAll.reduces());
        assert!(!CollectiveKind::Broadcast.reduces());
        assert!(!CollectiveKind::Gather.reduces());
    }

    #[test]
    fn abbrevs_match_table_vii() {
        assert_eq!(CollectiveKind::ReduceScatter.abbrev(), "RS");
        assert_eq!(CollectiveKind::AllReduce.abbrev(), "AR");
        assert_eq!(CollectiveKind::AllToAll.abbrev(), "A2A");
    }

    #[test]
    fn spec_elem_count_rounds_up() {
        let s = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::new(10));
        assert_eq!(s.elems_per_dpu(), 3); // ceil(10/4)
        let s = s.with_elem_bytes(8);
        assert_eq!(s.elems_per_dpu(), 2);
    }

    #[test]
    fn all_lists_every_kind_once() {
        let mut kinds = CollectiveKind::ALL.to_vec();
        kinds.dedup();
        assert_eq!(kinds.len(), 7);
    }
}
