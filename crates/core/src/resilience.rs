//! Graceful degradation around hard-dead DPUs.
//!
//! PIMnet's schedules are compiled for a fixed geometry, so a dead bank is
//! not a runtime hiccup — it invalidates the plan. This module rebuilds
//! the plan instead of panicking, in three tiers:
//!
//! 1. **Full** — no participant is dead; the original schedule stands and
//!    the fault-free path pays nothing.
//! 2. **Shrunk** — the collective is re-planned on the largest
//!    power-of-two subset of alive DPUs (PIMnet's ring/exchange builders
//!    need power-of-two dimensions), with a logical→physical map so the
//!    caller can place data on the surviving banks. Alive DPUs beyond the
//!    power-of-two cut are *sacrificed* (they sit the collective out) and
//!    reported alongside the dead ones.
//! 3. **Host fallback** — when no PIMnet geometry survives (every DPU
//!    dead but one, or the shrunk build itself fails), the collective is
//!    handed to the host-staged baseline backend, which needs no
//!    inter-DPU network at all.
//!
//! Whatever happens, the caller gets a typed error trail — one
//! [`PimnetError::DeadDpu`] per excluded node plus any build failure —
//! instead of a panic, so a long-running experiment can log the
//! degradation and keep going.

use pim_arch::geometry::PimGeometry;
use pim_arch::SystemConfig;
use pim_faults::FaultInjector;
use pim_sim::Bytes;

use crate::backends::{BaselineHostBackend, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::schedule::CommSchedule;
use crate::timing::CommBreakdown;

/// How a collective survived its dead DPUs.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradedPlan {
    /// No participant is dead; the original schedule stands.
    Full(CommSchedule),
    /// Re-planned on the largest power-of-two alive subset.
    Shrunk {
        /// The degraded schedule (over logical DPU ids `0..n`).
        schedule: CommSchedule,
        /// Logical id → physical alive DPU id.
        logical_to_physical: Vec<u32>,
        /// Physical DPUs excluded from the collective: the dead ones plus
        /// any alive nodes sacrificed to reach a power-of-two count.
        excluded: Vec<u32>,
        /// One typed error per dead participant.
        error_trail: Vec<PimnetError>,
    },
    /// No viable PIMnet geometry; the host-staged baseline carries it.
    HostFallback {
        /// Timing of the collective through the baseline backend.
        breakdown: CommBreakdown,
        /// Physical DPUs excluded from PIM-side participation.
        excluded: Vec<u32>,
        /// Dead-DPU trail plus the error that forced the fallback.
        error_trail: Vec<PimnetError>,
    },
}

impl DegradedPlan {
    /// The surviving schedule, if the plan still runs on PIMnet.
    #[must_use]
    pub fn schedule(&self) -> Option<&CommSchedule> {
        match self {
            DegradedPlan::Full(s) | DegradedPlan::Shrunk { schedule: s, .. } => Some(s),
            DegradedPlan::HostFallback { .. } => None,
        }
    }

    /// The accumulated error trail (empty for [`DegradedPlan::Full`]).
    #[must_use]
    pub fn error_trail(&self) -> &[PimnetError] {
        match self {
            DegradedPlan::Full(_) => &[],
            DegradedPlan::Shrunk { error_trail, .. }
            | DegradedPlan::HostFallback { error_trail, .. } => error_trail,
        }
    }
}

/// Plans `kind` over `geometry` under the injector's dead-DPU set.
///
/// `system` parameterizes the host-fallback timing; it should describe the
/// same machine as `geometry`.
///
/// # Errors
///
/// * Propagates schedule-build errors when *no* DPU is dead (nothing to
///   degrade around — the request itself is wrong);
/// * [`PimnetError::InvalidGeometry`] when every DPU is dead, so not even
///   the host fallback has a data source.
pub fn plan_degraded(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    injector: &FaultInjector,
    system: &SystemConfig,
) -> Result<DegradedPlan, PimnetError> {
    let n = geometry.total_dpus();
    let dead: Vec<u32> = (0..n).filter(|&d| injector.is_dead(d)).collect();
    if dead.is_empty() {
        return Ok(DegradedPlan::Full(CommSchedule::build(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
        )?));
    }
    let mut error_trail: Vec<PimnetError> = dead
        .iter()
        .map(|&dpu| PimnetError::DeadDpu { dpu })
        .collect();
    let alive: Vec<u32> = (0..n).filter(|&d| !injector.is_dead(d)).collect();
    if alive.is_empty() {
        return Err(PimnetError::InvalidGeometry {
            geometry: *geometry,
            reason: format!("all {n} DPUs are dead"),
        });
    }
    // PIMnet's builders need power-of-two dimensions; keep the largest
    // power-of-two prefix of the alive set (capped at the scaling model's
    // 256-DPU ceiling) and sacrifice the rest.
    let shrunk_n = prev_power_of_two(alive.len() as u32).min(256);
    if shrunk_n >= 2 {
        let shrunk_geometry = PimGeometry::paper_scaled(shrunk_n);
        match CommSchedule::build(kind, &shrunk_geometry, elems_per_node, elem_bytes) {
            Ok(schedule) => {
                let logical_to_physical: Vec<u32> =
                    alive[..shrunk_n as usize].to_vec();
                let mut excluded = dead;
                excluded.extend_from_slice(&alive[shrunk_n as usize..]);
                excluded.sort_unstable();
                return Ok(DegradedPlan::Shrunk {
                    schedule,
                    logical_to_physical,
                    excluded,
                    error_trail,
                });
            }
            Err(e) => error_trail.push(e),
        }
    }
    // Host fallback: the CPU gathers from / scatters to the alive DPUs
    // over the DDR bus, so no inter-DPU geometry constraint applies.
    let spec = CollectiveSpec::new(
        kind,
        Bytes::new(elems_per_node as u64 * u64::from(elem_bytes)),
    )
    .with_elem_bytes(elem_bytes);
    let breakdown = BaselineHostBackend::new(*system).collective(&spec)?;
    let mut excluded = dead;
    excluded.sort_unstable();
    Ok(DegradedPlan::HostFallback {
        breakdown,
        excluded,
        error_trail,
    })
}

/// Largest power of two `<= x` (x > 0).
fn prev_power_of_two(x: u32) -> u32 {
    debug_assert!(x > 0);
    1 << (31 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_collective, ReduceOp};
    use pim_faults::FaultConfig;

    fn injector(dead: Vec<u32>) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            dead_dpus: dead,
            ..FaultConfig::none()
        })
    }

    #[test]
    fn no_dead_dpus_yields_the_full_plan() {
        let g = PimGeometry::paper_scaled(16);
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &FaultInjector::none(),
            &SystemConfig::paper_scaled(16),
        )
        .unwrap();
        match &plan {
            DegradedPlan::Full(s) => assert_eq!(s.geometry.total_dpus(), 16),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(plan.error_trail().is_empty());
    }

    #[test]
    fn dead_dpus_shrink_to_the_alive_power_of_two() {
        let g = PimGeometry::paper_scaled(16);
        // 3 dead => 13 alive => schedule over 8.
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &injector(vec![0, 5, 9]),
            &SystemConfig::paper_scaled(16),
        )
        .unwrap();
        match plan {
            DegradedPlan::Shrunk {
                schedule,
                logical_to_physical,
                excluded,
                error_trail,
            } => {
                assert_eq!(schedule.geometry.total_dpus(), 8);
                assert_eq!(logical_to_physical.len(), 8);
                assert!(logical_to_physical.iter().all(|d| ![0, 5, 9].contains(d)));
                // 3 dead + 5 sacrificed alive = 8 excluded.
                assert_eq!(excluded.len(), 8);
                assert!(excluded.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(error_trail.len(), 3);
                assert!(error_trail
                    .iter()
                    .all(|e| matches!(e, PimnetError::DeadDpu { .. })));
                // The degraded schedule really runs.
                let m = run_collective(&schedule, ReduceOp::Sum, |id| {
                    vec![u64::from(id.0); 64]
                })
                .unwrap();
                assert_eq!(m.nodes(), 8);
            }
            other => panic!("expected Shrunk, got {other:?}"),
        }
    }

    #[test]
    fn near_total_death_falls_back_to_the_host() {
        let g = PimGeometry::paper_scaled(8);
        // 7 of 8 dead: one alive DPU is no network at all.
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &injector((1..8).collect()),
            &SystemConfig::paper_scaled(8),
        )
        .unwrap();
        match plan {
            DegradedPlan::HostFallback {
                breakdown,
                excluded,
                error_trail,
            } => {
                assert!(breakdown.total() > pim_sim::SimTime::ZERO);
                assert!(breakdown.host > pim_sim::SimTime::ZERO);
                assert_eq!(excluded, (1..8).collect::<Vec<u32>>());
                assert_eq!(error_trail.len(), 7);
            }
            other => panic!("expected HostFallback, got {other:?}"),
        }
    }

    #[test]
    fn total_death_is_a_typed_error() {
        let g = PimGeometry::paper_scaled(4);
        let err = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            16,
            4,
            &injector((0..4).collect()),
            &SystemConfig::paper_scaled(4),
        )
        .unwrap_err();
        assert!(matches!(err, PimnetError::InvalidGeometry { .. }));
    }

    #[test]
    fn prev_power_of_two_is_exact() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(13), 8);
        assert_eq!(prev_power_of_two(256), 256);
        assert_eq!(prev_power_of_two(300), 256);
    }
}
