//! Graceful degradation around hard-dead DPUs and permanent fabric faults.
//!
//! PIMnet's schedules are compiled for a fixed geometry, so a dead bank is
//! not a runtime hiccup — it invalidates the plan. This module rebuilds
//! the plan instead of panicking, falling down a four-tier ladder:
//!
//! 1. **Full** — nothing is dead; the original schedule stands and the
//!    fault-free path pays nothing.
//! 2. **Repaired** — no DPU is lost, but the fabric has permanent faults
//!    (dead ring segments, dead crossbar ports). The full-participant
//!    schedule is rewritten around them by [`crate::schedule::repair`]:
//!    same results bit-for-bit, longer routes and extra serialization
//!    priced by the timing model, accounted in a
//!    [`repair::RepairReport`].
//! 3. **Shrunk** — participants are lost (hard-dead DPUs, or DPUs that
//!    [`repair::unusable_dpus`] proves unreachable: dead ranks,
//!    partitioned chip rings, rank with no surviving port). The
//!    collective is re-planned on the largest power-of-two subset of
//!    surviving DPUs (PIMnet's ring/exchange builders need power-of-two
//!    dimensions), with a logical→physical map so the caller can place
//!    data on the surviving banks. Alive DPUs beyond the power-of-two cut
//!    are *sacrificed* (they sit the collective out) and reported
//!    alongside the dead ones. The shrunk plan is built over the logical
//!    geometry; re-applying the physical permanent faults to it is left
//!    to the caller's placement (a documented simplification).
//! 4. **Host fallback** — when no PIMnet geometry survives (every DPU
//!    dead but one, the shrunk build itself fails, or a repair fails in a
//!    way the unusable-DPU analysis did not predict), the collective is
//!    handed to the host-staged baseline backend, which needs no
//!    inter-DPU network at all.
//!
//! Whatever happens, the caller gets a typed error trail — one
//! [`PimnetError::DeadDpu`] per excluded node, [`PimnetError::DeadRank`] /
//! [`PimnetError::Unroutable`] for fabric-level losses, plus any build
//! failure — instead of a panic, so a long-running experiment can log the
//! degradation and keep going.

use pim_arch::geometry::PimGeometry;
use pim_arch::SystemConfig;
use pim_faults::permanent::PermanentFaultSet;
use pim_faults::FaultInjector;
use pim_sim::trace::codes;
use pim_sim::{Bytes, Probe, SimTime};

use crate::backends::{BaselineHostBackend, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::schedule::{cache, repair, CommSchedule};
use crate::timing::CommBreakdown;

/// How a collective survived its dead DPUs and permanent fabric faults.
#[derive(Debug, Clone, PartialEq)]
pub enum DegradedPlan {
    /// No participant is dead; the original schedule stands.
    Full(CommSchedule),
    /// Every participant survives, but the schedule was rewritten around
    /// permanent fabric faults (rerouted rings, borrowed crossbar ports,
    /// serialized steps). Results are bit-identical to the full plan.
    Repaired {
        /// The repaired, re-validated schedule.
        schedule: CommSchedule,
        /// What the repair changed and what it costs.
        report: repair::RepairReport,
    },
    /// Re-planned on the largest power-of-two alive subset.
    Shrunk {
        /// The degraded schedule (over logical DPU ids `0..n`).
        schedule: CommSchedule,
        /// Logical id → physical alive DPU id.
        logical_to_physical: Vec<u32>,
        /// Physical DPUs excluded from the collective: the dead ones plus
        /// any alive nodes sacrificed to reach a power-of-two count.
        excluded: Vec<u32>,
        /// One typed error per dead participant.
        error_trail: Vec<PimnetError>,
    },
    /// No viable PIMnet geometry; the host-staged baseline carries it.
    HostFallback {
        /// Timing of the collective through the baseline backend.
        breakdown: CommBreakdown,
        /// Physical DPUs excluded from PIM-side participation.
        excluded: Vec<u32>,
        /// Dead-DPU trail plus the error that forced the fallback.
        error_trail: Vec<PimnetError>,
    },
}

impl DegradedPlan {
    /// The surviving schedule, if the plan still runs on PIMnet.
    #[must_use]
    pub fn schedule(&self) -> Option<&CommSchedule> {
        match self {
            DegradedPlan::Full(s)
            | DegradedPlan::Repaired { schedule: s, .. }
            | DegradedPlan::Shrunk { schedule: s, .. } => Some(s),
            DegradedPlan::HostFallback { .. } => None,
        }
    }

    /// The accumulated error trail (empty for [`DegradedPlan::Full`] and
    /// [`DegradedPlan::Repaired`] — repair keeps everyone, so nothing was
    /// lost).
    #[must_use]
    pub fn error_trail(&self) -> &[PimnetError] {
        match self {
            DegradedPlan::Full(_) | DegradedPlan::Repaired { .. } => &[],
            DegradedPlan::Shrunk { error_trail, .. }
            | DegradedPlan::HostFallback { error_trail, .. } => error_trail,
        }
    }

    /// This plan's rung on the degradation ladder, 0 (best) to 3 (worst).
    /// Monotone in fault severity — the chaos harness asserts on it.
    #[must_use]
    pub fn tier(&self) -> u8 {
        match self {
            DegradedPlan::Full(_) => 0,
            DegradedPlan::Repaired { .. } => 1,
            DegradedPlan::Shrunk { .. } => 2,
            DegradedPlan::HostFallback { .. } => 3,
        }
    }

    /// Human-readable tier name for reports.
    #[must_use]
    pub fn tier_name(&self) -> &'static str {
        match self {
            DegradedPlan::Full(_) => "full",
            DegradedPlan::Repaired { .. } => "repaired",
            DegradedPlan::Shrunk { .. } => "shrunk",
            DegradedPlan::HostFallback { .. } => "host-fallback",
        }
    }
}

/// Plans `kind` over `geometry` under the injector's dead-DPU set and
/// permanent-fault scenario, picking the highest surviving ladder tier.
///
/// `system` parameterizes the host-fallback timing; it should describe the
/// same machine as `geometry`.
///
/// # Errors
///
/// * Propagates schedule-build errors when *nothing* is dead (there is
///   nothing to degrade around — the request itself is wrong);
/// * [`PimnetError::InvalidGeometry`] when every DPU is dead, so not even
///   the host fallback has a data source.
pub fn plan_degraded(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    injector: &FaultInjector,
    system: &SystemConfig,
) -> Result<DegradedPlan, PimnetError> {
    plan_degraded_at_epoch(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        injector,
        system,
        0,
    )
}

/// [`plan_degraded`] under a degradation/health `epoch`: schedule-cache
/// lookups are keyed by the epoch, so a replan after mid-run quarantine or
/// fault arrival (epoch > 0) never recalls an entry the pre-fault plan
/// cached. Static planning is epoch 0, which is exactly
/// [`plan_degraded`]'s key space.
///
/// # Errors
///
/// Same as [`plan_degraded`].
pub fn plan_degraded_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    injector: &FaultInjector,
    system: &SystemConfig,
    epoch: u64,
) -> Result<DegradedPlan, PimnetError> {
    plan_degraded_probed_at_epoch(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        injector,
        system,
        epoch,
        Probe::disabled(),
    )
}

/// [`plan_degraded_at_epoch`] with analysis observability: the repaired
/// tier's independent re-proof runs through the analysis-summary cache's
/// delta re-lint, and each proof lands in `probe` as a `lint-*` trace
/// event (with warmth-independent arguments). With a disabled probe this
/// is exactly [`plan_degraded_at_epoch`].
///
/// # Errors
///
/// Same as [`plan_degraded`].
#[allow(clippy::too_many_arguments)]
pub fn plan_degraded_probed_at_epoch(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    injector: &FaultInjector,
    system: &SystemConfig,
    epoch: u64,
    probe: &Probe,
) -> Result<DegradedPlan, PimnetError> {
    let n = geometry.total_dpus();
    let permanent = if injector.has_permanent_faults() {
        injector.permanent_faults(
            geometry.ranks_per_channel,
            geometry.chips_per_rank,
            geometry.banks_per_chip,
        )
    } else {
        PermanentFaultSet::none()
    };
    // DPUs that no repair keeps reachable degrade exactly like hard-dead
    // ones: the plan must exclude them.
    let unusable = repair::unusable_dpus(geometry, &permanent);
    let config_dead: Vec<u32> = (0..n).filter(|&d| injector.is_dead(d)).collect();
    let mut dead = config_dead.clone();
    dead.extend_from_slice(&unusable);
    dead.sort_unstable();
    dead.dedup();
    if dead.is_empty() {
        // Built-and-validated schedules are pure functions of these
        // parameters, so recall them from the schedule cache: chaos
        // sweeps re-plan identical (kind, geometry, payload) points once
        // per seed.
        let schedule = cache::build_cached_at_epoch(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            epoch,
            Probe::disabled(),
        )?
        .as_ref()
        .clone();
        if permanent.is_empty() {
            return Ok(DegradedPlan::Full(schedule));
        }
        match cache::repair_cached_at_epoch(
            kind,
            geometry,
            elems_per_node,
            elem_bytes,
            &permanent,
            epoch,
            Probe::disabled(),
        ) {
            // Faults that this schedule never routes over need no repair:
            // the untouched plan is still the Full tier.
            Ok(r) if r.report.is_identity() => return Ok(DegradedPlan::Full(r.schedule.clone())),
            Ok(r) => {
                // The Repaired tier promises bit-identical results, so the
                // rewritten schedule is independently re-proven by the
                // static analyzer rather than trusted: if any pass finds
                // an error, the repair is discarded and the collective is
                // handed to the host with the proof failure on record.
                // The proof is a delta re-lint against the cached base
                // summary (byte-identical to a batch `run_all`), so a
                // replan re-proves only what the repair touched.
                let (summary, _delta) = cache::analyze_repaired_cached_at_epoch(
                    kind,
                    geometry,
                    elems_per_node,
                    elem_bytes,
                    &permanent,
                    epoch,
                    probe,
                )?;
                let analysis = &summary.report;
                if analysis.has_errors() {
                    let first = analysis
                        .diagnostics
                        .iter()
                        .find(|d| d.severity == crate::analysis::Severity::Error)
                        .map(ToString::to_string)
                        .unwrap_or_default();
                    return host_fallback(
                        kind,
                        elems_per_node,
                        elem_bytes,
                        system,
                        Vec::new(),
                        vec![PimnetError::ScheduleInvalid {
                            reason: format!(
                                "repaired schedule failed static analysis \
                                 ({} error(s); first: {first})",
                                analysis.error_count()
                            ),
                        }],
                    );
                }
                return Ok(DegradedPlan::Repaired {
                    schedule: r.schedule.clone(),
                    report: r.report,
                });
            }
            // The unusable-DPU analysis predicted everyone survives, yet
            // repair failed: shrinking would rebuild the same geometry
            // over the same broken fabric, so hand the collective to the
            // host with the repair failure on record.
            Err(e) => {
                return host_fallback(
                    kind,
                    elems_per_node,
                    elem_bytes,
                    system,
                    Vec::new(),
                    vec![e],
                )
            }
        }
    }
    let mut error_trail: Vec<PimnetError> = config_dead
        .iter()
        .map(|&dpu| PimnetError::DeadDpu { dpu })
        .collect();
    for &rank in &permanent.dead_ranks {
        if rank < geometry.ranks_per_channel {
            error_trail.push(PimnetError::DeadRank { rank });
        }
    }
    let fabric_lost = unusable
        .iter()
        .filter(|&&d| {
            let c = geometry.coord(pim_arch::geometry::DpuId(d));
            !permanent.dead_ranks.contains(&c.rank)
        })
        .count();
    if fabric_lost > 0 {
        error_trail.push(PimnetError::Unroutable {
            reason: format!(
                "{fabric_lost} DPU(s) sit on partitioned rings or portless \
                 ranks; excluded from the plan"
            ),
        });
    }
    let alive: Vec<u32> = (0..n).filter(|d| dead.binary_search(d).is_err()).collect();
    if alive.is_empty() {
        return Err(PimnetError::InvalidGeometry {
            geometry: *geometry,
            reason: format!("all {n} DPUs are dead"),
        });
    }
    // PIMnet's builders need power-of-two dimensions; keep the largest
    // power-of-two prefix of the alive set (capped at the scaling model's
    // 256-DPU ceiling) and sacrifice the rest.
    let shrunk_n = prev_power_of_two(alive.len() as u32).min(256);
    if shrunk_n >= 2 {
        let shrunk_geometry = PimGeometry::paper_scaled(shrunk_n);
        match cache::build_cached_at_epoch(
            kind,
            &shrunk_geometry,
            elems_per_node,
            elem_bytes,
            epoch,
            Probe::disabled(),
        )
        .map(|s| s.as_ref().clone())
        {
            Ok(schedule) => {
                let logical_to_physical: Vec<u32> = alive[..shrunk_n as usize].to_vec();
                let mut excluded = dead;
                excluded.extend_from_slice(&alive[shrunk_n as usize..]);
                excluded.sort_unstable();
                return Ok(DegradedPlan::Shrunk {
                    schedule,
                    logical_to_physical,
                    excluded,
                    error_trail,
                });
            }
            Err(e) => error_trail.push(e),
        }
    }
    host_fallback(kind, elems_per_node, elem_bytes, system, dead, error_trail)
}

/// [`plan_degraded`] with observability: on success the surviving ladder
/// rung lands in `probe` as a `plan-tier` trace event and as
/// [`pim_sim::MetricsReport::degraded_tier`]. With a disabled probe this
/// is exactly [`plan_degraded`].
///
/// # Errors
///
/// Same as [`plan_degraded`] (nothing is recorded on the error path).
pub fn plan_degraded_probed(
    kind: CollectiveKind,
    geometry: &PimGeometry,
    elems_per_node: usize,
    elem_bytes: u32,
    injector: &FaultInjector,
    system: &SystemConfig,
    probe: &Probe,
) -> Result<DegradedPlan, PimnetError> {
    let plan = plan_degraded_probed_at_epoch(
        kind,
        geometry,
        elems_per_node,
        elem_bytes,
        injector,
        system,
        0,
        probe,
    )?;
    if probe.is_active() {
        let tier = plan.tier();
        let excluded = match &plan {
            DegradedPlan::Full(_) | DegradedPlan::Repaired { .. } => 0,
            DegradedPlan::Shrunk { excluded, .. } | DegradedPlan::HostFallback { excluded, .. } => {
                excluded.len() as u64
            }
        };
        probe.trace.instant(
            SimTime::ZERO,
            codes::PLAN_TIER,
            [u64::from(tier), excluded, 0, 0],
        );
        probe.metrics.degraded_tier(tier);
    }
    Ok(plan)
}

/// Bottom rung of the ladder: the CPU gathers from / scatters to the alive
/// DPUs over the DDR bus, so no inter-DPU geometry constraint applies.
fn host_fallback(
    kind: CollectiveKind,
    elems_per_node: usize,
    elem_bytes: u32,
    system: &SystemConfig,
    mut excluded: Vec<u32>,
    error_trail: Vec<PimnetError>,
) -> Result<DegradedPlan, PimnetError> {
    let spec = CollectiveSpec::new(
        kind,
        Bytes::new(elems_per_node as u64 * u64::from(elem_bytes)),
    )
    .with_elem_bytes(elem_bytes);
    let breakdown = BaselineHostBackend::new(*system).collective(&spec)?;
    excluded.sort_unstable();
    Ok(DegradedPlan::HostFallback {
        breakdown,
        excluded,
        error_trail,
    })
}

/// Largest power of two `<= x` (x > 0).
fn prev_power_of_two(x: u32) -> u32 {
    debug_assert!(x > 0);
    1 << (31 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_collective, ReduceOp};
    use pim_faults::FaultConfig;

    fn injector(dead: Vec<u32>) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            dead_dpus: dead,
            ..FaultConfig::none()
        })
    }

    #[test]
    fn no_dead_dpus_yields_the_full_plan() {
        let g = PimGeometry::paper_scaled(16);
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &FaultInjector::none(),
            &SystemConfig::paper_scaled(16),
        )
        .unwrap();
        match &plan {
            DegradedPlan::Full(s) => assert_eq!(s.geometry.total_dpus(), 16),
            other => panic!("expected Full, got {other:?}"),
        }
        assert!(plan.error_trail().is_empty());
    }

    #[test]
    fn dead_dpus_shrink_to_the_alive_power_of_two() {
        let g = PimGeometry::paper_scaled(16);
        // 3 dead => 13 alive => schedule over 8.
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &injector(vec![0, 5, 9]),
            &SystemConfig::paper_scaled(16),
        )
        .unwrap();
        match plan {
            DegradedPlan::Shrunk {
                schedule,
                logical_to_physical,
                excluded,
                error_trail,
            } => {
                assert_eq!(schedule.geometry.total_dpus(), 8);
                assert_eq!(logical_to_physical.len(), 8);
                assert!(logical_to_physical.iter().all(|d| ![0, 5, 9].contains(d)));
                // 3 dead + 5 sacrificed alive = 8 excluded.
                assert_eq!(excluded.len(), 8);
                assert!(excluded.windows(2).all(|w| w[0] < w[1]));
                assert_eq!(error_trail.len(), 3);
                assert!(error_trail
                    .iter()
                    .all(|e| matches!(e, PimnetError::DeadDpu { .. })));
                // The degraded schedule really runs.
                let m = run_collective(&schedule, ReduceOp::Sum, |id| vec![u64::from(id.0); 64])
                    .unwrap();
                assert_eq!(m.nodes(), 8);
            }
            other => panic!("expected Shrunk, got {other:?}"),
        }
    }

    #[test]
    fn near_total_death_falls_back_to_the_host() {
        let g = PimGeometry::paper_scaled(8);
        // 7 of 8 dead: one alive DPU is no network at all.
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &injector((1..8).collect()),
            &SystemConfig::paper_scaled(8),
        )
        .unwrap();
        match plan {
            DegradedPlan::HostFallback {
                breakdown,
                excluded,
                error_trail,
            } => {
                assert!(breakdown.total() > pim_sim::SimTime::ZERO);
                assert!(breakdown.host > pim_sim::SimTime::ZERO);
                assert_eq!(excluded, (1..8).collect::<Vec<u32>>());
                assert_eq!(error_trail.len(), 7);
            }
            other => panic!("expected HostFallback, got {other:?}"),
        }
    }

    #[test]
    fn total_death_is_a_typed_error() {
        let g = PimGeometry::paper_scaled(4);
        let err = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            16,
            4,
            &injector((0..4).collect()),
            &SystemConfig::paper_scaled(4),
        )
        .unwrap_err();
        assert!(matches!(err, PimnetError::InvalidGeometry { .. }));
    }

    #[test]
    fn repairable_permanent_faults_yield_the_repaired_tier() {
        let g = PimGeometry::paper_scaled(64);
        let inj = FaultInjector::new(FaultConfig {
            permanent: pim_faults::PermanentFaultSet::parse_tokens("r0c0b2E, r0c3tx").unwrap(),
            ..FaultConfig::none()
        });
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &inj,
            &SystemConfig::paper_scaled(64),
        )
        .unwrap();
        match &plan {
            DegradedPlan::Repaired { schedule, report } => {
                assert_eq!(schedule.geometry.total_dpus(), 64);
                assert!(report.rerouted_transfers > 0 || report.remapped_transfers > 0);
                crate::schedule::validate::validate(schedule).unwrap();
                // Bit-identical to the fault-free plan.
                let clean = CommSchedule::build(CollectiveKind::AllReduce, &g, 64, 4).unwrap();
                let a = run_collective(schedule, ReduceOp::Sum, |id| vec![u64::from(id.0); 64])
                    .unwrap();
                let b =
                    run_collective(&clean, ReduceOp::Sum, |id| vec![u64::from(id.0); 64]).unwrap();
                assert_eq!(a, b);
            }
            other => panic!("expected Repaired, got tier {}", other.tier_name()),
        }
        assert_eq!(plan.tier(), 1);
        assert!(plan.error_trail().is_empty());
    }

    #[test]
    fn repaired_tier_passes_static_analysis() {
        // `plan_degraded` gates the Repaired tier on a clean analysis, so
        // any plan it returns at tier 1 must re-prove clean here.
        let g = PimGeometry::paper_scaled(64);
        for tokens in ["r0c0b2E, r0c3tx", "r0c1b0W", "r0c5rx, r0c2b7E"] {
            let inj = FaultInjector::new(FaultConfig {
                permanent: pim_faults::PermanentFaultSet::parse_tokens(tokens).unwrap(),
                ..FaultConfig::none()
            });
            for kind in CollectiveKind::ALL {
                let plan =
                    plan_degraded(kind, &g, 32, 4, &inj, &SystemConfig::paper_scaled(64)).unwrap();
                if let DegradedPlan::Repaired { schedule, .. } = &plan {
                    let report = crate::analysis::run_all(schedule);
                    assert!(
                        !report.has_errors(),
                        "{kind} repaired under '{tokens}' fails analysis:\n{report}"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_rank_shrinks_with_a_typed_trail() {
        let g = PimGeometry::paper_scaled(256); // 4 ranks of 64
        let inj = FaultInjector::new(FaultConfig {
            permanent: pim_faults::PermanentFaultSet::parse_tokens("rank3").unwrap(),
            ..FaultConfig::none()
        });
        let plan = plan_degraded(
            CollectiveKind::AllReduce,
            &g,
            64,
            4,
            &inj,
            &SystemConfig::paper_scaled(256),
        )
        .unwrap();
        match &plan {
            DegradedPlan::Shrunk {
                schedule,
                logical_to_physical,
                excluded,
                error_trail,
            } => {
                // 192 survivors -> 128-DPU plan; 64 rank-3 DPUs dead plus
                // 64 sacrificed to reach the power of two.
                assert_eq!(schedule.geometry.total_dpus(), 128);
                assert_eq!(logical_to_physical.len(), 128);
                assert_eq!(excluded.len(), 128);
                assert!(error_trail
                    .iter()
                    .any(|e| matches!(e, PimnetError::DeadRank { rank: 3 })));
            }
            other => panic!("expected Shrunk, got tier {}", other.tier_name()),
        }
        assert_eq!(plan.tier(), 2);
    }

    #[test]
    fn planning_is_deterministic_per_seed() {
        let g = PimGeometry::paper_scaled(64);
        let cfg = FaultConfig {
            perm_rates: pim_faults::PermanentFaultRates {
                segment_prob: 0.05,
                port_prob: 0.05,
                rank_prob: 0.0,
            },
            ..FaultConfig::none()
        }
        .with_seed(99);
        let plan = |c: &FaultConfig| {
            plan_degraded(
                CollectiveKind::AllReduce,
                &g,
                32,
                4,
                &FaultInjector::new(c.clone()),
                &SystemConfig::paper_scaled(64),
            )
            .unwrap()
        };
        assert_eq!(plan(&cfg), plan(&cfg));
        // A different seed samples a different scenario (with these rates
        // the two draws are overwhelmingly unlikely to coincide).
        let other = plan(&cfg.clone().with_seed(100));
        let inj_a = FaultInjector::new(cfg.clone());
        let inj_b = FaultInjector::new(cfg.with_seed(100));
        assert_ne!(
            inj_a.permanent_faults(1, 8, 8),
            inj_b.permanent_faults(1, 8, 8),
        );
        // Both are still valid plans.
        assert!(plan(&FaultConfig::none()).tier() == 0);
        drop(other);
    }

    #[test]
    fn tier_order_is_monotone_in_severity() {
        let g = PimGeometry::paper_scaled(64);
        let sys = SystemConfig::paper_scaled(64);
        let tier = |cfg: FaultConfig| {
            plan_degraded(
                CollectiveKind::AllReduce,
                &g,
                32,
                4,
                &FaultInjector::new(cfg),
                &sys,
            )
            .unwrap()
            .tier()
        };
        let none = tier(FaultConfig::none());
        let seg = tier(FaultConfig {
            permanent: pim_faults::PermanentFaultSet::parse_tokens("r0c1b0W").unwrap(),
            ..FaultConfig::none()
        });
        let dead = tier(FaultConfig {
            dead_dpus: vec![7],
            ..FaultConfig::none()
        });
        assert_eq!(none, 0);
        assert_eq!(seg, 1);
        assert_eq!(dead, 2);
    }

    #[test]
    fn prev_power_of_two_is_exact() {
        assert_eq!(prev_power_of_two(1), 1);
        assert_eq!(prev_power_of_two(2), 2);
        assert_eq!(prev_power_of_two(3), 2);
        assert_eq!(prev_power_of_two(13), 8);
        assert_eq!(prev_power_of_two(256), 256);
        assert_eq!(prev_power_of_two(300), 256);
    }
}
