//! Analytic timing of communication schedules.
//!
//! A step's duration is the maximum, over every fabric resource it touches,
//! of the *occupancy* of that resource — the sum of serialization times of
//! all transfers crossing it within the step — plus the per-hop propagation
//! of the longest path. Within non-multiplexed phases the validator
//! guarantees one flow per resource, so the occupancy maximum is exact; in
//! multiplexed phases (WAIT-slotted DQ channels and bus) it models the
//! deterministic time-multiplexing the PIM-controlled schedule performs.
//!
//! The result is a [`CommBreakdown`] with the same buckets as the paper's
//! Fig 11: inter-bank / inter-chip / inter-rank time, `Sync` (the
//! READY/START barrier plus compute skew) and `Mem` (WRAM-overflow staging
//! through the MRAM↔WRAM DMA). A `host` bucket exists for the comparison
//! backends; it is always zero for PIMnet itself.

use std::collections::HashMap;
use std::fmt;
use std::iter::Sum;
use std::ops::Add;

use pim_sim::{Bytes, SimTime};

use pim_arch::SystemConfig;

use pim_arch::geometry::PimGeometry;

use crate::fabric::FabricConfig;
use crate::schedule::{
    CommSchedule, CommStep, Phase, PhaseLabel, ScheduleView, StepRef, TierTimes,
};
use crate::sync::{SyncModel, SyncScope};
use crate::topology::Resource;

/// Where the time of one collective went (the paper's Fig 11 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CommBreakdown {
    /// READY/START barrier plus compute skew.
    pub sync: SimTime,
    /// Inter-bank ring time.
    pub inter_bank: SimTime,
    /// Inter-chip crossbar time.
    pub inter_chip: SimTime,
    /// Inter-rank bus time.
    pub inter_rank: SimTime,
    /// WRAM-overflow staging through the MRAM↔WRAM DMA.
    pub mem: SimTime,
    /// Host involvement (transfers through the CPU and host software
    /// overheads); zero for PIMnet, dominant for the baseline.
    pub host: SimTime,
}

impl CommBreakdown {
    /// A breakdown with every bucket zero.
    #[must_use]
    pub fn zero() -> Self {
        CommBreakdown::default()
    }

    /// End-to-end collective time.
    #[must_use]
    pub fn total(&self) -> SimTime {
        self.sync + self.inter_bank + self.inter_chip + self.inter_rank + self.mem + self.host
    }

    /// Network-only time (everything except host involvement).
    #[must_use]
    pub fn network(&self) -> SimTime {
        self.sync + self.inter_bank + self.inter_chip + self.inter_rank + self.mem
    }

    /// Adds `t` to the bucket for `label`.
    pub fn add_phase(&mut self, label: PhaseLabel, t: SimTime) {
        match label {
            PhaseLabel::Local => {}
            PhaseLabel::InterBank => self.inter_bank += t,
            PhaseLabel::InterChip => self.inter_chip += t,
            PhaseLabel::InterRank => self.inter_rank += t,
        }
    }

    /// Fraction of the total spent in a given bucket-sum, as percent.
    #[must_use]
    pub fn percent(&self, part: SimTime) -> f64 {
        part.ratio(self.total()) * 100.0
    }
}

impl Add for CommBreakdown {
    type Output = CommBreakdown;

    fn add(self, rhs: CommBreakdown) -> CommBreakdown {
        CommBreakdown {
            sync: self.sync + rhs.sync,
            inter_bank: self.inter_bank + rhs.inter_bank,
            inter_chip: self.inter_chip + rhs.inter_chip,
            inter_rank: self.inter_rank + rhs.inter_rank,
            mem: self.mem + rhs.mem,
            host: self.host + rhs.host,
        }
    }
}

impl Sum for CommBreakdown {
    fn sum<I: Iterator<Item = CommBreakdown>>(iter: I) -> CommBreakdown {
        iter.fold(CommBreakdown::zero(), Add::add)
    }
}

impl fmt::Display for CommBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (sync {}, bank {}, chip {}, rank {}, mem {}, host {})",
            self.total(),
            self.sync,
            self.inter_bank,
            self.inter_chip,
            self.inter_rank,
            self.mem,
            self.host
        )
    }
}

/// Times schedules against a fabric + system configuration.
#[derive(Debug, Clone, Copy)]
pub struct TimingModel {
    /// Fabric (tier bandwidth/latency) parameters.
    pub fabric: FabricConfig,
    /// System (memory/DMA) parameters, for the `Mem` bucket.
    pub system: SystemConfig,
}

impl TimingModel {
    /// Creates a timing model.
    #[must_use]
    pub fn new(fabric: FabricConfig, system: SystemConfig) -> Self {
        TimingModel { fabric, system }
    }

    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        TimingModel::new(FabricConfig::paper(), SystemConfig::paper())
    }

    /// Duration of one step: max resource occupancy plus the longest path's
    /// hop propagation.
    #[must_use]
    pub fn step_time(&self, schedule: &CommSchedule, step: &CommStep) -> SimTime {
        self.step_time_of(schedule.elem_bytes, StepRef::Nested(step))
    }

    /// [`TimingModel::step_time`] for a step in either schedule layout.
    #[must_use]
    pub fn step_time_of(&self, elem_bytes: u32, step: StepRef<'_>) -> SimTime {
        let mut occupancy: HashMap<Resource, SimTime> = HashMap::new();
        let mut max_hops = 0usize;
        for t in step.transfers() {
            if t.is_local() {
                continue;
            }
            let bytes = t.bytes(elem_bytes);
            max_hops = max_hops.max(t.resources.len());
            for r in t.resources {
                let ser = r.bandwidth(&self.fabric).transfer_time(bytes);
                *occupancy.entry(*r).or_insert(SimTime::ZERO) += ser;
            }
        }
        let busiest = occupancy.values().copied().max().unwrap_or(SimTime::ZERO);
        busiest + self.fabric.hop_latency * max_hops as u64
    }

    /// Duration of one phase (steps are sequential).
    #[must_use]
    pub fn phase_time(&self, schedule: &CommSchedule, phase: &Phase) -> SimTime {
        phase
            .steps
            .iter()
            .map(|s| self.step_time(schedule, s))
            .sum()
    }

    /// Times a whole schedule in either layout, including the READY/START
    /// barrier (with `skew` between the earliest and latest participant)
    /// and WRAM-overflow staging.
    #[must_use]
    pub fn time_schedule<S: ScheduleView>(&self, schedule: &S, skew: SimTime) -> CommBreakdown {
        let hdr = schedule.header();
        let mut breakdown = CommBreakdown::zero();
        let sync = SyncModel::from_fabric(&self.fabric);
        breakdown.sync = sync.barrier(Self::scope_of_geometry(hdr.geometry), skew);
        for p in 0..schedule.phase_count() {
            let t: SimTime = (0..schedule.steps_in(p))
                .map(|s| self.step_time_of(hdr.elem_bytes, schedule.step(p, s)))
                .sum();
            breakdown.add_phase(schedule.phase_label(p), t);
        }
        breakdown.mem = self.mem_overhead_of(hdr.buffer_len, hdr.elem_bytes);
        breakdown
    }

    /// WRAM-overflow cost: payload beyond the WRAM staging budget must be
    /// DMA-staged from MRAM before sending and back after receiving.
    #[must_use]
    pub fn mem_overhead(&self, schedule: &CommSchedule) -> SimTime {
        self.mem_overhead_of(schedule.buffer_len, schedule.elem_bytes)
    }

    /// [`TimingModel::mem_overhead`] from the buffer footprint alone.
    #[must_use]
    pub fn mem_overhead_of(&self, buffer_len: usize, elem_bytes: u32) -> SimTime {
        let footprint = Bytes::new(buffer_len as u64 * u64::from(elem_bytes));
        let overflow = self.system.memory.wram_overflow(footprint);
        if overflow.is_zero() {
            SimTime::ZERO
        } else {
            self.system.dma.transfer_time(overflow) * 2
        }
    }

    /// The synchronization scope a schedule needs.
    #[must_use]
    pub fn scope_of(&self, schedule: &CommSchedule) -> SyncScope {
        Self::scope_of_geometry(&schedule.geometry)
    }

    /// The synchronization scope a geometry's collectives need.
    #[must_use]
    pub fn scope_of_geometry(g: &PimGeometry) -> SyncScope {
        SyncScope::of_geometry(g)
    }

    /// Per-tier durations in Algorithm 1 form, for an AllReduce schedule
    /// (phases: `RS_bank, RS_chip, RS_rank, AG_chip, AG_bank`, with absent
    /// tiers zero).
    #[must_use]
    pub fn tier_times(&self, schedule: &CommSchedule) -> TierTimes {
        let mut t = TierTimes::default();
        let mut seen_rank = false;
        for phase in &schedule.phases {
            let d = self.phase_time(schedule, phase);
            match phase.label {
                PhaseLabel::Local => {}
                PhaseLabel::InterBank => {
                    if t.rs_bank == pim_sim::SimTime::ZERO && !seen_rank {
                        t.rs_bank = d;
                    } else {
                        t.ag_bank = d;
                    }
                }
                PhaseLabel::InterChip => {
                    if !seen_rank && t.rs_chip == pim_sim::SimTime::ZERO {
                        t.rs_chip = d;
                    } else {
                        t.ag_chip = d;
                    }
                }
                PhaseLabel::InterRank => {
                    t.rs_rank = d;
                    seen_rank = true;
                }
            }
        }
        t
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        TimingModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::geometry::PimGeometry;
    use pim_sim::Bandwidth;

    fn ar(elems: usize) -> CommSchedule {
        CommSchedule::build(CollectiveKind::AllReduce, &PimGeometry::paper(), elems, 4).unwrap()
    }

    #[test]
    fn paper_allreduce_32kib_lands_near_hand_calculation() {
        // 32 KiB per DPU over 256 DPUs: hand calculation in DESIGN.md gives
        // roughly 20 us (bank RS) + 27 us (chip RS) + ~8 us (rank bcast) +
        // 27 + 20 us for the AG side ~= 100 us.
        let m = TimingModel::paper();
        let s = ar(8192); // 8192 x 4 B = 32 KiB
        let b = m.time_schedule(&s, SimTime::ZERO);
        let total = b.total().as_us();
        assert!(
            (60.0..180.0).contains(&total),
            "unexpected AllReduce time {total} us"
        );
        // The breakdown is dominated by the network tiers, not sync.
        assert!(b.sync < b.inter_bank);
        assert_eq!(b.host, SimTime::ZERO);
    }

    #[test]
    fn time_is_monotone_in_message_size() {
        let m = TimingModel::paper();
        let mut prev = SimTime::ZERO;
        for elems in [256usize, 1024, 4096, 16384] {
            let t = m.time_schedule(&ar(elems), SimTime::ZERO).total();
            assert!(t > prev, "not monotone at {elems} elems");
            prev = t;
        }
    }

    #[test]
    fn time_decreases_with_more_ring_bandwidth() {
        let s = ar(8192);
        let slow = TimingModel::new(
            FabricConfig::paper().with_bank_channel_bw(Bandwidth::gbps(0.1)),
            SystemConfig::paper(),
        );
        let fast = TimingModel::new(
            FabricConfig::paper().with_bank_channel_bw(Bandwidth::gbps(1.0)),
            SystemConfig::paper(),
        );
        assert!(
            slow.time_schedule(&s, SimTime::ZERO).inter_bank
                > fast.time_schedule(&s, SimTime::ZERO).inter_bank
        );
    }

    #[test]
    fn skew_lands_in_the_sync_bucket() {
        let m = TimingModel::paper();
        let s = ar(1024);
        let no_skew = m.time_schedule(&s, SimTime::ZERO);
        let skewed = m.time_schedule(&s, SimTime::from_us(10));
        assert_eq!(skewed.sync, no_skew.sync + SimTime::from_us(10));
        assert_eq!(skewed.inter_bank, no_skew.inter_bank);
    }

    #[test]
    fn mem_bucket_appears_only_beyond_wram_budget() {
        let m = TimingModel::paper();
        // 32 KiB fits the 48 KiB staging budget.
        assert_eq!(m.time_schedule(&ar(8192), SimTime::ZERO).mem, SimTime::ZERO);
        // 64 KiB does not.
        let b = m.time_schedule(&ar(16384), SimTime::ZERO);
        assert!(b.mem > SimTime::ZERO);
    }

    #[test]
    fn tier_times_match_phase_durations() {
        let m = TimingModel::paper();
        let s = ar(8192);
        let t = m.tier_times(&s);
        assert!(t.rs_bank > SimTime::ZERO);
        assert!(t.rs_chip > SimTime::ZERO);
        assert!(t.rs_rank > SimTime::ZERO);
        assert_eq!(t.ag_rank, SimTime::ZERO);
        // Symmetric hierarchy: AG mirrors RS within a factor (AG moves the
        // same bytes as RS on each tier).
        assert!(t.ag_bank > SimTime::ZERO);
        let sum = t.total();
        let b = m.time_schedule(&s, SimTime::ZERO);
        assert_eq!(sum + b.sync + b.mem, b.total());
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = CommBreakdown {
            sync: SimTime::from_ns(10),
            inter_bank: SimTime::from_ns(20),
            ..CommBreakdown::zero()
        };
        let b = CommBreakdown {
            host: SimTime::from_ns(70),
            ..CommBreakdown::zero()
        };
        let c = a + b;
        assert_eq!(c.total(), SimTime::from_ns(100));
        assert_eq!(c.network(), SimTime::from_ns(30));
        assert_eq!(c.percent(SimTime::from_ns(70)), 70.0);
        let s: CommBreakdown = [a, b].into_iter().sum();
        assert_eq!(s, c);
        assert!(c.to_string().contains("total"));
    }
}
