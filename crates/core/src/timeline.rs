//! Schedule timelines — per-transfer start/end instants, Gantt-style.
//!
//! The analytic [`crate::timing`] model collapses a schedule to bucket
//! durations; this module keeps the structure: every step's absolute start
//! offset (what the WAIT phase counts down to on the real hardware —
//! Algorithm 1's `offset` generalized beyond AllReduce) and every
//! transfer's window within it. Useful for visualizing schedules, for
//! debugging builders, and as the host-side artifact a real deployment
//! would ship next to the instruction streams.

use std::collections::HashMap;

use pim_faults::FaultInjector;
use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use pim_arch::geometry::DpuId;

use crate::error::PimnetError;
use crate::schedule::{CommSchedule, PhaseLabel, ScheduleView};
use crate::sync::SyncModel;
use crate::timing::TimingModel;
use crate::topology::Resource;

/// One transfer's window in the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransferWindow {
    /// Phase index within the schedule.
    pub phase: usize,
    /// Tier of that phase.
    pub label: PhaseLabel,
    /// Step index within the phase.
    pub step: usize,
    /// Sender.
    pub src: DpuId,
    /// Receivers.
    pub dsts: Vec<DpuId>,
    /// Bytes on the wire.
    pub bytes: u64,
    /// Absolute start (after the READY/START barrier).
    pub start: SimTime,
    /// Absolute end of this transfer's serialization through its slowest
    /// resource (transfers sharing WAIT-multiplexed resources may overlap
    /// in this window; the *step* end is exact, the per-transfer end is
    /// its stand-alone serialization).
    pub end: SimTime,
}

/// A schedule's full timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    /// The READY/START barrier cost preceding step 0.
    pub sync: SimTime,
    /// Every transfer window, in schedule order.
    pub windows: Vec<TransferWindow>,
    /// Completion time (equals the timing model's network + sync time).
    pub end: SimTime,
}

impl Timeline {
    /// Builds the timeline of `schedule` (in either layout) under `timing`.
    #[must_use]
    pub fn build<S: ScheduleView>(schedule: &S, timing: &TimingModel) -> Timeline {
        let hdr = schedule.header();
        let sync = SyncModel::from_fabric(&timing.fabric).barrier_for(schedule, SimTime::ZERO);
        let mut cursor = sync;
        let mut windows = Vec::with_capacity(schedule.view_transfer_count());
        for pi in 0..schedule.phase_count() {
            let label = schedule.phase_label(pi);
            for si in 0..schedule.steps_in(pi) {
                let step = schedule.step(pi, si);
                let step_time = timing.step_time_of(hdr.elem_bytes, step);
                for t in step.transfers() {
                    if t.is_local() {
                        continue;
                    }
                    let bytes = t.bytes(hdr.elem_bytes);
                    // Stand-alone serialization through the slowest hop.
                    let dur = t
                        .resources
                        .iter()
                        .map(|r| r.bandwidth(&timing.fabric).transfer_time(bytes))
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    windows.push(TransferWindow {
                        phase: pi,
                        label,
                        step: si,
                        src: t.src,
                        dsts: t.dsts.to_vec(),
                        bytes: bytes.as_u64(),
                        start: cursor,
                        end: (cursor + dur).min(cursor + step_time),
                    });
                }
                cursor += step_time;
            }
        }
        Timeline {
            sync,
            windows,
            end: cursor,
        }
    }

    /// Builds the timeline under a fault scenario.
    ///
    /// Three fault effects show up in the timing:
    ///
    /// * **stragglers** stretch the READY/START barrier by the worst
    ///   straggler's delay (START waits for the last READY);
    /// * **transient CRC failures** serialize retries into the step:
    ///   a transfer corrupted `k` times occupies its resources for
    ///   `k + 1` serializations plus the exponential backoff between
    ///   re-sends, and the step ends when its worst transfer chain does;
    /// * **dead DPUs** make the plan untimeable — the caller must degrade
    ///   the schedule first (`resilience`).
    ///
    /// With an inactive injector this is exactly [`Timeline::build`] —
    /// the fault-free path costs nothing and changes nothing.
    ///
    /// # Errors
    ///
    /// * [`PimnetError::DeadDpu`] if a participant is hard-dead;
    /// * [`PimnetError::TransferFailed`] if a transfer's retry budget is
    ///   exhausted at the configured error rate.
    pub fn build_with_faults(
        schedule: &CommSchedule,
        timing: &TimingModel,
        injector: &FaultInjector,
    ) -> Result<Timeline, PimnetError> {
        if !injector.is_active() {
            return Ok(Timeline::build(schedule, timing));
        }
        if let Some(dead) = schedule.participants().find(|id| injector.is_dead(id.0)) {
            return Err(PimnetError::DeadDpu { dpu: dead.0 });
        }
        let straggle_ns = schedule
            .participants()
            .map(|id| injector.straggler_delay_ns(id.0, 0))
            .max()
            .unwrap_or(0);
        let sync = SyncModel::from_fabric(&timing.fabric)
            .barrier(timing.scope_of(schedule), SimTime::from_ns(straggle_ns));
        let mut cursor = sync;
        let mut windows = Vec::with_capacity(schedule.transfer_count());
        for (pi, phase) in schedule.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                let base = timing.step_time(schedule, step);
                // The step ends when its slowest retry chain does.
                let mut stretch = SimTime::ZERO;
                for (ti, t) in step.transfers.iter().enumerate() {
                    if t.is_local() {
                        continue;
                    }
                    let corrupted = injector
                        .attempts_before_success(pi as u64, si as u64, ti as u64)
                        .ok_or(PimnetError::TransferFailed {
                            phase: pi,
                            step: si,
                            transfer: ti,
                            attempts: injector.config().max_retries + 1,
                        })?;
                    let bytes = t.bytes(schedule.elem_bytes);
                    let dur = t
                        .resources
                        .iter()
                        .map(|r| r.bandwidth(&timing.fabric).transfer_time(bytes))
                        .max()
                        .unwrap_or(SimTime::ZERO);
                    let backoff = SimTime::from_ns(injector.total_backoff_ns(corrupted));
                    let extra = dur * u64::from(corrupted) + backoff;
                    stretch = stretch.max(extra);
                    let step_end_bound = cursor + base + extra;
                    windows.push(TransferWindow {
                        phase: pi,
                        label: phase.label,
                        step: si,
                        src: t.src,
                        dsts: t.dsts.clone(),
                        bytes: bytes.as_u64(),
                        start: cursor,
                        end: (cursor + dur * u64::from(corrupted + 1) + backoff)
                            .min(step_end_bound),
                    });
                }
                cursor += base + stretch;
            }
        }
        Ok(Timeline {
            sync,
            windows,
            end: cursor,
        })
    }

    /// Repairs `schedule` around a permanent-fault scenario, then builds
    /// the repaired schedule's timeline, shifted by the control-plane
    /// repair overhead ([`SyncModel::repair_overhead`]: one chip-scope
    /// one-way per serialization step the repair inserted).
    ///
    /// With an empty fault set this is exactly [`Timeline::build`].
    ///
    /// # Errors
    ///
    /// Whatever [`crate::schedule::repair::repair`] returns when the
    /// fault set defeats repair ([`PimnetError::DeadRank`],
    /// [`PimnetError::Unroutable`], [`PimnetError::ScheduleInvalid`]).
    pub fn build_repaired(
        schedule: &CommSchedule,
        timing: &TimingModel,
        faults: &pim_faults::permanent::PermanentFaultSet,
    ) -> Result<(Timeline, crate::schedule::repair::RepairReport), PimnetError> {
        let repaired = crate::schedule::repair::repair(schedule, faults)?;
        let mut t = Timeline::build(&repaired.schedule, timing);
        let overhead =
            SyncModel::from_fabric(&timing.fabric).repair_overhead(repaired.report.extra_steps);
        if overhead > SimTime::ZERO {
            t.sync += overhead;
            for w in &mut t.windows {
                w.start += overhead;
                w.end += overhead;
            }
            t.end += overhead;
        }
        Ok((t, repaired.report))
    }

    /// [`Timeline::build`] plus observation: emits the `barrier` span,
    /// one `transfer` span per window, per-tier wire-byte and link-busy
    /// counters, and the completion watermark. The timeline itself is
    /// bit-identical to the un-probed build.
    #[must_use]
    pub fn build_probed(schedule: &CommSchedule, timing: &TimingModel, probe: &Probe) -> Timeline {
        let t = Timeline::build(schedule, timing);
        if probe.is_active() {
            t.record(schedule, timing, SimTime::ZERO, probe);
        }
        t
    }

    /// [`Timeline::build_with_faults`] plus observation: everything
    /// [`Timeline::build_probed`] records, plus one `straggler` instant
    /// per delayed participant and one `retry` instant per serialized
    /// re-send (at the stretched window's start). Nothing is recorded on
    /// the error path.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Timeline::build_with_faults`].
    pub fn build_with_faults_probed(
        schedule: &CommSchedule,
        timing: &TimingModel,
        injector: &FaultInjector,
        probe: &Probe,
    ) -> Result<Timeline, PimnetError> {
        if !probe.is_active() {
            return Timeline::build_with_faults(schedule, timing, injector);
        }
        let t = Timeline::build_with_faults(schedule, timing, injector)?;
        let skew_ns = if injector.is_active() {
            schedule
                .participants()
                .map(|id| injector.straggler_delay_ns(id.0, 0))
                .max()
                .unwrap_or(0)
        } else {
            0
        };
        t.record(schedule, timing, SimTime::from_ns(skew_ns), probe);
        if injector.is_active() {
            t.record_fault_events(schedule, injector, probe);
        }
        Ok(t)
    }

    /// [`Timeline::build_repaired`] plus observation: everything
    /// [`Timeline::build_probed`] records (over the *repaired* schedule),
    /// plus one `repair-overhead` instant when the repair inserted steps.
    ///
    /// # Errors
    ///
    /// Exactly those of [`Timeline::build_repaired`].
    pub fn build_repaired_probed(
        schedule: &CommSchedule,
        timing: &TimingModel,
        faults: &pim_faults::permanent::PermanentFaultSet,
        probe: &Probe,
    ) -> Result<(Timeline, crate::schedule::repair::RepairReport), PimnetError> {
        if !probe.is_active() {
            return Timeline::build_repaired(schedule, timing, faults);
        }
        // Mirror of `build_repaired`, keeping the repaired schedule in
        // scope so the recording pass can attribute link-busy time to it.
        let repaired = crate::schedule::repair::repair(schedule, faults)?;
        let mut t = Timeline::build(&repaired.schedule, timing);
        let overhead =
            SyncModel::from_fabric(&timing.fabric).repair_overhead(repaired.report.extra_steps);
        if overhead > SimTime::ZERO {
            t.sync += overhead;
            for w in &mut t.windows {
                w.start += overhead;
                w.end += overhead;
            }
            t.end += overhead;
        }
        if overhead > SimTime::ZERO || !repaired.report.is_identity() {
            probe.trace.instant(
                SimTime::ZERO,
                codes::REPAIR_OVERHEAD,
                [repaired.report.extra_steps as u64, overhead.as_ps(), 0, 0],
            );
        }
        t.record(&repaired.schedule, timing, SimTime::ZERO, probe);
        Ok((t, repaired.report))
    }

    /// Records this built timeline into `probe`: barrier, transfer
    /// windows, per-tier byte/busy counters, completion watermark.
    fn record(&self, schedule: &CommSchedule, timing: &TimingModel, skew: SimTime, probe: &Probe) {
        SyncModel::from_fabric(&timing.fabric).record_barrier(
            timing.scope_of(schedule),
            self.sync,
            skew,
            probe,
        );
        for w in &self.windows {
            let tier = w.label.tier_index();
            probe.trace.span(
                w.start,
                w.end.saturating_sub(w.start),
                codes::TRANSFER,
                [
                    u64::from(w.src.0),
                    w.dsts.len() as u64,
                    w.bytes,
                    tier as u64,
                ],
            );
            probe.metrics.wire_transfer(tier, w.bytes);
        }
        if probe.metrics.is_enabled() {
            // Fault-free serialization occupancy per link. Each step lasts
            // at least its busiest link's occupancy, so every per-link sum
            // is ≤ end-to-end wall time (`tests/metrics_invariants.rs`).
            let mut busy: HashMap<Resource, u64> = HashMap::new();
            for phase in &schedule.phases {
                for step in &phase.steps {
                    for t in &step.transfers {
                        if t.is_local() {
                            continue;
                        }
                        let bytes = t.bytes(schedule.elem_bytes);
                        for r in &t.resources {
                            *busy.entry(*r).or_insert(0) +=
                                r.bandwidth(&timing.fabric).transfer_time(bytes).as_ps();
                        }
                    }
                }
            }
            let mut by_tier = [0u64; pim_sim::metrics::TIERS];
            let mut max_busy = 0u64;
            for (r, ps) in &busy {
                by_tier[r.tier_index()] += ps;
                max_busy = max_busy.max(*ps);
            }
            for (tier, ps) in by_tier.iter().enumerate() {
                if *ps > 0 {
                    probe.metrics.link_busy(tier, *ps);
                }
            }
            probe.metrics.max_link_busy(max_busy);
        }
        probe.metrics.wall(self.end.as_ps());
    }

    /// Emits `straggler` and `retry` instants for an already-built faulty
    /// timeline by re-querying the injector's pure decision functions.
    fn record_fault_events(
        &self,
        schedule: &CommSchedule,
        injector: &FaultInjector,
        probe: &Probe,
    ) {
        for id in schedule.participants() {
            let delay_ns = injector.straggler_delay_ns(id.0, 0);
            if delay_ns > 0 {
                probe.trace.instant(
                    SimTime::ZERO,
                    codes::STRAGGLER,
                    [u64::from(id.0), delay_ns, 0, 0],
                );
                probe.metrics.straggler(delay_ns);
            }
        }
        let mut wi = 0usize;
        for (pi, phase) in schedule.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                for (ti, t) in step.transfers.iter().enumerate() {
                    if t.is_local() {
                        continue;
                    }
                    let start = self.windows[wi].start;
                    wi += 1;
                    // The build succeeded, so every transfer has a finite
                    // attempt count.
                    let corrupted = injector
                        .attempts_before_success(pi as u64, si as u64, ti as u64)
                        .unwrap_or(0);
                    for attempt in 1..=u64::from(corrupted) {
                        probe.trace.instant(
                            start,
                            codes::RETRY,
                            [pi as u64, si as u64, ti as u64, attempt],
                        );
                    }
                }
            }
        }
    }

    /// Renders a CSV (one row per window) for plotting.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("phase,tier,step,src,dsts,bytes,start_ns,end_ns\n");
        for w in &self.windows {
            let dsts = w
                .dsts
                .iter()
                .map(|d| d.0.to_string())
                .collect::<Vec<_>>()
                .join("|");
            out.push_str(&format!(
                "{},{},{},{},{},{},{:.1},{:.1}\n",
                w.phase,
                w.label,
                w.step,
                w.src.0,
                dsts,
                w.bytes,
                w.start.as_ns(),
                w.end.as_ns()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::geometry::PimGeometry;

    fn timeline(kind: CollectiveKind, n: u32, elems: usize) -> (CommSchedule, Timeline) {
        let s = CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap();
        let t = Timeline::build(&s, &TimingModel::paper());
        (s, t)
    }

    #[test]
    fn end_matches_the_timing_model() {
        let (s, t) = timeline(CollectiveKind::AllReduce, 64, 2048);
        let b = TimingModel::paper().time_schedule(&s, SimTime::ZERO);
        assert_eq!(t.end, b.total() - b.mem);
    }

    #[test]
    fn windows_are_ordered_and_contained() {
        let (_, t) = timeline(CollectiveKind::AllToAll, 16, 256);
        assert!(!t.windows.is_empty());
        for w in &t.windows {
            assert!(w.start >= t.sync);
            assert!(w.end <= t.end);
            assert!(w.start <= w.end);
        }
        // Starts are non-decreasing in schedule order.
        assert!(t.windows.windows(2).all(|p| p[0].start <= p[1].start));
    }

    #[test]
    fn steps_of_one_ring_phase_abut() {
        let (_, t) = timeline(CollectiveKind::AllReduce, 8, 1024);
        // Single chip: every step's transfers share a start; consecutive
        // steps start where the previous ended (ring steps are uniform).
        let starts: Vec<SimTime> = t.windows.iter().map(|w| w.start).collect();
        let distinct: std::collections::BTreeSet<_> = starts.iter().collect();
        assert_eq!(distinct.len(), 14); // 7 RS + 7 AG steps
    }

    #[test]
    fn inactive_faults_reproduce_the_plain_timeline_exactly() {
        use pim_faults::FaultInjector;
        let (s, plain) = timeline(CollectiveKind::AllReduce, 32, 512);
        let faulty =
            Timeline::build_with_faults(&s, &TimingModel::paper(), &FaultInjector::none()).unwrap();
        assert_eq!(faulty, plain);
    }

    #[test]
    fn transient_errors_stretch_the_timeline_deterministically() {
        use pim_faults::{FaultConfig, FaultInjector};
        let (s, plain) = timeline(CollectiveKind::AllReduce, 32, 512);
        let inj = FaultInjector::new(
            FaultConfig {
                transient_ber: 0.2,
                max_retries: 8,
                ..FaultConfig::none()
            }
            .with_seed(21),
        );
        let m = TimingModel::paper();
        let a = Timeline::build_with_faults(&s, &m, &inj).unwrap();
        let b = Timeline::build_with_faults(&s, &m, &inj).unwrap();
        assert_eq!(a, b, "same seed must give the same timeline");
        assert!(a.end > plain.end, "retries must cost time");
        assert_eq!(a.windows.len(), plain.windows.len());
        for w in &a.windows {
            assert!(w.start >= a.sync && w.end <= a.end && w.start <= w.end);
        }
    }

    #[test]
    fn stragglers_stretch_only_the_barrier() {
        use pim_faults::{FaultConfig, FaultInjector};
        let (s, plain) = timeline(CollectiveKind::AllReduce, 32, 512);
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 1.0,
                straggler_max_ns: 900,
                ..FaultConfig::none()
            }
            .with_seed(8),
        );
        let t = Timeline::build_with_faults(&s, &TimingModel::paper(), &inj).unwrap();
        assert!(t.sync > plain.sync);
        assert_eq!(t.end - t.sync, plain.end - plain.sync);
    }

    #[test]
    fn dead_dpu_refuses_to_time() {
        use pim_faults::{FaultConfig, FaultInjector};
        let (s, _) = timeline(CollectiveKind::AllReduce, 8, 64);
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: vec![1],
            ..FaultConfig::none()
        });
        assert_eq!(
            Timeline::build_with_faults(&s, &TimingModel::paper(), &inj),
            Err(PimnetError::DeadDpu { dpu: 1 })
        );
    }

    #[test]
    fn repaired_timeline_prices_the_repair() {
        use pim_faults::permanent::PermanentFaultSet;
        let (s, plain) = timeline(CollectiveKind::AllReduce, 8, 1024);
        let m = TimingModel::paper();
        // Identity repair reproduces the plain timeline exactly.
        let (t, report) = Timeline::build_repaired(&s, &m, &PermanentFaultSet::none()).unwrap();
        assert_eq!(t, plain);
        assert!(report.is_identity());
        // A dead segment costs: reroute hops, serialization, and (when
        // steps were inserted) the control-plane overhead on the barrier.
        let f = PermanentFaultSet::parse_tokens("r0c0b1E").unwrap();
        let (t, report) = Timeline::build_repaired(&s, &m, &f).unwrap();
        assert!(t.end > plain.end);
        if report.extra_steps > 0 {
            assert!(t.sync > plain.sync);
        }
        for w in &t.windows {
            assert!(w.start >= t.sync && w.end <= t.end);
        }
        // Deterministic.
        let (u, _) = Timeline::build_repaired(&s, &m, &f).unwrap();
        assert_eq!(t, u);
    }

    #[test]
    fn csv_has_one_row_per_window() {
        let (_, t) = timeline(CollectiveKind::ReduceScatter, 16, 128);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), t.windows.len() + 1);
        assert!(csv.starts_with("phase,tier,step"));
    }
}
