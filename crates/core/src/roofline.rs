//! Roofline models (paper §III-A, Fig 2).
//!
//! Two variants:
//!
//! * the **classic roofline** \[87\]: attainable throughput =
//!   `min(peak, AI × memory-bandwidth)` with AI in ops per byte of local
//!   memory traffic — identical for every backend, since PIM internal
//!   bandwidth does not depend on the interconnect;
//! * the **communication roofline** \[14\]: the x-axis becomes
//!   *communication arithmetic intensity* (ops per byte sent over the
//!   network) and the slope becomes the *effective collective bandwidth* of
//!   a backend — which is where PIMnet's ~8× advantage over idealized
//!   software shows up as a much steeper slope.

use pim_sim::Bytes;

use pim_arch::SystemConfig;

use crate::backends::CollectiveBackend;
use crate::collective::CollectiveSpec;
use crate::error::PimnetError;

/// A single roofline: a peak and a slope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Compute ceiling, in operations per second (whole system).
    pub peak_ops_per_sec: f64,
    /// Bandwidth slope, in bytes per second.
    pub bandwidth: f64,
}

impl Roofline {
    /// Attainable throughput at arithmetic intensity `ai` (ops/byte).
    #[must_use]
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth).min(self.peak_ops_per_sec)
    }

    /// The knee: the intensity beyond which the workload is compute-bound.
    #[must_use]
    pub fn knee(&self) -> f64 {
        self.peak_ops_per_sec / self.bandwidth
    }
}

/// The classic roofline of a PIM system: peak = ΣDPU throughput, slope =
/// aggregate internal (MRAM↔WRAM DMA) bandwidth.
#[must_use]
pub fn compute_roofline(system: &SystemConfig) -> Roofline {
    let dpus = f64::from(system.geometry.total_dpus());
    Roofline {
        peak_ops_per_sec: system.dpu.peak_ops_per_sec() * dpus,
        bandwidth: system.dma.bandwidth.as_bytes_per_sec() as f64 * dpus,
    }
}

/// Effective collective bandwidth of a backend: algorithmic bytes (one
/// contribution per DPU) divided by the measured collective time.
///
/// # Errors
///
/// Propagates the backend's errors.
pub fn effective_collective_bandwidth(
    backend: &dyn CollectiveBackend,
    spec: &CollectiveSpec,
) -> Result<f64, PimnetError> {
    let t = backend.collective(spec)?.total();
    let algorithmic = algorithmic_bytes(spec, backend.dpus_per_channel());
    Ok(algorithmic.as_u64() as f64 / t.as_secs_f64())
}

/// The communication roofline of a backend: classic peak, collective-
/// bandwidth slope.
///
/// # Errors
///
/// Propagates the backend's errors.
pub fn communication_roofline(
    system: &SystemConfig,
    backend: &dyn CollectiveBackend,
    spec: &CollectiveSpec,
) -> Result<Roofline, PimnetError> {
    Ok(Roofline {
        peak_ops_per_sec: compute_roofline(system).peak_ops_per_sec,
        bandwidth: effective_collective_bandwidth(backend, spec)?,
    })
}

/// Bytes the collective logically exchanges (each DPU contributes its
/// payload once).
#[must_use]
pub fn algorithmic_bytes(spec: &CollectiveSpec, dpus: u32) -> Bytes {
    spec.bytes_per_dpu * u64::from(dpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{BackendKind, PimnetBackend, SoftwareIdealBackend};
    use crate::collective::CollectiveKind;
    use crate::fabric::FabricConfig;

    #[test]
    fn roofline_shape() {
        let r = Roofline {
            peak_ops_per_sec: 100.0,
            bandwidth: 10.0,
        };
        assert_eq!(r.knee(), 10.0);
        assert_eq!(r.attainable(1.0), 10.0); // bandwidth-bound
        assert_eq!(r.attainable(100.0), 100.0); // compute-bound
    }

    #[test]
    fn paper_system_peak() {
        let r = compute_roofline(&SystemConfig::paper());
        // 256 DPUs x 350 MHz = 89.6 GOPS.
        assert_eq!(r.peak_ops_per_sec, 256.0 * 350e6);
        assert!(r.knee() > 0.0);
    }

    #[test]
    fn pimnet_slope_is_much_steeper_than_software() {
        // Fig 2: PIMnet reaches ~8x the compute throughput of Software
        // (Ideal) in the communication-bound region.
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
        let p = PimnetBackend::new(SystemConfig::paper(), FabricConfig::paper());
        let s = SoftwareIdealBackend::new(SystemConfig::paper());
        let bw_p = effective_collective_bandwidth(&p, &spec).unwrap();
        let bw_s = effective_collective_bandwidth(&s, &spec).unwrap();
        let ratio = bw_p / bw_s;
        assert!(
            ratio > 5.0,
            "PIMnet/software collective bandwidth ratio only {ratio:.1}"
        );
        assert_eq!(p.kind(), BackendKind::Pimnet);
    }

    #[test]
    fn communication_roofline_is_consistent() {
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
        let sys = SystemConfig::paper();
        let p = PimnetBackend::new(sys, FabricConfig::paper());
        let r = communication_roofline(&sys, &p, &spec).unwrap();
        assert_eq!(r.peak_ops_per_sec, compute_roofline(&sys).peak_ops_per_sec);
        assert!(r.bandwidth > 0.0);
    }

    #[test]
    fn algorithmic_bytes_scale_with_dpus() {
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(1));
        assert_eq!(algorithmic_bytes(&spec, 256), Bytes::kib(256));
    }
}
