//! The DIMM-Link comparison backend \[89\].
//!
//! DIMM-Link adds dedicated point-to-point links between DIMMs and performs
//! collective *operations* in the DIMM's buffer chip (Table I). Following
//! the paper's fair-comparison rules: the inter-rank links get the same
//! global bandwidth as PIMnet's bus, bridge overheads are ignored, and each
//! rank runs its local collective in parallel in its own buffer chip.
//!
//! What DIMM-Link fundamentally lacks (and what Fig 11 charges it for) is
//! *bank-level* parallelism: every bank's payload funnels through the
//! rank's single 19.2 GB/s DRAM interface — once up to the buffer chip,
//! once through the buffer chip's rearrange/reduce pass, and once back down
//! to each individual bank — while PIMnet's 64 ring stops move
//! 179.2 GB/s in parallel. DIMM-Link also has no WRAM datapath (PIMnet adds
//! one, §V-A), so payloads must be DMA-staged between WRAM and MRAM before
//! the buffer chip can see them (the `Mem` bucket).

use pim_sim::{Bandwidth, Bytes, SimTime};

use pim_arch::SystemConfig;

use crate::backends::{ensure_single_channel, BackendKind, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::fabric::FabricConfig;
use crate::timing::CommBreakdown;

/// Rank-local collectives in the buffer chip + dedicated inter-rank links.
#[derive(Debug, Clone, Copy)]
pub struct DimmLinkBackend {
    system: SystemConfig,
    /// Inter-rank link bandwidth (kept equal to PIMnet's bus, per §VI-A).
    link: Bandwidth,
}

impl DimmLinkBackend {
    /// Creates the backend; the inter-rank links inherit PIMnet's global
    /// bandwidth from `fabric` to keep the comparison fair.
    #[must_use]
    pub fn new(system: SystemConfig, fabric: FabricConfig) -> Self {
        DimmLinkBackend {
            system,
            link: fabric.rank_bus_bw,
        }
    }

    fn funnel(&self, bytes: Bytes) -> SimTime {
        self.system.buffer_chip_bw.transfer_time(bytes)
    }

    /// Mean hop count of uniform traffic on an R-node bidirectional ring.
    fn mean_ring_hops(r: u64) -> f64 {
        if r <= 1 {
            return 0.0;
        }
        let sum: u64 = (1..r).map(|d| d.min(r - d)).sum();
        sum as f64 / (r - 1) as f64
    }

    /// Time for `bytes` of uniformly-distributed cross-rank traffic over
    /// the R dedicated links.
    fn cross_rank_time(&self, bytes: Bytes) -> SimTime {
        let r = u64::from(self.system.geometry.ranks_per_channel);
        if r <= 1 || bytes.is_zero() {
            return SimTime::ZERO;
        }
        let hops = Self::mean_ring_hops(r);
        let effective = Bandwidth::bytes_per_sec(
            (self.link.as_bytes_per_sec() as f64 * r as f64 / hops) as u64,
        );
        effective.transfer_time(bytes)
    }

    /// WRAM↔MRAM staging: DIMM-Link transfers source MRAM, not WRAM.
    fn staging(&self, payload: Bytes) -> SimTime {
        self.system.dma.transfer_time(payload) * 2
    }
}

impl CollectiveBackend for DimmLinkBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::DimmLink
    }

    fn name(&self) -> &'static str {
        "dimm-link"
    }

    fn dpus_per_channel(&self) -> u32 {
        self.system.geometry.dpus_per_channel()
    }

    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError> {
        ensure_single_channel(&self.system, "dimm-link")?;
        let g = &self.system.geometry;
        let m = spec.bytes_per_dpu;
        let per_rank = u64::from(g.dpus_per_rank());
        let ranks = u64::from(g.ranks_per_channel);
        let rank_data = m * per_rank;
        let total = m * per_rank * ranks;

        let mut b = CommBreakdown {
            sync: spec.skew,
            mem: self.staging(m),
            ..CommBreakdown::zero()
        };

        match spec.kind {
            CollectiveKind::AllReduce => {
                // up + reduce pass + per-bank write-back, per rank in parallel.
                b.inter_chip = self.funnel(rank_data) * 2 + self.funnel(rank_data);
                // Ring AllReduce of the rank-reduced vector m.
                b.inter_rank = self.link.transfer_time(m / ranks * (ranks - 1)) * 2;
            }
            CollectiveKind::ReduceScatter => {
                b.inter_chip = self.funnel(rank_data) * 2 + self.funnel(m);
                b.inter_rank = self.link.transfer_time(m / ranks * (ranks - 1));
            }
            CollectiveKind::AllGather => {
                b.inter_chip = self.funnel(rank_data) + self.funnel(total);
                b.inter_rank = self
                    .link
                    .transfer_time(rank_data * (ranks.saturating_sub(1)));
            }
            CollectiveKind::AllToAll => {
                // up + rearrange + down, plus the cross-rank fraction over
                // the links.
                b.inter_chip = self.funnel(rank_data) * 3;
                let cross = if ranks > 1 {
                    total / ranks * (ranks - 1)
                } else {
                    Bytes::ZERO
                };
                b.inter_rank = self.cross_rank_time(cross);
            }
            CollectiveKind::Broadcast => {
                b.inter_chip = self.funnel(m) + self.funnel(rank_data);
                b.inter_rank = self.link.transfer_time(m);
            }
            CollectiveKind::Reduce => {
                b.inter_chip = self.funnel(rank_data) * 2 + self.funnel(m);
                b.inter_rank = self.link.transfer_time(m / ranks * (ranks - 1));
            }
            CollectiveKind::Gather => {
                b.inter_chip = self.funnel(rank_data) + self.funnel(total);
                b.inter_rank = self
                    .link
                    .transfer_time(rank_data * (ranks.saturating_sub(1)));
            }
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> DimmLinkBackend {
        DimmLinkBackend::new(SystemConfig::paper(), FabricConfig::paper())
    }

    fn spec(kind: CollectiveKind) -> CollectiveSpec {
        CollectiveSpec::new(kind, Bytes::kib(32))
    }

    #[test]
    fn allreduce_is_hundreds_of_microseconds() {
        let t = backend()
            .collective(&spec(CollectiveKind::AllReduce))
            .unwrap()
            .total();
        assert!(
            (200.0..900.0).contains(&t.as_us()),
            "DIMM-Link AR = {t}, outside the expected band"
        );
    }

    #[test]
    fn funnel_dominates_the_breakdown() {
        let b = backend()
            .collective(&spec(CollectiveKind::AllReduce))
            .unwrap();
        assert!(b.inter_chip > b.inter_rank);
        assert!(b.mem > SimTime::ZERO, "MRAM staging must be charged");
        assert_eq!(b.host, SimTime::ZERO);
    }

    #[test]
    fn mean_ring_hops_values() {
        assert_eq!(DimmLinkBackend::mean_ring_hops(1), 0.0);
        assert_eq!(DimmLinkBackend::mean_ring_hops(2), 1.0);
        // R=4: distances {1,2,1} -> mean 4/3.
        assert!((DimmLinkBackend::mean_ring_hops(4) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_rank_has_no_link_traffic() {
        let system = SystemConfig::paper().with_geometry(pim_arch::PimGeometry::new(8, 8, 1, 1));
        let b = DimmLinkBackend::new(system, FabricConfig::paper());
        let r = b.collective(&spec(CollectiveKind::AllReduce)).unwrap();
        assert_eq!(r.inter_rank, SimTime::ZERO);
    }
}
