//! Multi-channel composition (paper Fig 16).
//!
//! PIMnet interconnects the PIM banks *within one memory channel*; data
//! crossing channels still goes through the host CPU (§VI-B,
//! "Multi-channel Scaling"). The saving grace for reducing collectives is
//! that a channel-local reduction shrinks the data before it ever touches
//! the host: with `k` channels, the host sees `k` partial vectors instead
//! of `k × DPUs-per-channel` of them. This module composes a
//! single-channel backend into a multi-channel collective accordingly.

use pim_arch::hostlink::HostLink;

use crate::backends::{BackendKind, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::timing::CommBreakdown;

/// Times a collective spanning `channels` memory channels: every channel
/// runs `backend`'s single-channel collective in parallel, then the
/// cross-channel stage goes through `host`.
///
/// For the host-based backends (B, S) the cross-channel stage is only the
/// shared CPU reduction — their per-channel stage already lands the data in
/// host memory. For the direct backends (P, D, N) the host additionally
/// gathers one partial per channel and pushes the combined result back.
///
/// # Errors
///
/// Propagates the single-channel backend's errors.
pub fn multi_channel_collective(
    backend: &dyn CollectiveBackend,
    host: &HostLink,
    channels: u32,
    spec: &CollectiveSpec,
) -> Result<CommBreakdown, PimnetError> {
    let mut b = backend.collective(spec)?;
    if channels <= 1 {
        return Ok(b);
    }
    let k = u64::from(channels);
    let m = spec.bytes_per_dpu;
    let host_based = matches!(
        backend.kind(),
        BackendKind::Baseline | BackendKind::SoftwareIdeal
    );

    match spec.kind {
        CollectiveKind::AllReduce | CollectiveKind::ReduceScatter | CollectiveKind::Reduce => {
            // Each channel has produced one m-sized partial.
            let partials = m * k;
            if host_based {
                // The per-channel DDR links run in parallel, but the host
                // CPU is one: marshalling the other channels' DPU buffers
                // and the reduction itself serialize on it. This is why the
                // baseline scales poorly with channels (Fig 16) — its CPU
                // work grows with total DPUs, PIMnet's with channel count.
                let extra_dpus = u64::from(backend.dpus_per_channel()) * (k - 1);
                let extra_bytes = m * extra_dpus;
                b.host += host.per_dpu_overhead * extra_dpus
                    + host.marshal_time(extra_bytes)
                    + host.reduce_time(extra_bytes);
            } else {
                b.host += host.gather_time(partials)
                    + host.reduce_time(partials)
                    + if spec.kind == CollectiveKind::AllReduce {
                        host.broadcast_time(m)
                    } else {
                        host.scatter_time(m)
                    }
                    + host.per_call_overhead * k;
            }
        }
        CollectiveKind::AllToAll => {
            // The cross-channel fraction of the total payload shuffles
            // through the host both ways.
            let cross = m * u64::from(backend.dpus_per_channel()) * (k - 1);
            b.host += host.gather_time(cross) + host.scatter_time(cross);
        }
        CollectiveKind::AllGather | CollectiveKind::Gather => {
            let cross = m * u64::from(backend.dpus_per_channel()) * (k - 1);
            b.host += host.gather_time(cross) + host.broadcast_time(cross);
        }
        CollectiveKind::Broadcast => {
            // The host broadcast reaches every channel in parallel; only a
            // per-channel call is added.
            b.host += host.per_call_overhead * k;
        }
    }
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::{BaselineHostBackend, PimnetBackend};
    use crate::fabric::FabricConfig;
    use pim_arch::SystemConfig;
    use pim_sim::Bytes;

    #[test]
    fn one_channel_is_the_identity() {
        let p = PimnetBackend::paper();
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
        let single = p.collective(&spec).unwrap();
        let multi = multi_channel_collective(&p, &SystemConfig::paper().host, 1, &spec).unwrap();
        assert_eq!(single, multi);
    }

    #[test]
    fn pimnet_speedup_grows_with_channels() {
        // Fig 16: channel-wise reduction keeps PIMnet's host traffic small,
        // so the PIMnet-vs-baseline ratio widens as channels scale.
        let sys = SystemConfig::paper();
        let p = PimnetBackend::paper();
        let b = BaselineHostBackend::new(sys);
        // A realistic embedding-lookup payload: at tiny payloads PIMnet's
        // fixed cross-channel API costs mask the effect.
        let spec = CollectiveSpec::new(CollectiveKind::ReduceScatter, Bytes::mib(1));
        let mut prev_ratio = 0.0;
        for channels in [1u32, 2, 4, 8] {
            let tp = multi_channel_collective(&p, &sys.host, channels, &spec)
                .unwrap()
                .total();
            let tb = multi_channel_collective(&b, &sys.host, channels, &spec)
                .unwrap()
                .total();
            let ratio = tb.ratio(tp);
            assert!(
                ratio >= prev_ratio * 0.95,
                "speedup should not collapse: {ratio} after {prev_ratio}"
            );
            prev_ratio = ratio;
        }
        assert!(prev_ratio > 1.0);
    }

    #[test]
    fn cross_channel_reduction_is_cheap_for_pimnet() {
        let sys = SystemConfig::paper();
        let p = PimnetBackend::paper();
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, Bytes::kib(32));
        let single = p.collective(&spec).unwrap().total();
        let multi = multi_channel_collective(&p, &sys.host, 8, &spec)
            .unwrap()
            .total();
        // The added host stage moves only 8 partials of 32 KiB (plus one
        // API call per channel) — well under a millisecond.
        assert!(
            (multi - single).as_us() < 500.0,
            "cross-channel stage too expensive: {multi} vs {single}"
        );
    }

    #[test]
    fn fabric_default_is_usable() {
        // Smoke-check that the composed call works for every kind P supports.
        let p = PimnetBackend::new(SystemConfig::paper(), FabricConfig::paper());
        for kind in CollectiveKind::ALL {
            let spec = CollectiveSpec::new(kind, Bytes::kib(4));
            multi_channel_collective(&p, &SystemConfig::paper().host, 4, &spec).unwrap();
        }
    }
}
