//! The NDPBridge comparison backend \[85\].
//!
//! NDPBridge adds hardware "bridges" across the DRAM hierarchy so banks can
//! exchange messages through the buffer chip without host software, but —
//! per the paper's Table I — inter-rank traffic still crosses the host CPU,
//! and the network performs no collective *operations* (no in-network
//! reduction), so AllReduce/ReduceScatter/Reduce are unsupported and the
//! paper compares against it only for All-to-All.

use pim_sim::{Bytes, SimTime};

use pim_arch::SystemConfig;

use crate::backends::{ensure_single_channel, BackendKind, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::timing::CommBreakdown;

/// Hardware bridges to the buffer chip; host-mediated inter-rank hops; no
/// reductions.
#[derive(Debug, Clone, Copy)]
pub struct NdpBridgeBackend {
    system: SystemConfig,
}

impl NdpBridgeBackend {
    /// Creates the backend for a system.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        NdpBridgeBackend { system }
    }

    fn funnel(&self, bytes: Bytes) -> SimTime {
        self.system.buffer_chip_bw.transfer_time(bytes)
    }

    /// Cross-rank bytes travel PIM→CPU and CPU→PIM, with no software
    /// overhead (the bridges are hardware).
    fn host_hop(&self, bytes: Bytes) -> SimTime {
        self.system.host.gather_time(bytes) + self.system.host.scatter_time(bytes)
    }

    fn staging(&self, payload: Bytes) -> SimTime {
        self.system.dma.transfer_time(payload) * 2
    }
}

impl CollectiveBackend for NdpBridgeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::NdpBridge
    }

    fn name(&self) -> &'static str {
        "ndp-bridge"
    }

    fn dpus_per_channel(&self) -> u32 {
        self.system.geometry.dpus_per_channel()
    }

    fn supports(&self, kind: CollectiveKind) -> bool {
        !kind.reduces()
    }

    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError> {
        if !self.supports(spec.kind) {
            return Err(PimnetError::UnsupportedCollective {
                kind: spec.kind,
                backend: "ndp-bridge",
            });
        }
        ensure_single_channel(&self.system, "ndp-bridge")?;
        let g = &self.system.geometry;
        let m = spec.bytes_per_dpu;
        let per_rank = u64::from(g.dpus_per_rank());
        let ranks = u64::from(g.ranks_per_channel);
        let rank_data = m * per_rank;
        let total = rank_data * ranks;
        let cross = if ranks > 1 {
            total / ranks * (ranks - 1)
        } else {
            Bytes::ZERO
        };

        let mut b = CommBreakdown {
            sync: spec.skew,
            mem: self.staging(m),
            ..CommBreakdown::zero()
        };
        match spec.kind {
            CollectiveKind::AllToAll => {
                // Rank-local exchange through the bridges (up + rearrange +
                // down), plus cross-rank bytes through the host.
                b.inter_chip = self.funnel(rank_data) * 3;
                b.host = self.host_hop(cross);
            }
            CollectiveKind::AllGather => {
                b.inter_chip = self.funnel(rank_data) + self.funnel(total);
                b.host =
                    self.system.host.gather_time(cross) + self.system.host.broadcast_time(total);
            }
            CollectiveKind::Broadcast => {
                b.inter_chip = self.funnel(m) + self.funnel(rank_data);
                b.host = self.system.host.broadcast_time(m);
            }
            CollectiveKind::Gather => {
                b.inter_chip = self.funnel(rank_data) + self.funnel(total);
                b.host = self.system.host.gather_time(cross) + self.system.host.scatter_time(cross);
            }
            CollectiveKind::AllReduce | CollectiveKind::ReduceScatter | CollectiveKind::Reduce => {
                // Already rejected by the supports() gate above; keep the
                // typed error rather than a panic in case a future edit
                // lets a reduction slip past it.
                return Err(PimnetError::UnsupportedCollective {
                    kind: spec.kind,
                    backend: "ndp-bridge",
                });
            }
        }
        Ok(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reductions_are_rejected() {
        let b = NdpBridgeBackend::new(SystemConfig::paper());
        for kind in [
            CollectiveKind::AllReduce,
            CollectiveKind::ReduceScatter,
            CollectiveKind::Reduce,
        ] {
            assert!(!b.supports(kind));
            assert!(matches!(
                b.collective(&CollectiveSpec::new(kind, Bytes::kib(1))),
                Err(PimnetError::UnsupportedCollective { .. })
            ));
        }
    }

    #[test]
    fn alltoall_pays_the_host_for_cross_rank_traffic() {
        let b = NdpBridgeBackend::new(SystemConfig::paper());
        let r = b
            .collective(&CollectiveSpec::new(
                CollectiveKind::AllToAll,
                Bytes::kib(32),
            ))
            .unwrap();
        assert!(r.host > r.inter_chip, "host hop should dominate: {r}");
    }

    #[test]
    fn single_rank_alltoall_never_touches_the_host() {
        let system = SystemConfig::paper().with_geometry(pim_arch::PimGeometry::new(8, 8, 1, 1));
        let b = NdpBridgeBackend::new(system);
        let r = b
            .collective(&CollectiveSpec::new(
                CollectiveKind::AllToAll,
                Bytes::kib(32),
            ))
            .unwrap();
        assert_eq!(r.host, SimTime::ZERO);
    }
}
