//! The PIMnet backend: schedule + validate + time.

use pim_arch::SystemConfig;

use crate::backends::{ensure_single_channel, BackendKind, CollectiveBackend};
use crate::collective::CollectiveSpec;
use crate::error::PimnetError;
use crate::fabric::FabricConfig;
use crate::schedule::{validate, CommSchedule};
use crate::timing::{CommBreakdown, TimingModel};

/// Collectives executed over the PIMnet fabric.
///
/// Each call compiles the static schedule for the requested collective
/// (the paper's host-side compilation step), validates it, and times it
/// with the analytic model. The host is never involved in the data path,
/// so the `host` bucket of the result is always zero.
#[derive(Debug, Clone, Copy)]
pub struct PimnetBackend {
    timing: TimingModel,
}

impl PimnetBackend {
    /// Creates the backend for a system/fabric pair.
    #[must_use]
    pub fn new(system: SystemConfig, fabric: FabricConfig) -> Self {
        PimnetBackend {
            timing: TimingModel::new(fabric, system),
        }
    }

    /// The paper's configuration.
    #[must_use]
    pub fn paper() -> Self {
        PimnetBackend::new(SystemConfig::paper(), FabricConfig::paper())
    }

    /// The underlying timing model (fabric + system).
    #[must_use]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Compiles (and validates) the schedule this backend would execute.
    ///
    /// # Errors
    ///
    /// Propagates schedule build and validation errors.
    pub fn schedule(&self, spec: &CollectiveSpec) -> Result<CommSchedule, PimnetError> {
        let schedule = CommSchedule::build(
            spec.kind,
            &self.timing.system.geometry,
            spec.elems_per_dpu(),
            spec.elem_bytes,
        )?;
        validate::validate(&schedule)?;
        Ok(schedule)
    }
}

impl CollectiveBackend for PimnetBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Pimnet
    }

    fn name(&self) -> &'static str {
        "pimnet"
    }

    fn dpus_per_channel(&self) -> u32 {
        self.timing.system.geometry.dpus_per_channel()
    }

    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError> {
        ensure_single_channel(&self.timing.system, "pimnet")?;
        let schedule = self.schedule(spec)?;
        Ok(self.timing.time_schedule(&schedule, spec.skew))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_sim::{Bytes, SimTime};

    #[test]
    fn host_bucket_is_always_zero() {
        let b = PimnetBackend::paper();
        for kind in CollectiveKind::ALL {
            let spec = CollectiveSpec::new(kind, Bytes::kib(8));
            let r = b.collective(&spec).unwrap();
            assert_eq!(r.host, SimTime::ZERO, "{kind}");
        }
    }

    #[test]
    fn allreduce_breakdown_touches_all_three_tiers() {
        let b = PimnetBackend::paper();
        let r = b
            .collective(&CollectiveSpec::new(
                CollectiveKind::AllReduce,
                Bytes::kib(32),
            ))
            .unwrap();
        assert!(r.inter_bank > SimTime::ZERO);
        assert!(r.inter_chip > SimTime::ZERO);
        assert!(r.inter_rank > SimTime::ZERO);
        assert!(r.sync > SimTime::ZERO);
    }

    #[test]
    fn schedule_accessor_matches_collective_timing() {
        let b = PimnetBackend::paper();
        let spec = CollectiveSpec::new(CollectiveKind::ReduceScatter, Bytes::kib(16));
        let s = b.schedule(&spec).unwrap();
        let direct = b.timing().time_schedule(&s, spec.skew);
        assert_eq!(direct, b.collective(&spec).unwrap());
    }
}
