//! Collective-communication backends: PIMnet and the paper's comparison
//! systems.
//!
//! The evaluation (Figs 10–12) compares five ways of moving the same
//! collective traffic:
//!
//! | key | backend | inter-PIM data path |
//! |-----|---------|---------------------|
//! | `B` | [`BaselineHostBackend`] | UPMEM API through the host CPU, with per-call and per-DPU-buffer software overheads |
//! | `S` | [`SoftwareIdealBackend`] | the same transfers with *zero* host software cost (idealized PID-Comm) |
//! | `N` | [`NdpBridgeBackend`] | hardware bridges to the buffer chip; inter-rank hops still cross the host; no in-network reduction |
//! | `D` | [`DimmLinkBackend`] | rank-local collectives in the buffer chip + dedicated inter-rank links |
//! | `P` | [`PimnetBackend`] | the PIMnet fabric: direct bank/chip/rank tiers, statically scheduled |
//!
//! All five implement [`CollectiveBackend`], so workloads and figures can be
//! swept across them uniformly. The compute side is identical by
//! construction (the paper's fair-comparison rule): only communication
//! differs.

mod baseline;
mod dimm_link;
mod multichannel;
mod ndp_bridge;
mod pimnet_backend;

pub use baseline::{host_upward_bytes, BaselineHostBackend};
pub use dimm_link::DimmLinkBackend;
pub use multichannel::multi_channel_collective;
pub use ndp_bridge::NdpBridgeBackend;
pub use pimnet_backend::PimnetBackend;

use std::fmt;

use pim_arch::SystemConfig;

use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::fabric::FabricConfig;
use crate::timing::CommBreakdown;

/// The one-letter keys the paper uses in Fig 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BackendKind {
    /// Baseline PIM (host-mediated collectives).
    Baseline,
    /// Idealized software collectives (PID-Comm with zero host overhead).
    SoftwareIdeal,
    /// NDPBridge.
    NdpBridge,
    /// DIMM-Link.
    DimmLink,
    /// PIMnet (this work).
    Pimnet,
}

impl BackendKind {
    /// All backends in the paper's Fig 10 order (B, S, N, D, P).
    pub const ALL: [BackendKind; 5] = [
        BackendKind::Baseline,
        BackendKind::SoftwareIdeal,
        BackendKind::NdpBridge,
        BackendKind::DimmLink,
        BackendKind::Pimnet,
    ];

    /// The paper's one-letter key.
    #[must_use]
    pub fn key(self) -> char {
        match self {
            BackendKind::Baseline => 'B',
            BackendKind::SoftwareIdeal => 'S',
            BackendKind::NdpBridge => 'N',
            BackendKind::DimmLink => 'D',
            BackendKind::Pimnet => 'P',
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BackendKind::Baseline => "Baseline PIM",
            BackendKind::SoftwareIdeal => "Software (Ideal)",
            BackendKind::NdpBridge => "NDPBridge",
            BackendKind::DimmLink => "DIMM-Link",
            BackendKind::Pimnet => "PIMnet",
        };
        f.write_str(s)
    }
}

/// A way of executing collective communication on a PIM system.
///
/// Implementations time collectives; the compute phases of a workload are
/// identical across backends and are timed by the workload runner.
pub trait CollectiveBackend {
    /// The backend's Fig 10 identity.
    fn kind(&self) -> BackendKind;

    /// Short stable name (used in error messages and reports).
    fn name(&self) -> &'static str;

    /// DPUs participating per memory channel on this backend's system.
    fn dpus_per_channel(&self) -> u32;

    /// Whether this backend can execute `kind` at all (NDPBridge has no
    /// in-network reduction, so no AllReduce/ReduceScatter/Reduce).
    fn supports(&self, kind: CollectiveKind) -> bool {
        let _ = kind;
        true
    }

    /// Times one collective.
    ///
    /// # Errors
    ///
    /// [`PimnetError::UnsupportedCollective`] when `supports` is false;
    /// backend-specific geometry/message errors otherwise.
    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError>;
}

/// Builds every backend for a system/fabric pair, in Fig 10 order.
#[must_use]
pub fn all_backends(system: SystemConfig, fabric: FabricConfig) -> Vec<Box<dyn CollectiveBackend>> {
    vec![
        Box::new(BaselineHostBackend::new(system)),
        Box::new(SoftwareIdealBackend::new(system)),
        Box::new(NdpBridgeBackend::new(system)),
        Box::new(DimmLinkBackend::new(system, fabric)),
        Box::new(PimnetBackend::new(system, fabric)),
    ]
}

/// The paper's "Software (Ideal)" backend: the baseline transfers with all
/// host software overheads removed (an idealized PID-Comm \[67\]).
#[derive(Debug, Clone, Copy)]
pub struct SoftwareIdealBackend {
    inner: BaselineHostBackend,
}

impl SoftwareIdealBackend {
    /// Creates the ideal-software backend for a system.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        let ideal = system.with_host(system.host.ideal());
        SoftwareIdealBackend {
            inner: BaselineHostBackend::new(ideal),
        }
    }
}

impl CollectiveBackend for SoftwareIdealBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::SoftwareIdeal
    }

    fn name(&self) -> &'static str {
        "software-ideal"
    }

    fn dpus_per_channel(&self) -> u32 {
        self.inner.dpus_per_channel()
    }

    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError> {
        self.inner.collective(spec)
    }
}

pub(crate) fn ensure_single_channel(
    system: &SystemConfig,
    backend: &'static str,
) -> Result<(), PimnetError> {
    if system.geometry.channels != 1 {
        return Err(PimnetError::InvalidGeometry {
            geometry: system.geometry,
            reason: format!(
                "backend {backend} times one memory channel; use \
                 backends::multi_channel_collective for multi-channel systems"
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_sim::Bytes;

    fn spec(kind: CollectiveKind) -> CollectiveSpec {
        CollectiveSpec::new(kind, Bytes::kib(32))
    }

    #[test]
    fn backend_ordering_matches_fig10() {
        let keys: String = BackendKind::ALL.iter().map(|b| b.key()).collect();
        assert_eq!(keys, "BSNDP");
    }

    #[test]
    fn the_headline_result_holds_for_allreduce() {
        // Fig 3/12: P < D < S < B for AllReduce at the paper scale.
        let backends = all_backends(SystemConfig::paper(), FabricConfig::paper());
        let s = spec(CollectiveKind::AllReduce);
        let t = |k: BackendKind| {
            backends
                .iter()
                .find(|b| b.kind() == k)
                .unwrap()
                .collective(&s)
                .unwrap()
                .total()
        };
        let (b, sw, d, p) = (
            t(BackendKind::Baseline),
            t(BackendKind::SoftwareIdeal),
            t(BackendKind::DimmLink),
            t(BackendKind::Pimnet),
        );
        assert!(p < d, "PIMnet ({p}) should beat DIMM-Link ({d})");
        assert!(d < sw, "DIMM-Link ({d}) should beat ideal software ({sw})");
        assert!(sw < b, "ideal software ({sw}) should beat baseline ({b})");
        // The paper reports up to ~85x over the baseline on collectives.
        let speedup = b.ratio(p);
        assert!(
            speedup > 20.0,
            "PIMnet vs baseline speedup only {speedup:.1}x"
        );
    }

    #[test]
    fn ndp_bridge_rejects_reductions() {
        let backends = all_backends(SystemConfig::paper(), FabricConfig::paper());
        let n = backends
            .iter()
            .find(|b| b.kind() == BackendKind::NdpBridge)
            .unwrap();
        assert!(matches!(
            n.collective(&spec(CollectiveKind::AllReduce)),
            Err(PimnetError::UnsupportedCollective { .. })
        ));
        assert!(n.collective(&spec(CollectiveKind::AllToAll)).is_ok());
    }

    #[test]
    fn every_backend_times_every_supported_collective() {
        let backends = all_backends(SystemConfig::paper(), FabricConfig::paper());
        for b in &backends {
            for kind in CollectiveKind::ALL {
                if !b.supports(kind) {
                    continue;
                }
                let breakdown = b
                    .collective(&spec(kind))
                    .unwrap_or_else(|e| panic!("{} / {kind}: {e}", b.name()));
                assert!(
                    breakdown.total() > pim_sim::SimTime::ZERO,
                    "{} / {kind}: zero time",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn alltoall_gap_is_smaller_than_allreduce_gap() {
        // §III-B / Fig 3: All-to-All is globally bus-bound, so PIMnet's
        // advantage over ideal software is much smaller than for AllReduce.
        let backends = all_backends(SystemConfig::paper(), FabricConfig::paper());
        let t = |k: BackendKind, c: CollectiveKind| {
            backends
                .iter()
                .find(|b| b.kind() == k)
                .unwrap()
                .collective(&spec(c))
                .unwrap()
                .total()
        };
        let ar_gain = t(BackendKind::SoftwareIdeal, CollectiveKind::AllReduce)
            .ratio(t(BackendKind::Pimnet, CollectiveKind::AllReduce));
        let a2a_gain = t(BackendKind::SoftwareIdeal, CollectiveKind::AllToAll)
            .ratio(t(BackendKind::Pimnet, CollectiveKind::AllToAll));
        assert!(
            ar_gain > a2a_gain,
            "AR gain {ar_gain:.1}x should exceed A2A gain {a2a_gain:.1}x"
        );
        assert!(a2a_gain > 1.0);
    }
}
