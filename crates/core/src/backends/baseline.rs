//! The baseline PIM backend: collectives through the host CPU.
//!
//! This is how commodity PIM works today (paper Fig 5(a), SimplePIM \[16\]):
//! the host gathers every DPU's buffer over the DDR channel, computes any
//! reduction on the CPU, and pushes results back. On top of the raw link
//! times, the UPMEM SDK pays software costs that PID-Comm \[67\] identified
//! as dominant: a fixed cost per transfer call and a per-DPU-buffer
//! marshalling cost (the host reorders each DPU's data in its own memory
//! before/after the DMA). The "Software (Ideal)" backend is this same model
//! with those costs zeroed.

use pim_sim::{Bytes, SimTime};

use pim_arch::SystemConfig;

use crate::backends::{ensure_single_channel, BackendKind, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::timing::CommBreakdown;

/// Host-mediated collectives with UPMEM-API software overheads.
#[derive(Debug, Clone, Copy)]
pub struct BaselineHostBackend {
    system: SystemConfig,
}

impl BaselineHostBackend {
    /// Creates the backend for a system.
    #[must_use]
    pub fn new(system: SystemConfig) -> Self {
        BaselineHostBackend { system }
    }

    /// The system this backend runs on.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    fn dpus(&self) -> u64 {
        u64::from(self.system.geometry.dpus_per_channel())
    }

    fn ranks(&self) -> u64 {
        u64::from(self.system.geometry.ranks_per_channel)
    }

    /// Software overhead of one host transfer direction touching `dpus`
    /// distinct DPU buffers carrying `bytes` in total: per-rank call cost,
    /// per-DPU descriptor cost, and the byte-proportional marshalling pass
    /// that reorders every DPU's buffer in host memory (PID-Comm's
    /// dominant cost).
    fn sw_overhead(&self, dpus: u64, bytes: Bytes) -> SimTime {
        let h = &self.system.host;
        h.per_call_overhead * self.ranks() + h.per_dpu_overhead * dpus + h.marshal_time(bytes)
    }
}

impl CollectiveBackend for BaselineHostBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Baseline
    }

    fn name(&self) -> &'static str {
        "baseline-host"
    }

    fn dpus_per_channel(&self) -> u32 {
        self.system.geometry.dpus_per_channel()
    }

    fn collective(&self, spec: &CollectiveSpec) -> Result<CommBreakdown, PimnetError> {
        ensure_single_channel(&self.system, "baseline-host")?;
        let h = &self.system.host;
        let p = self.dpus();
        let m = spec.bytes_per_dpu;
        let total = m * p;

        let host = match spec.kind {
            CollectiveKind::AllReduce => {
                h.gather_time(total)
                    + h.reduce_time(total)
                    + h.broadcast_time(m)
                    + self.sw_overhead(p, total) // gather side marshals every buffer
                    + h.per_call_overhead // single broadcast call
                    + h.launch_overhead * 2
            }
            CollectiveKind::ReduceScatter => {
                h.gather_time(total)
                    + h.reduce_time(total)
                    + h.scatter_time(m)
                    + self.sw_overhead(p, total)
                    + self.sw_overhead(p, m) // scatter marshals one piece per DPU
                    + h.launch_overhead * 2
            }
            CollectiveKind::AllGather => {
                h.gather_time(total)
                    + h.broadcast_time(total)
                    + self.sw_overhead(p, total)
                    + h.per_call_overhead
                    + h.launch_overhead * 2
            }
            CollectiveKind::AllToAll => {
                h.gather_time(total)
                    + h.reduce_time(total) // host-side chunk reshuffle pass
                    + h.scatter_time(total)
                    + self.sw_overhead(p, total) * 2
                    + h.launch_overhead * 2
            }
            CollectiveKind::Broadcast => {
                h.gather_time(m) // root -> host
                    + h.broadcast_time(m)
                    + self.sw_overhead(1, m)
                    + h.per_call_overhead
                    + h.launch_overhead * 2
            }
            CollectiveKind::Reduce => {
                h.gather_time(total)
                    + h.reduce_time(total)
                    + h.scatter_time(m) // host -> root
                    + self.sw_overhead(p, total)
                    + self.sw_overhead(1, m)
                    + h.launch_overhead * 2
            }
            CollectiveKind::Gather => {
                h.gather_time(total)
                    + h.scatter_time(total) // host -> root, all pieces
                    + self.sw_overhead(p, total)
                    + self.sw_overhead(1, total)
                    + h.launch_overhead * 2
            }
        };

        Ok(CommBreakdown {
            host,
            sync: spec.skew,
            ..CommBreakdown::zero()
        })
    }
}

/// Bytes the host moves up (PIM→CPU) for a collective — exposed for the
/// roofline and multi-channel models.
#[must_use]
pub fn host_upward_bytes(kind: CollectiveKind, bytes_per_dpu: Bytes, dpus: u64) -> Bytes {
    match kind {
        CollectiveKind::Broadcast => bytes_per_dpu,
        _ => bytes_per_dpu * dpus,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backends::SoftwareIdealBackend;

    fn spec(kind: CollectiveKind) -> CollectiveSpec {
        CollectiveSpec::new(kind, Bytes::kib(32))
    }

    #[test]
    fn baseline_allreduce_is_milliseconds_at_paper_scale() {
        let b = BaselineHostBackend::new(SystemConfig::paper());
        let t = b
            .collective(&spec(CollectiveKind::AllReduce))
            .unwrap()
            .total();
        assert!(t.as_ms() > 2.0, "baseline AR too fast: {t}");
        assert!(t.as_ms() < 20.0, "baseline AR unreasonably slow: {t}");
    }

    #[test]
    fn ideal_software_strips_overheads_but_keeps_link_time() {
        let base = BaselineHostBackend::new(SystemConfig::paper());
        let ideal = SoftwareIdealBackend::new(SystemConfig::paper());
        let s = spec(CollectiveKind::AllReduce);
        let tb = base.collective(&s).unwrap().total();
        let ti = ideal.collective(&s).unwrap().total();
        assert!(ti < tb);
        // The serialization floor remains: 8 MiB over 4.74 GB/s is ~1.8 ms.
        assert!(
            ti.as_ms() > 1.5,
            "ideal software below the link floor: {ti}"
        );
    }

    #[test]
    fn everything_lands_in_the_host_bucket() {
        let b = BaselineHostBackend::new(SystemConfig::paper());
        let r = b.collective(&spec(CollectiveKind::AllToAll)).unwrap();
        assert_eq!(r.inter_bank, SimTime::ZERO);
        assert_eq!(r.inter_chip, SimTime::ZERO);
        assert_eq!(r.inter_rank, SimTime::ZERO);
        assert_eq!(r.host, r.total());
    }

    #[test]
    fn alltoall_costs_both_directions() {
        let b = BaselineHostBackend::new(SystemConfig::paper());
        let a2a = b
            .collective(&spec(CollectiveKind::AllToAll))
            .unwrap()
            .total();
        let ag = b
            .collective(&spec(CollectiveKind::AllGather))
            .unwrap()
            .total();
        // A2A scatters the full volume at 6.68 GB/s; AG broadcasts it at
        // 16.88 GB/s, so A2A must be slower.
        assert!(a2a > ag);
    }

    #[test]
    fn upward_bytes_helper() {
        assert_eq!(
            host_upward_bytes(CollectiveKind::AllReduce, Bytes::kib(1), 256),
            Bytes::kib(256)
        );
        assert_eq!(
            host_upward_bytes(CollectiveKind::Broadcast, Bytes::kib(1), 256),
            Bytes::kib(1)
        );
    }
}
