//! A SimplePIM-style programming framework on top of PIMnet.
//!
//! The paper positions PIMnet beneath software frameworks like
//! SimplePIM \[16\]: the programmer sees *one gigantic PIM* — distributed
//! vectors with `map` for local compute and collective methods for
//! communication — and never the banks, rings or switch schedules. This
//! module provides exactly that veneer:
//!
//! * [`PimRuntime`] owns a system + collective backend and a simulated
//!   clock: every operation advances the clock by its modeled cost, so a
//!   whole application's time falls out of just *using* the API;
//! * [`PimVector`] is a vector sharded one-slice-per-DPU; its collective
//!   methods really move the data (through [`crate::exec`]) *and* charge
//!   the backend's communication time.
//!
//! # Example
//!
//! ```
//! use pim_arch::OpCounts;
//! use pimnet::exec::ReduceOp;
//! use pimnet::framework::PimRuntime;
//!
//! let mut rt = PimRuntime::paper();
//! // 256 DPUs x 1024 elements, scattered from the host.
//! let host_data: Vec<u64> = (0..256 * 1024).collect();
//! let mut v = rt.scatter(&host_data);
//!
//! // Local compute on every shard (really applied, and timed).
//! v.map(&mut rt, OpCounts::new().with_adds(1), |shard| {
//!     for x in shard.iter_mut() {
//!         *x += 1;
//!     }
//! });
//!
//! // A real AllReduce over PIMnet.
//! v.all_reduce(&mut rt, ReduceOp::Sum)?;
//! assert!(rt.elapsed().as_ms() < 10.0);
//! # Ok::<(), pimnet::PimnetError>(())
//! ```

use pim_arch::geometry::DpuId;
use pim_arch::OpCounts;
use pim_sim::{Bytes, SimTime};

use crate::api::PimnetSystem;
use crate::backends::{BackendKind, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::exec::{Element, ExecMachine, ReduceOp};
use crate::schedule::CommSchedule;

/// The framework's handle to a PIM machine: configuration, collective
/// backend, and the running simulated clock.
pub struct PimRuntime {
    system: PimnetSystem,
    backend: Box<dyn CollectiveBackend>,
    clock: SimTime,
}

impl PimRuntime {
    /// A runtime over the paper's 256-DPU system with PIMnet.
    #[must_use]
    pub fn paper() -> Self {
        PimRuntime::new(PimnetSystem::paper(), BackendKind::Pimnet)
    }

    /// A runtime over `system` using the given collective backend (e.g.
    /// [`BackendKind::Baseline`] to see what the same program costs through
    /// the host).
    #[must_use]
    pub fn new(system: PimnetSystem, backend: BackendKind) -> Self {
        PimRuntime {
            backend: system.backend(backend),
            system,
            clock: SimTime::ZERO,
        }
    }

    /// Number of DPUs the runtime shards over.
    #[must_use]
    pub fn dpus(&self) -> u32 {
        self.system.system().geometry.total_dpus()
    }

    /// Total simulated time consumed so far.
    #[must_use]
    pub fn elapsed(&self) -> SimTime {
        self.clock
    }

    /// Scatters host data across the DPUs (near-equal contiguous shards),
    /// charging the host→PIM transfer.
    #[must_use]
    pub fn scatter<T: Element>(&mut self, data: &[T]) -> PimVector<T> {
        let n = self.dpus() as usize;
        let spans = crate::schedule::split_elems(data.len(), n);
        let shards = spans.iter().map(|s| data[s.range()].to_vec()).collect();
        let bytes = Bytes::new(std::mem::size_of_val(data) as u64);
        self.clock += self.system.system().host.scatter_time(bytes);
        PimVector { shards }
    }

    /// Gathers a vector back to the host, charging the PIM→host transfer.
    #[must_use]
    pub fn gather<T: Element>(&mut self, v: &PimVector<T>) -> Vec<T> {
        let total: usize = v.shards.iter().map(Vec::len).sum();
        let bytes = Bytes::new((total * std::mem::size_of::<T>()) as u64);
        self.clock += self.system.system().host.gather_time(bytes);
        v.shards.iter().flatten().copied().collect()
    }

    fn charge_collective(
        &mut self,
        kind: CollectiveKind,
        bytes_per_dpu: Bytes,
        elem_bytes: u32,
    ) -> Result<(), PimnetError> {
        let spec = CollectiveSpec::new(kind, bytes_per_dpu).with_elem_bytes(elem_bytes);
        self.clock += self.backend.collective(&spec)?.total();
        Ok(())
    }

    fn schedule_for<T>(
        &self,
        kind: CollectiveKind,
        elems: usize,
    ) -> Result<CommSchedule, PimnetError> {
        CommSchedule::build(
            kind,
            &self.system.system().geometry,
            elems,
            std::mem::size_of::<T>() as u32,
        )
    }
}

impl std::fmt::Debug for PimRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PimRuntime")
            .field("dpus", &self.dpus())
            .field("backend", &self.backend.name())
            .field("elapsed", &self.clock)
            .finish()
    }
}

/// A vector sharded one-slice-per-DPU.
#[derive(Debug, Clone, PartialEq)]
pub struct PimVector<T> {
    shards: Vec<Vec<T>>,
}

impl<T: Element> PimVector<T> {
    /// Builds a vector directly from per-DPU shards.
    ///
    /// # Errors
    ///
    /// The shard count must match the runtime's DPU count exactly — a
    /// mismatch is a typed [`PimnetError::InvalidMessage`], not a panic,
    /// so callers assembling shards from external input can recover.
    pub fn from_shards(rt: &PimRuntime, shards: Vec<Vec<T>>) -> Result<Self, PimnetError> {
        if shards.len() != rt.dpus() as usize {
            return Err(PimnetError::InvalidMessage {
                reason: format!(
                    "one shard per DPU required: got {} shards for {} DPUs",
                    shards.len(),
                    rt.dpus()
                ),
            });
        }
        Ok(PimVector { shards })
    }

    /// One DPU's shard.
    #[must_use]
    pub fn shard(&self, id: DpuId) -> &[T] {
        &self.shards[id.index()]
    }

    /// Total elements across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Vec::len).sum()
    }

    /// True iff every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies `f` to every shard (the PIM kernel), charging
    /// `cost_per_elem` instructions per element through the DPU model.
    pub fn map(&mut self, rt: &mut PimRuntime, cost_per_elem: OpCounts, f: impl Fn(&mut [T])) {
        let mut worst = SimTime::ZERO;
        for shard in &mut self.shards {
            f(shard);
            let ops = cost_per_elem.repeated(shard.len() as u64);
            worst = worst.max(rt.system.system().dpu.compute_time(&ops));
        }
        rt.clock += worst;
    }

    fn uniform_len(&self) -> Result<usize, PimnetError> {
        let n = match self.shards.first() {
            Some(s) => s.len(),
            None => {
                return Err(PimnetError::InvalidMessage {
                    reason: "collective on a vector with no shards".into(),
                })
            }
        };
        if self.shards.iter().any(|s| s.len() != n) {
            return Err(PimnetError::InvalidMessage {
                reason: "collective requires equal shard lengths".into(),
            });
        }
        Ok(n)
    }

    fn per_dpu_bytes(elems: usize) -> Bytes {
        Bytes::new((elems * std::mem::size_of::<T>()) as u64)
    }

    fn run_schedule(&self, schedule: &CommSchedule, op: ReduceOp) -> ExecMachine<T> {
        let mut m = ExecMachine::init(schedule, |id| self.shards[id.index()].clone());
        m.run(schedule, op);
        m
    }

    /// In-place AllReduce: every shard becomes the elementwise reduction of
    /// all shards. Runs the real schedule and charges its time.
    ///
    /// # Errors
    ///
    /// Shards must have equal lengths; schedule errors propagate.
    pub fn all_reduce(&mut self, rt: &mut PimRuntime, op: ReduceOp) -> Result<(), PimnetError> {
        let n = self.uniform_len()?;
        let schedule = rt.schedule_for::<T>(CollectiveKind::AllReduce, n)?;
        let m = self.run_schedule(&schedule, op);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            shard.copy_from_slice(&m.buffer(DpuId(i as u32))[..n]);
        }
        rt.charge_collective(
            CollectiveKind::AllReduce,
            Self::per_dpu_bytes(n),
            elem::<T>(),
        )
    }

    /// In-place ReduceScatter: every shard becomes its fully-reduced,
    /// exclusive piece (shard lengths become `n / DPUs`-ish).
    ///
    /// # Errors
    ///
    /// Shards must have equal lengths; schedule errors propagate.
    pub fn reduce_scatter(&mut self, rt: &mut PimRuntime, op: ReduceOp) -> Result<(), PimnetError> {
        let n = self.uniform_len()?;
        let schedule = rt.schedule_for::<T>(CollectiveKind::ReduceScatter, n)?;
        let m = self.run_schedule(&schedule, op);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            *shard = m.result(&schedule, DpuId(i as u32));
        }
        rt.charge_collective(
            CollectiveKind::ReduceScatter,
            Self::per_dpu_bytes(n),
            elem::<T>(),
        )
    }

    /// In-place AllGather: every shard becomes the concatenation of all
    /// shards.
    ///
    /// # Errors
    ///
    /// Shards must have equal lengths; schedule errors propagate.
    pub fn all_gather(&mut self, rt: &mut PimRuntime) -> Result<(), PimnetError> {
        let n = self.uniform_len()?;
        let schedule = rt.schedule_for::<T>(CollectiveKind::AllGather, n)?;
        let m = self.run_schedule(&schedule, ReduceOp::Sum);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            *shard = m.result(&schedule, DpuId(i as u32));
        }
        rt.charge_collective(
            CollectiveKind::AllGather,
            Self::per_dpu_bytes(n),
            elem::<T>(),
        )
    }

    /// In-place All-to-All transpose: shard `i`'s chunk `j` moves to shard
    /// `j`'s chunk `i` (chunk = shard length / DPUs).
    ///
    /// # Errors
    ///
    /// Shards must have equal lengths divisible by the DPU count; schedule
    /// errors propagate.
    pub fn all_to_all(&mut self, rt: &mut PimRuntime) -> Result<(), PimnetError> {
        let n = self.uniform_len()?;
        if n % rt.dpus() as usize != 0 {
            return Err(PimnetError::InvalidMessage {
                reason: "all_to_all requires shard length divisible by the DPU count".into(),
            });
        }
        let schedule = rt.schedule_for::<T>(CollectiveKind::AllToAll, n)?;
        let m = self.run_schedule(&schedule, ReduceOp::Sum);
        for (i, shard) in self.shards.iter_mut().enumerate() {
            *shard = m.result(&schedule, DpuId(i as u32));
        }
        rt.charge_collective(
            CollectiveKind::AllToAll,
            Self::per_dpu_bytes(n),
            elem::<T>(),
        )
    }
}

fn elem<T>() -> u32 {
    std::mem::size_of::<T>() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::FabricConfig;
    use pim_arch::PimGeometry;
    use pim_arch::SystemConfig;

    fn small_rt(backend: BackendKind) -> PimRuntime {
        let sys = PimnetSystem::new(
            SystemConfig::paper().with_geometry(PimGeometry::paper_scaled(16)),
            FabricConfig::paper(),
        );
        PimRuntime::new(sys, backend)
    }

    #[test]
    fn scatter_map_allreduce_gather_roundtrip() {
        let mut rt = small_rt(BackendKind::Pimnet);
        let data: Vec<u64> = (0..16 * 32).collect();
        let mut v = rt.scatter(&data);
        assert_eq!(v.len(), data.len());
        v.map(&mut rt, OpCounts::new().with_adds(1), |s| {
            for x in s.iter_mut() {
                *x = 1;
            }
        });
        v.all_reduce(&mut rt, ReduceOp::Sum).unwrap();
        // Every shard element is now the DPU count.
        for i in 0..16 {
            assert!(v.shard(DpuId(i)).iter().all(|&x| x == 16));
        }
        let back = rt.gather(&v);
        assert_eq!(back.len(), data.len());
        assert!(rt.elapsed() > SimTime::ZERO);
    }

    #[test]
    fn reduce_scatter_pieces_tile_the_vector() {
        let mut rt = small_rt(BackendKind::Pimnet);
        let data: Vec<u64> = vec![1; 16 * 64];
        let mut v = rt.scatter(&data);
        v.reduce_scatter(&mut rt, ReduceOp::Sum).unwrap();
        // Total piece elements = one shard's worth; every element = 16.
        assert_eq!(v.len(), 64);
        for i in 0..16 {
            assert!(v.shard(DpuId(i)).iter().all(|&x| x == 16));
        }
    }

    #[test]
    fn all_gather_replicates() {
        let mut rt = small_rt(BackendKind::Pimnet);
        let data: Vec<u32> = (0..16 * 4).collect();
        let mut v = rt.scatter(&data);
        v.all_gather(&mut rt).unwrap();
        for i in 0..16 {
            assert_eq!(v.shard(DpuId(i)), data.as_slice(), "DPU{i}");
        }
    }

    #[test]
    fn all_to_all_transposes() {
        let mut rt = small_rt(BackendKind::Pimnet);
        // Shard i holds 16 chunks of one element: value = i*100 + j.
        let shards: Vec<Vec<u64>> = (0..16u64)
            .map(|i| (0..16).map(|j| i * 100 + j).collect())
            .collect();
        let mut v = PimVector::from_shards(&rt, shards).unwrap();
        v.all_to_all(&mut rt).unwrap();
        for j in 0..16u64 {
            let expect: Vec<u64> = (0..16).map(|i| i * 100 + j).collect();
            assert_eq!(v.shard(DpuId(j as u32)), expect.as_slice(), "DPU{j}");
        }
    }

    #[test]
    fn the_same_program_costs_more_through_the_host() {
        let run = |backend| {
            let mut rt = small_rt(backend);
            let data: Vec<u64> = vec![7; 16 * 2048];
            let mut v = rt.scatter(&data);
            v.all_reduce(&mut rt, ReduceOp::Sum).unwrap();
            rt.elapsed()
        };
        assert!(run(BackendKind::Baseline) > run(BackendKind::Pimnet));
    }

    #[test]
    fn unequal_shards_are_rejected() {
        let rt = small_rt(BackendKind::Pimnet);
        let mut shards = vec![vec![0u64; 8]; 16];
        shards[3].push(1);
        let mut v = PimVector::from_shards(&rt, shards).unwrap();
        let mut rt = small_rt(BackendKind::Pimnet);
        assert!(matches!(
            v.all_reduce(&mut rt, ReduceOp::Sum),
            Err(PimnetError::InvalidMessage { .. })
        ));
    }

    #[test]
    fn wrong_shard_count_is_a_typed_error() {
        let rt = small_rt(BackendKind::Pimnet);
        // 15 shards for a 16-DPU runtime: typed rejection, no panic.
        let shards = vec![vec![0u64; 8]; 15];
        assert!(matches!(
            PimVector::from_shards(&rt, shards),
            Err(PimnetError::InvalidMessage { .. })
        ));
    }

    #[test]
    fn map_charges_the_worst_shard() {
        let mut rt = small_rt(BackendKind::Pimnet);
        let data: Vec<u64> = (0..16 * 100).collect();
        let mut v = rt.scatter(&data);
        let before = rt.elapsed();
        v.map(&mut rt, OpCounts::new().with_muls(10), |_| {});
        // 100 elems x 10 muls x 64 cycles at 350 MHz ~= 183 us.
        let delta = rt.elapsed() - before;
        assert!((150.0..250.0).contains(&delta.as_us()), "{delta}");
    }
}
