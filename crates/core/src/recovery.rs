//! Runtime fault arrival + deterministic recovery: drive a collective
//! step-by-step under a time-varying fault scenario and bring it home.
//!
//! The planner ([`crate::resilience`]) handles faults that are *known
//! before launch*. This module handles the rest: a [`FaultTimeline`]'s
//! permanent-fault **arrivals** land mid-run, link **flaps** fail
//! transfers only during their window, and transient **bursts** elevate
//! the effective bit-error rate for a while. The recovery manager
//! ([`run_recovered`]) executes the schedule one step at a time on a
//! deterministic integer-picosecond clock and, at every step boundary:
//!
//! * applies newly-arrived permanent faults, replanning through the
//!   degradation ladder only when the surviving suffix actually routes
//!   over a dead component;
//! * retries failed steps under an exponential **backoff budget**
//!   ([`pim_faults::FaultInjector::backoff_ps`]) — the backoff advances
//!   the clock, which is exactly what lets a retry escape a flap or
//!   burst window deterministically;
//! * tracks per-segment **health** ([`HealthTracker`]): repeated flap
//!   failures quarantine a segment, promoting it to a permanent fault
//!   that the next replan routes around;
//! * resumes from the last completed step when the new plan's executed
//!   prefix is unchanged (the staging-arena executor applies a step
//!   atomically, so the buffers *are* the checkpoint), and restarts
//!   from the initial contributions otherwise.
//!
//! Every decision is a pure function of the seed, the clock, and stable
//! coordinates — same scenario, same recovery, byte-for-byte. And because
//! corrupted attempts are always detected (CRC model) and failed steps
//! never half-apply, a recovered run that ends at tier ≤ 1 leaves buffers
//! **bit-identical** to the fault-free run; a shrunk run (tier 2) matches
//! the fault-free run of the shrunk plan. `tests/recovery_soak.rs` pins
//! both.
//!
//! [`FaultTimeline`]: pim_faults::FaultTimeline

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_arch::SystemConfig;
use pim_faults::permanent::{PermanentFaultSet, PortId, PortSide, SegmentId};
use pim_faults::timeline::{Arrival, ArrivalKind};
use pim_faults::{FaultConfig, FaultInjector, HealthConfig, HealthTracker, LinkHealth};
use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use crate::collective::CollectiveKind;
use crate::error::PimnetError;
use crate::exec::{Element, ExecMachine, ReduceOp};
use crate::resilience::{plan_degraded_probed_at_epoch, DegradedPlan};
use crate::schedule::{CommSchedule, CommStep};
use crate::sync::SyncModel;
use crate::timing::TimingModel;
use crate::topology::{Direction, Resource};

/// Knobs of the recovery manager itself (the retry/backoff budgets come
/// from the [`FaultConfig`] so CLI fault grammars control them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Hysteresis thresholds for the per-segment health score.
    pub health: HealthConfig,
    /// Hard cap on replans per collective; exceeding it escalates to the
    /// host-fallback outcome instead of looping. Each replan strictly
    /// grows the permanent-fault picture, so the ladder cannot cycle —
    /// this bound is a defensive backstop, not a tuning knob.
    pub max_replans: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            health: HealthConfig::default(),
            max_replans: 16,
        }
    }
}

/// Everything [`run_recovered`] needs besides the per-node contributions.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryRequest<'a> {
    /// The collective to run.
    pub kind: CollectiveKind,
    /// Physical geometry the collective is launched over.
    pub geometry: &'a PimGeometry,
    /// Elements contributed per node.
    pub elems_per_node: usize,
    /// Bytes per element on the wire.
    pub elem_bytes: u32,
    /// Reduction operator (ignored by the pure-movement collectives).
    pub op: ReduceOp,
    /// The fault scenario, including its [`pim_faults::FaultTimeline`].
    pub injector: &'a FaultInjector,
    /// System parameters for the host-fallback rung.
    pub system: &'a SystemConfig,
    /// Timing model driving the recovery clock.
    pub timing: &'a TimingModel,
    /// Recovery-manager knobs.
    pub config: RecoveryConfig,
}

/// Deterministic counters describing one recovered run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryStats {
    /// Steps executed to completion (re-executions after a restart count).
    pub steps_executed: u64,
    /// Step-level retry rounds (failed attempts that waited out a backoff).
    pub step_retries: u64,
    /// Total picoseconds spent in retry backoff.
    pub backoff_ps: u64,
    /// Times the schedule was re-planned mid-run.
    pub replans: u64,
    /// Segments promoted from flaky to permanently dead.
    pub quarantines: u64,
    /// Timeline arrivals observed at step boundaries.
    pub arrivals_applied: u64,
    /// Completed-step checkpoints (equals `steps_executed` by
    /// construction; tracked separately so the invariant is assertable).
    pub checkpoints: u64,
    /// Health/degradation epoch the run finished at (0 = never replanned).
    pub final_epoch: u64,
}

/// What a recovered collective ended as.
#[derive(Debug)]
pub struct RecoveryOutcome<T> {
    /// Final executor state, `None` when the run ended at the
    /// host-fallback rung (tier 3) and no PIM-side buffers exist.
    pub machine: Option<ExecMachine<T>>,
    /// Final rung on the degradation ladder, 0 (full) … 3 (host fallback).
    pub plan_tier: u8,
    /// Logical → physical id map when the final plan was shrunk (tier 2).
    pub logical_to_physical: Option<Vec<u32>>,
    /// What recovery did, as deterministic counters.
    pub stats: RecoveryStats,
    /// Typed errors absorbed along the way (dead participants, failed
    /// steps that forced a replan, the error that forced an escalation).
    pub error_trail: Vec<PimnetError>,
    /// Recovery-clock time at completion, integer picoseconds.
    pub end_ps: u64,
}

impl<T> RecoveryOutcome<T> {
    /// Human-readable tier name, matching
    /// [`DegradedPlan::tier_name`](crate::resilience::DegradedPlan::tier_name).
    #[must_use]
    pub fn tier_name(&self) -> &'static str {
        match self.plan_tier {
            0 => "full",
            1 => "repaired",
            2 => "shrunk",
            _ => "host-fallback",
        }
    }
}

/// How one drive attempt over the current plan ended.
enum DriveEnd {
    /// Every step completed; the collective is done.
    Finished,
    /// The plan is no longer viable (arrival or quarantine); replan.
    Replan,
    /// Unattributable persistent failure; escalate to host fallback.
    Escalate(PimnetError),
}

/// The inter-bank ring segment a resource occupies, if it is one.
fn segment_of(r: &Resource) -> Option<SegmentId> {
    match r {
        Resource::RingSegment {
            chip,
            from_bank,
            dir,
        } => Some(SegmentId {
            rank: chip.rank,
            chip: chip.chip,
            from_bank: *from_bank,
            east: matches!(dir, Direction::East),
        }),
        _ => None,
    }
}

/// The crossbar port a resource occupies, if it is one.
fn port_of(r: &Resource) -> Option<PortId> {
    match r {
        Resource::ChipTx { chip } => Some(PortId {
            rank: chip.rank,
            chip: chip.chip,
            side: PortSide::Tx,
        }),
        Resource::ChipRx { chip } => Some(PortId {
            rank: chip.rank,
            chip: chip.chip,
            side: PortSide::Rx,
        }),
        Resource::RingSegment { .. } | Resource::RankBus { .. } => None,
    }
}

/// Arrivals folded into a permanent-fault set.
fn fault_set_of(arrivals: &[Arrival]) -> PermanentFaultSet {
    let mut set = PermanentFaultSet::none();
    for a in arrivals {
        match a.what {
            ArrivalKind::Segment(seg) => {
                set.segments.insert(seg);
            }
            ArrivalKind::Port(port) => {
                set.ports.insert(port);
            }
            ArrivalKind::Rank(rank) => {
                set.dead_ranks.insert(rank);
            }
        }
    }
    set
}

/// Trace class code for an arrival (`FAULT_ARRIVAL` arg 0).
fn arrival_class(a: &Arrival) -> u64 {
    match a.what {
        ArrivalKind::Segment(_) => 1,
        ArrivalKind::Port(_) => 2,
        ArrivalKind::Rank(_) => 3,
    }
}

/// The flattened `(phase, step)` coordinates of a schedule, in execution
/// order.
fn flat_steps(schedule: &CommSchedule) -> Vec<(usize, usize)> {
    schedule
        .phases
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| (0..p.steps.len()).map(move |si| (pi, si)))
        .collect()
}

fn step_at(schedule: &CommSchedule, (pi, si): (usize, usize)) -> &CommStep {
    &schedule.phases[pi].steps[si]
}

/// `true` when the first `done` flattened steps of `a` and `b` are
/// structurally identical and operate on the same buffer shape — the
/// condition under which buffers checkpointed after `a`'s step `done - 1`
/// are a valid resume point for `b`.
fn prefix_equal(a: &CommSchedule, b: &CommSchedule, done: usize) -> bool {
    if a.geometry != b.geometry
        || a.buffer_len != b.buffer_len
        || a.elems_per_node != b.elems_per_node
        || a.kind != b.kind
    {
        return false;
    }
    let fa = flat_steps(a);
    let fb = flat_steps(b);
    if fa.len() < done || fb.len() < done {
        return false;
    }
    fa.iter()
        .zip(fb.iter())
        .take(done)
        .all(|(ca, cb)| step_at(a, *ca) == step_at(b, *cb))
}

/// Does the not-yet-executed suffix of `schedule` route over any component
/// in `newly`? When it does not, an arrival is record-only: the running
/// plan stays valid and no replan is needed.
///
/// Resource matching (segments, ports) applies to full/repaired plans,
/// where schedule resources are physical. A shrunk plan's schedule is over
/// *logical* ids, so only rank arrivals — checked through the
/// logical → physical map — can invalidate it; this mirrors the
/// documented placement simplification in [`crate::resilience`].
fn suffix_routes_over(
    schedule: &CommSchedule,
    rest: &[(usize, usize)],
    newly: &PermanentFaultSet,
    map: Option<&[u32]>,
    physical: &PimGeometry,
) -> bool {
    for &coords in rest {
        let step = step_at(schedule, coords);
        for t in &step.transfers {
            if t.is_local() {
                continue;
            }
            if !newly.dead_ranks.is_empty() {
                for id in std::iter::once(t.src).chain(t.dsts.iter().copied()) {
                    let phys = map.map_or(id.0, |m| m[id.index()]);
                    let rank = physical.coord(DpuId(phys)).rank;
                    if newly.dead_ranks.contains(&rank) {
                        return true;
                    }
                }
            }
            if map.is_none() {
                for r in &t.resources {
                    if segment_of(r).is_some_and(|s| newly.segments.contains(&s))
                        || port_of(r).is_some_and(|p| newly.ports.contains(&p))
                    {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// An injector whose permanent-fault picture is the original scenario plus
/// everything that has arrived or been quarantined so far. Retry, backoff,
/// straggler, and timeline behaviour are untouched (same seed, same
/// rates), so derived decisions stay on the original deterministic record.
fn injector_with(
    base: &FaultConfig,
    extra: &PermanentFaultSet,
    health: &HealthTracker,
) -> FaultInjector {
    let mut cfg = base.clone();
    cfg.permanent.merge(extra);
    cfg.permanent.merge(&health.as_fault_set());
    FaultInjector::new(cfg)
}

/// Initializes an executor for `schedule`, routing contributions through
/// the logical → physical map when the plan is shrunk.
fn init_machine<T: Element>(
    schedule: &CommSchedule,
    map: Option<&[u32]>,
    init: &mut impl FnMut(DpuId) -> Vec<T>,
) -> ExecMachine<T> {
    match map {
        None => ExecMachine::init(schedule, init),
        Some(m) => ExecMachine::init(schedule, |lid| init(DpuId(m[lid.index()]))),
    }
}

/// Runs `req` to completion under its time-varying fault scenario,
/// retrying / replanning / escalating as the timeline unfolds. See the
/// module docs for the algorithm; [`run_recovered_probed`] is the
/// observable sibling.
///
/// With an **inactive** injector this is a plan + plain execution — the
/// fault path costs nothing when no faults are configured (`perf_gate`
/// pins the overhead under 1 %).
///
/// # Errors
///
/// Propagates planning errors for requests that are invalid independent
/// of faults (unsupported collective, bad geometry). Fault-induced
/// failures never surface as `Err`: they degrade the outcome's tier and
/// extend its `error_trail` instead.
pub fn run_recovered<T: Element>(
    req: &RecoveryRequest<'_>,
    init: impl FnMut(DpuId) -> Vec<T>,
) -> Result<RecoveryOutcome<T>, PimnetError> {
    run_recovered_probed(req, init, Probe::disabled())
}

/// [`run_recovered`] plus observation: `recov-*` / `fault-arrival` trace
/// events (timestamped on the recovery clock) and the `recovery_*`
/// metrics counters. Disabled-probe results are bit-identical to
/// [`run_recovered`].
///
/// # Errors
///
/// Exactly those of [`run_recovered`].
#[allow(clippy::too_many_lines)]
pub fn run_recovered_probed<T: Element>(
    req: &RecoveryRequest<'_>,
    mut init: impl FnMut(DpuId) -> Vec<T>,
    probe: &Probe,
) -> Result<RecoveryOutcome<T>, PimnetError> {
    // Fault-free fast path: an inactive injector means no dead DPUs, no
    // permanent faults and no timeline, so the plan is always the clean
    // Full-tier schedule — take it straight from the cache (no planner,
    // no deep clone) and run the plain executor. This is what keeps the
    // manager free until faults actually exist (the perf gate pins it).
    if !req.injector.is_active() {
        let s = crate::schedule::cache::build_cached(
            req.kind,
            req.geometry,
            req.elems_per_node,
            req.elem_bytes,
        )?;
        let mut m = init_machine(&s, None, &mut init);
        m.run_probed(&s, req.op, probe);
        return Ok(RecoveryOutcome {
            machine: Some(m),
            plan_tier: 0,
            logical_to_physical: None,
            stats: RecoveryStats::default(),
            error_trail: Vec::new(),
            end_ps: 0,
        });
    }

    let base_cfg = req.injector.config();
    let step_budget = base_cfg.effective_retry_budget();
    let sync = SyncModel::from_fabric(&req.timing.fabric);
    let mut health = HealthTracker::new(req.config.health);
    let mut stats = RecoveryStats::default();
    let mut trail: Vec<PimnetError> = Vec::new();
    let mut t_ps: u64 = 0;
    let mut epoch: u64 = 0;
    // Arrivals already folded into the planning picture (≤ arrival_mark).
    let mut arrival_mark: u64 = 0;
    let mut extra = req.injector.timeline().arrived_by(0);
    // Checkpointed state surviving a replan: (schedule, map, machine,
    // completed-step count).
    #[allow(clippy::type_complexity)]
    let mut resume: Option<(CommSchedule, Option<Vec<u32>>, ExecMachine<T>, usize)> = None;

    let escalate = |e: PimnetError,
                    mut stats: RecoveryStats,
                    mut trail: Vec<PimnetError>,
                    epoch: u64,
                    t_ps: u64,
                    probe: &Probe| {
        trail.push(e);
        stats.final_epoch = epoch;
        probe.trace.instant(
            SimTime::from_ps(t_ps),
            codes::RECOV_DONE,
            [3, stats.steps_executed, stats.step_retries, stats.replans],
        );
        Ok(RecoveryOutcome {
            machine: None,
            plan_tier: 3,
            logical_to_physical: None,
            stats,
            error_trail: trail,
            end_ps: t_ps,
        })
    };

    loop {
        let inj = injector_with(base_cfg, &extra, &health);
        let plan = plan_degraded_probed_at_epoch(
            req.kind,
            req.geometry,
            req.elems_per_node,
            req.elem_bytes,
            &inj,
            req.system,
            epoch,
            probe,
        )?;
        let tier = plan.tier();
        if probe.is_active() {
            let excluded = plan.error_trail().len() as u64;
            probe.trace.instant(
                SimTime::from_ps(t_ps),
                codes::PLAN_TIER,
                [u64::from(tier), excluded, 0, 0],
            );
            probe.metrics.degraded_tier(tier);
        }
        let (schedule, map) = match plan {
            DegradedPlan::Full(s) => (s, None),
            DegradedPlan::Repaired { schedule, .. } => (schedule, None),
            DegradedPlan::Shrunk {
                schedule,
                logical_to_physical,
                error_trail,
                ..
            } => {
                trail.extend(error_trail);
                (schedule, Some(logical_to_physical))
            }
            DegradedPlan::HostFallback { error_trail, .. } => {
                trail.extend(error_trail);
                stats.final_epoch = epoch;
                probe.trace.instant(
                    SimTime::from_ps(t_ps),
                    codes::RECOV_DONE,
                    [3, stats.steps_executed, stats.step_retries, stats.replans],
                );
                return Ok(RecoveryOutcome {
                    machine: None,
                    plan_tier: 3,
                    logical_to_physical: None,
                    stats,
                    error_trail: trail,
                    end_ps: t_ps,
                });
            }
        };

        // Splice or restart: resume from the checkpoint when the new
        // plan's executed prefix is unchanged, else restart from the
        // initial contributions (clock keeps running either way).
        let (mut machine, start) = match resume.take() {
            Some((old, old_map, m, done))
                if old_map == map && prefix_equal(&old, &schedule, done) =>
            {
                probe.trace.instant(
                    SimTime::from_ps(t_ps),
                    codes::RECOV_RESUME,
                    [done as u64, epoch, 0, 0],
                );
                (m, done)
            }
            _ => (init_machine(&schedule, map.as_deref(), &mut init), 0),
        };
        if epoch > 0 {
            probe.trace.instant(
                SimTime::from_ps(t_ps),
                codes::RECOV_REPLAN,
                [u64::from(tier), epoch, u64::from(start > 0), start as u64],
            );
        }

        let steps = flat_steps(&schedule);
        let scope = req.timing.scope_of(&schedule);
        let mut i = start;
        let mut end = DriveEnd::Finished;

        'drive: while i < steps.len() {
            let (pi, si) = steps[i];

            // Step boundary: observe timeline arrivals since the last
            // check; replan only if the remaining suffix routes over a
            // newly-dead component.
            let news = inj.timeline().arrivals_between(arrival_mark, t_ps);
            arrival_mark = t_ps;
            if !news.is_empty() {
                stats.arrivals_applied += news.len() as u64;
                probe.metrics.recovery_arrivals(news.len() as u64);
                for a in &news {
                    probe.trace.instant(
                        SimTime::from_ps(t_ps),
                        codes::FAULT_ARRIVAL,
                        [arrival_class(a), a.at_ps, i as u64, 0],
                    );
                }
                let newly = fault_set_of(&news);
                extra.merge(&newly);
                if suffix_routes_over(&schedule, &steps[i..], &newly, map.as_deref(), req.geometry)
                {
                    end = DriveEnd::Replan;
                    break 'drive;
                }
            }

            // Phase boundary: READY/START barrier, retried under the
            // backoff budget (each attempt re-rolls stragglers via the
            // barrier epoch).
            if si == 0 {
                let mut round = 0u32;
                loop {
                    let barrier_epoch = (epoch << 24) ^ ((pi as u64) << 8) ^ u64::from(round);
                    let attempt = match map.as_deref() {
                        None => sync.barrier_with_faults_probed(
                            scope,
                            SimTime::ZERO,
                            schedule.participants(),
                            &inj,
                            barrier_epoch,
                            probe,
                        ),
                        Some(m) => sync.barrier_with_faults_probed(
                            scope,
                            SimTime::ZERO,
                            m.iter().map(|&p| DpuId(p)),
                            &inj,
                            barrier_epoch,
                            probe,
                        ),
                    };
                    match attempt {
                        Ok(cost) => {
                            t_ps = t_ps.saturating_add(cost.as_ps());
                            break;
                        }
                        Err(e) => {
                            round += 1;
                            if round > step_budget {
                                end = DriveEnd::Escalate(e);
                                break 'drive;
                            }
                            let dt = inj.backoff_ps(round);
                            t_ps = t_ps.saturating_add(dt);
                            stats.step_retries += 1;
                            stats.backoff_ps += dt;
                            probe.trace.instant(
                                SimTime::from_ps(t_ps),
                                codes::RECOV_RETRY,
                                [pi as u64, si as u64, u64::from(round), dt],
                            );
                            probe.metrics.recovery_retry(dt);
                        }
                    }
                }
            }

            // The step itself, under the retry/backoff budget.
            let mut round = 0u32;
            loop {
                let mut flapped: Vec<SegmentId> = Vec::new();
                let mut crossed: Vec<SegmentId> = Vec::new();
                let local_only = map.is_none();
                let result =
                    machine.run_step_with(&schedule, (pi, si), req.op, |ti, tr, payload| {
                        // Link flaps fail the transfer outright while down
                        // (physical attribution, so full/repaired plans only).
                        if local_only {
                            for r in &tr.resources {
                                if let Some(seg) = segment_of(r) {
                                    if inj.flap_down(seg, t_ps) {
                                        flapped.push(seg);
                                        return Err(PimnetError::TransferFailed {
                                            phase: pi,
                                            step: si,
                                            transfer: ti,
                                            attempts: 0,
                                        });
                                    }
                                }
                            }
                        }
                        // CRC under the (possibly burst-elevated) BER; the
                        // per-transfer attempt budget is the same knob as the
                        // step budget.
                        if !payload.is_empty() {
                            let mut attempt = 0u32;
                            while inj
                                .corrupts_at(t_ps, pi as u64, si as u64, ti as u64, attempt, round)
                            {
                                if attempt >= step_budget {
                                    return Err(PimnetError::TransferFailed {
                                        phase: pi,
                                        step: si,
                                        transfer: ti,
                                        attempts: attempt + 1,
                                    });
                                }
                                attempt += 1;
                            }
                        }
                        if local_only {
                            crossed.extend(tr.resources.iter().filter_map(segment_of));
                        }
                        Ok(())
                    });
                match result {
                    Ok(()) => {
                        for seg in crossed {
                            health.record_success(seg);
                        }
                        let dt = req
                            .timing
                            .step_time(&schedule, step_at(&schedule, (pi, si)))
                            .as_ps();
                        t_ps = t_ps.saturating_add(dt);
                        stats.steps_executed += 1;
                        stats.checkpoints += 1;
                        if probe.is_active() {
                            let transfers = step_at(&schedule, (pi, si)).transfers.len() as u64;
                            probe.trace.instant(
                                SimTime::from_ps(t_ps),
                                codes::RECOV_STEP,
                                [pi as u64, si as u64, transfers, t_ps],
                            );
                            probe.trace.instant(
                                SimTime::from_ps(t_ps),
                                codes::RECOV_CHECKPOINT,
                                [pi as u64, si as u64, i as u64, t_ps],
                            );
                            probe.metrics.recovery_step();
                        }
                        break;
                    }
                    Err(e) => {
                        let mut quarantined = false;
                        for seg in &flapped {
                            if health.record_failure(*seg) {
                                quarantined = true;
                                stats.quarantines += 1;
                                probe.trace.instant(
                                    SimTime::from_ps(t_ps),
                                    codes::RECOV_QUARANTINE,
                                    [
                                        u64::from(seg.rank),
                                        u64::from(seg.chip),
                                        u64::from((seg.from_bank << 1) | u32::from(seg.east)),
                                        health.epoch(),
                                    ],
                                );
                                probe.metrics.recovery_quarantine();
                            }
                        }
                        if quarantined {
                            // The link is now permanently dead; retrying
                            // this plan cannot succeed.
                            trail.push(e);
                            end = DriveEnd::Replan;
                            break 'drive;
                        }
                        round += 1;
                        if round > step_budget {
                            if flapped.is_empty() {
                                // Persistent corruption with no component
                                // to route around: the fabric itself is
                                // the problem. Escalate.
                                end = DriveEnd::Escalate(e);
                                break 'drive;
                            }
                            // Budget spent on a still-flapping link:
                            // force-promote it so the replan routes
                            // around it.
                            for seg in flapped {
                                while health.state(seg) != LinkHealth::Quarantined {
                                    if health.record_failure(seg) {
                                        stats.quarantines += 1;
                                        probe.trace.instant(
                                            SimTime::from_ps(t_ps),
                                            codes::RECOV_QUARANTINE,
                                            [
                                                u64::from(seg.rank),
                                                u64::from(seg.chip),
                                                u64::from(
                                                    (seg.from_bank << 1) | u32::from(seg.east),
                                                ),
                                                health.epoch(),
                                            ],
                                        );
                                        probe.metrics.recovery_quarantine();
                                    }
                                }
                            }
                            trail.push(e);
                            end = DriveEnd::Replan;
                            break 'drive;
                        }
                        let dt = inj.backoff_ps(round);
                        t_ps = t_ps.saturating_add(dt);
                        stats.step_retries += 1;
                        stats.backoff_ps += dt;
                        probe.trace.instant(
                            SimTime::from_ps(t_ps),
                            codes::RECOV_RETRY,
                            [pi as u64, si as u64, u64::from(round), dt],
                        );
                        probe.metrics.recovery_retry(dt);
                    }
                }
            }
            if matches!(end, DriveEnd::Finished) {
                i += 1;
            }
        }

        match end {
            DriveEnd::Finished => {
                stats.final_epoch = epoch;
                probe.trace.instant(
                    SimTime::from_ps(t_ps),
                    codes::RECOV_DONE,
                    [
                        u64::from(tier),
                        stats.steps_executed,
                        stats.step_retries,
                        stats.replans,
                    ],
                );
                return Ok(RecoveryOutcome {
                    machine: Some(machine),
                    plan_tier: tier,
                    logical_to_physical: map,
                    stats,
                    error_trail: trail,
                    end_ps: t_ps,
                });
            }
            DriveEnd::Replan => {
                stats.replans += 1;
                probe.metrics.recovery_replan();
                if stats.replans > u64::from(req.config.max_replans) {
                    return escalate(
                        PimnetError::ScheduleInvalid {
                            reason: format!(
                                "recovery replan budget ({}) exhausted",
                                req.config.max_replans
                            ),
                        },
                        stats,
                        trail,
                        epoch,
                        t_ps,
                        probe,
                    );
                }
                epoch += 1;
                resume = Some((schedule, map, machine, i));
            }
            DriveEnd::Escalate(e) => {
                return escalate(e, stats, trail, epoch, t_ps, probe);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::run_collective;
    use pim_faults::{FaultTimeline, LinkFlap, TransientBurst};

    const N: u32 = 16;
    const ELEMS: usize = 32;

    fn input(id: DpuId) -> Vec<u64> {
        (0..ELEMS)
            .map(|e| (u64::from(id.0) + 1) * 1_000 + e as u64)
            .collect()
    }

    fn request<'a>(
        geometry: &'a PimGeometry,
        system: &'a SystemConfig,
        timing: &'a TimingModel,
        injector: &'a FaultInjector,
    ) -> RecoveryRequest<'a> {
        RecoveryRequest {
            kind: CollectiveKind::AllReduce,
            geometry,
            elems_per_node: ELEMS,
            elem_bytes: 8,
            op: ReduceOp::Sum,
            injector,
            system,
            timing,
            config: RecoveryConfig::default(),
        }
    }

    /// The fault-free AllReduce reference buffers over `paper_scaled(N)`.
    fn reference() -> (CommSchedule, ExecMachine<u64>) {
        let g = PimGeometry::paper_scaled(N);
        let s = CommSchedule::build(CollectiveKind::AllReduce, &g, ELEMS, 8).unwrap();
        let m = run_collective(&s, ReduceOp::Sum, input).unwrap();
        (s, m)
    }

    fn assert_bit_identical(schedule: &CommSchedule, got: &ExecMachine<u64>) {
        let (ref_s, ref_m) = reference();
        assert_eq!(
            ref_s, *schedule,
            "recovered run ended on a different schedule"
        );
        for id in schedule.participants() {
            assert_eq!(
                got.result(schedule, id),
                ref_m.result(&ref_s, id),
                "node {id} diverged from the fault-free reference"
            );
        }
    }

    /// Ring segments the fault-free schedule's step `ordinal` occupies.
    fn segments_of_step(s: &CommSchedule, ordinal: usize) -> Vec<SegmentId> {
        let coords = flat_steps(s)[ordinal];
        step_at(s, coords)
            .transfers
            .iter()
            .filter(|t| !t.is_local())
            .flat_map(|t| t.resources.iter().filter_map(segment_of))
            .collect()
    }

    #[test]
    fn fault_free_fast_path_matches_the_plain_run() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        let injector = FaultInjector::none();
        let req = request(&g, &system, &timing, &injector);
        let out = run_recovered(&req, input).unwrap();
        assert_eq!(out.plan_tier, 0);
        assert_eq!(out.stats, RecoveryStats::default());
        assert_eq!(out.end_ps, 0);
        assert!(out.error_trail.is_empty());
        let (ref_s, ref_m) = reference();
        let m = out.machine.unwrap();
        for id in ref_s.participants() {
            assert_eq!(m.result(&ref_s, id), ref_m.result(&ref_s, id));
        }
    }

    #[test]
    fn backoff_escapes_a_transient_burst_bit_identically() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        // BER 1.0 for the first 10 µs: every attempt inside the window is
        // corrupted, so only the backoff clock can get the step through.
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                bursts: vec![TransientBurst {
                    from_ps: 0,
                    until_ps: 10_000_000,
                    ber: 1.0,
                }],
                ..FaultTimeline::none()
            },
            backoff_base_ps: Some(6_000_000),
            ..FaultConfig::none()
        });
        let req = request(&g, &system, &timing, &injector);
        let out = run_recovered(&req, input).unwrap();
        assert_eq!(out.plan_tier, 0, "trail: {:?}", out.error_trail);
        assert!(out.stats.step_retries >= 1, "burst never forced a retry");
        assert!(out.stats.backoff_ps >= 6_000_000);
        assert_eq!(out.stats.replans, 0);
        assert!(out.end_ps > 10_000_000);
        let schedule = reference().0;
        assert_bit_identical(&schedule, out.machine.as_ref().unwrap());
    }

    #[test]
    fn persistent_flap_quarantines_the_link_and_replans() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        let seg = segments_of_step(&reference().0, 0)[0];
        // The link never comes back: health hysteresis must promote it to
        // a permanent fault and the replan must route around it.
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                flaps: vec![LinkFlap {
                    segment: seg,
                    from_ps: 0,
                    until_ps: u64::MAX,
                }],
                ..FaultTimeline::none()
            },
            ..FaultConfig::none()
        });
        let req = request(&g, &system, &timing, &injector);
        let probe = Probe::enabled();
        let out = run_recovered_probed(&req, input, &probe).unwrap();
        assert!(out.stats.quarantines >= 1, "flaky link never quarantined");
        assert!(out.stats.replans >= 1, "quarantine did not force a replan");
        assert!(out.plan_tier >= 1, "replan cannot keep the full schedule");
        assert!(
            !out.error_trail.is_empty()
                && out
                    .error_trail
                    .iter()
                    .any(|e| matches!(e, PimnetError::TransferFailed { .. })),
            "trail: {:?}",
            out.error_trail
        );
        let m = out.machine.expect("a single dead segment is survivable");
        if out.plan_tier == 1 {
            // Repaired results are bit-identical to the fault-free run.
            let (ref_s, ref_m) = reference();
            for id in ref_s.participants() {
                assert_eq!(m.result(&ref_s, id), ref_m.result(&ref_s, id));
            }
        }
        let trace = probe.trace.drain();
        assert!(trace.count(codes::RECOV_QUARANTINE) >= 1);
        assert!(trace.count(codes::RECOV_RETRY) >= 1);
        assert!(trace.count(codes::RECOV_DONE) == 1);
        assert_eq!(
            probe.metrics.snapshot().recovery_quarantines,
            out.stats.quarantines
        );
    }

    #[test]
    fn mid_run_segment_arrival_replans_the_suffix() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        let (ref_s, _) = reference();
        let last = flat_steps(&ref_s).len() - 1;
        let seg = *segments_of_step(&ref_s, last)
            .first()
            .expect("last step has a ring transfer");
        // The segment dies 1 ps into the run: the first step boundary
        // after any time has elapsed observes it, and the surviving
        // suffix (which still uses it) must be replanned.
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                arrivals: vec![Arrival {
                    at_ps: 1,
                    what: ArrivalKind::Segment(seg),
                }],
                ..FaultTimeline::none()
            },
            ..FaultConfig::none()
        });
        let req = request(&g, &system, &timing, &injector);
        let probe = Probe::enabled();
        let out = run_recovered_probed(&req, input, &probe).unwrap();
        assert_eq!(out.stats.arrivals_applied, 1);
        assert!(out.stats.replans >= 1, "arrival never invalidated the plan");
        assert!(out.stats.final_epoch >= 1);
        assert!(out.plan_tier >= 1);
        assert!(out.machine.is_some(), "one dead segment is survivable");
        let trace = probe.trace.drain();
        assert_eq!(trace.count(codes::FAULT_ARRIVAL), 1);
        assert!(trace.count(codes::RECOV_REPLAN) >= 1);
        assert_eq!(probe.metrics.snapshot().recovery_replans, out.stats.replans);
    }

    #[test]
    fn unattributable_persistent_corruption_escalates_typed() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        // A never-ending BER-1.0 burst: no component to quarantine, no
        // window to escape — the only sound end state is host fallback.
        let injector = FaultInjector::new(FaultConfig {
            timeline: FaultTimeline {
                bursts: vec![TransientBurst {
                    from_ps: 0,
                    until_ps: u64::MAX,
                    ber: 1.0,
                }],
                ..FaultTimeline::none()
            },
            ..FaultConfig::none()
        });
        let req = request(&g, &system, &timing, &injector);
        let out = run_recovered(&req, input).unwrap();
        assert_eq!(out.plan_tier, 3);
        assert!(out.machine.is_none());
        assert!(out
            .error_trail
            .iter()
            .any(|e| matches!(e, PimnetError::TransferFailed { .. })));
    }

    #[test]
    fn recovery_is_deterministic_run_to_run() {
        let g = PimGeometry::paper_scaled(N);
        let system = SystemConfig::paper_scaled(N);
        let timing = TimingModel::paper();
        let seg = segments_of_step(&reference().0, 0)[0];
        let cfg = FaultConfig {
            transient_ber: 0.05,
            straggler_prob: 0.1,
            straggler_max_ns: 50,
            timeline: FaultTimeline {
                flaps: vec![LinkFlap {
                    segment: seg,
                    from_ps: 0,
                    until_ps: 500_000,
                }],
                bursts: vec![TransientBurst {
                    from_ps: 100_000,
                    until_ps: 400_000,
                    ber: 0.5,
                }],
                ..FaultTimeline::none()
            },
            seed: 7,
            ..FaultConfig::none()
        };
        let run = || {
            let injector = FaultInjector::new(cfg.clone());
            let req = request(&g, &system, &timing, &injector);
            let probe = Probe::enabled();
            let out = run_recovered_probed(&req, input, &probe).unwrap();
            let buffers: Vec<Vec<u64>> = match (&out.machine, reference().0.participants()) {
                (Some(m), ids) => ids.map(|id| m.buffer(id).to_vec()).collect(),
                (None, _) => Vec::new(),
            };
            (
                out.stats,
                out.plan_tier,
                out.end_ps,
                probe.trace.drain().fingerprint(),
                buffers,
            )
        };
        assert_eq!(run(), run());
    }
}
