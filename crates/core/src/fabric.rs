//! PIMnet fabric parameters — the paper's Table IV.
//!
//! | tier       | physical channel | # ch | width | GB/s per ch | topology |
//! |------------|------------------|------|-------|-------------|----------|
//! | inter-bank | bank I/O bus     | 4    | 16 b  | 0.7         | ring     |
//! | inter-chip | DQ pins          | 2    | 4 b   | 1.05        | crossbar |
//! | inter-rank | DDR bus          | 1    | 64 b  | 16.8        | bus      |
//!
//! The configuration is one possible implementation (§IV-B); the sweep
//! experiments of Fig 14 vary these bandwidths, which is why they are plain
//! data here rather than constants.

use pim_sim::{Bandwidth, SimTime};

use pim_arch::geometry::PimGeometry;

/// Bandwidths and latencies of the three PIMnet tiers.
///
/// # Example
///
/// ```
/// use pimnet::FabricConfig;
/// use pim_arch::geometry::PimGeometry;
///
/// let f = FabricConfig::paper();
/// // §IV-B: 2.8 GB/s inter-bank bisection per chip, and 179.2 GB/s of
/// // aggregated send+receive bandwidth per 64-DPU rank.
/// assert_eq!(f.inter_bank_bisection_per_chip().as_gbps(), 2.8);
/// let rank_agg = f.aggregate_ring_bandwidth(&PimGeometry::paper());
/// assert_eq!(rank_agg.as_gbps(), 179.2 * 4.0); // 4 ranks in the system
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FabricConfig {
    /// Bandwidth of one inter-bank ring channel (16-bit slice of the bank
    /// I/O bus). Each bank has four: in/out × east/west.
    pub bank_channel_bw: Bandwidth,
    /// Inter-bank channels per bank (4 in Table IV: one per direction per
    /// in/out port).
    pub bank_channels: u32,
    /// Bandwidth of one inter-chip channel (4 DQ pins); each chip has one
    /// send and one receive channel to the buffer-chip crossbar.
    pub chip_channel_bw: Bandwidth,
    /// Inter-chip channels per chip (2 in Table IV: send + receive).
    pub chip_channels: u32,
    /// Bandwidth of the shared, half-duplex inter-rank DDR bus.
    pub rank_bus_bw: Bandwidth,
    /// Per-hop propagation/mux latency through a PIMnet stop or switch.
    pub hop_latency: SimTime,
    /// Worst-case propagation of the READY/START synchronization signals
    /// across the whole PIMnet (≈15 ns, §VI-B "Hardware Overhead").
    pub sync_propagation: SimTime,
}

impl FabricConfig {
    /// The paper's Table IV fabric.
    #[must_use]
    pub fn paper() -> Self {
        FabricConfig {
            bank_channel_bw: Bandwidth::gbps(0.7),
            bank_channels: 4,
            chip_channel_bw: Bandwidth::gbps(1.05),
            chip_channels: 2,
            rank_bus_bw: Bandwidth::gbps(16.8),
            hop_latency: SimTime::from_ns(1),
            sync_propagation: SimTime::from_ns(15),
        }
    }

    /// Replaces the inter-bank channel bandwidth (Fig 14(a) sweep).
    #[must_use]
    pub fn with_bank_channel_bw(mut self, bw: Bandwidth) -> Self {
        self.bank_channel_bw = bw;
        self
    }

    /// Replaces the inter-chip channel bandwidth (Fig 14(b) sweep).
    #[must_use]
    pub fn with_chip_channel_bw(mut self, bw: Bandwidth) -> Self {
        self.chip_channel_bw = bw;
        self
    }

    /// Replaces the inter-rank bus bandwidth (Fig 14(b) sweep).
    #[must_use]
    pub fn with_rank_bus_bw(mut self, bw: Bandwidth) -> Self {
        self.rank_bus_bw = bw;
        self
    }

    /// Bandwidth of one ring segment in one direction (= one bank channel).
    #[must_use]
    pub fn ring_segment_bw(&self) -> Bandwidth {
        self.bank_channel_bw
    }

    /// Per-bank injection bandwidth on the ring: one channel per direction.
    #[must_use]
    pub fn ring_injection_bw(&self) -> Bandwidth {
        self.bank_channel_bw
            .aggregate(u64::from(self.bank_channels) / 2)
    }

    /// Inter-bank bisection bandwidth of one chip's ring: two segments cut,
    /// two directions each.
    #[must_use]
    pub fn inter_bank_bisection_per_chip(&self) -> Bandwidth {
        self.bank_channel_bw.aggregate(4)
    }

    /// Aggregate send+receive ring bandwidth across all banks of the system
    /// (the "PIM bandwidth parallelism" PIMnet exploits; 179.2 GB/s per
    /// 64-DPU rank in the paper).
    #[must_use]
    pub fn aggregate_ring_bandwidth(&self, geometry: &PimGeometry) -> Bandwidth {
        self.bank_channel_bw
            .aggregate(u64::from(self.bank_channels))
            .aggregate(u64::from(geometry.total_dpus()))
    }
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values_match_table_iv() {
        let f = FabricConfig::paper();
        assert_eq!(f.bank_channel_bw.as_gbps(), 0.7);
        assert_eq!(f.bank_channels, 4);
        assert_eq!(f.chip_channel_bw.as_gbps(), 1.05);
        assert_eq!(f.chip_channels, 2);
        assert_eq!(f.rank_bus_bw.as_gbps(), 16.8);
        assert_eq!(f.sync_propagation, SimTime::from_ns(15));
    }

    #[test]
    fn derived_bandwidths_match_section_iv_b() {
        let f = FabricConfig::paper();
        assert_eq!(f.inter_bank_bisection_per_chip().as_gbps(), 2.8);
        assert_eq!(f.ring_injection_bw().as_gbps(), 1.4);
        // 2.8 GB/s per bank x 64 banks = 179.2 GB/s per rank.
        let per_rank = f.aggregate_ring_bandwidth(&PimGeometry::new(8, 8, 1, 1));
        assert_eq!(per_rank.as_gbps(), 179.2);
    }

    #[test]
    fn sweep_builders_replace_one_field() {
        let f = FabricConfig::paper().with_bank_channel_bw(Bandwidth::gbps(0.1));
        assert_eq!(f.bank_channel_bw.as_gbps(), 0.1);
        assert_eq!(f.chip_channel_bw.as_gbps(), 1.05);
        let f = f
            .with_chip_channel_bw(Bandwidth::gbps(2.0))
            .with_rank_bus_bw(Bandwidth::gbps(8.4));
        assert_eq!(f.chip_channel_bw.as_gbps(), 2.0);
        assert_eq!(f.rank_bus_bw.as_gbps(), 8.4);
    }
}
