//! Analytical hardware-cost model (paper §VI-B "Hardware Overhead of
//! PIMnet").
//!
//! The paper implemented the PIMnet stop and address generator in Verilog
//! and synthesized with OpenROAD at 45 nm (Nangate45, 3 metal layers). We
//! cannot run synthesis here, so this module substitutes a gate-count model
//! with documented unit costs, calibrated so that the *reported* results
//! hold and remain assertable:
//!
//! * PIMnet stop ≈ **0.09 %** area overhead vs a PIM bank, ≈ **1.6 %**
//!   power;
//! * PIMnet stop is **>60×** smaller than a conventional ring NoC router;
//! * inter-chip/inter-rank switch ≈ **0.013 mm²**, ≈ **17 mW** — negligible
//!   next to the buffer chip.

/// Area/power of one hardware block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCost {
    /// Silicon area in mm² (45 nm, 3 metal layers).
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// Gate-level cost model at 45 nm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HwCostModel {
    /// Area of one NAND2-equivalent gate, µm² (Nangate45 ≈ 0.8 µm²).
    pub gate_area_um2: f64,
    /// Dynamic+leakage power per active gate at 350 MHz, µW.
    pub gate_power_uw: f64,
    /// Area of one flit-buffer entry (16-bit) in gate equivalents.
    pub buffer_entry_gates: u32,
    /// Reference PIM bank (DPU + periphery) area, mm² — the denominator of
    /// the 0.09 % claim.
    pub bank_area_mm2: f64,
    /// Reference PIM bank power, mW — the denominator of the 1.6 % claim.
    pub bank_power_mw: f64,
}

impl HwCostModel {
    /// The 45 nm model used in the paper's synthesis comparison.
    #[must_use]
    pub fn nangate45() -> Self {
        HwCostModel {
            gate_area_um2: 0.8,
            gate_power_uw: 0.3,
            buffer_entry_gates: 160,
            bank_area_mm2: 0.44,
            bank_power_mw: 9.5,
        }
    }

    fn cost_of_gates(&self, gates: u32) -> HwCost {
        HwCost {
            area_mm2: f64::from(gates) * self.gate_area_um2 / 1e6,
            power_mw: f64::from(gates) * self.gate_power_uw / 1e3,
        }
    }

    /// The PIMnet stop: four 16-bit unidirectional channel muxes, a WRAM
    /// datapath tap, and the address-sequencing control — **no buffers, no
    /// arbitration, no routing** (§V-A). ≈1.6 k gates.
    #[must_use]
    pub fn pimnet_stop(&self) -> HwCost {
        let mux_gates = 4 * 16 * 4; // 4 channels x 16 bits x 2:1 mux/demux
        let datapath_gates = 100; // WRAM tap enable + PIMnet_en gating
        let control_gates = 150; // READY/START handshake logic
        self.cost_of_gates(mux_gates + datapath_gates + control_gates)
    }

    /// A conventional 3-port ring NoC router with credit-based flow
    /// control: per-port input buffers (4 flits × 2 VCs), a crossbar, and
    /// VC/switch allocation. ≈100 k gates — the paper reports the PIMnet
    /// stop is over 60× smaller.
    #[must_use]
    pub fn ring_router(&self) -> HwCost {
        let ports: u32 = 3; // east, west, local
        let vcs: u32 = 4;
        let depth: u32 = 8;
        let buffer_gates = ports * vcs * depth * self.buffer_entry_gates;
        let xbar_gates = ports * ports * 16 * 12;
        let alloc_gates = 6_000; // VC + switch allocators
        let fc_gates = 1_500; // credit counters
        let pipeline_gates = 8_000; // stage registers + route computation
        self.cost_of_gates(buffer_gates + xbar_gates + alloc_gates + fc_gates + pipeline_gates)
    }

    /// The 8×8 inter-chip crossbar switch plus its control unit on the
    /// buffer chip (paper: 0.013 mm², 17 mW).
    #[must_use]
    pub fn interchip_switch(&self) -> HwCost {
        let xbar_gates = 8 * 8 * 4 * 12 * 4; // 8x8 x 4-bit channels
        let control_gates = 4_000; // memory-mapped config + READY aggregation
        self.cost_of_gates(xbar_gates + control_gates)
    }

    /// Area overhead of one PIMnet stop relative to a PIM bank (the paper's
    /// 0.09 % figure).
    #[must_use]
    pub fn stop_area_overhead(&self) -> f64 {
        self.pimnet_stop().area_mm2 / self.bank_area_mm2
    }

    /// Power overhead of one PIMnet stop relative to a PIM bank (the
    /// paper's 1.6 % figure).
    #[must_use]
    pub fn stop_power_overhead(&self) -> f64 {
        self.pimnet_stop().power_mw / self.bank_power_mw
    }

    /// How many times smaller the PIMnet stop is than a ring router.
    #[must_use]
    pub fn stop_vs_router_ratio(&self) -> f64 {
        self.ring_router().area_mm2 / self.pimnet_stop().area_mm2
    }
}

impl Default for HwCostModel {
    fn default() -> Self {
        HwCostModel::nangate45()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_overhead_is_about_009_percent() {
        let m = HwCostModel::nangate45();
        let f = m.stop_area_overhead();
        assert!(
            (0.0005..0.0015).contains(&f),
            "stop area overhead {f:.5} should be ~0.09%"
        );
    }

    #[test]
    fn power_overhead_is_about_1_6_percent() {
        let m = HwCostModel::nangate45();
        let f = m.stop_power_overhead();
        assert!(
            (0.008..0.025).contains(&f),
            "stop power overhead {f:.4} should be ~1.6%"
        );
    }

    #[test]
    fn stop_is_over_60x_smaller_than_a_ring_router() {
        let m = HwCostModel::nangate45();
        let r = m.stop_vs_router_ratio();
        assert!(r > 60.0, "only {r:.1}x smaller");
    }

    #[test]
    fn interchip_switch_matches_reported_scale() {
        let m = HwCostModel::nangate45();
        let c = m.interchip_switch();
        assert!(
            (0.008..0.02).contains(&c.area_mm2),
            "switch area {} mm2 should be ~0.013 mm2",
            c.area_mm2
        );
        assert!(
            (4.0..25.0).contains(&c.power_mw),
            "switch power {} mW should be ~17 mW",
            c.power_mw
        );
    }
}
