//! Communication energy model — an *extension* beyond the paper's
//! evaluation (which reports only hardware power), answering the natural
//! follow-up: how much energy does skipping the host round-trip save?
//!
//! The model is a per-byte energy table per data path, with defaults from
//! the DRAM-interface literature: on-chip wire movement is cheap
//! (~1 pJ/B-equivalent per hop), chip-to-buffer DQ signaling costs more,
//! and the full off-DIMM DDR hop to the host costs the most — plus the
//! host-side DRAM write/read that host-mediated collectives pay twice.

use pim_sim::Bytes;

use crate::schedule::{CommSchedule, PhaseLabel};
use crate::topology::Resource;

/// Per-byte energy costs (picojoules per byte).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One hop over an intra-chip ring segment.
    pub ring_pj_per_byte: f64,
    /// One traversal of a chip's DQ channel (to/from the buffer chip).
    pub dq_pj_per_byte: f64,
    /// One traversal of the inter-rank DDR bus.
    pub bus_pj_per_byte: f64,
    /// One full host hop: DDR channel + host memory write + read back.
    pub host_pj_per_byte: f64,
}

impl EnergyModel {
    /// Literature-derived defaults (45 nm-era DRAM interfaces).
    #[must_use]
    pub fn default_45nm() -> Self {
        EnergyModel {
            ring_pj_per_byte: 1.0,
            dq_pj_per_byte: 8.0,
            bus_pj_per_byte: 20.0,
            host_pj_per_byte: 60.0,
        }
    }

    fn resource_cost(&self, r: &Resource) -> f64 {
        match r {
            Resource::RingSegment { .. } => self.ring_pj_per_byte,
            Resource::ChipTx { .. } | Resource::ChipRx { .. } => self.dq_pj_per_byte,
            Resource::RankBus { .. } => self.bus_pj_per_byte,
        }
    }

    /// Energy of executing a PIMnet schedule, in microjoules: every
    /// transfer pays each traversed resource per byte.
    #[must_use]
    pub fn schedule_energy_uj(&self, schedule: &CommSchedule) -> f64 {
        let mut pj = 0.0;
        for phase in &schedule.phases {
            for step in &phase.steps {
                for t in &step.transfers {
                    let bytes = t.bytes(schedule.elem_bytes).as_u64() as f64;
                    for r in &t.resources {
                        pj += bytes * self.resource_cost(r);
                    }
                }
            }
        }
        pj / 1e6
    }

    /// Energy of moving the same collective through the host, in
    /// microjoules: `up` bytes PIM→CPU and `down` bytes CPU→PIM, each a
    /// full host hop.
    #[must_use]
    pub fn host_energy_uj(&self, up: Bytes, down: Bytes) -> f64 {
        (up.as_u64() + down.as_u64()) as f64 * self.host_pj_per_byte / 1e6
    }

    /// Per-tier energy breakdown of a schedule, microjoules, in
    /// (inter-bank, inter-chip, inter-rank) order.
    #[must_use]
    pub fn breakdown_uj(&self, schedule: &CommSchedule) -> (f64, f64, f64) {
        let (mut bank, mut chip, mut rank) = (0.0, 0.0, 0.0);
        for phase in &schedule.phases {
            for step in &phase.steps {
                for t in &step.transfers {
                    let bytes = t.bytes(schedule.elem_bytes).as_u64() as f64;
                    let pj: f64 = t
                        .resources
                        .iter()
                        .map(|r| bytes * self.resource_cost(r))
                        .sum();
                    match phase.label {
                        PhaseLabel::InterBank | PhaseLabel::Local => bank += pj,
                        PhaseLabel::InterChip => chip += pj,
                        PhaseLabel::InterRank => rank += pj,
                    }
                }
            }
        }
        (bank / 1e6, chip / 1e6, rank / 1e6)
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_45nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::{CollectiveKind, CollectiveSpec};
    use pim_arch::geometry::PimGeometry;

    fn ar_schedule() -> CommSchedule {
        CommSchedule::build(CollectiveKind::AllReduce, &PimGeometry::paper(), 8192, 4).unwrap()
    }

    #[test]
    fn pimnet_saves_energy_over_the_host() {
        let e = EnergyModel::default_45nm();
        let s = ar_schedule();
        let pim = e.schedule_energy_uj(&s);
        // Baseline AllReduce: 8 MiB up, 32 KiB broadcast down.
        let spec = CollectiveSpec::new(CollectiveKind::AllReduce, pim_sim::Bytes::kib(32));
        let up = crate::backends::host_upward_bytes(spec.kind, spec.bytes_per_dpu, 256);
        let host = e.host_energy_uj(up, pim_sim::Bytes::kib(32));
        assert!(
            pim < host / 2.0,
            "PIMnet {pim:.1} uJ should be well under host {host:.1} uJ"
        );
    }

    #[test]
    fn breakdown_sums_to_the_total() {
        let e = EnergyModel::default_45nm();
        let s = ar_schedule();
        let (b, c, r) = e.breakdown_uj(&s);
        let total = e.schedule_energy_uj(&s);
        assert!((b + c + r - total).abs() < 1e-9);
        assert!(b > 0.0 && c > 0.0 && r > 0.0);
    }

    #[test]
    fn energy_scales_linearly_with_payload() {
        let e = EnergyModel::default_45nm();
        let g = PimGeometry::paper();
        let small = e.schedule_energy_uj(
            &CommSchedule::build(CollectiveKind::AllReduce, &g, 2048, 4).unwrap(),
        );
        let large = e.schedule_energy_uj(
            &CommSchedule::build(CollectiveKind::AllReduce, &g, 8192, 4).unwrap(),
        );
        let ratio = large / small;
        assert!((3.9..4.1).contains(&ratio), "{ratio}");
    }
}
