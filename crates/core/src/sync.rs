//! READY/START synchronization (paper §IV-C, Fig 5(d)).
//!
//! Before a collective begins, every participating DPU raises READY to its
//! chip's control interface; READY signals aggregate up the hierarchy
//! (chip → inter-chip switch → inter-rank switch) and a START signal
//! propagates back down. Because PIMnet's data movement is statically
//! scheduled, this is the *only* dynamic synchronization in the network;
//! the paper estimates its worst-case propagation at ≈15 ns (≈6 DPU
//! cycles).
//!
//! The model also accounts for *compute skew*: START fires only after the
//! **last** DPU is ready, so PIMnet pays `max(finish) − earliest possible
//! start`, whereas a dynamically flow-controlled network would let early
//! DPUs inject immediately (the trade-off quantified in Fig 13).

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_faults::FaultInjector;
use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use crate::error::PimnetError;
use crate::fabric::FabricConfig;
use crate::schedule::ScheduleView;

/// How far a collective's participants extend across the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyncScope {
    /// All participants share one DRAM chip (READY stops at the chip's
    /// control interface).
    Chip,
    /// Participants span chips of one rank (READY reaches the inter-chip
    /// switch on the buffer chip).
    Rank,
    /// Participants span ranks of one channel (READY reaches the inter-rank
    /// switch — the worst case).
    Channel,
}

impl SyncScope {
    /// Stable integer used as the `barrier` trace-event argument.
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        match self {
            SyncScope::Chip => 0,
            SyncScope::Rank => 1,
            SyncScope::Channel => 2,
        }
    }

    /// The scope a geometry's collectives synchronize over: how far up the
    /// hierarchy READY must aggregate before START can fire.
    #[must_use]
    pub fn of_geometry(g: &PimGeometry) -> SyncScope {
        if g.ranks_per_channel > 1 {
            SyncScope::Channel
        } else if g.chips_per_rank > 1 {
            SyncScope::Rank
        } else {
            SyncScope::Chip
        }
    }
}

/// Timing model of the READY/START barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyncModel {
    /// One-way worst-case propagation across the whole PIMnet (channel
    /// scope); narrower scopes pay a proportional fraction.
    pub propagation: SimTime,
}

impl SyncModel {
    /// Builds the model from a fabric configuration (15 ns worst case in
    /// the paper).
    #[must_use]
    pub fn from_fabric(fabric: &FabricConfig) -> Self {
        SyncModel {
            propagation: fabric.sync_propagation,
        }
    }

    /// One-way READY aggregation latency for a scope.
    #[must_use]
    pub fn one_way(&self, scope: SyncScope) -> SimTime {
        // READY crosses: bank->chip control (1/3 of the way), chip->buffer
        // chip (2/3), buffer->inter-rank switch (full path).
        match scope {
            SyncScope::Chip => self.propagation / 3,
            SyncScope::Rank => (self.propagation * 2) / 3,
            SyncScope::Channel => self.propagation,
        }
    }

    /// Full barrier cost: READY up, START down, plus the compute `skew`
    /// (time between the first and last participant becoming ready).
    #[must_use]
    pub fn barrier(&self, scope: SyncScope, skew: SimTime) -> SimTime {
        self.one_way(scope) * 2 + skew
    }

    /// [`SyncModel::barrier`] for a schedule in either layout, deriving
    /// the scope from the schedule's geometry.
    #[must_use]
    pub fn barrier_for<S: ScheduleView>(&self, schedule: &S, skew: SimTime) -> SimTime {
        self.barrier(SyncScope::of_geometry(schedule.header().geometry), skew)
    }

    /// [`SyncModel::barrier`] plus observation: emits one `barrier` span
    /// and adds its cost to the metrics.
    #[must_use]
    pub fn barrier_probed(&self, scope: SyncScope, skew: SimTime, probe: &Probe) -> SimTime {
        let cost = self.barrier(scope, skew);
        self.record_barrier(scope, cost, skew, probe);
        cost
    }

    /// Records an already-computed barrier of `cost` (used by the probed
    /// timeline builders, which learn the barrier cost from the built
    /// timeline): a `barrier` span starting at simulated time zero.
    pub fn record_barrier(&self, scope: SyncScope, cost: SimTime, skew: SimTime, probe: &Probe) {
        if !probe.is_active() {
            return;
        }
        probe.trace.span(
            SimTime::ZERO,
            cost,
            codes::BARRIER,
            [scope.as_u64(), skew.as_ps(), 0, 0],
        );
        probe.metrics.barrier(cost.as_ps());
    }

    /// Control-plane cost of a schedule repair that inserted
    /// `extra_steps` serialization steps.
    ///
    /// Every inserted step adds one WAIT-counter boundary the chip
    /// control interface must sequence — one extra chip-scope one-way
    /// control propagation per step. Repairs that only reroute or borrow
    /// ports (no new steps) cost nothing here; their price is carried by
    /// the data path (longer routes, doubled occupancy).
    #[must_use]
    pub fn repair_overhead(&self, extra_steps: usize) -> SimTime {
        self.one_way(SyncScope::Chip) * extra_steps as u64
    }

    /// The barrier under a fault scenario, guarded by a watchdog.
    ///
    /// Stragglers stretch the effective skew (START fires only after the
    /// *last* participant raises READY); hard-dead participants never
    /// raise READY at all, so the watchdog is the only way out. `epoch`
    /// identifies the barrier instance so each collective re-rolls its
    /// stragglers.
    ///
    /// # Errors
    ///
    /// [`PimnetError::SyncTimeout`] when a dead participant means the
    /// barrier can never close, or when the straggler-stretched skew
    /// overruns the configured watchdog timeout.
    pub fn barrier_with_faults(
        &self,
        scope: SyncScope,
        skew: SimTime,
        participants: impl Iterator<Item = DpuId>,
        injector: &FaultInjector,
        epoch: u64,
    ) -> Result<SimTime, PimnetError> {
        if !injector.is_active() {
            return Ok(self.barrier(scope, skew));
        }
        let timeout_ns = injector.config().effective_watchdog_ns();
        let mut missing = Vec::new();
        let mut straggle_ns = 0u64;
        for id in participants {
            if injector.is_dead(id.0) {
                missing.push(id.0);
            } else {
                straggle_ns = straggle_ns.max(injector.straggler_delay_ns(id.0, epoch));
            }
        }
        if !missing.is_empty() {
            return Err(PimnetError::SyncTimeout {
                timeout_ns,
                missing,
            });
        }
        let total = self.barrier(scope, skew + SimTime::from_ns(straggle_ns));
        if total > SimTime::from_ns(timeout_ns) {
            return Err(PimnetError::SyncTimeout {
                timeout_ns,
                missing: Vec::new(),
            });
        }
        Ok(total)
    }

    /// [`SyncModel::barrier_with_faults`] plus observation: on success,
    /// emits one `straggler` instant per delayed participant (in
    /// participant order) and the `barrier` span.
    ///
    /// # Errors
    ///
    /// Exactly those of [`SyncModel::barrier_with_faults`]; nothing is
    /// recorded on the error path.
    pub fn barrier_with_faults_probed(
        &self,
        scope: SyncScope,
        skew: SimTime,
        participants: impl Iterator<Item = DpuId>,
        injector: &FaultInjector,
        epoch: u64,
        probe: &Probe,
    ) -> Result<SimTime, PimnetError> {
        if !probe.is_active() {
            return self.barrier_with_faults(scope, skew, participants, injector, epoch);
        }
        let ids: Vec<DpuId> = participants.collect();
        let total = self.barrier_with_faults(scope, skew, ids.iter().copied(), injector, epoch)?;
        if injector.is_active() {
            for id in &ids {
                let delay_ns = injector.straggler_delay_ns(id.0, epoch);
                if delay_ns > 0 {
                    probe.trace.instant(
                        SimTime::ZERO,
                        codes::STRAGGLER,
                        [u64::from(id.0), delay_ns, 0, 0],
                    );
                    probe.metrics.straggler(delay_ns);
                }
            }
        }
        self.record_barrier(scope, total, skew, probe);
        Ok(total)
    }
}

impl Default for SyncModel {
    fn default() -> Self {
        SyncModel::from_fabric(&FabricConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scope_is_the_paper_worst_case() {
        let m = SyncModel::default();
        assert_eq!(m.one_way(SyncScope::Channel), SimTime::from_ns(15));
        // Barrier with no skew: 30 ns round trip.
        assert_eq!(
            m.barrier(SyncScope::Channel, SimTime::ZERO),
            SimTime::from_ns(30)
        );
    }

    #[test]
    fn narrower_scopes_are_cheaper() {
        let m = SyncModel::default();
        assert!(m.one_way(SyncScope::Chip) < m.one_way(SyncScope::Rank));
        assert!(m.one_way(SyncScope::Rank) < m.one_way(SyncScope::Channel));
    }

    #[test]
    fn skew_adds_linearly() {
        let m = SyncModel::default();
        let skew = SimTime::from_us(3);
        assert_eq!(
            m.barrier(SyncScope::Chip, skew),
            m.barrier(SyncScope::Chip, SimTime::ZERO) + skew
        );
    }

    #[test]
    fn faulty_barrier_matches_clean_when_inactive() {
        use pim_faults::FaultInjector;
        let m = SyncModel::default();
        let ids = (0..8).map(DpuId);
        let t = m
            .barrier_with_faults(
                SyncScope::Chip,
                SimTime::ZERO,
                ids,
                &FaultInjector::none(),
                0,
            )
            .unwrap();
        assert_eq!(t, m.barrier(SyncScope::Chip, SimTime::ZERO));
    }

    #[test]
    fn stragglers_stretch_the_barrier() {
        use pim_faults::{FaultConfig, FaultInjector};
        let m = SyncModel::default();
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 1.0,
                straggler_max_ns: 500,
                ..FaultConfig::none()
            }
            .with_seed(4),
        );
        let clean = m.barrier(SyncScope::Chip, SimTime::ZERO);
        let faulty = m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .unwrap();
        assert!(faulty > clean);
        assert!(faulty <= clean + SimTime::from_ns(500));
        // Deterministic for the seed/epoch.
        let again = m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .unwrap();
        assert_eq!(faulty, again);
    }

    #[test]
    fn dead_participants_trip_the_watchdog() {
        use pim_faults::{FaultConfig, FaultInjector};
        let m = SyncModel::default();
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: vec![3, 6],
            ..FaultConfig::none()
        });
        let err = m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .unwrap_err();
        match err {
            PimnetError::SyncTimeout { missing, .. } => assert_eq!(missing, vec![3, 6]),
            other => panic!("expected SyncTimeout, got {other:?}"),
        }
    }

    #[test]
    fn straggler_overrun_trips_the_watchdog_without_missing_nodes() {
        use pim_faults::{FaultConfig, FaultInjector};
        let m = SyncModel::default();
        let inj = FaultInjector::new(
            FaultConfig {
                straggler_prob: 1.0,
                straggler_max_ns: 1_000,
                watchdog_timeout_ns: 10, // tighter than any straggler
                ..FaultConfig::none()
            }
            .with_seed(4),
        );
        let err = m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .unwrap_err();
        match err {
            PimnetError::SyncTimeout {
                missing,
                timeout_ns,
            } => {
                assert!(missing.is_empty());
                assert_eq!(timeout_ns, 10);
            }
            other => panic!("expected SyncTimeout, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_ps_override_tightens_the_watchdog() {
        use pim_faults::{FaultConfig, FaultInjector};
        let m = SyncModel::default();
        let base = FaultConfig {
            straggler_prob: 1.0,
            straggler_max_ns: 1_000,
            ..FaultConfig::none()
        }
        .with_seed(4);
        // Default (1 ms) watchdog: the straggler-stretched barrier closes.
        let inj = FaultInjector::new(base.clone());
        assert!(m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .is_ok());
        // A 10 ns watchdog expressed in picoseconds trips it.
        let inj = FaultInjector::new(FaultConfig {
            watchdog_ps: Some(10_000),
            ..base
        });
        match m
            .barrier_with_faults(SyncScope::Chip, SimTime::ZERO, (0..8).map(DpuId), &inj, 0)
            .unwrap_err()
        {
            PimnetError::SyncTimeout { timeout_ns, .. } => assert_eq!(timeout_ns, 10),
            other => panic!("expected SyncTimeout, got {other:?}"),
        }
    }

    #[test]
    fn repair_overhead_scales_with_inserted_steps() {
        let m = SyncModel::default();
        assert_eq!(m.repair_overhead(0), SimTime::ZERO);
        assert_eq!(m.repair_overhead(1), m.one_way(SyncScope::Chip));
        assert_eq!(m.repair_overhead(4), m.one_way(SyncScope::Chip) * 4);
    }

    #[test]
    fn sync_is_negligible_vs_small_collectives() {
        // §VI-B: even a 1 KB AllReduce across 256 DPUs takes >1000 DPU
        // cycles (~2.9 us); the 30 ns barrier is relatively small.
        let m = SyncModel::default();
        let barrier = m.barrier(SyncScope::Channel, SimTime::ZERO);
        assert!(barrier.as_ns() / 2_857.0 < 0.02);
    }
}
