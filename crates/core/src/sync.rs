//! READY/START synchronization (paper §IV-C, Fig 5(d)).
//!
//! Before a collective begins, every participating DPU raises READY to its
//! chip's control interface; READY signals aggregate up the hierarchy
//! (chip → inter-chip switch → inter-rank switch) and a START signal
//! propagates back down. Because PIMnet's data movement is statically
//! scheduled, this is the *only* dynamic synchronization in the network;
//! the paper estimates its worst-case propagation at ≈15 ns (≈6 DPU
//! cycles).
//!
//! The model also accounts for *compute skew*: START fires only after the
//! **last** DPU is ready, so PIMnet pays `max(finish) − earliest possible
//! start`, whereas a dynamically flow-controlled network would let early
//! DPUs inject immediately (the trade-off quantified in Fig 13).

use pim_sim::SimTime;
use serde::{Deserialize, Serialize};

use crate::fabric::FabricConfig;

/// How far a collective's participants extend across the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SyncScope {
    /// All participants share one DRAM chip (READY stops at the chip's
    /// control interface).
    Chip,
    /// Participants span chips of one rank (READY reaches the inter-chip
    /// switch on the buffer chip).
    Rank,
    /// Participants span ranks of one channel (READY reaches the inter-rank
    /// switch — the worst case).
    Channel,
}

/// Timing model of the READY/START barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SyncModel {
    /// One-way worst-case propagation across the whole PIMnet (channel
    /// scope); narrower scopes pay a proportional fraction.
    pub propagation: SimTime,
}

impl SyncModel {
    /// Builds the model from a fabric configuration (15 ns worst case in
    /// the paper).
    #[must_use]
    pub fn from_fabric(fabric: &FabricConfig) -> Self {
        SyncModel {
            propagation: fabric.sync_propagation,
        }
    }

    /// One-way READY aggregation latency for a scope.
    #[must_use]
    pub fn one_way(&self, scope: SyncScope) -> SimTime {
        // READY crosses: bank->chip control (1/3 of the way), chip->buffer
        // chip (2/3), buffer->inter-rank switch (full path).
        match scope {
            SyncScope::Chip => self.propagation / 3,
            SyncScope::Rank => (self.propagation * 2) / 3,
            SyncScope::Channel => self.propagation,
        }
    }

    /// Full barrier cost: READY up, START down, plus the compute `skew`
    /// (time between the first and last participant becoming ready).
    #[must_use]
    pub fn barrier(&self, scope: SyncScope, skew: SimTime) -> SimTime {
        self.one_way(scope) * 2 + skew
    }
}

impl Default for SyncModel {
    fn default() -> Self {
        SyncModel::from_fabric(&FabricConfig::paper())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_scope_is_the_paper_worst_case() {
        let m = SyncModel::default();
        assert_eq!(m.one_way(SyncScope::Channel), SimTime::from_ns(15));
        // Barrier with no skew: 30 ns round trip.
        assert_eq!(
            m.barrier(SyncScope::Channel, SimTime::ZERO),
            SimTime::from_ns(30)
        );
    }

    #[test]
    fn narrower_scopes_are_cheaper() {
        let m = SyncModel::default();
        assert!(m.one_way(SyncScope::Chip) < m.one_way(SyncScope::Rank));
        assert!(m.one_way(SyncScope::Rank) < m.one_way(SyncScope::Channel));
    }

    #[test]
    fn skew_adds_linearly() {
        let m = SyncModel::default();
        let skew = SimTime::from_us(3);
        assert_eq!(
            m.barrier(SyncScope::Chip, skew),
            m.barrier(SyncScope::Chip, SimTime::ZERO) + skew
        );
    }

    #[test]
    fn sync_is_negligible_vs_small_collectives() {
        // §VI-B: even a 1 KB AllReduce across 256 DPUs takes >1000 DPU
        // cycles (~2.9 us); the 30 ns barrier is relatively small.
        let m = SyncModel::default();
        let barrier = m.barrier(SyncScope::Channel, SimTime::ZERO);
        assert!(barrier.as_ns() / 2_857.0 < 0.02);
    }
}
