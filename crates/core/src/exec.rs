//! Functional execution of communication schedules on real data.
//!
//! A [`CommSchedule`] is not just a timing artifact: every transfer names
//! the element spans it moves, so the schedule can be *run*. [`ExecMachine`]
//! gives every node a buffer, plays the schedule step by step (with
//! snapshot semantics within a step, since all of a step's transfers are
//! concurrent), and applies reductions where the schedule says so.
//!
//! This is what makes the collective implementations testable end-to-end:
//! property tests assert that executing the AllReduce schedule really
//! leaves the elementwise reduction on every node, that All-to-All really
//! transposes, and so on — for arbitrary geometries and payloads.

use std::fmt;

use serde::{Deserialize, Serialize};

use pim_arch::geometry::DpuId;

use crate::error::PimnetError;
use crate::schedule::CommSchedule;

/// Reduction operators supported by the PIM banks' collective kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReduceOp {
    /// Elementwise sum (wrapping for integers, so tests stay exact).
    #[default]
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        };
        f.write_str(s)
    }
}

/// Element types collectives can run on.
///
/// Implemented for the integer and floating-point widths the UPMEM DPU
/// handles. Integer `Sum` wraps, so collective results are exact and
/// order-independent — which the property tests rely on.
pub trait Element: Copy + Default + PartialEq + fmt::Debug + 'static {
    /// Applies `op` to two elements.
    #[must_use]
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_element_int {
    ($($t:ty),*) => {$(
        impl Element for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

macro_rules! impl_element_float {
    ($($t:ty),*) => {$(
        impl Element for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }
        }
    )*};
}

impl_element_int!(u8, u16, u32, u64, i8, i16, i32, i64);
impl_element_float!(f32, f64);

/// Per-node buffers executing a schedule.
///
/// # Example
///
/// ```
/// use pim_arch::geometry::PimGeometry;
/// use pimnet::collective::CollectiveKind;
/// use pimnet::exec::{ExecMachine, ReduceOp};
/// use pimnet::schedule::CommSchedule;
///
/// let g = PimGeometry::paper_scaled(8);
/// let s = CommSchedule::build(CollectiveKind::AllReduce, &g, 16, 4)?;
/// // Node i contributes the constant vector [i; 16].
/// let mut m = ExecMachine::init(&s, |id| vec![id.0 as u64; 16]);
/// m.run(&s, ReduceOp::Sum);
/// // Sum of 0..8 = 28, everywhere.
/// assert!(m.buffer(pim_arch::geometry::DpuId(3))[..16].iter().all(|&x| x == 28));
/// # Ok::<(), pimnet::PimnetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecMachine<T> {
    buffers: Vec<Vec<T>>,
}

impl<T: Element> ExecMachine<T> {
    /// Creates the machine with `init(id)` providing each node's
    /// contribution (`elems_per_node` elements; shorter vectors are
    /// zero-padded, longer ones truncated). The contribution is placed at
    /// the schedule's expected input location: offset 0 for the in-place
    /// collectives and All-to-All, piece `i` for AllGather/Gather.
    #[must_use]
    pub fn init(schedule: &CommSchedule, mut init: impl FnMut(DpuId) -> Vec<T>) -> Self {
        use crate::collective::CollectiveKind as K;
        let n = schedule.elems_per_node;
        let buffers = schedule
            .participants()
            .map(|id| {
                let mut buf = vec![T::default(); schedule.buffer_len];
                let mut contrib = init(id);
                contrib.resize(n, T::default());
                let offset = match schedule.kind {
                    K::AllGather | K::Gather => id.index() * n,
                    _ => 0,
                };
                buf[offset..offset + n].copy_from_slice(&contrib);
                buf
            })
            .collect();
        ExecMachine { buffers }
    }

    /// Runs the schedule to completion with reduction operator `op`.
    ///
    /// Transfers within a step read a snapshot of the pre-step state, since
    /// they are concurrent in the hardware.
    pub fn run(&mut self, schedule: &CommSchedule, op: ReduceOp) {
        for phase in &schedule.phases {
            for step in &phase.steps {
                // Snapshot: collect payloads first, then apply.
                let mut deliveries: Vec<(DpuId, usize, Vec<T>, bool)> = Vec::new();
                for t in &step.transfers {
                    let payload = self.buffers[t.src.index()][t.src_span.range()].to_vec();
                    for &dst in &t.dsts {
                        deliveries.push((dst, t.dst_span.start, payload.clone(), t.combine));
                    }
                }
                for (dst, start, payload, combine) in deliveries {
                    let buf = &mut self.buffers[dst.index()];
                    if combine {
                        for (i, v) in payload.into_iter().enumerate() {
                            buf[start + i] = T::reduce(op, buf[start + i], v);
                        }
                    } else {
                        buf[start..start + payload.len()].copy_from_slice(&payload);
                    }
                }
            }
        }
    }

    /// A node's full communication buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn buffer(&self, id: DpuId) -> &[T] {
        &self.buffers[id.index()]
    }

    /// A node's *result*, concatenated from the schedule's result spans.
    #[must_use]
    pub fn result(&self, schedule: &CommSchedule, id: DpuId) -> Vec<T> {
        schedule.result_spans[id.index()]
            .iter()
            .flat_map(|span| self.buffers[id.index()][span.range()].iter().copied())
            .collect()
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.buffers.len()
    }
}

/// Convenience: builds, validates, executes and checks a collective in one
/// call, returning the machine for inspection.
///
/// # Errors
///
/// Propagates schedule build or validation errors.
pub fn run_collective<T: Element>(
    schedule: &CommSchedule,
    op: ReduceOp,
    init: impl FnMut(DpuId) -> Vec<T>,
) -> Result<ExecMachine<T>, PimnetError> {
    crate::schedule::validate::validate(schedule)?;
    let mut m = ExecMachine::init(schedule, init);
    m.run(schedule, op);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::geometry::PimGeometry;

    fn build(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    /// Distinct, deterministic input per (node, element).
    fn input(id: DpuId, elems: usize) -> Vec<u64> {
        (0..elems)
            .map(|e| (id.0 as u64 + 1) * 1_000 + e as u64)
            .collect()
    }

    #[test]
    fn allreduce_leaves_the_sum_everywhere() {
        for n in [8u32, 64, 256] {
            let elems = 96;
            let s = build(CollectiveKind::AllReduce, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..elems)
                .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
                .collect();
            for id in s.participants() {
                assert_eq!(m.result(&s, id), expected, "node {id} (n={n})");
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let elems = 32;
        let s = build(CollectiveKind::AllReduce, 16, elems);
        let m = run_collective(&s, ReduceOp::Max, |id| input(id, elems)).unwrap();
        let expect_max: Vec<u64> = (0..elems).map(|e| 16 * 1_000 + e as u64).collect();
        assert_eq!(m.result(&s, DpuId(5)), expect_max);
        let m = run_collective(&s, ReduceOp::Min, |id| input(id, elems)).unwrap();
        let expect_min: Vec<u64> = (0..elems).map(|e| 1_000 + e as u64).collect();
        assert_eq!(m.result(&s, DpuId(5)), expect_min);
    }

    #[test]
    fn reduce_scatter_pieces_reassemble_the_sum() {
        for n in [8u32, 32, 256] {
            let elems = 520; // not divisible by n
            let s = build(CollectiveKind::ReduceScatter, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..elems)
                .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
                .collect();
            // Concatenating every node's result spans (sorted by start)
            // must reproduce the full reduced vector exactly once.
            let mut got = vec![None::<u64>; elems];
            for id in s.participants() {
                for span in &s.result_spans[id.index()] {
                    for (off, idx) in span.range().enumerate() {
                        assert!(got[idx].is_none(), "element {idx} owned twice");
                        got[idx] = Some(m.buffer(id)[span.start + off]);
                    }
                }
            }
            for (idx, v) in got.iter().enumerate() {
                assert_eq!(v.unwrap(), expected[idx], "element {idx} (n={n})");
            }
        }
    }

    #[test]
    fn allgather_concatenates_everything_everywhere() {
        for n in [8u32, 64] {
            let elems = 24;
            let s = build(CollectiveKind::AllGather, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..n)
                .flat_map(|i| input(DpuId(i), elems))
                .collect();
            for id in s.participants() {
                assert_eq!(m.result(&s, id), expected, "node {id} (n={n})");
            }
        }
    }

    #[test]
    fn alltoall_transposes() {
        for n in [8u32, 64, 256] {
            let elems = n as usize * 3; // 3 elements per chunk
            let s = build(CollectiveKind::AllToAll, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let chunks = crate::schedule::split_elems(elems, n as usize);
            for dst in s.participants() {
                let out = m.result(&s, dst);
                for src in s.participants() {
                    let chunk = &chunks[dst.index()];
                    let sent = &input(src, elems)[chunk.range()];
                    let received = &out[chunks[src.index()].range()];
                    assert_eq!(received, sent, "{src} -> {dst} chunk (n={n})");
                }
            }
        }
    }

    #[test]
    fn broadcast_replicates_the_root() {
        let elems = 77;
        let s = build(CollectiveKind::Broadcast, 256, elems);
        let root_data = input(DpuId(0), elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            if id == DpuId(0) {
                root_data.clone()
            } else {
                vec![0; elems]
            }
        })
        .unwrap();
        for id in s.participants() {
            assert_eq!(m.result(&s, id), root_data, "node {id}");
        }
    }

    #[test]
    fn reduce_accumulates_at_the_root() {
        let elems = 40;
        let n = 64u32;
        let s = build(CollectiveKind::Reduce, n, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
        let expected: Vec<u64> = (0..elems)
            .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
            .collect();
        assert_eq!(m.result(&s, DpuId(0)), expected);
        assert!(m.result(&s, DpuId(1)).is_empty());
    }

    #[test]
    fn gather_concatenates_at_the_root() {
        let elems = 5;
        let n = 32u32;
        let s = build(CollectiveKind::Gather, n, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
        let expected: Vec<u64> = (0..n).flat_map(|i| input(DpuId(i), elems)).collect();
        assert_eq!(m.result(&s, DpuId(0)), expected);
    }

    #[test]
    fn float_allreduce_is_close_to_the_sum() {
        let elems = 16;
        let s = build(CollectiveKind::AllReduce, 64, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            vec![(id.0 as f64 + 1.0) * 0.25; elems]
        })
        .unwrap();
        let expected = (1..=64).map(|i| i as f64 * 0.25).sum::<f64>();
        for &x in m.result(&s, DpuId(17)).iter() {
            assert!((x - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn single_node_collectives_are_identity() {
        let s = build(CollectiveKind::AllReduce, 1, 8);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, 8)).unwrap();
        assert_eq!(m.result(&s, DpuId(0)), input(DpuId(0), 8));
    }
}
