//! Functional execution of communication schedules on real data.
//!
//! A [`CommSchedule`] is not just a timing artifact: every transfer names
//! the element spans it moves, so the schedule can be *run*. [`ExecMachine`]
//! gives every node a buffer, plays the schedule step by step (with
//! snapshot semantics within a step, since all of a step's transfers are
//! concurrent), and applies reductions where the schedule says so.
//!
//! This is what makes the collective implementations testable end-to-end:
//! property tests assert that executing the AllReduce schedule really
//! leaves the elementwise reduction on every node, that All-to-All really
//! transposes, and so on — for arbitrary geometries and payloads.

use std::fmt;

use pim_arch::geometry::DpuId;
use pim_sim::trace::codes;
use pim_sim::{Probe, SimTime};

use crate::error::PimnetError;
use crate::schedule::{CommSchedule, ScheduleView, StepRef, Transfer};

/// Reduction operators supported by the PIM banks' collective kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceOp {
    /// Elementwise sum (wrapping for integers, so tests stay exact).
    #[default]
    Sum,
    /// Elementwise maximum.
    Max,
    /// Elementwise minimum.
    Min,
}

impl fmt::Display for ReduceOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReduceOp::Sum => "sum",
            ReduceOp::Max => "max",
            ReduceOp::Min => "min",
        };
        f.write_str(s)
    }
}

/// Element types collectives can run on.
///
/// Implemented for the integer and floating-point widths the UPMEM DPU
/// handles. Integer `Sum` wraps, so collective results are exact and
/// order-independent — which the property tests rely on.
pub trait Element: Copy + Default + PartialEq + fmt::Debug + 'static {
    /// Applies `op` to two elements.
    #[must_use]
    fn reduce(op: ReduceOp, a: Self, b: Self) -> Self;

    /// The element's wire representation, as raw bits — what the fault
    /// layer's per-transfer CRC is computed over. Must be injective for
    /// the type's value domain (floats use their IEEE bit pattern).
    #[must_use]
    fn wire_bits(self) -> u64;
}

macro_rules! impl_element_int {
    ($($t:ty),*) => {$(
        impl Element for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a.wrapping_add(b),
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }

            fn wire_bits(self) -> u64 {
                self as u64
            }
        }
    )*};
}

macro_rules! impl_element_float {
    ($($t:ty),*) => {$(
        impl Element for $t {
            fn reduce(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Max => a.max(b),
                    ReduceOp::Min => a.min(b),
                }
            }

            fn wire_bits(self) -> u64 {
                self.to_bits() as u64
            }
        }
    )*};
}

impl_element_int!(u8, u16, u32, u64, i8, i16, i32, i64);
impl_element_float!(f32, f64);

/// Counters describing what the fault layer did during one
/// [`ExecMachine::run_with_faults`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Non-local transfers executed.
    pub transfers: u64,
    /// CRC verifications performed (one per attempt).
    pub crc_checks: u64,
    /// Attempts the receiver's CRC rejected.
    pub corrupted: u64,
    /// Re-sends performed (equals `corrupted` on a successful run).
    pub retries: u64,
}

/// Per-node buffers executing a schedule.
///
/// # Example
///
/// ```
/// use pim_arch::geometry::PimGeometry;
/// use pimnet::collective::CollectiveKind;
/// use pimnet::exec::{ExecMachine, ReduceOp};
/// use pimnet::schedule::CommSchedule;
///
/// let g = PimGeometry::paper_scaled(8);
/// let s = CommSchedule::build(CollectiveKind::AllReduce, &g, 16, 4)?;
/// // Node i contributes the constant vector [i; 16].
/// let mut m = ExecMachine::init(&s, |id| vec![id.0 as u64; 16]);
/// m.run(&s, ReduceOp::Sum);
/// // Sum of 0..8 = 28, everywhere.
/// assert!(m.buffer(pim_arch::geometry::DpuId(3))[..16].iter().all(|&x| x == 28));
/// # Ok::<(), pimnet::PimnetError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExecMachine<T> {
    buffers: Vec<Vec<T>>,
}

impl<T: Element> ExecMachine<T> {
    /// Creates the machine with `init(id)` providing each node's
    /// contribution (`elems_per_node` elements; shorter vectors are
    /// zero-padded, longer ones truncated). The contribution is placed at
    /// the schedule's expected input location: offset 0 for the in-place
    /// collectives and All-to-All, piece `i` for AllGather/Gather.
    #[must_use]
    pub fn init<S: ScheduleView>(schedule: &S, mut init: impl FnMut(DpuId) -> Vec<T>) -> Self {
        use crate::collective::CollectiveKind as K;
        let hdr = schedule.header();
        let n = hdr.elems_per_node;
        let buffers = hdr
            .geometry
            .dpus()
            .map(|id| {
                let mut buf = vec![T::default(); hdr.buffer_len];
                let mut contrib = init(id);
                contrib.resize(n, T::default());
                let offset = match hdr.kind {
                    K::AllGather | K::Gather => id.index() * n,
                    _ => 0,
                };
                buf[offset..offset + n].copy_from_slice(&contrib);
                buf
            })
            .collect();
        ExecMachine { buffers }
    }

    /// Runs the schedule to completion with reduction operator `op`.
    ///
    /// Transfers within a step read a snapshot of the pre-step state, since
    /// they are concurrent in the hardware.
    ///
    /// The snapshot is staged through a single arena buffer that is reused
    /// across every step of the run (the hot-path equivalent of the
    /// hardware's fixed wire: no per-transfer allocation), so executing a
    /// schedule costs two allocations total instead of two per transfer.
    pub fn run<S: ScheduleView>(&mut self, schedule: &S, op: ReduceOp) {
        let mut staging = Staging::default();
        for p in 0..schedule.phase_count() {
            for s in 0..schedule.steps_in(p) {
                staging.snapshot_step(&self.buffers, schedule.step(p, s));
                staging.apply(&mut self.buffers, op);
            }
        }
    }

    /// [`ExecMachine::run`] plus observation: per-step `exec-step`
    /// instants, per-transfer `exec-transfer` instants, staging-arena
    /// reuse counters, and the per-tier injected/delivered byte
    /// conservation pair. The buffers end bit-identical to `run`.
    ///
    /// The executor has no simulated clock, so event timestamps are the
    /// step's **logical ordinal** across the whole schedule — a
    /// deterministic total order.
    pub fn run_probed(&mut self, schedule: &CommSchedule, op: ReduceOp, probe: &Probe) {
        if !probe.is_active() {
            return self.run(schedule, op);
        }
        let mut staging = Staging::default();
        let mut logical = 0u64;
        for (pi, phase) in schedule.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                let cap_before = staging.arena.capacity();
                staging.snapshot_step(&self.buffers, StepRef::Nested(step));
                staging.apply(&mut self.buffers, op);
                staging.record_step(schedule, (pi, si), cap_before, logical, probe);
                logical += 1;
            }
        }
    }

    /// Runs the schedule under a fault scenario: every non-local transfer
    /// is serialized to its wire image, CRC-checked at the receiver, and
    /// re-sent (up to the configured retry budget) whenever the injector
    /// corrupts an attempt.
    ///
    /// Because corrupted attempts are always *detected* (the CRC catches
    /// the injected flip) and the clean re-send carries the original
    /// payload, a successful faulty run leaves the buffers **bit-identical**
    /// to [`run`](Self::run) — the property `tests/fault_resilience.rs`
    /// pins down. With an inactive injector this delegates to `run`
    /// directly and performs no CRC work at all.
    ///
    /// # Errors
    ///
    /// * [`PimnetError::DeadDpu`] if a participant is hard-dead (the
    ///   schedule should have been degraded first — see `resilience`);
    /// * [`PimnetError::TransferFailed`] if a transfer stays corrupted
    ///   through its whole retry budget.
    pub fn run_with_faults(
        &mut self,
        schedule: &CommSchedule,
        op: ReduceOp,
        injector: &pim_faults::FaultInjector,
    ) -> Result<FaultStats, PimnetError> {
        if !injector.is_active() {
            self.run(schedule, op);
            return Ok(FaultStats::default());
        }
        if let Some(dead) = schedule.participants().find(|id| injector.is_dead(id.0)) {
            return Err(PimnetError::DeadDpu { dpu: dead.0 });
        }
        let mut stats = FaultStats::default();
        let mut staging = Staging::default();
        for (pi, phase) in schedule.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                staging.snapshot_step(&self.buffers, StepRef::Nested(step));
                for (ti, t) in step.transfers.iter().enumerate() {
                    if !t.is_local() {
                        stats.transfers += 1;
                        self.transmit(
                            staging.transfer_payload(ti),
                            (pi, si, ti),
                            injector,
                            &mut stats,
                            Probe::disabled(),
                            0,
                        )?;
                    }
                }
                staging.apply(&mut self.buffers, op);
            }
        }
        Ok(stats)
    }

    /// [`ExecMachine::run_with_faults`] plus observation: everything
    /// [`ExecMachine::run_probed`] records, plus one `exec-retry` instant
    /// per re-send and the run's CRC/corruption/retry counters. Nothing
    /// is recorded on the error path beyond the events already emitted.
    ///
    /// # Errors
    ///
    /// Exactly those of [`ExecMachine::run_with_faults`].
    pub fn run_with_faults_probed(
        &mut self,
        schedule: &CommSchedule,
        op: ReduceOp,
        injector: &pim_faults::FaultInjector,
        probe: &Probe,
    ) -> Result<FaultStats, PimnetError> {
        if !probe.is_active() {
            return self.run_with_faults(schedule, op, injector);
        }
        if !injector.is_active() {
            self.run_probed(schedule, op, probe);
            return Ok(FaultStats::default());
        }
        if let Some(dead) = schedule.participants().find(|id| injector.is_dead(id.0)) {
            return Err(PimnetError::DeadDpu { dpu: dead.0 });
        }
        let mut stats = FaultStats::default();
        let mut staging = Staging::default();
        let mut logical = 0u64;
        for (pi, phase) in schedule.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                let cap_before = staging.arena.capacity();
                staging.snapshot_step(&self.buffers, StepRef::Nested(step));
                for (ti, t) in step.transfers.iter().enumerate() {
                    if !t.is_local() {
                        stats.transfers += 1;
                        self.transmit(
                            staging.transfer_payload(ti),
                            (pi, si, ti),
                            injector,
                            &mut stats,
                            probe,
                            logical,
                        )?;
                    }
                }
                staging.apply(&mut self.buffers, op);
                staging.record_step(schedule, (pi, si), cap_before, logical, probe);
                logical += 1;
            }
        }
        probe
            .metrics
            .fault_counts(stats.crc_checks, stats.corrupted, stats.retries);
        Ok(stats)
    }

    /// Executes exactly one schedule step `(pi, si)`, consulting
    /// `transmit` for every non-local transfer before anything is
    /// delivered.
    ///
    /// `transmit(ti, transfer, staged_payload)` models the wire: it sees
    /// the transfer's position in the step, its routing metadata (for
    /// failure attribution against named fabric resources) and the staged
    /// pre-step payload, and returns `Err` to declare the transfer failed.
    /// Because every transmit verdict is collected **before**
    /// the staged deliveries apply, a failing step leaves the buffers
    /// bit-identical
    /// to the last completed step — the machine itself is the checkpoint,
    /// and the recovery manager re-drives the same step after backoff
    /// without restoring anything.
    ///
    /// Local transfers never cross the wire and are not offered to
    /// `transmit`, matching [`run_with_faults`](Self::run_with_faults).
    ///
    /// # Errors
    ///
    /// * [`PimnetError::ScheduleInvalid`] if `(pi, si)` is out of range;
    /// * whatever `transmit` returns, propagated before any delivery.
    pub fn run_step_with<F>(
        &mut self,
        schedule: &CommSchedule,
        (pi, si): (usize, usize),
        op: ReduceOp,
        mut transmit: F,
    ) -> Result<(), PimnetError>
    where
        F: FnMut(usize, &Transfer, &[T]) -> Result<(), PimnetError>,
    {
        let step = schedule
            .phases
            .get(pi)
            .and_then(|p| p.steps.get(si))
            .ok_or_else(|| PimnetError::ScheduleInvalid {
                reason: format!("step ({pi}, {si}) out of range"),
            })?;
        let mut staging = Staging::default();
        staging.snapshot_step(&self.buffers, StepRef::Nested(step));
        for (ti, t) in step.transfers.iter().enumerate() {
            if !t.is_local() {
                transmit(ti, t, staging.transfer_payload(ti))?;
            }
        }
        staging.apply(&mut self.buffers, op);
        Ok(())
    }

    /// Models one transfer crossing the wire: serialize, corrupt per the
    /// injector, CRC-check, retry. Returns once an attempt arrives clean.
    /// Re-sends are recorded into `probe` as `exec-retry` instants at the
    /// step's `logical` ordinal (a no-op on the disabled probe).
    fn transmit(
        &self,
        payload: &[T],
        (pi, si, ti): (usize, usize, usize),
        injector: &pim_faults::FaultInjector,
        stats: &mut FaultStats,
        probe: &Probe,
        logical: u64,
    ) -> Result<(), PimnetError> {
        let wire: Vec<u8> = payload
            .iter()
            .flat_map(|e| e.wire_bits().to_le_bytes())
            .collect();
        let sent_crc = pim_faults::crc32(&wire);
        let mut attempt = 0u32;
        loop {
            stats.crc_checks += 1;
            let corrupted = !wire.is_empty()
                && injector.transient_corrupts(pi as u64, si as u64, ti as u64, attempt);
            let received_crc = if corrupted {
                let (byte, bit) =
                    injector.flip_position(pi as u64, si as u64, ti as u64, attempt, wire.len());
                let mut damaged = wire.clone();
                damaged[byte] ^= 1 << bit;
                pim_faults::crc32(&damaged)
            } else {
                sent_crc
            };
            if received_crc == sent_crc {
                return Ok(());
            }
            stats.corrupted += 1;
            if attempt >= injector.config().max_retries {
                return Err(PimnetError::TransferFailed {
                    phase: pi,
                    step: si,
                    transfer: ti,
                    attempts: attempt + 1,
                });
            }
            attempt += 1;
            stats.retries += 1;
            probe.trace.instant(
                SimTime::from_ps(logical),
                codes::EXEC_RETRY,
                [pi as u64, si as u64, ti as u64, u64::from(attempt)],
            );
        }
    }

    /// A node's full communication buffer.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn buffer(&self, id: DpuId) -> &[T] {
        &self.buffers[id.index()]
    }

    /// A node's *result*, concatenated from the schedule's result spans.
    #[must_use]
    pub fn result(&self, schedule: &CommSchedule, id: DpuId) -> Vec<T> {
        schedule.result_spans[id.index()]
            .iter()
            .flat_map(|span| self.buffers[id.index()][span.range()].iter().copied())
            .collect()
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.buffers.len()
    }
}

/// Reusable staging arena for one step's concurrent transfers.
///
/// Within a step every transfer reads the *pre-step* buffer state, so the
/// payloads have to be snapshotted before any delivery is applied. Staging
/// them contiguously in one arena — instead of one `Vec` per transfer and
/// one clone per destination — keeps schedule execution allocation-free
/// after the first step, which is the difference between microseconds and
/// milliseconds on the chaos-soak and fuzz hot paths.
struct Staging<T> {
    /// Concatenated payload snapshots for the current step.
    arena: Vec<T>,
    /// `(arena_offset, len)` per transfer, indexed by transfer position.
    segments: Vec<(usize, usize)>,
    /// `(dst, dst_start, arena_offset, len, combine)` per delivery.
    deliveries: Vec<(DpuId, usize, usize, usize, bool)>,
}

impl<T> Default for Staging<T> {
    fn default() -> Self {
        Staging {
            arena: Vec::new(),
            segments: Vec::new(),
            deliveries: Vec::new(),
        }
    }
}

impl<T: Element> Staging<T> {
    /// Snapshots every transfer payload of `step` out of `buffers`,
    /// recording where each destination's delivery should land.
    fn snapshot_step(&mut self, buffers: &[Vec<T>], step: StepRef<'_>) {
        self.arena.clear();
        self.segments.clear();
        self.deliveries.clear();
        for t in step.transfers() {
            let at = self.arena.len();
            self.arena
                .extend_from_slice(&buffers[t.src.index()][t.src_span.range()]);
            let len = self.arena.len() - at;
            self.segments.push((at, len));
            for &dst in t.dsts {
                self.deliveries
                    .push((dst, t.dst_span.start, at, len, t.combine));
            }
        }
    }

    /// The staged payload of the step's `ti`-th transfer.
    fn transfer_payload(&self, ti: usize) -> &[T] {
        let (at, len) = self.segments[ti];
        &self.arena[at..at + len]
    }

    /// Records one executed step into `probe`: per-transfer
    /// `exec-transfer` instants, the `exec-step` instant, arena-reuse
    /// accounting, and the injected/delivered conservation pair —
    /// *injected* computed from the schedule's spans (what must cross the
    /// wire to every destination), *delivered* observed from the staged
    /// deliveries this pass actually queued. The two totals agreeing per
    /// tier is the executor conservation law `tests/metrics_invariants.rs`
    /// checks.
    fn record_step(
        &self,
        schedule: &CommSchedule,
        (pi, si): (usize, usize),
        cap_before: usize,
        logical: u64,
        probe: &Probe,
    ) {
        if !probe.is_active() {
            return;
        }
        let phase = &schedule.phases[pi];
        let step = &phase.steps[si];
        let tier = phase.label.tier_index();
        let eb = u64::from(schedule.elem_bytes);
        let ts = SimTime::from_ps(logical);
        let mut injected = 0u64;
        for t in &step.transfers {
            let bytes = t.src_span.len as u64 * eb;
            injected += bytes * t.dsts.len() as u64;
            probe.trace.instant(
                ts,
                codes::EXEC_TRANSFER,
                [u64::from(t.src.0), t.dsts.len() as u64, bytes, tier as u64],
            );
        }
        let delivered = self
            .deliveries
            .iter()
            .map(|&(_, _, _, len, _)| len as u64)
            .sum::<u64>()
            * eb;
        let grew = self.arena.capacity() > cap_before;
        if grew {
            probe.trace.instant(
                ts,
                codes::ARENA_GROW,
                [logical, self.arena.capacity() as u64, 0, 0],
            );
        }
        probe.metrics.exec_step(tier, injected, delivered, grew);
        probe.trace.instant(
            ts,
            codes::EXEC_STEP,
            [pi as u64, si as u64, step.transfers.len() as u64, delivered],
        );
    }

    /// Applies every staged delivery to `buffers`, in transfer order.
    fn apply(&self, buffers: &mut [Vec<T>], op: ReduceOp) {
        for &(dst, start, at, len, combine) in &self.deliveries {
            let payload = &self.arena[at..at + len];
            let buf = &mut buffers[dst.index()];
            if combine {
                for (i, &v) in payload.iter().enumerate() {
                    buf[start + i] = T::reduce(op, buf[start + i], v);
                }
            } else {
                buf[start..start + len].copy_from_slice(payload);
            }
        }
    }
}

/// Convenience: builds, validates, executes and checks a collective in one
/// call, returning the machine for inspection.
///
/// # Errors
///
/// Propagates schedule build or validation errors.
pub fn run_collective<T: Element>(
    schedule: &CommSchedule,
    op: ReduceOp,
    init: impl FnMut(DpuId) -> Vec<T>,
) -> Result<ExecMachine<T>, PimnetError> {
    crate::schedule::validate::validate(schedule)?;
    let mut m = ExecMachine::init(schedule, init);
    m.run(schedule, op);
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use pim_arch::geometry::PimGeometry;

    fn build(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    /// Distinct, deterministic input per (node, element).
    fn input(id: DpuId, elems: usize) -> Vec<u64> {
        (0..elems)
            .map(|e| (id.0 as u64 + 1) * 1_000 + e as u64)
            .collect()
    }

    #[test]
    fn allreduce_leaves_the_sum_everywhere() {
        for n in [8u32, 64, 256] {
            let elems = 96;
            let s = build(CollectiveKind::AllReduce, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..elems)
                .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
                .collect();
            for id in s.participants() {
                assert_eq!(m.result(&s, id), expected, "node {id} (n={n})");
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let elems = 32;
        let s = build(CollectiveKind::AllReduce, 16, elems);
        let m = run_collective(&s, ReduceOp::Max, |id| input(id, elems)).unwrap();
        let expect_max: Vec<u64> = (0..elems).map(|e| 16 * 1_000 + e as u64).collect();
        assert_eq!(m.result(&s, DpuId(5)), expect_max);
        let m = run_collective(&s, ReduceOp::Min, |id| input(id, elems)).unwrap();
        let expect_min: Vec<u64> = (0..elems).map(|e| 1_000 + e as u64).collect();
        assert_eq!(m.result(&s, DpuId(5)), expect_min);
    }

    #[test]
    fn reduce_scatter_pieces_reassemble_the_sum() {
        for n in [8u32, 32, 256] {
            let elems = 520; // not divisible by n
            let s = build(CollectiveKind::ReduceScatter, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..elems)
                .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
                .collect();
            // Concatenating every node's result spans (sorted by start)
            // must reproduce the full reduced vector exactly once.
            let mut got = vec![None::<u64>; elems];
            for id in s.participants() {
                for span in &s.result_spans[id.index()] {
                    for (off, idx) in span.range().enumerate() {
                        assert!(got[idx].is_none(), "element {idx} owned twice");
                        got[idx] = Some(m.buffer(id)[span.start + off]);
                    }
                }
            }
            for (idx, v) in got.iter().enumerate() {
                assert_eq!(v.unwrap(), expected[idx], "element {idx} (n={n})");
            }
        }
    }

    #[test]
    fn allgather_concatenates_everything_everywhere() {
        for n in [8u32, 64] {
            let elems = 24;
            let s = build(CollectiveKind::AllGather, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let expected: Vec<u64> = (0..n).flat_map(|i| input(DpuId(i), elems)).collect();
            for id in s.participants() {
                assert_eq!(m.result(&s, id), expected, "node {id} (n={n})");
            }
        }
    }

    #[test]
    fn alltoall_transposes() {
        for n in [8u32, 64, 256] {
            let elems = n as usize * 3; // 3 elements per chunk
            let s = build(CollectiveKind::AllToAll, n, elems);
            let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            let chunks = crate::schedule::split_elems(elems, n as usize);
            for dst in s.participants() {
                let out = m.result(&s, dst);
                for src in s.participants() {
                    let chunk = &chunks[dst.index()];
                    let sent = &input(src, elems)[chunk.range()];
                    let received = &out[chunks[src.index()].range()];
                    assert_eq!(received, sent, "{src} -> {dst} chunk (n={n})");
                }
            }
        }
    }

    #[test]
    fn broadcast_replicates_the_root() {
        let elems = 77;
        let s = build(CollectiveKind::Broadcast, 256, elems);
        let root_data = input(DpuId(0), elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            if id == DpuId(0) {
                root_data.clone()
            } else {
                vec![0; elems]
            }
        })
        .unwrap();
        for id in s.participants() {
            assert_eq!(m.result(&s, id), root_data, "node {id}");
        }
    }

    #[test]
    fn reduce_accumulates_at_the_root() {
        let elems = 40;
        let n = 64u32;
        let s = build(CollectiveKind::Reduce, n, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
        let expected: Vec<u64> = (0..elems)
            .map(|e| (0..n as u64).map(|i| (i + 1) * 1_000 + e as u64).sum())
            .collect();
        assert_eq!(m.result(&s, DpuId(0)), expected);
        assert!(m.result(&s, DpuId(1)).is_empty());
    }

    #[test]
    fn gather_concatenates_at_the_root() {
        let elems = 5;
        let n = 32u32;
        let s = build(CollectiveKind::Gather, n, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
        let expected: Vec<u64> = (0..n).flat_map(|i| input(DpuId(i), elems)).collect();
        assert_eq!(m.result(&s, DpuId(0)), expected);
    }

    #[test]
    fn float_allreduce_is_close_to_the_sum() {
        let elems = 16;
        let s = build(CollectiveKind::AllReduce, 64, elems);
        let m = run_collective(&s, ReduceOp::Sum, |id| {
            vec![(id.0 as f64 + 1.0) * 0.25; elems]
        })
        .unwrap();
        let expected = (1..=64).map(|i| i as f64 * 0.25).sum::<f64>();
        for &x in m.result(&s, DpuId(17)).iter() {
            assert!((x - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn single_node_collectives_are_identity() {
        let s = build(CollectiveKind::AllReduce, 1, 8);
        let m = run_collective(&s, ReduceOp::Sum, |id| input(id, 8)).unwrap();
        assert_eq!(m.result(&s, DpuId(0)), input(DpuId(0), 8));
    }

    #[test]
    fn faulty_run_is_bit_identical_to_clean_run() {
        use pim_faults::{FaultConfig, FaultInjector};
        let elems = 64;
        let s = build(CollectiveKind::AllReduce, 32, elems);
        let mut clean = ExecMachine::init(&s, |id| input(id, elems));
        clean.run(&s, ReduceOp::Sum);
        let inj = FaultInjector::new(
            FaultConfig {
                transient_ber: 0.2,
                // Generous budget: at BER 0.2 a 16-deep retry chain fails
                // with probability ~1e-12 per transfer, so the run always
                // completes and we can compare buffers.
                max_retries: 16,
                ..FaultConfig::none()
            }
            .with_seed(99),
        );
        let mut faulty = ExecMachine::init(&s, |id| input(id, elems));
        let stats = faulty.run_with_faults(&s, ReduceOp::Sum, &inj).unwrap();
        assert!(stats.corrupted > 0, "BER 0.2 should corrupt something");
        assert_eq!(stats.retries, stats.corrupted);
        assert_eq!(faulty, clean);
    }

    #[test]
    fn inactive_injector_performs_no_crc_work() {
        use pim_faults::FaultInjector;
        let s = build(CollectiveKind::AllReduce, 8, 16);
        let mut m = ExecMachine::init(&s, |id| input(id, 16));
        let stats = m
            .run_with_faults(&s, ReduceOp::Sum, &FaultInjector::none())
            .unwrap();
        assert_eq!(stats, FaultStats::default());
    }

    #[test]
    fn exhausted_retry_budget_is_a_typed_error() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = build(CollectiveKind::AllReduce, 8, 16);
        let inj = FaultInjector::new(FaultConfig {
            transient_ber: 1.0, // every attempt corrupted
            max_retries: 2,
            ..FaultConfig::none()
        });
        let mut m = ExecMachine::init(&s, |id| input(id, 16));
        match m.run_with_faults(&s, ReduceOp::Sum, &inj) {
            Err(PimnetError::TransferFailed { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("expected TransferFailed, got {other:?}"),
        }
    }

    #[test]
    fn step_driven_run_matches_run_and_fails_before_apply() {
        let elems = 48;
        let s = build(CollectiveKind::AllReduce, 16, elems);
        let mut whole = ExecMachine::init(&s, |id| input(id, elems));
        whole.run(&s, ReduceOp::Sum);
        // Driving the same schedule one step at a time with an
        // always-clean wire is bit-identical to run().
        let mut stepped = ExecMachine::init(&s, |id| input(id, elems));
        for (pi, phase) in s.phases.iter().enumerate() {
            for si in 0..phase.steps.len() {
                stepped
                    .run_step_with(&s, (pi, si), ReduceOp::Sum, |_, _, _| Ok(()))
                    .unwrap();
            }
        }
        assert_eq!(stepped, whole);
        // A failing transmit leaves the buffers at the last completed
        // step: re-driving the failed step afterwards still converges.
        let mut recovering = ExecMachine::init(&s, |id| input(id, elems));
        for (pi, phase) in s.phases.iter().enumerate() {
            for si in 0..phase.steps.len() {
                let before = recovering.clone();
                let err = recovering.run_step_with(&s, (pi, si), ReduceOp::Sum, |_, _, _| {
                    Err(PimnetError::TransferFailed {
                        phase: pi,
                        step: si,
                        transfer: 0,
                        attempts: 1,
                    })
                });
                if err.is_err() {
                    assert_eq!(recovering, before, "failed step must not deliver");
                }
                recovering
                    .run_step_with(&s, (pi, si), ReduceOp::Sum, |_, _, _| Ok(()))
                    .unwrap();
            }
        }
        assert_eq!(recovering, whole);
        // Out-of-range coordinates are a typed error.
        assert!(matches!(
            stepped.run_step_with(&s, (999, 0), ReduceOp::Sum, |_, _, _| Ok(())),
            Err(PimnetError::ScheduleInvalid { .. })
        ));
        // Local transfers are never offered to the wire closure.
        let mut m = ExecMachine::init(&s, |id| input(id, elems));
        for (pi, phase) in s.phases.iter().enumerate() {
            for (si, step) in phase.steps.iter().enumerate() {
                let wire_count = std::cell::Cell::new(0usize);
                m.run_step_with(&s, (pi, si), ReduceOp::Sum, |_, t, payload| {
                    assert!(!t.is_local());
                    assert_eq!(payload.len(), t.src_span.len);
                    wire_count.set(wire_count.get() + 1);
                    Ok(())
                })
                .unwrap();
                let expected = step.transfers.iter().filter(|t| !t.is_local()).count();
                assert_eq!(wire_count.get(), expected);
            }
        }
    }

    #[test]
    fn dead_participant_is_refused_up_front() {
        use pim_faults::{FaultConfig, FaultInjector};
        let s = build(CollectiveKind::AllReduce, 8, 16);
        let inj = FaultInjector::new(FaultConfig {
            dead_dpus: vec![5],
            ..FaultConfig::none()
        });
        let mut m = ExecMachine::init(&s, |id| input(id, 16));
        assert_eq!(
            m.run_with_faults(&s, ReduceOp::Sum, &inj),
            Err(PimnetError::DeadDpu { dpu: 5 })
        );
    }
}
