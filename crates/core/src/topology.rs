//! Physical resources of the PIMnet fabric and routing helpers.
//!
//! Every contention domain in the network is named by a [`Resource`]:
//! a ring segment in one direction, a chip's DQ send/receive channel, or the
//! shared inter-rank bus. Transfers in a [`crate::schedule::CommSchedule`]
//! carry the list of resources they occupy, which is what lets the validator
//! prove contention-freedom and the timing model compute exact occupancy —
//! *without* any dynamic routing, exactly as in the bufferless,
//! arbitration-free hardware.

use std::fmt;

use pim_sim::Bandwidth;

use pim_arch::geometry::{DpuCoord, DpuId, PimGeometry};

use crate::fabric::FabricConfig;

/// Direction of travel on an inter-bank ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Towards increasing bank index (wrapping).
    East,
    /// Towards decreasing bank index (wrapping).
    West,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
        }
    }

    /// The neighbouring bank index in this direction on a `b`-bank ring.
    #[must_use]
    pub fn next(self, bank: u32, banks: u32) -> u32 {
        match self {
            Direction::East => (bank + 1) % banks,
            Direction::West => (bank + banks - 1) % banks,
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Direction::East => f.write_str("E"),
            Direction::West => f.write_str("W"),
        }
    }
}

/// Location of a DRAM chip within the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipLoc {
    /// Memory channel index.
    pub channel: u32,
    /// Rank within the channel.
    pub rank: u32,
    /// Chip within the rank.
    pub chip: u32,
}

impl ChipLoc {
    /// The chip hosting a given DPU.
    #[must_use]
    pub fn of(coord: DpuCoord) -> Self {
        ChipLoc {
            channel: coord.channel,
            rank: coord.rank,
            chip: coord.chip,
        }
    }
}

impl fmt::Display for ChipLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}/r{}/c{}", self.channel, self.rank, self.chip)
    }
}

/// One contention domain of the PIMnet fabric.
///
/// A schedule transfer lists every resource it occupies for its duration
/// (PIMnet stops are bufferless, so a multi-hop ring transfer holds all its
/// segments cut-through).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// The ring segment leaving bank `from_bank` of chip `chip` in
    /// direction `dir` (a 16-bit slice of the bank-group I/O bus).
    RingSegment {
        /// The chip whose internal ring this segment belongs to.
        chip: ChipLoc,
        /// The bank the segment leaves from.
        from_bank: u32,
        /// Direction of this (unidirectional) segment.
        dir: Direction,
    },
    /// A chip's DQ send channel towards the buffer-chip crossbar.
    ChipTx {
        /// The sending chip.
        chip: ChipLoc,
    },
    /// A chip's DQ receive channel from the buffer-chip crossbar.
    ChipRx {
        /// The receiving chip.
        chip: ChipLoc,
    },
    /// The half-duplex multi-drop DDR bus shared by all ranks of a channel.
    RankBus {
        /// The memory channel whose bus this is.
        channel: u32,
    },
}

impl Resource {
    /// Bandwidth of this resource under a fabric configuration.
    #[must_use]
    pub fn bandwidth(&self, fabric: &FabricConfig) -> Bandwidth {
        match self {
            Resource::RingSegment { .. } => fabric.ring_segment_bw(),
            Resource::ChipTx { .. } | Resource::ChipRx { .. } => fabric.chip_channel_bw,
            Resource::RankBus { .. } => fabric.rank_bus_bw,
        }
    }

    /// True for resources that the hardware cannot time-multiplex within a
    /// step without buffering (the bufferless ring segments). The validator
    /// enforces exclusivity for these; DQ channels and the bus are
    /// WAIT-phase scheduled (deterministic time multiplexing, paper §IV-C).
    #[must_use]
    pub fn requires_exclusive_step(&self) -> bool {
        matches!(self, Resource::RingSegment { .. })
    }

    /// Stable fabric-tier index of this resource for per-tier metrics
    /// arrays (matching `PhaseLabel::tier_index`): ring segments are
    /// inter-bank, DQ channels inter-chip, the rank bus inter-rank.
    #[must_use]
    pub const fn tier_index(&self) -> usize {
        match self {
            Resource::RingSegment { .. } => 1,
            Resource::ChipTx { .. } | Resource::ChipRx { .. } => 2,
            Resource::RankBus { .. } => 3,
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::RingSegment {
                chip,
                from_bank,
                dir,
            } => write!(f, "ring[{chip}/b{from_bank}/{dir}]"),
            Resource::ChipTx { chip } => write!(f, "tx[{chip}]"),
            Resource::ChipRx { chip } => write!(f, "rx[{chip}]"),
            Resource::RankBus { channel } => write!(f, "bus[ch{channel}]"),
        }
    }
}

/// Ring path between two banks of the same chip, in the given direction.
/// Returns the list of [`Resource::RingSegment`]s traversed (empty when
/// `src == dst`).
///
/// # Panics
///
/// Panics if the two DPUs are not on the same chip.
#[must_use]
pub fn ring_path(geometry: &PimGeometry, src: DpuId, dst: DpuId, dir: Direction) -> Vec<Resource> {
    let (a, b) = (geometry.coord(src), geometry.coord(dst));
    assert!(
        geometry.same_chip(src, dst),
        "ring_path: {src} and {dst} are not on the same chip"
    );
    let banks = geometry.banks_per_chip;
    let chip = ChipLoc::of(a);
    let mut path = Vec::new();
    let mut cur = a.bank;
    while cur != b.bank {
        path.push(Resource::RingSegment {
            chip,
            from_bank: cur,
            dir,
        });
        cur = dir.next(cur, banks);
        assert!(
            path.len() <= banks as usize,
            "ring_path: failed to reach destination (corrupt geometry?)"
        );
    }
    path
}

/// Number of hops from `src` to `dst` around a `banks`-ring in `dir`.
#[must_use]
pub fn ring_distance(banks: u32, src_bank: u32, dst_bank: u32, dir: Direction) -> u32 {
    match dir {
        Direction::East => (dst_bank + banks - src_bank) % banks,
        Direction::West => (src_bank + banks - dst_bank) % banks,
    }
}

/// The direction with the shorter ring path (ties broken East).
#[must_use]
pub fn shorter_direction(banks: u32, src_bank: u32, dst_bank: u32) -> Direction {
    let east = ring_distance(banks, src_bank, dst_bank, Direction::East);
    let west = ring_distance(banks, src_bank, dst_bank, Direction::West);
    if east <= west {
        Direction::East
    } else {
        Direction::West
    }
}

/// Path between two banks on *different chips of the same rank*: the source
/// chip's DQ send channel, through the (non-blocking) crossbar, into the
/// destination chip's DQ receive channel.
///
/// # Panics
///
/// Panics if the DPUs share a chip or do not share a rank.
#[must_use]
pub fn chip_path(geometry: &PimGeometry, src: DpuId, dst: DpuId) -> Vec<Resource> {
    let (a, b) = (geometry.coord(src), geometry.coord(dst));
    assert!(
        geometry.same_rank(src, dst) && !geometry.same_chip(src, dst),
        "chip_path: {src} -> {dst} is not an inter-chip (same-rank) pair"
    );
    vec![
        Resource::ChipTx {
            chip: ChipLoc::of(a),
        },
        Resource::ChipRx {
            chip: ChipLoc::of(b),
        },
    ]
}

/// Path for a transfer that crosses ranks (possibly to several destination
/// banks at once — the bus is a broadcast medium): source chip's DQ send
/// channel, the shared rank bus, and every destination chip's DQ receive
/// channel.
///
/// # Panics
///
/// Panics if any destination shares a rank with the source or sits on a
/// different memory channel.
#[must_use]
pub fn rank_path(geometry: &PimGeometry, src: DpuId, dsts: &[DpuId]) -> Vec<Resource> {
    let a = geometry.coord(src);
    let mut path = vec![
        Resource::ChipTx {
            chip: ChipLoc::of(a),
        },
        Resource::RankBus { channel: a.channel },
    ];
    for &dst in dsts {
        let b = geometry.coord(dst);
        assert!(
            b.channel == a.channel && b.rank != a.rank,
            "rank_path: {src} -> {dst} is not an inter-rank (same-channel) pair"
        );
        path.push(Resource::ChipRx {
            chip: ChipLoc::of(b),
        });
    }
    path
}

/// Renders the PIMnet fabric of a geometry as a Graphviz DOT graph
/// (banks, rings, DQ channels, crossbars, the bus) — handy for docs and
/// for eyeballing unusual geometries.
#[must_use]
pub fn to_dot(geometry: &PimGeometry, fabric: &FabricConfig) -> String {
    let mut out = String::from("digraph pimnet {\n  rankdir=LR;\n  node [shape=box];\n");
    for ch in 0..geometry.channels {
        out.push_str(&format!(
            "  bus_{ch} [label=\"DDR bus ch{ch}\\n{}\" shape=oval];\n",
            fabric.rank_bus_bw
        ));
        for r in 0..geometry.ranks_per_channel {
            out.push_str(&format!(
                "  xbar_{ch}_{r} [label=\"buffer-chip crossbar r{r}\" shape=diamond];\n\
                 \x20 bus_{ch} -> xbar_{ch}_{r} [dir=both];\n"
            ));
            for c in 0..geometry.chips_per_rank {
                let chip = format!("chip_{ch}_{r}_{c}");
                out.push_str(&format!(
                    "  {chip} [label=\"chip {c}\\n{} banks\"];\n\
                     \x20 {chip} -> xbar_{ch}_{r} [label=\"{}\" dir=both];\n",
                    geometry.banks_per_chip, fabric.chip_channel_bw
                ));
                // The intra-chip ring, one edge per eastbound segment.
                for b in 0..geometry.banks_per_chip {
                    let next = (b + 1) % geometry.banks_per_chip;
                    out.push_str(&format!(
                        "  b_{ch}_{r}_{c}_{b} [label=\"DPU b{b}\" shape=circle];\n\
                         \x20 b_{ch}_{r}_{c}_{b} -> b_{ch}_{r}_{c}_{next} [dir=both];\n"
                    ));
                }
                out.push_str(&format!("  b_{ch}_{r}_{c}_0 -> {chip} [style=dotted];\n"));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> PimGeometry {
        PimGeometry::paper()
    }

    #[test]
    fn dot_export_names_every_component() {
        let dot = to_dot(&PimGeometry::paper_scaled(64), &FabricConfig::paper());
        assert!(dot.starts_with("digraph pimnet {"));
        assert!(dot.ends_with("}\n"));
        // 8 chips x 8 banks of circles, one crossbar, no bus link needed
        // but the bus node exists per channel.
        assert_eq!(dot.matches("shape=circle").count(), 64);
        assert_eq!(dot.matches("shape=diamond").count(), 1);
        assert_eq!(dot.matches("shape=oval").count(), 1);
    }

    #[test]
    fn direction_next_wraps() {
        assert_eq!(Direction::East.next(7, 8), 0);
        assert_eq!(Direction::West.next(0, 8), 7);
        assert_eq!(Direction::East.opposite(), Direction::West);
    }

    #[test]
    fn ring_path_adjacent_is_one_segment() {
        let p = ring_path(&g(), DpuId(0), DpuId(1), Direction::East);
        assert_eq!(p.len(), 1);
        match p[0] {
            Resource::RingSegment { from_bank, dir, .. } => {
                assert_eq!(from_bank, 0);
                assert_eq!(dir, Direction::East);
            }
            other => panic!("unexpected resource {other}"),
        }
    }

    #[test]
    fn ring_path_wraps_west() {
        // bank 1 -> bank 6 going West: 1 -> 0 -> 7 -> 6 (3 segments).
        let p = ring_path(&g(), DpuId(1), DpuId(6), Direction::West);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn ring_path_to_self_is_empty() {
        assert!(ring_path(&g(), DpuId(3), DpuId(3), Direction::East).is_empty());
    }

    #[test]
    fn ring_distance_and_shorter_direction() {
        assert_eq!(ring_distance(8, 0, 3, Direction::East), 3);
        assert_eq!(ring_distance(8, 0, 3, Direction::West), 5);
        assert_eq!(shorter_direction(8, 0, 3), Direction::East);
        assert_eq!(shorter_direction(8, 0, 5), Direction::West);
        // Exactly opposite: tie broken East.
        assert_eq!(shorter_direction(8, 0, 4), Direction::East);
    }

    #[test]
    fn chip_path_names_both_channels() {
        // DPU 0 (chip 0) -> DPU 8 (chip 1), same rank.
        let p = chip_path(&g(), DpuId(0), DpuId(8));
        assert_eq!(p.len(), 2);
        assert!(matches!(p[0], Resource::ChipTx { chip } if chip.chip == 0));
        assert!(matches!(p[1], Resource::ChipRx { chip } if chip.chip == 1));
    }

    #[test]
    #[should_panic(expected = "not an inter-chip")]
    fn chip_path_rejects_same_chip() {
        let _ = chip_path(&g(), DpuId(0), DpuId(1));
    }

    #[test]
    fn rank_path_broadcast_lists_every_receiver() {
        // DPU 0 (rank 0) broadcasting to the same (chip 0, bank 0) position
        // of ranks 1..3: DPUs 64, 128, 192.
        let p = rank_path(&g(), DpuId(0), &[DpuId(64), DpuId(128), DpuId(192)]);
        assert_eq!(p.len(), 5); // tx + bus + 3 rx
        assert!(matches!(p[1], Resource::RankBus { channel: 0 }));
    }

    #[test]
    fn resource_bandwidths_follow_fabric() {
        let f = FabricConfig::paper();
        let seg = Resource::RingSegment {
            chip: ChipLoc {
                channel: 0,
                rank: 0,
                chip: 0,
            },
            from_bank: 0,
            dir: Direction::East,
        };
        assert_eq!(seg.bandwidth(&f).as_gbps(), 0.7);
        assert!(seg.requires_exclusive_step());
        let bus = Resource::RankBus { channel: 0 };
        assert_eq!(bus.bandwidth(&f).as_gbps(), 16.8);
        assert!(!bus.requires_exclusive_step());
    }

    #[test]
    fn resource_display() {
        let r = Resource::ChipTx {
            chip: ChipLoc {
                channel: 0,
                rank: 2,
                chip: 5,
            },
        };
        assert_eq!(r.to_string(), "tx[ch0/r2/c5]");
    }
}
