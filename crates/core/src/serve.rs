//! `pimnet::serve` — a deterministic, long-lived multi-tenant
//! request-stream engine over the static-schedule stack.
//!
//! The one-shot figure sweeps answer "how fast is one collective"; real
//! PIM deployments face a *stream*: N tenants (DLRM embedding lookups
//! are the canonical traffic) each firing collectives at their own rate
//! against their own spatial shard of the machine, with the engine
//! obliged to stay correct under overload and runtime fault storms.
//! This module is that serving layer:
//!
//! * **seeded arrival traces** — every tenant's request stream is a pure
//!   function of the engine seed ([`sample_arrivals`]), so a run is
//!   replayable byte-for-byte;
//! * **bounded queues + token buckets** — admission control sheds
//!   explicitly with [`PimnetError::AdmissionRejected`] when a tenant's
//!   queue fills or its bucket is dry, never queueing forever;
//! * **deadline-aware dispatch** — FIFO, LIFO, or priority order
//!   ([`QueuePolicy`]); a request whose deadline has already slipped is
//!   shed with [`PimnetError::DeadlineExceeded`] instead of served late;
//! * **chunked service** — requests split into chunks interleaved
//!   round-robin over the tenant's private channels (the
//!   ASTRA-sim-style `preferred-dataset-splits` /
//!   `active-chunks-per-dimension` knobs);
//! * **overload ladder** — a *monotone* engine-wide level ratchet:
//!   full service → shrunk chunking → shed low-priority → per-tenant
//!   host fallback ([`OverloadThresholds`]);
//! * **fault-storm composition** — with an active [`FaultConfig`] the
//!   dispatch path runs each request through
//!   [`crate::recovery::run_recovered_probed`] against the storm
//!   timeline rebased to the request's own start time
//!   ([`pim_faults::FaultTimeline::shifted`]); tenants whose requests
//!   repeatedly fail are quarantined with probation hysteresis.
//!
//! Every request ends in **exactly one** typed outcome — served, shed,
//! quarantined, or host-fallback ([`RequestOutcome`]) — enforced by
//! construction (the engine slots outcomes into a one-per-request table
//! and panics on a double write, which the soak suite would surface).
//! The whole run is bit-identical across worker counts and seeds; the
//! schedule cache turns per-tenant compilation into cross-tenant cache
//! hits, which is what makes a thousand-request soak cheap.

use std::collections::VecDeque;

use pim_arch::geometry::{DpuId, PimGeometry};
use pim_arch::{HostLink, SystemConfig};
use pim_faults::{FaultConfig, FaultInjector, HealthConfig};
use pim_sim::rng::hash_coords;
use pim_sim::trace::codes;
use pim_sim::{Bytes, Probe, SimTime};

use crate::backends::{BaselineHostBackend, CollectiveBackend};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::exec::ReduceOp;
use crate::fabric::FabricConfig;
use crate::recovery::{run_recovered_probed, RecoveryConfig, RecoveryRequest};
use crate::schedule::{autotune, cache};
use crate::timing::TimingModel;

/// Dequeue order within a tenant queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Oldest request first.
    #[default]
    Fifo,
    /// Newest request first (freshest data wins; stale ones age out and
    /// are shed at their deadline).
    Lifo,
    /// Highest priority first; earliest deadline breaks ties.
    Priority,
}

impl QueuePolicy {
    /// Parses the CLI spelling (`fifo` / `lifo` / `priority`).
    ///
    /// # Errors
    ///
    /// Returns the unrecognized text.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "fifo" => Ok(QueuePolicy::Fifo),
            "lifo" => Ok(QueuePolicy::Lifo),
            "priority" => Ok(QueuePolicy::Priority),
            other => Err(format!(
                "unknown queue policy '{other}' (expected fifo|lifo|priority)"
            )),
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            QueuePolicy::Fifo => "fifo",
            QueuePolicy::Lifo => "lifo",
            QueuePolicy::Priority => "priority",
        }
    }
}

/// One tenant's shard, traffic shape, and admission knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantConfig {
    /// Display name (lands in the request-log CSV).
    pub name: String,
    /// The tenant's private spatial shard (single channel; the fig 17
    /// mapping gives each tenant its own ranks).
    pub geometry: PimGeometry,
    /// The collective each request runs.
    pub kind: CollectiveKind,
    /// Elements per node per request.
    pub elems_per_node: usize,
    /// Bytes per element on the wire.
    pub elem_bytes: u32,
    /// Bounded queue depth; admission sheds beyond it.
    pub queue_capacity: usize,
    /// Token-bucket burst capacity.
    pub bucket_capacity: u64,
    /// One token accrues every this many picoseconds (0 = unmetered).
    pub token_every_ps: u64,
    /// Scheduling priority, higher wins; the overload ladder sheds
    /// below [`ServeConfig::shed_priority_below`] at level ≥ 2.
    pub priority: u8,
    /// Relative deadline stamped on each request at arrival.
    pub deadline_ps: u64,
    /// Mean inter-arrival gap of the seeded trace.
    pub mean_gap_ps: u64,
    /// Virtual channels chunks interleave over (≥ 1).
    pub channels: u32,
    /// Opt-in: admit per-geometry autotuned schedules. The admission
    /// path prices each chunk off the [`crate::schedule::autotune`]
    /// winner instead of the paper's Table V schedule; the incumbent
    /// keeps ties, so an autotuned tenant never prices worse. Off by
    /// default so existing serving traces stay byte-identical.
    pub autotune: bool,
}

impl TenantConfig {
    /// A tenant with fig 17's per-tenant shard (2 ranks × 8 chips × 8
    /// banks) and round numbers for every serving knob.
    #[must_use]
    pub fn new(name: &str) -> Self {
        TenantConfig {
            name: name.to_string(),
            geometry: PimGeometry::new(8, 8, 2, 1),
            kind: CollectiveKind::AllReduce,
            elems_per_node: 256,
            elem_bytes: 4,
            queue_capacity: 8,
            bucket_capacity: 4,
            token_every_ps: 50_000_000, // one token per 50 us
            priority: 1,
            deadline_ps: 2_000_000_000, // 2 ms
            mean_gap_ps: 100_000_000,   // 100 us
            channels: 2,
            autotune: false,
        }
    }
}

/// Backlog thresholds (total queued requests across tenants) that
/// ratchet the overload ladder. The level is *monotone*: it only ever
/// climbs within a run, so degradation decisions are replayable and
/// the soak suite can assert the ladder never flaps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverloadThresholds {
    /// Backlog at which chunking shrinks (level 1).
    pub shrink_at: usize,
    /// Backlog at which low-priority requests are shed (level 2).
    pub shed_at: usize,
    /// Backlog at which service moves to the per-tenant host path
    /// (level 3).
    pub fallback_at: usize,
}

impl Default for OverloadThresholds {
    fn default() -> Self {
        OverloadThresholds {
            shrink_at: 8,
            shed_at: 16,
            fallback_at: 24,
        }
    }
}

/// Everything one serving run needs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The tenants, index = tenant id.
    pub tenants: Vec<TenantConfig>,
    /// Dequeue order within each tenant queue.
    pub policy: QueuePolicy,
    /// Seed of the arrival trace (and of the fault scenario when
    /// `faults.seed` is 0).
    pub seed: u64,
    /// Arrivals are sampled on `[0, horizon_ps)`; queued work drains
    /// past the horizon.
    pub horizon_ps: u64,
    /// Base chunk size (elements); level ≥ 1 halves it.
    pub chunk_elems: usize,
    /// At ladder level ≥ 2, requests below this priority are shed.
    pub shed_priority_below: u8,
    /// Ladder thresholds.
    pub overload: OverloadThresholds,
    /// Tenant-quarantine hysteresis (fail threshold + probation
    /// successes), reusing the fault-crate's knob shape.
    pub health: HealthConfig,
    /// How long a quarantined tenant is shed before probation starts.
    pub quarantine_ps: u64,
    /// Recovery-manager knobs for the fault path.
    pub recovery: RecoveryConfig,
    /// Fabric timing the tenants' shards run on.
    pub fabric: FabricConfig,
    /// Host-link override for the host-fallback path; `None` keeps the
    /// paper's link. Co-tenancy time-shares the host path (fig 17
    /// halves it) while PIMnet's lower tiers stay physically private.
    pub host: Option<HostLink>,
    /// The fault scenario; an inactive config keeps the whole run on
    /// the analytic fast path.
    pub faults: FaultConfig,
}

impl ServeConfig {
    /// `n` uniform tenants (named `t0..`) under the given seed, fault
    /// free, with default knobs everywhere.
    #[must_use]
    pub fn uniform(n: usize, seed: u64) -> Self {
        ServeConfig {
            tenants: (0..n)
                .map(|i| TenantConfig::new(&format!("t{i}")))
                .collect(),
            policy: QueuePolicy::Fifo,
            seed,
            horizon_ps: 2_000_000_000, // 2 ms
            chunk_elems: 128,
            shed_priority_below: 1,
            overload: OverloadThresholds::default(),
            health: HealthConfig::default(),
            quarantine_ps: 500_000_000, // 0.5 ms
            recovery: RecoveryConfig::default(),
            fabric: FabricConfig::paper(),
            host: None,
            faults: FaultConfig::none(),
        }
    }
}

/// One sampled request of the arrival trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global id, dense in arrival order.
    pub id: u64,
    /// Tenant index into [`ServeConfig::tenants`].
    pub tenant: u32,
    /// Per-tenant sequence number.
    pub seq: u64,
    /// Arrival time on the serve clock.
    pub arrive_ps: u64,
    /// Absolute deadline (`arrive + tenant.deadline_ps`).
    pub deadline_ps: u64,
    /// Tenant priority at sampling time.
    pub priority: u8,
    /// Elements per node this request moves.
    pub elems: usize,
}

/// Why admission control shed a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's bounded queue was full.
    QueueFull,
    /// The tenant's token bucket was empty.
    NoTokens,
    /// The deadline slipped before dispatch.
    Deadline,
    /// The overload ladder is shedding this priority class.
    LowPriority,
}

impl ShedReason {
    /// Stable trace/CSV keyword.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ShedReason::QueueFull => "queue-full",
            ShedReason::NoTokens => "no-tokens",
            ShedReason::Deadline => "deadline",
            ShedReason::LowPriority => "low-priority",
        }
    }

    /// Stable trace-arg code (matches the `SERVE_SHED` doc).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ShedReason::QueueFull => 1,
            ShedReason::NoTokens => 2,
            ShedReason::Deadline => 3,
            ShedReason::LowPriority => 4,
        }
    }
}

/// The exactly-one typed end state of a request.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestOutcome {
    /// Served on the PIM fabric at ladder tier ≤ 2.
    Served {
        /// Dispatch time.
        start_ps: u64,
        /// Completion time.
        end_ps: u64,
        /// Degradation tier the service ended at (0 full … 2 shrunk).
        tier: u8,
        /// Chunks dispatched across the tenant's channels.
        chunks: u32,
    },
    /// Served, but over the host path (ladder level 3, or the recovery
    /// manager escalated to the host-fallback rung).
    HostFallback {
        /// Dispatch time.
        start_ps: u64,
        /// Completion time.
        end_ps: u64,
    },
    /// Shed with a typed rejection ([`PimnetError::AdmissionRejected`],
    /// [`PimnetError::DeadlineExceeded`], or the terminal error of a
    /// failed recovery).
    Shed {
        /// When the shed was decided.
        at_ps: u64,
        /// Why admission or dispatch said no (`None` for a failed
        /// recovery, where `error` carries the cause).
        reason: Option<ShedReason>,
        /// The typed rejection.
        error: PimnetError,
    },
    /// Shed because the tenant was quarantined at arrival.
    Quarantined {
        /// When the request hit the quarantine wall.
        at_ps: u64,
        /// The tenant's quarantine epoch at that instant.
        epoch: u64,
    },
}

impl RequestOutcome {
    /// The acceptance-criteria class: `served`, `shed`, `quarantined`,
    /// or `host-fallback`.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            RequestOutcome::Served { .. } => "served",
            RequestOutcome::HostFallback { .. } => "host-fallback",
            RequestOutcome::Shed { .. } => "shed",
            RequestOutcome::Quarantined { .. } => "quarantined",
        }
    }
}

/// A request joined with its outcome — one row of the request log.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The sampled request.
    pub request: Request,
    /// How it ended.
    pub outcome: RequestOutcome,
}

impl RequestRecord {
    /// End-to-end latency for served / host-fallback requests.
    #[must_use]
    pub fn latency_ps(&self) -> Option<u64> {
        match self.outcome {
            RequestOutcome::Served { end_ps, .. } | RequestOutcome::HostFallback { end_ps, .. } => {
                Some(end_ps.saturating_sub(self.request.arrive_ps))
            }
            _ => None,
        }
    }
}

/// A ladder transition (`level` is the new, higher level).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderStep {
    /// When the ratchet clicked.
    pub at_ps: u64,
    /// The new level (1..=3).
    pub level: u8,
    /// Backlog that triggered it.
    pub backlog: usize,
}

/// A tenant quarantine boundary crossing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuarantineEvent {
    /// When it happened.
    pub at_ps: u64,
    /// The tenant.
    pub tenant: u32,
    /// `true` = entered quarantine, `false` = restored to healthy.
    pub entered: bool,
    /// The tenant's quarantine epoch after the crossing.
    pub epoch: u64,
}

/// Everything one serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// One record per sampled request, ordered by request id.
    pub log: Vec<RequestRecord>,
    /// Ladder transitions in time order (empty = never left level 0).
    pub ladder: Vec<LadderStep>,
    /// Quarantine enter/restore events in time order.
    pub quarantines: Vec<QuarantineEvent>,
    /// Serve-clock time the last request retired.
    pub end_ps: u64,
}

impl ServeReport {
    /// The final (peak) overload level.
    #[must_use]
    pub fn peak_level(&self) -> u8 {
        self.ladder.last().map_or(0, |l| l.level)
    }

    /// Count of records in the given outcome class
    /// (`served` / `shed` / `quarantined` / `host-fallback`).
    #[must_use]
    pub fn count(&self, kind: &str) -> usize {
        self.log.iter().filter(|r| r.outcome.kind() == kind).count()
    }

    /// Sorted end-to-end latencies of served + host-fallback requests.
    #[must_use]
    pub fn latencies_ps(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .log
            .iter()
            .filter_map(RequestRecord::latency_ps)
            .collect();
        v.sort_unstable();
        v
    }

    /// The `p`-th latency percentile (nearest-rank), 0 when nothing was
    /// served.
    #[must_use]
    pub fn percentile_ps(&self, p: f64) -> u64 {
        let lat = self.latencies_ps();
        if lat.is_empty() {
            return 0;
        }
        let rank = ((p / 100.0) * lat.len() as f64).ceil() as usize;
        lat[rank.clamp(1, lat.len()) - 1]
    }

    /// Sustained service rate: requests served (any tier) per second of
    /// serve-clock time.
    #[must_use]
    pub fn collectives_per_sec(&self) -> f64 {
        let served = self.count("served") + self.count("host-fallback");
        if self.end_ps == 0 {
            return 0.0;
        }
        served as f64 * 1e12 / self.end_ps as f64
    }

    /// Deterministic CSV of the request log (the byte-identity artifact
    /// of the soak suites). One row per request, ordered by id.
    #[must_use]
    pub fn render_log(&self, cfg: &ServeConfig) -> String {
        let mut out = String::from(
            "id,tenant,seq,arrive_ps,deadline_ps,priority,elems,outcome,\
             detail,start_ps,end_ps,tier,chunks,latency_ps\n",
        );
        for r in &self.log {
            let q = &r.request;
            let tenant = &cfg.tenants[q.tenant as usize].name;
            let (detail, start, end, tier, chunks) = match &r.outcome {
                RequestOutcome::Served {
                    start_ps,
                    end_ps,
                    tier,
                    chunks,
                } => (
                    "ok".to_string(),
                    *start_ps,
                    *end_ps,
                    u64::from(*tier),
                    u64::from(*chunks),
                ),
                RequestOutcome::HostFallback { start_ps, end_ps } => {
                    ("host".to_string(), *start_ps, *end_ps, 3, 0)
                }
                RequestOutcome::Shed { at_ps, reason, .. } => (
                    reason.map_or("failed", ShedReason::name).to_string(),
                    *at_ps,
                    *at_ps,
                    0,
                    0,
                ),
                RequestOutcome::Quarantined { at_ps, epoch } => {
                    (format!("epoch{epoch}"), *at_ps, *at_ps, 0, 0)
                }
            };
            let lat = r.latency_ps().map_or(0, |l| l);
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                q.id,
                tenant,
                q.seq,
                q.arrive_ps,
                q.deadline_ps,
                q.priority,
                q.elems,
                r.outcome.kind(),
                detail,
                start,
                end,
                tier,
                chunks,
                lat,
            ));
        }
        out
    }
}

/// Samples the merged, id-stamped arrival trace of a config — a pure
/// function of `(cfg.seed, tenants)`, independent of engine state.
/// Per-tenant gaps are `mean_gap/2 + hash % mean_gap`, so the mean is
/// honored while the sequence stays coordinate-hashed (no sequential
/// RNG state to get reordered).
#[must_use]
pub fn sample_arrivals(cfg: &ServeConfig) -> Vec<Request> {
    let mut all: Vec<Request> = Vec::new();
    for (ti, t) in cfg.tenants.iter().enumerate() {
        let mut at = 0u64;
        let mut seq = 0u64;
        loop {
            let gap =
                t.mean_gap_ps / 2 + hash_coords(cfg.seed, &[ti as u64, seq]) % t.mean_gap_ps.max(1);
            at += gap;
            if at >= cfg.horizon_ps {
                break;
            }
            all.push(Request {
                id: 0, // stamped after the merge sort
                tenant: ti as u32,
                seq,
                arrive_ps: at,
                deadline_ps: at + t.deadline_ps,
                priority: t.priority,
                elems: t.elems_per_node,
            });
            seq += 1;
        }
    }
    all.sort_unstable_by_key(|r| (r.arrive_ps, r.tenant, r.seq));
    for (i, r) in all.iter_mut().enumerate() {
        r.id = i as u64;
    }
    all
}

/// Per-tenant quarantine state machine (probation hysteresis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Healthy { failures: u32 },
    Quarantined { until_ps: u64 },
    Probation { successes: u32 },
}

/// Token bucket refilled by elapsed serve-clock time (integer math).
#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: u64,
    last_ps: u64,
}

impl Bucket {
    fn refill(&mut self, t: &TenantConfig, now_ps: u64) {
        if t.token_every_ps == 0 {
            self.tokens = t.bucket_capacity;
            return;
        }
        let accrued = now_ps.saturating_sub(self.last_ps) / t.token_every_ps;
        if accrued > 0 {
            self.tokens = (self.tokens + accrued).min(t.bucket_capacity);
            self.last_ps += accrued * t.token_every_ps;
        }
    }
}

/// Run state of one tenant.
struct TenantState {
    queue: VecDeque<Request>,
    bucket: Bucket,
    /// `Some((busy_until, request, provisional outcome))` while serving.
    in_flight: Option<(u64, Request, RequestOutcome)>,
    health: Health,
    epoch: u64,
    system: SystemConfig,
    timing: TimingModel,
}

/// The engine itself; lives for one [`serve_probed`] call.
struct Engine<'a> {
    cfg: &'a ServeConfig,
    probe: &'a Probe,
    tenants: Vec<TenantState>,
    outcomes: Vec<Option<RequestOutcome>>,
    requests: Vec<Request>,
    level: u8,
    ladder: Vec<LadderStep>,
    quarantines: Vec<QuarantineEvent>,
    injector: FaultInjector,
    end_ps: u64,
}

/// Serves the whole configured stream; see the module docs.
///
/// # Errors
///
/// Configuration errors (no tenants, zero-element requests) surface as
/// [`PimnetError::InvalidMessage`]; per-request service errors never
/// abort the run — they land in that request's typed outcome.
pub fn serve(cfg: &ServeConfig) -> Result<ServeReport, PimnetError> {
    serve_probed(cfg, Probe::disabled())
}

/// [`serve`] with `serve-*` trace events and `serve_*` metrics counters.
/// A disabled probe is bit-identical to [`serve`].
///
/// # Errors
///
/// Exactly those of [`serve`].
pub fn serve_probed(cfg: &ServeConfig, probe: &Probe) -> Result<ServeReport, PimnetError> {
    if cfg.tenants.is_empty() {
        return Err(PimnetError::InvalidMessage {
            reason: "serve config names no tenants".into(),
        });
    }
    for t in &cfg.tenants {
        if t.elems_per_node == 0 || t.elem_bytes == 0 {
            return Err(PimnetError::InvalidMessage {
                reason: format!("tenant {} has a zero-sized request shape", t.name),
            });
        }
        if t.queue_capacity == 0 {
            return Err(PimnetError::InvalidMessage {
                reason: format!("tenant {} has a zero-depth queue", t.name),
            });
        }
    }
    let requests = sample_arrivals(cfg);
    let tenants = cfg
        .tenants
        .iter()
        .map(|t| {
            let mut system = SystemConfig::paper().with_geometry(t.geometry);
            if let Some(host) = cfg.host {
                system = system.with_host(host);
            }
            TenantState {
                queue: VecDeque::new(),
                bucket: Bucket {
                    tokens: t.bucket_capacity,
                    last_ps: 0,
                },
                in_flight: None,
                health: Health::Healthy { failures: 0 },
                epoch: 0,
                timing: TimingModel::new(cfg.fabric, system),
                system,
            }
        })
        .collect();
    let mut eng = Engine {
        cfg,
        probe,
        tenants,
        outcomes: vec![None; requests.len()],
        requests,
        level: 0,
        ladder: Vec::new(),
        quarantines: Vec::new(),
        injector: FaultInjector::new(cfg.faults.clone()),
        end_ps: 0,
    };
    eng.run()?;
    let log = eng
        .requests
        .iter()
        .zip(eng.outcomes)
        .map(|(request, outcome)| RequestRecord {
            request: *request,
            outcome: outcome.expect("engine retired every request exactly once"),
        })
        .collect();
    Ok(ServeReport {
        log,
        ladder: eng.ladder,
        quarantines: eng.quarantines,
        end_ps: eng.end_ps,
    })
}

impl Engine<'_> {
    fn run(&mut self) -> Result<(), PimnetError> {
        let mut next_arrival = 0usize;
        loop {
            // Earliest completion, tenant index breaking ties.
            let completion = self
                .tenants
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.in_flight.as_ref().map(|(end, _, _)| (*end, i)))
                .min();
            let arrival = self.requests.get(next_arrival).map(|r| r.arrive_ps);
            match (completion, arrival) {
                (None, None) => break,
                // Completions first on ties, so a freed tenant can take
                // the simultaneous arrival.
                (Some((ct, ti)), at) if ct <= at.unwrap_or(u64::MAX) => {
                    self.complete(ti, ct);
                    self.dispatch(ti, ct)?;
                }
                _ => {
                    let req = self.requests[next_arrival];
                    next_arrival += 1;
                    self.admit(req)?;
                }
            }
        }
        Ok(())
    }

    /// Slots the one-and-only outcome of a request; a second write for
    /// the same id is an engine bug and panics (the soak suite would
    /// catch it).
    fn retire(&mut self, id: u64, outcome: RequestOutcome) {
        let slot = &mut self.outcomes[id as usize];
        assert!(
            slot.is_none(),
            "request {id} retired twice: {slot:?} then {outcome:?}"
        );
        *slot = Some(outcome);
    }

    fn ratchet(&mut self, now_ps: u64) {
        let backlog: usize = self.tenants.iter().map(|t| t.queue.len()).sum();
        let o = &self.cfg.overload;
        let target = if backlog >= o.fallback_at {
            3
        } else if backlog >= o.shed_at {
            2
        } else if backlog >= o.shrink_at {
            1
        } else {
            0
        };
        while self.level < target {
            self.level += 1;
            self.ladder.push(LadderStep {
                at_ps: now_ps,
                level: self.level,
                backlog,
            });
            self.probe.trace.instant(
                SimTime::from_ps(now_ps),
                codes::SERVE_LADDER,
                [u64::from(self.level), backlog as u64, now_ps, 0],
            );
            self.probe.metrics.serve_ladder(u64::from(self.level));
            if self.level == 1 {
                // Entering degraded chunking: pre-prove each tenant's
                // halved-chunk schedule now, so the first degraded
                // dispatch hits a warm analysis summary instead of
                // paying a full proof on the hot path. Build errors are
                // left for dispatch to surface with request context.
                let chunk = (self.cfg.chunk_elems / 2).max(1);
                for t in &self.cfg.tenants {
                    let _ =
                        cache::analyze_cached(t.kind, &t.geometry, chunk, t.elem_bytes, self.probe);
                }
            }
        }
    }

    fn shed(&mut self, req: &Request, now_ps: u64, reason: ShedReason) {
        let error = match reason {
            ShedReason::Deadline => PimnetError::DeadlineExceeded {
                tenant: req.tenant,
                deadline_ps: req.deadline_ps,
                now_ps,
            },
            ShedReason::QueueFull => PimnetError::AdmissionRejected {
                tenant: req.tenant,
                reason: format!(
                    "queue full (cap {})",
                    self.cfg.tenants[req.tenant as usize].queue_capacity
                ),
            },
            ShedReason::NoTokens => PimnetError::AdmissionRejected {
                tenant: req.tenant,
                reason: "token bucket empty".into(),
            },
            ShedReason::LowPriority => PimnetError::AdmissionRejected {
                tenant: req.tenant,
                reason: format!(
                    "overload level {} sheds priority < {}",
                    self.level, self.cfg.shed_priority_below
                ),
            },
        };
        self.probe.trace.instant(
            SimTime::from_ps(now_ps),
            codes::SERVE_SHED,
            [u64::from(req.tenant), req.id, reason.code(), now_ps],
        );
        self.probe
            .metrics
            .serve_shed(reason == ShedReason::Deadline, false);
        self.retire(
            req.id,
            RequestOutcome::Shed {
                at_ps: now_ps,
                reason: Some(reason),
                error,
            },
        );
    }

    fn admit(&mut self, req: Request) -> Result<(), PimnetError> {
        let now = req.arrive_ps;
        let ti = req.tenant as usize;
        self.probe.trace.instant(
            SimTime::from_ps(now),
            codes::SERVE_ARRIVE,
            [u64::from(req.tenant), req.id, now, req.elems as u64],
        );
        self.probe.metrics.serve_request();

        // Quarantine wall (and its time-based exit into probation).
        match self.tenants[ti].health {
            Health::Quarantined { until_ps } if now < until_ps => {
                let epoch = self.tenants[ti].epoch;
                self.probe.trace.instant(
                    SimTime::from_ps(now),
                    codes::SERVE_SHED,
                    [u64::from(req.tenant), req.id, 5, now],
                );
                self.probe.metrics.serve_shed(false, true);
                self.retire(req.id, RequestOutcome::Quarantined { at_ps: now, epoch });
                return Ok(());
            }
            Health::Quarantined { .. } => {
                self.tenants[ti].health = Health::Probation { successes: 0 };
            }
            _ => {}
        }

        // Overload ladder level ≥ 2: shed the low-priority class.
        if self.level >= 2 && req.priority < self.cfg.shed_priority_below {
            self.shed(&req, now, ShedReason::LowPriority);
            return Ok(());
        }

        // Token bucket.
        {
            let t = &self.cfg.tenants[ti];
            let state = &mut self.tenants[ti];
            state.bucket.refill(t, now);
            if state.bucket.tokens == 0 {
                self.shed(&req, now, ShedReason::NoTokens);
                return Ok(());
            }
            if state.queue.len() >= t.queue_capacity {
                self.shed(&req, now, ShedReason::QueueFull);
                return Ok(());
            }
            state.bucket.tokens -= 1;
            state.queue.push_back(req);
            self.probe.trace.instant(
                SimTime::from_ps(now),
                codes::SERVE_ADMIT,
                [
                    u64::from(req.tenant),
                    req.id,
                    state.queue.len() as u64,
                    state.bucket.tokens,
                ],
            );
            self.probe.metrics.serve_admit();
        }
        self.ratchet(now);
        if self.tenants[ti].in_flight.is_none() {
            self.dispatch(ti, now)?;
        }
        Ok(())
    }

    /// Pops the next request per policy, or `None` when the queue is
    /// empty.
    fn pop(&mut self, ti: usize) -> Option<Request> {
        let q = &mut self.tenants[ti].queue;
        match self.cfg.policy {
            QueuePolicy::Fifo => q.pop_front(),
            QueuePolicy::Lifo => q.pop_back(),
            QueuePolicy::Priority => {
                let best = q
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| (std::cmp::Reverse(r.priority), r.deadline_ps, r.seq))
                    .map(|(i, _)| i)?;
                q.remove(best)
            }
        }
    }

    /// Keeps dispatching until the tenant is busy or its queue drains.
    fn dispatch(&mut self, ti: usize, now_ps: u64) -> Result<(), PimnetError> {
        while self.tenants[ti].in_flight.is_none() {
            let Some(req) = self.pop(ti) else {
                return Ok(());
            };
            if now_ps > req.deadline_ps {
                self.shed(&req, now_ps, ShedReason::Deadline);
                continue;
            }
            self.start(ti, req, now_ps)?;
        }
        Ok(())
    }

    /// Starts service for one request, computing its completion time and
    /// provisional outcome up front (the engine is analytic, so service
    /// is priced at dispatch; the outcome is recorded at completion).
    fn start(&mut self, ti: usize, req: Request, now_ps: u64) -> Result<(), PimnetError> {
        let t = &self.cfg.tenants[ti];
        if self.level >= 3 {
            // Per-tenant host fallback: the engine stops scheduling the
            // PIM fabric entirely for new dispatches.
            let spec = CollectiveSpec::new(
                t.kind,
                Bytes::new(req.elems as u64 * u64::from(t.elem_bytes)),
            )
            .with_elem_bytes(t.elem_bytes);
            let dur = BaselineHostBackend::new(self.tenants[ti].system)
                .collective(&spec)?
                .total()
                .as_ps()
                .max(1);
            let end = now_ps + dur;
            self.begin(ti, req, now_ps, end, 0);
            self.tenants[ti].in_flight = Some((
                end,
                req,
                RequestOutcome::HostFallback {
                    start_ps: now_ps,
                    end_ps: end,
                },
            ));
            return Ok(());
        }

        if self.injector.is_active() {
            return self.start_recovered(ti, req, now_ps);
        }

        // Analytic fast path: chunked service off the schedule cache.
        let chunk = if self.level >= 1 {
            (self.cfg.chunk_elems / 2).max(1)
        } else {
            self.cfg.chunk_elems.max(1)
        };
        let state = &self.tenants[ti];
        let full_chunks = req.elems / chunk;
        let tail = req.elems % chunk;
        let nchunks = (full_chunks + usize::from(tail > 0)).max(1);
        let mut chan_busy = vec![now_ps; t.channels.max(1) as usize];
        let price = |elems: usize| -> Result<u64, PimnetError> {
            // Prove the chunk schedule before pricing it (warm hits in
            // the analysis-summary cache skip re-proving): the serving
            // hot path never dispatches an unverified schedule.
            let summary =
                cache::analyze_cached(t.kind, &t.geometry, elems, t.elem_bytes, self.probe)?;
            if summary.report.has_errors() {
                return Err(PimnetError::ScheduleInvalid {
                    reason: format!(
                        "chunk schedule failed static analysis ({} error(s))",
                        summary.report.error_count()
                    ),
                });
            }
            let s = if t.autotune {
                // Opt-in tuned admission: every composed candidate was
                // re-proved by the tuner and the paper incumbent keeps
                // ties, so this never prices worse than the line below.
                autotune::tune_probed(t.kind, &t.geometry, elems, t.elem_bytes, self.probe)?
                    .schedule
                    .clone()
            } else {
                cache::build_cached_probed(t.kind, &t.geometry, elems, t.elem_bytes, self.probe)?
            };
            Ok(state
                .timing
                .time_schedule(&s, SimTime::ZERO)
                .total()
                .as_ps()
                .max(1))
        };
        let full_dur = if full_chunks > 0 {
            price(chunk.min(req.elems))?
        } else {
            0
        };
        let tail_dur = if tail > 0 { price(tail)? } else { 0 };
        for j in 0..nchunks {
            let dur = if j < full_chunks { full_dur } else { tail_dur };
            let c = j % chan_busy.len();
            chan_busy[c] += dur;
        }
        let end = chan_busy
            .iter()
            .copied()
            .max()
            .unwrap_or(now_ps)
            .max(now_ps + 1);
        let tier = u8::from(self.level >= 1);
        self.begin(ti, req, now_ps, end, nchunks as u32);
        self.tenants[ti].in_flight = Some((
            end,
            req,
            RequestOutcome::Served {
                start_ps: now_ps,
                end_ps: end,
                tier,
                chunks: nchunks as u32,
            },
        ));
        Ok(())
    }

    /// Fault-path service: one recovered collective against the storm
    /// timeline rebased to this request's start.
    fn start_recovered(&mut self, ti: usize, req: Request, now_ps: u64) -> Result<(), PimnetError> {
        let t = &self.cfg.tenants[ti];
        let mut storm = self.cfg.faults.clone();
        storm.timeline = self.injector.timeline().shifted(now_ps);
        let injector = FaultInjector::new(storm);
        let state = &self.tenants[ti];
        let rreq = RecoveryRequest {
            kind: t.kind,
            geometry: &t.geometry,
            elems_per_node: req.elems,
            elem_bytes: t.elem_bytes,
            op: ReduceOp::Sum,
            injector: &injector,
            system: &state.system,
            timing: &state.timing,
            config: self.cfg.recovery,
        };
        let seed = self.cfg.seed;
        let outcome = run_recovered_probed(
            &rreq,
            |id: DpuId| -> Vec<u64> {
                (0..req.elems)
                    .map(|e| hash_coords(seed, &[u64::from(id.0), e as u64]) >> 32)
                    .collect()
            },
            self.probe,
        );
        let provisional = match outcome {
            Ok(o) => {
                let end = now_ps + o.end_ps.max(1);
                if o.plan_tier >= 3 {
                    RequestOutcome::HostFallback {
                        start_ps: now_ps,
                        end_ps: end,
                    }
                } else {
                    RequestOutcome::Served {
                        start_ps: now_ps,
                        end_ps: end,
                        tier: o.plan_tier,
                        chunks: 1,
                    }
                }
            }
            Err(error) => {
                let end = now_ps + self.injector.config().effective_watchdog_ps().max(1);
                RequestOutcome::Shed {
                    at_ps: end,
                    reason: None,
                    error,
                }
            }
        };
        let end = match &provisional {
            RequestOutcome::Served { end_ps, .. } | RequestOutcome::HostFallback { end_ps, .. } => {
                *end_ps
            }
            RequestOutcome::Shed { at_ps, .. } => *at_ps,
            RequestOutcome::Quarantined { .. } => unreachable!(),
        };
        self.begin(ti, req, now_ps, end, 1);
        self.tenants[ti].in_flight = Some((end, req, provisional));
        Ok(())
    }

    fn begin(&mut self, ti: usize, req: Request, now_ps: u64, _end_ps: u64, chunks: u32) {
        let _ = ti;
        self.probe.trace.instant(
            SimTime::from_ps(now_ps),
            codes::SERVE_START,
            [u64::from(req.tenant), req.id, u64::from(chunks), now_ps],
        );
    }

    /// Retires the in-flight request of tenant `ti` at its completion
    /// time and folds the result into the tenant's health machine.
    fn complete(&mut self, ti: usize, now_ps: u64) {
        let (end, req, outcome) = self.tenants[ti]
            .in_flight
            .take()
            .expect("complete() called on an idle tenant");
        debug_assert_eq!(end, now_ps);
        self.end_ps = self.end_ps.max(end);
        match &outcome {
            RequestOutcome::Served { tier, chunks, .. } => {
                self.probe.trace.instant(
                    SimTime::from_ps(now_ps),
                    codes::SERVE_DONE,
                    [
                        u64::from(req.tenant),
                        req.id,
                        u64::from(*tier),
                        end.saturating_sub(req.arrive_ps),
                    ],
                );
                self.probe.metrics.serve_complete(u64::from(*chunks), false);
                self.record_success(ti, now_ps);
            }
            RequestOutcome::HostFallback { .. } => {
                self.probe.trace.instant(
                    SimTime::from_ps(now_ps),
                    codes::SERVE_DONE,
                    [
                        u64::from(req.tenant),
                        req.id,
                        3,
                        end.saturating_sub(req.arrive_ps),
                    ],
                );
                self.probe.metrics.serve_complete(1, true);
                // A recovery-forced host fallback is a PIM-path service
                // failure; an engine-chosen one (ladder level 3) is a
                // policy outcome and leaves tenant health alone.
                if self.level < 3 {
                    self.record_failure(ti, now_ps);
                }
            }
            RequestOutcome::Shed { .. } => {
                // A failed recovery: typed error, tenant health debit.
                self.probe.trace.instant(
                    SimTime::from_ps(now_ps),
                    codes::SERVE_SHED,
                    [u64::from(req.tenant), req.id, 0, now_ps],
                );
                self.probe.metrics.serve_shed(false, false);
                self.record_failure(ti, now_ps);
            }
            RequestOutcome::Quarantined { .. } => unreachable!("never in flight"),
        }
        self.retire(req.id, outcome);
    }

    fn record_success(&mut self, ti: usize, now_ps: u64) {
        match self.tenants[ti].health {
            Health::Healthy { .. } => self.tenants[ti].health = Health::Healthy { failures: 0 },
            Health::Probation { successes } => {
                let successes = successes + 1;
                if successes >= self.cfg.health.probation_successes {
                    self.tenants[ti].health = Health::Healthy { failures: 0 };
                    let epoch = self.tenants[ti].epoch;
                    self.quarantines.push(QuarantineEvent {
                        at_ps: now_ps,
                        tenant: ti as u32,
                        entered: false,
                        epoch,
                    });
                    self.probe.trace.instant(
                        SimTime::from_ps(now_ps),
                        codes::SERVE_QUARANTINE,
                        [ti as u64, 0, 0, now_ps],
                    );
                } else {
                    self.tenants[ti].health = Health::Probation { successes };
                }
            }
            Health::Quarantined { .. } => {}
        }
    }

    fn record_failure(&mut self, ti: usize, now_ps: u64) {
        let enter = match self.tenants[ti].health {
            Health::Healthy { failures } => {
                let failures = failures + 1;
                if failures >= self.cfg.health.fail_threshold {
                    true
                } else {
                    self.tenants[ti].health = Health::Healthy { failures };
                    false
                }
            }
            // Any probation failure re-quarantines immediately.
            Health::Probation { .. } => true,
            Health::Quarantined { .. } => false,
        };
        if enter {
            self.tenants[ti].epoch += 1;
            let epoch = self.tenants[ti].epoch;
            self.tenants[ti].health = Health::Quarantined {
                until_ps: now_ps + self.cfg.quarantine_ps,
            };
            self.quarantines.push(QuarantineEvent {
                at_ps: now_ps,
                tenant: ti as u32,
                entered: true,
                epoch,
            });
            self.probe.trace.instant(
                SimTime::from_ps(now_ps),
                codes::SERVE_QUARANTINE,
                [
                    ti as u64,
                    1,
                    u64::from(self.cfg.health.fail_threshold),
                    now_ps,
                ],
            );
            // Quarantine flushes the tenant's queue: everything waiting
            // is shed as quarantined (it can never dispatch before the
            // wall anyway, and holding it would hide backpressure).
            let epoch_now = epoch;
            while let Some(q) = self.tenants[ti].queue.pop_front() {
                self.probe.trace.instant(
                    SimTime::from_ps(now_ps),
                    codes::SERVE_SHED,
                    [u64::from(q.tenant), q.id, 5, now_ps],
                );
                self.probe.metrics.serve_shed(false, true);
                self.retire(
                    q.id,
                    RequestOutcome::Quarantined {
                        at_ps: now_ps,
                        epoch: epoch_now,
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg(seed: u64) -> ServeConfig {
        let mut cfg = ServeConfig::uniform(2, seed);
        for t in &mut cfg.tenants {
            t.geometry = PimGeometry::new(4, 2, 2, 1);
            t.elems_per_node = 64;
            t.mean_gap_ps = 40_000_000;
        }
        cfg.horizon_ps = 1_000_000_000;
        cfg.chunk_elems = 32;
        cfg
    }

    #[test]
    fn arrivals_are_seed_deterministic_and_id_dense() {
        let cfg = tiny_cfg(7);
        let a = sample_arrivals(&cfg);
        let b = sample_arrivals(&cfg);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for (i, r) in a.iter().enumerate() {
            assert_eq!(r.id, i as u64);
        }
        assert!(a.windows(2).all(|w| w[0].arrive_ps <= w[1].arrive_ps));
        let c = sample_arrivals(&tiny_cfg(8));
        assert_ne!(a, c, "different seeds must sample different traces");
    }

    #[test]
    fn every_request_gets_exactly_one_outcome() {
        let cfg = tiny_cfg(3);
        let report = serve(&cfg).unwrap();
        assert_eq!(report.log.len(), sample_arrivals(&cfg).len());
        let total = report.count("served")
            + report.count("shed")
            + report.count("quarantined")
            + report.count("host-fallback");
        assert_eq!(total, report.log.len());
        assert!(report.count("served") > 0, "a healthy run serves requests");
    }

    #[test]
    fn serve_is_deterministic_per_seed() {
        let cfg = tiny_cfg(11);
        let a = serve(&cfg).unwrap();
        let b = serve(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.render_log(&cfg), b.render_log(&cfg));
    }

    #[test]
    fn tight_deadlines_shed_with_typed_errors() {
        let mut cfg = tiny_cfg(5);
        for t in &mut cfg.tenants {
            t.deadline_ps = 1; // everything that queues behind service slips
            t.mean_gap_ps = 1_000_000; // hammer the queue
        }
        let report = serve(&cfg).unwrap();
        let sheds: Vec<_> = report
            .log
            .iter()
            .filter_map(|r| match &r.outcome {
                RequestOutcome::Shed { error, .. } => Some(error.clone()),
                _ => None,
            })
            .collect();
        assert!(!sheds.is_empty());
        assert!(sheds.iter().any(|e| matches!(
            e,
            PimnetError::DeadlineExceeded { .. } | PimnetError::AdmissionRejected { .. }
        )));
    }

    #[test]
    fn overload_ladder_is_monotone_and_reaches_shed() {
        let mut cfg = tiny_cfg(9);
        for t in &mut cfg.tenants {
            t.mean_gap_ps = 120_000; // flood: ~3x the per-request service time
            t.queue_capacity = 64;
            t.bucket_capacity = 1_000;
            t.token_every_ps = 0;
            t.priority = 0; // below shed_priority_below = 1
        }
        cfg.overload = OverloadThresholds {
            shrink_at: 2,
            shed_at: 4,
            fallback_at: 8,
        };
        let report = serve(&cfg).unwrap();
        let levels: Vec<u8> = report.ladder.iter().map(|l| l.level).collect();
        assert!(levels.windows(2).all(|w| w[0] < w[1]), "monotone ratchet");
        assert!(report.peak_level() >= 2, "flood must climb the ladder");
        assert!(
            report.log.iter().any(|r| matches!(
                &r.outcome,
                RequestOutcome::Shed {
                    reason: Some(ShedReason::LowPriority),
                    ..
                }
            )),
            "level >= 2 sheds the low-priority class"
        );
    }

    #[test]
    fn autotuned_tenants_serve_and_never_price_worse_than_paper() {
        let base = tiny_cfg(13);
        let mut tuned = base.clone();
        for t in &mut tuned.tenants {
            t.autotune = true;
        }
        let paper_report = serve(&base).unwrap();
        let tuned_report = serve(&tuned).unwrap();
        assert!(tuned_report.count("served") > 0);
        assert_eq!(tuned_report.count("served"), paper_report.count("served"));
        // Same trace, same chunking: the tuner's winner keeps ties with
        // the paper incumbent, so no served request takes longer.
        for (a, b) in paper_report.log.iter().zip(&tuned_report.log) {
            assert_eq!(a.request.id, b.request.id);
            if let (
                RequestOutcome::Served {
                    start_ps: s0,
                    end_ps: e0,
                    ..
                },
                RequestOutcome::Served {
                    start_ps: s1,
                    end_ps: e1,
                    ..
                },
            ) = (&a.outcome, &b.outcome)
            {
                assert!(e1 - s1 <= e0 - s0, "request {} priced worse", a.request.id);
            }
        }
        // Determinism holds with tuning on.
        assert_eq!(tuned_report, serve(&tuned).unwrap());
    }

    #[test]
    fn empty_tenant_list_is_a_typed_config_error() {
        let cfg = ServeConfig {
            tenants: Vec::new(),
            ..ServeConfig::uniform(1, 0)
        };
        assert!(matches!(
            serve(&cfg),
            Err(PimnetError::InvalidMessage { .. })
        ));
    }
}
