//! The PIM instruction offload layer (paper Fig 5(c)/(d)).
//!
//! PIMnet collectives are not host calls: invoking `PIMnet_ReduceScatter()`
//! compiles a *sequence of PIM instructions* that is offloaded to every
//! DPU alongside the kernel, plus memory-mapped *switch configurations*
//! for the inter-chip/inter-rank switches (Fig 8). At run time the DPU
//! executes `POLL` (READY/START barrier), then per scheduled slot `SEND`s
//! spans out of its PIMnet-stop ports and `RECV`s (optionally reducing)
//! into WRAM, with `WAIT` aligning it to its compile-time slot.
//!
//! This module performs that compilation from a [`CommSchedule`] and
//! provides [`IsaMachine`], an interpreter that executes the per-DPU
//! programs against the switch plan. A property test in this module (and
//! integration tests) prove the interpreter reaches exactly the same
//! buffers as the span-level executor [`crate::exec::ExecMachine`] — i.e.
//! the compiled instruction streams really implement the collective.

use std::collections::HashMap;
use std::fmt;

use pim_arch::geometry::DpuId;

use crate::error::PimnetError;
use crate::exec::{Element, ReduceOp};
use crate::schedule::{CommSchedule, Span};
use crate::topology::{Direction, Resource};

/// A PIMnet-stop port a `SEND`/`RECV` names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Port {
    /// Eastbound ring channel.
    RingEast,
    /// Westbound ring channel.
    RingWest,
    /// The chip's DQ channel towards the buffer-chip switch (inter-chip
    /// and inter-rank traffic both leave through it).
    Dq,
    /// Local WRAM-to-WRAM move (no fabric).
    Local,
}

impl fmt::Display for Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Port::RingEast => "E",
            Port::RingWest => "W",
            Port::Dq => "DQ",
            Port::Local => "L",
        };
        f.write_str(s)
    }
}

/// One offloaded PIM instruction (Fig 5(c)).
///
/// `slot` is the compile-time schedule slot the WAIT phase aligns to: in
/// hardware it is a timing offset from Algorithm 1; in the interpreter it
/// is an explicit rendezvous index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PimInstr {
    /// Raise READY, wait for START (once, before the collective).
    Poll,
    /// Send `span` out of `port` during `slot`.
    Send {
        /// Scheduled slot (WAIT target).
        slot: u32,
        /// PIMnet-stop port.
        port: Port,
        /// WRAM span streamed out.
        span: Span,
    },
    /// Receive into `span` from `port` during `slot`, overwriting.
    Recv {
        /// Scheduled slot (WAIT target).
        slot: u32,
        /// PIMnet-stop port.
        port: Port,
        /// WRAM span written.
        span: Span,
    },
    /// Receive into `span` from `port` during `slot`, reducing into the
    /// existing WRAM contents (the collective *operation* of Table I).
    RecvReduce {
        /// Scheduled slot (WAIT target).
        slot: u32,
        /// PIMnet-stop port.
        port: Port,
        /// WRAM span reduced into.
        span: Span,
    },
    /// Local WRAM copy during `slot` (e.g. All-to-All's own chunk).
    Copy {
        /// Scheduled slot.
        slot: u32,
        /// Source span.
        src: Span,
        /// Destination span.
        dst: Span,
    },
}

impl PimInstr {
    fn slot(&self) -> u32 {
        match *self {
            PimInstr::Poll => 0,
            PimInstr::Send { slot, .. }
            | PimInstr::Recv { slot, .. }
            | PimInstr::RecvReduce { slot, .. }
            | PimInstr::Copy { slot, .. } => slot,
        }
    }
}

/// The instruction stream offloaded to one DPU.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DpuProgram {
    /// Instructions in execution order (slot-monotonic after `Poll`).
    pub instrs: Vec<PimInstr>,
}

impl DpuProgram {
    /// Number of fabric sends in the program.
    #[must_use]
    pub fn sends(&self) -> usize {
        self.instrs
            .iter()
            .filter(|i| matches!(i, PimInstr::Send { .. }))
            .count()
    }
}

/// Per-slot switch configuration: which receivers each sending (DPU, port)
/// reaches — the memory-mapped state of the inter-chip/inter-rank switches
/// (Fig 8) plus the ring's implicit neighbour wiring.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SwitchPlan {
    // (src, port, slot) -> destination set of each successive send (a
    // source may issue several scheduled sends on one port in one slot,
    // e.g. ReduceScatter's per-rank quarters).
    routes: HashMap<(u32, Port, u32), Vec<Vec<DpuId>>>,
    slots: u32,
}

impl SwitchPlan {
    /// Receivers of the `seq`-th send from `src` on `port` during `slot`.
    #[must_use]
    pub fn route(&self, src: DpuId, port: Port, slot: u32, seq: usize) -> &[DpuId] {
        self.routes
            .get(&(src.0, port, slot))
            .and_then(|v| v.get(seq))
            .map_or(&[], Vec::as_slice)
    }

    /// Total schedule slots.
    #[must_use]
    pub fn slots(&self) -> u32 {
        self.slots
    }
}

/// A compiled collective: one program per DPU plus the switch plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledCollective {
    /// Per-DPU instruction streams, indexed by linear DPU id.
    pub programs: Vec<DpuProgram>,
    /// Switch/ring routing per slot.
    pub plan: SwitchPlan,
    /// Per-node buffer length in elements (same layout as the schedule).
    pub buffer_len: usize,
}

impl CompiledCollective {
    /// Total offloaded instructions across all DPUs.
    #[must_use]
    pub fn instruction_count(&self) -> usize {
        self.programs.iter().map(|p| p.instrs.len()).sum()
    }
}

/// Which port a transfer leaves through, from its first fabric resource.
fn send_port(resources: &[Resource]) -> Port {
    match resources.first() {
        None => Port::Local,
        Some(Resource::RingSegment { dir, .. }) => match dir {
            Direction::East => Port::RingEast,
            Direction::West => Port::RingWest,
        },
        Some(_) => Port::Dq,
    }
}

/// Which port a transfer arrives through at the destination.
fn recv_port(resources: &[Resource]) -> Port {
    match resources.last() {
        None => Port::Local,
        Some(Resource::RingSegment { dir, .. }) => match dir {
            // Arriving on an eastbound segment means it enters the west port,
            // but the ISA names the *channel*, so keep the direction name.
            Direction::East => Port::RingEast,
            Direction::West => Port::RingWest,
        },
        Some(_) => Port::Dq,
    }
}

/// Compiles a schedule into per-DPU instruction streams and a switch plan
/// (the paper's host-side compilation of `PIMnet_AllReduce()` et al.).
///
/// # Errors
///
/// Returns [`PimnetError::ScheduleInvalid`] if the schedule fails static
/// validation first — never compile an invalid schedule.
pub fn compile(schedule: &CommSchedule) -> Result<CompiledCollective, PimnetError> {
    crate::schedule::validate::validate(schedule)?;
    let n = schedule.geometry.total_dpus() as usize;
    let mut programs = vec![DpuProgram::default(); n];
    for p in &mut programs {
        p.instrs.push(PimInstr::Poll);
    }
    let mut plan = SwitchPlan::default();

    let mut slot: u32 = 0;
    for phase in &schedule.phases {
        for step in &phase.steps {
            // Iterate senders in DPU order: the interpreter's wires deliver
            // payloads in sender order, so receive instructions must be
            // emitted in the same order for FIFO pairing to be exact.
            let mut ordered: Vec<&crate::schedule::Transfer> = step.transfers.iter().collect();
            ordered.sort_by_key(|t| t.src);
            for t in ordered {
                if t.is_local() {
                    programs[t.src.index()].instrs.push(PimInstr::Copy {
                        slot,
                        src: t.src_span,
                        dst: t.dst_span,
                    });
                    continue;
                }
                let sport = send_port(&t.resources);
                programs[t.src.index()].instrs.push(PimInstr::Send {
                    slot,
                    port: sport,
                    span: t.src_span,
                });
                plan.routes
                    .entry((t.src.0, sport, slot))
                    .or_default()
                    .push(t.dsts.clone());
                let rport = recv_port(&t.resources);
                for &dst in &t.dsts {
                    let instr = if t.combine {
                        PimInstr::RecvReduce {
                            slot,
                            port: rport,
                            span: t.dst_span,
                        }
                    } else {
                        PimInstr::Recv {
                            slot,
                            port: rport,
                            span: t.dst_span,
                        }
                    };
                    programs[dst.index()].instrs.push(instr);
                }
            }
            slot += 1;
        }
    }
    plan.slots = slot;
    Ok(CompiledCollective {
        programs,
        plan,
        buffer_len: schedule.buffer_len,
    })
}

/// Interprets compiled collectives against per-DPU WRAM buffers.
///
/// Execution is slot-synchronous, exactly like the hardware's WAIT-aligned
/// slots: within a slot all sends read the pre-slot WRAM state, then all
/// receives apply.
#[derive(Debug, Clone, PartialEq)]
pub struct IsaMachine<T> {
    buffers: Vec<Vec<T>>,
}

impl<T: Element> IsaMachine<T> {
    /// Creates the machine; `init` provides each DPU's initial WRAM
    /// contents (resized to the compiled buffer length).
    #[must_use]
    pub fn init(compiled: &CompiledCollective, mut init: impl FnMut(DpuId) -> Vec<T>) -> Self {
        let buffers = (0..compiled.programs.len())
            .map(|i| {
                let mut b = init(DpuId(i as u32));
                b.resize(compiled.buffer_len, T::default());
                b
            })
            .collect();
        IsaMachine { buffers }
    }

    /// Runs every DPU's program to completion.
    ///
    /// # Errors
    ///
    /// [`PimnetError::ScheduleInvalid`] if a `Recv` has no matching routed
    /// `Send` in its slot, or a routed `Send` is never consumed — either
    /// would mean the compiler and switch plan disagree.
    pub fn run(
        &mut self,
        compiled: &CompiledCollective,
        op: ReduceOp,
    ) -> Result<(), crate::error::PimnetError> {
        let n = self.buffers.len();
        let mut pc = vec![1usize; n]; // start past the leading Poll
        for slot in 0..compiled.plan.slots() {
            // 1. Collect sends of this slot (snapshot semantics).
            // key: (dst, recv port) -> FIFO of payload spans.
            let mut wires: HashMap<(u32, Port), Vec<Vec<T>>> = HashMap::new();
            let mut local: Vec<(usize, Span, Vec<T>)> = Vec::new();
            for (dpu, prog) in compiled.programs.iter().enumerate() {
                let mut i = pc[dpu];
                let mut send_seq: HashMap<Port, usize> = HashMap::new();
                while i < prog.instrs.len() && prog.instrs[i].slot() == slot {
                    match prog.instrs[i] {
                        PimInstr::Send { port, span, .. } => {
                            let seq = send_seq.entry(port).or_insert(0);
                            let payload = self.buffers[dpu][span.range()].to_vec();
                            for &dst in compiled.plan.route(DpuId(dpu as u32), port, slot, *seq) {
                                wires
                                    .entry((dst.0, port))
                                    .or_default()
                                    .push(payload.clone());
                            }
                            *seq += 1;
                        }
                        PimInstr::Copy { src, dst, .. } => {
                            let payload = self.buffers[dpu][src.range()].to_vec();
                            local.push((dpu, dst, payload));
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            // 2. Apply local copies.
            for (dpu, dst, payload) in local {
                self.buffers[dpu][dst.start..dst.start + payload.len()].copy_from_slice(&payload);
            }
            // 3. Deliver receives in program order per DPU.
            for (dpu, prog) in compiled.programs.iter().enumerate() {
                let mut i = pc[dpu];
                while i < prog.instrs.len() && prog.instrs[i].slot() == slot {
                    match prog.instrs[i] {
                        PimInstr::Recv { port, span, .. } => {
                            let payload = take_wire(&mut wires, dpu as u32, port)?;
                            self.buffers[dpu][span.start..span.start + payload.len()]
                                .copy_from_slice(&payload);
                        }
                        PimInstr::RecvReduce { port, span, .. } => {
                            let payload = take_wire(&mut wires, dpu as u32, port)?;
                            let buf = &mut self.buffers[dpu];
                            for (k, v) in payload.into_iter().enumerate() {
                                buf[span.start + k] = T::reduce(op, buf[span.start + k], v);
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                pc[dpu] = i;
            }
            if !wires.values().all(Vec::is_empty) {
                return Err(crate::error::PimnetError::ScheduleInvalid {
                    reason: format!(
                        "undelivered payloads in slot {slot}: switch plan routed \
                         a send no Recv consumed"
                    ),
                });
            }
        }
        Ok(())
    }

    /// A DPU's WRAM buffer after execution.
    #[must_use]
    pub fn buffer(&self, id: DpuId) -> &[T] {
        &self.buffers[id.index()]
    }
}

fn take_wire<T>(
    wires: &mut HashMap<(u32, Port), Vec<Vec<T>>>,
    dpu: u32,
    port: Port,
) -> Result<Vec<T>, crate::error::PimnetError> {
    let q = wires
        .get_mut(&(dpu, port))
        .filter(|q| !q.is_empty())
        .ok_or_else(|| crate::error::PimnetError::ScheduleInvalid {
            reason: format!("DPU{dpu}: Recv on {port} with no routed Send"),
        })?;
    Ok(q.remove(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use crate::exec::{run_collective, ExecMachine};
    use pim_arch::geometry::PimGeometry;

    fn build(kind: CollectiveKind, n: u32, elems: usize) -> CommSchedule {
        CommSchedule::build(kind, &PimGeometry::paper_scaled(n), elems, 4).unwrap()
    }

    fn input(id: DpuId, elems: usize) -> Vec<u64> {
        (0..elems)
            .map(|e| u64::from(id.0 + 1) * 10_000 + e as u64)
            .collect()
    }

    fn assert_isa_matches_exec(kind: CollectiveKind, n: u32, elems: usize) {
        let s = build(kind, n, elems);
        let compiled = compile(&s).expect("compile");
        // Seed the ISA machine with the span executor's *initial* buffers,
        // so both see identical input placement (piece offsets for
        // AllGather/Gather, offset 0 otherwise).
        let initial = ExecMachine::<u64>::init(&s, |i| input(i, elems));
        let mut isa = IsaMachine::init(&compiled, |id| initial.buffer(id).to_vec());
        isa.run(&compiled, ReduceOp::Sum).expect("isa run");
        let exec = run_collective(&s, ReduceOp::Sum, |i| input(i, elems)).unwrap();
        for id in s.participants() {
            assert_eq!(isa.buffer(id), exec.buffer(id), "{kind} node {id}");
        }
    }

    #[test]
    fn compiled_allreduce_matches_span_executor() {
        assert_isa_matches_exec(CollectiveKind::AllReduce, 64, 256);
        assert_isa_matches_exec(CollectiveKind::AllReduce, 256, 64);
    }

    #[test]
    fn compiled_reduce_scatter_and_gather_match() {
        assert_isa_matches_exec(CollectiveKind::ReduceScatter, 64, 520);
        assert_isa_matches_exec(CollectiveKind::AllGather, 16, 24);
        assert_isa_matches_exec(CollectiveKind::Gather, 32, 5);
    }

    #[test]
    fn compiled_alltoall_and_broadcast_match() {
        assert_isa_matches_exec(CollectiveKind::AllToAll, 64, 128);
        assert_isa_matches_exec(CollectiveKind::Broadcast, 64, 77);
        assert_isa_matches_exec(CollectiveKind::Reduce, 64, 40);
    }

    #[test]
    fn every_program_begins_with_poll() {
        let s = build(CollectiveKind::AllReduce, 64, 256);
        let compiled = compile(&s).unwrap();
        for p in &compiled.programs {
            assert_eq!(p.instrs.first(), Some(&PimInstr::Poll));
        }
    }

    #[test]
    fn slots_are_monotonic_within_each_program() {
        let s = build(CollectiveKind::AllToAll, 16, 64);
        let compiled = compile(&s).unwrap();
        for p in &compiled.programs {
            let slots: Vec<u32> = p.instrs.iter().map(PimInstr::slot).collect();
            assert!(slots.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn instruction_counts_scale_with_steps_not_bytes() {
        let g = PimGeometry::paper_scaled(64);
        let small = compile(&CommSchedule::build(CollectiveKind::AllReduce, &g, 128, 4).unwrap())
            .unwrap()
            .instruction_count();
        let large = compile(&CommSchedule::build(CollectiveKind::AllReduce, &g, 8192, 4).unwrap())
            .unwrap()
            .instruction_count();
        assert_eq!(small, large, "offload size must not depend on payload");
    }

    #[test]
    fn corrupted_schedule_refuses_to_compile() {
        let mut s = build(CollectiveKind::AllReduce, 8, 64);
        for phase in &mut s.phases {
            for step in &mut phase.steps {
                if let Some(t) = step.transfers.first_mut() {
                    t.src_span = Span::new(s.buffer_len, 4);
                    t.dst_span = t.src_span;
                }
            }
        }
        assert!(matches!(
            compile(&s),
            Err(PimnetError::ScheduleInvalid { .. })
        ));
    }

    #[test]
    fn isa_equivalence_holds_for_arbitrary_shapes() {
        let mut rng = pim_sim::rng::SimRng::seed_from_u64(0x15A_0001);
        for _ in 0..12 {
            let n_exp = rng.gen_range(0u32..=6);
            let elems = rng.gen_range(1usize..128);
            let n = 1u32 << n_exp;
            let s = build(CollectiveKind::AllReduce, n, elems);
            let compiled = compile(&s).unwrap();
            let mut isa = IsaMachine::init(&compiled, |id| input(id, elems));
            isa.run(&compiled, ReduceOp::Sum).expect("isa run");
            let exec = run_collective(&s, ReduceOp::Sum, |id| input(id, elems)).unwrap();
            for id in s.participants() {
                assert_eq!(isa.buffer(id), exec.buffer(id));
            }
        }
    }
}
