//! High-level convenience API — the `PIMnet_AllReduce()`-style entry point
//! of the paper's Fig 5(b).
//!
//! The programmer never sees address generation or traffic scheduling
//! (§V-D): [`PimnetSystem`] wraps a system + fabric pair and exposes one
//! call per collective, plus the comparison backends for evaluation work.

use pim_arch::geometry::DpuId;
use pim_arch::SystemConfig;
use pim_sim::Bytes;

use crate::backends::{
    all_backends, BackendKind, BaselineHostBackend, CollectiveBackend, PimnetBackend,
    SoftwareIdealBackend,
};
use crate::collective::{CollectiveKind, CollectiveSpec};
use crate::error::PimnetError;
use crate::exec::{Element, ExecMachine, ReduceOp};
use crate::fabric::FabricConfig;
use crate::schedule::CommSchedule;
use crate::timing::CommBreakdown;

/// A PIM system with PIMnet attached: the library's front door.
///
/// # Example
///
/// ```
/// use pim_sim::Bytes;
/// use pimnet::api::PimnetSystem;
/// use pimnet::collective::CollectiveKind;
/// use pimnet::exec::ReduceOp;
///
/// let sys = PimnetSystem::paper();
///
/// // Functionally execute an AllReduce on real vectors (and time it).
/// let (machine, time) = sys.execute(
///     CollectiveKind::AllReduce,
///     ReduceOp::Sum,
///     |id| vec![u64::from(id.0); 64],
/// )?;
/// let expected: u64 = (0..256).sum();
/// assert!(machine
///     .buffer(pim_arch::geometry::DpuId(0))[..64]
///     .iter()
///     .all(|&x| x == expected));
/// assert!(time.total().as_us() < 100.0);
/// # Ok::<(), pimnet::PimnetError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PimnetSystem {
    system: SystemConfig,
    fabric: FabricConfig,
}

impl PimnetSystem {
    /// Creates a system with PIMnet attached.
    #[must_use]
    pub fn new(system: SystemConfig, fabric: FabricConfig) -> Self {
        PimnetSystem { system, fabric }
    }

    /// The paper's evaluation system (256 DPUs, Table IV fabric).
    #[must_use]
    pub fn paper() -> Self {
        PimnetSystem::new(SystemConfig::paper(), FabricConfig::paper())
    }

    /// The system configuration.
    #[must_use]
    pub fn system(&self) -> &SystemConfig {
        &self.system
    }

    /// The fabric configuration.
    #[must_use]
    pub fn fabric(&self) -> &FabricConfig {
        &self.fabric
    }

    /// The PIMnet backend for this system.
    #[must_use]
    pub fn pimnet(&self) -> PimnetBackend {
        PimnetBackend::new(self.system, self.fabric)
    }

    /// Every comparison backend (B, S, N, D, P) for this system.
    #[must_use]
    pub fn backends(&self) -> Vec<Box<dyn CollectiveBackend>> {
        all_backends(self.system, self.fabric)
    }

    /// One backend by its Fig 10 key.
    #[must_use]
    pub fn backend(&self, kind: BackendKind) -> Box<dyn CollectiveBackend> {
        match kind {
            BackendKind::Pimnet => Box::new(self.pimnet()),
            BackendKind::Baseline => Box::new(BaselineHostBackend::new(self.system)),
            BackendKind::SoftwareIdeal => Box::new(SoftwareIdealBackend::new(self.system)),
            BackendKind::DimmLink => Box::new(crate::backends::DimmLinkBackend::new(
                self.system,
                self.fabric,
            )),
            BackendKind::NdpBridge => Box::new(crate::backends::NdpBridgeBackend::new(self.system)),
        }
    }

    /// Times a PIMnet collective with `bytes` per DPU.
    ///
    /// # Errors
    ///
    /// Propagates schedule build/validation errors.
    pub fn collective(
        &self,
        kind: CollectiveKind,
        bytes: Bytes,
    ) -> Result<CommBreakdown, PimnetError> {
        self.pimnet().collective(&CollectiveSpec::new(kind, bytes))
    }

    /// Times the same collective through the host (baseline PIM).
    ///
    /// # Errors
    ///
    /// Propagates backend errors.
    pub fn baseline_collective(
        &self,
        kind: CollectiveKind,
        bytes: Bytes,
    ) -> Result<CommBreakdown, PimnetError> {
        BaselineHostBackend::new(self.system).collective(&CollectiveSpec::new(kind, bytes))
    }

    /// Compiles the PIMnet schedule for a collective.
    ///
    /// # Errors
    ///
    /// Propagates schedule build/validation errors.
    pub fn schedule(
        &self,
        kind: CollectiveKind,
        bytes: Bytes,
    ) -> Result<CommSchedule, PimnetError> {
        self.pimnet().schedule(&CollectiveSpec::new(kind, bytes))
    }

    /// Compiles a collective all the way to its offloaded form: per-DPU
    /// instruction streams plus switch configurations (paper Fig 5(c)/(d)),
    /// exactly what the host would push alongside the PIM kernel.
    ///
    /// # Errors
    ///
    /// Propagates schedule build/validation errors.
    pub fn compile(
        &self,
        kind: CollectiveKind,
        bytes: Bytes,
    ) -> Result<crate::isa::CompiledCollective, PimnetError> {
        let schedule = self.schedule(kind, bytes)?;
        crate::isa::compile(&schedule)
    }

    /// Functionally executes a collective on real data *and* times it.
    ///
    /// `init(id)` provides each DPU's contribution as a vector of elements;
    /// the element width is `size_of::<T>()`.
    ///
    /// # Errors
    ///
    /// Propagates schedule build/validation errors.
    pub fn execute<T: Element>(
        &self,
        kind: CollectiveKind,
        op: ReduceOp,
        mut init: impl FnMut(DpuId) -> Vec<T>,
    ) -> Result<(ExecMachine<T>, CommBreakdown), PimnetError> {
        // Probe the contribution length from the first DPU.
        let first = init(DpuId(0));
        let elems = first.len();
        let elem_bytes = std::mem::size_of::<T>() as u32;
        let spec = CollectiveSpec::new(kind, Bytes::new(elems as u64 * u64::from(elem_bytes)))
            .with_elem_bytes(elem_bytes);
        let schedule = self.pimnet().schedule(&spec)?;
        let mut machine = ExecMachine::init(&schedule, |id| {
            if id == DpuId(0) {
                first.clone()
            } else {
                init(id)
            }
        });
        machine.run(&schedule, op);
        let breakdown = self.pimnet().timing().time_schedule(&schedule, spec.skew);
        Ok((machine, breakdown))
    }
}

impl Default for PimnetSystem {
    fn default() -> Self {
        PimnetSystem::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_wires_everything_together() {
        let sys = PimnetSystem::paper();
        assert_eq!(sys.system().geometry.total_dpus(), 256);
        assert_eq!(sys.backends().len(), 5);
    }

    #[test]
    fn collective_and_schedule_agree() {
        let sys = PimnetSystem::paper();
        let t = sys
            .collective(CollectiveKind::AllReduce, Bytes::kib(8))
            .unwrap();
        let s = sys
            .schedule(CollectiveKind::AllReduce, Bytes::kib(8))
            .unwrap();
        assert_eq!(s.elems_per_node, 2048);
        assert!(t.total() > pim_sim::SimTime::ZERO);
    }

    #[test]
    fn execute_runs_and_times() {
        let sys = PimnetSystem::paper();
        let (m, t) = sys
            .execute(CollectiveKind::AllReduce, ReduceOp::Max, |id| {
                vec![id.0; 32]
            })
            .unwrap();
        assert!(m.buffer(DpuId(9))[..32].iter().all(|&x| x == 255));
        assert!(t.total() > pim_sim::SimTime::ZERO);
    }

    #[test]
    fn backend_lookup_by_kind() {
        let sys = PimnetSystem::paper();
        for kind in BackendKind::ALL {
            assert_eq!(sys.backend(kind).kind(), kind);
        }
    }
}
