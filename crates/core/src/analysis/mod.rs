//! Static analysis of [`CommSchedule`](crate::schedule::CommSchedule)s: prove a schedule correct
//! without executing a single payload.
//!
//! PIMnet's premise is that collective traffic is fully static — no
//! router buffers, no arbitration, no hardware routing — which makes
//! every correctness property of a schedule decidable ahead of time.
//! This module promotes those properties from "caught dynamically by the
//! functional executor" to a compiler-style analysis suite of four
//! passes, each owning a stable diagnostic-code range:
//!
//! | Pass | Codes | Proves |
//! |------|-------|--------|
//! | structural | `P001`–`P010` | spans in bounds, tier-correct resource paths, no illegal sharing (mirrors [`crate::schedule::validate`]) |
//! | dataflow | `P101`–`P107` | per-element provenance: reductions fold every contributor exactly once, gathers deliver every span, nothing reads uninitialized memory |
//! | hazard | `P201`–`P202` | no intra-step write-write or read-after-overwrite races on overlapping spans |
//! | sync | `P301`–`P303` | the READY/START tree spans all endpoints, steps admit a serial order, no empty barriers |
//!
//! The entry point is [`run_all`], which runs every pass and returns an
//! [`AnalysisReport`]. A report with no error-severity diagnostics is a
//! proof (relative to the executor's semantics, which the differential
//! fuzzer in `tests/validator_fuzz.rs` pins) that executing the schedule
//! bit-matches the reference collective. The resilience layer uses this
//! to independently re-prove repaired schedules before offering them as
//! a degraded-mode tier, and the CLI `lint` subcommand exposes it for
//! every preset.

use std::fmt;

use crate::collective::CollectiveKind;
use crate::schedule::ScheduleView;

pub mod diagnostics;
pub mod incremental;
pub mod presets;

mod dataflow;
mod hazard;
mod structural;
mod sync;

pub use diagnostics::{Diagnostic, Location, Severity};
pub use incremental::{
    reverify_delta, reverify_repair, verify_full, verify_full_arc, AnalysisSummary, DeltaStats,
    PassState, ScheduleVerifier, StepVerdict,
};

/// Result of running every analysis pass over one schedule.
///
/// Diagnostics are sorted by location (phase, step, transfer, dpu) and
/// then code, so reports are deterministic and diffable.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The collective the schedule claims to implement.
    pub kind: CollectiveKind,
    /// Total DPUs in the schedule's geometry.
    pub dpus: u32,
    /// Elements contributed per node.
    pub elems_per_node: usize,
    /// Every finding, sorted by location then code.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when analysis produced no findings at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when any finding is error severity — the schedule is wrong.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// One-line human summary, e.g. `AllReduce x64: 2 errors, 1 warning`.
    #[must_use]
    pub fn summary(&self) -> String {
        let errors = self.error_count();
        let warnings = self
            .diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count();
        if self.is_clean() {
            format!("{} x{}: clean", self.kind, self.dpus)
        } else {
            format!(
                "{} x{}: {errors} error(s), {warnings} warning(s)",
                self.kind, self.dpus
            )
        }
    }

    /// The report as one machine-readable JSON object:
    /// `{"kind":...,"dpus":...,"clean":...,"errors":...,"diagnostics":[...]}`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let diags: Vec<String> = self.diagnostics.iter().map(Diagnostic::to_json).collect();
        format!(
            "{{\"kind\":\"{}\",\"dpus\":{},\"elems_per_node\":{},\"clean\":{},\
             \"errors\":{},\"diagnostics\":[{}]}}",
            self.kind,
            self.dpus,
            self.elems_per_node,
            self.is_clean(),
            self.error_count(),
            diags.join(",")
        )
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(f, "{}", self.summary())
    }
}

/// Runs every analysis pass over `schedule` (in either layout — nested
/// [`crate::schedule::CommSchedule`] or flat
/// [`crate::schedule::FlatSchedule`]) and collects the findings.
///
/// Passes run in order — structural, sync, hazard, dataflow — and each
/// tolerates the malformed constructs earlier passes flag (out-of-range
/// DPUs, out-of-bounds spans), so one broken transfer yields its own
/// pinpointed diagnostics rather than a panic or a cascade. Both layouts
/// drive one generic code path, so their reports are byte-identical.
#[must_use]
pub fn run_all<S: ScheduleView>(schedule: &S) -> AnalysisReport {
    let mut diagnostics = Vec::new();
    structural::check(schedule, &mut diagnostics);
    sync::check(schedule, &mut diagnostics);
    hazard::check(schedule, &mut diagnostics);
    dataflow::check(schedule, &mut diagnostics);
    diagnostics.sort_by(|a, b| {
        a.location
            .sort_key()
            .cmp(&b.location.sort_key())
            .then_with(|| a.code.cmp(b.code))
    });
    let hdr = schedule.header();
    AnalysisReport {
        kind: hdr.kind,
        dpus: hdr.geometry.total_dpus(),
        elems_per_node: hdr.elems_per_node,
        diagnostics,
    }
}

/// Stable diagnostic codes, re-exported in one place so tooling can
/// match on them without reaching into pass modules.
pub mod codes {
    pub use super::dataflow::{
        COMBINE_INTO_UNINIT, DOUBLE_COUNTED, MISALIGNED_COMBINE, RESULT_ELEMENTS,
        RESULT_PROVENANCE, RESULT_SHAPE, UNINIT_READ,
    };
    pub use super::hazard::{READ_AFTER_WRITE, WRITE_WRITE};
    pub use super::structural::{
        COMBINE_IN_NON_REDUCING, EMPTY_DSTS, EXCLUSIVE_SHARING, FABRIC_SELF_SEND,
        MALFORMED_RESULT_TABLE, MISSING_DQ_ENDPOINT, NON_LOCAL_WITHOUT_RESOURCES,
        SPAN_LEN_MISMATCH, SPAN_OUT_OF_BOUNDS, WRONG_TIER_RESOURCES,
    };
    pub use super::sync::{CYCLIC_WAIT, EMPTY_BARRIER, PARTITIONED_TREE};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collective::CollectiveKind;
    use crate::schedule::CommSchedule;
    use pim_arch::PimGeometry;

    fn analyze(kind: CollectiveKind, dpus: u32, elems: usize) -> AnalysisReport {
        let g = PimGeometry::paper_scaled(dpus);
        let schedule = CommSchedule::build(kind, &g, elems, 4).expect("builds");
        run_all(&schedule)
    }

    #[test]
    fn every_builtin_collective_analyzes_clean() {
        for kind in CollectiveKind::ALL {
            for dpus in [2u32, 8, 64] {
                let report = analyze(kind, dpus, 64);
                assert!(report.is_clean(), "{kind} x{dpus} not clean:\n{report}");
            }
        }
    }

    #[test]
    fn odd_element_counts_analyze_clean() {
        for kind in CollectiveKind::ALL {
            let report = analyze(kind, 8, 193);
            assert!(report.is_clean(), "{kind} x8 e193 not clean:\n{report}");
        }
    }

    #[test]
    fn report_json_and_summary() {
        let report = analyze(CollectiveKind::AllReduce, 8, 64);
        assert!(report.summary().contains("clean"));
        let json = report.to_json();
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"diagnostics\":[]"));
    }

    #[test]
    fn dropped_transfer_is_detected() {
        let g = PimGeometry::paper_scaled(8);
        let mut schedule =
            CommSchedule::build(CollectiveKind::AllGather, &g, 64, 4).expect("builds");
        // Remove one non-local transfer: some span is no longer delivered.
        'outer: for phase in &mut schedule.phases {
            for step in &mut phase.steps {
                if let Some(i) = step.transfers.iter().position(|t| !t.is_local()) {
                    step.transfers.remove(i);
                    break 'outer;
                }
            }
        }
        let report = run_all(&schedule);
        assert!(report.has_errors(), "mutation not caught:\n{report}");
    }
}
