//! Hazard/race pass (`P2xx`): intra-step conflicts on overlapping spans.
//!
//! Transfers inside one [`crate::schedule::CommStep`] are concurrent. The
//! executor gives the step snapshot semantics (payloads are read before
//! any delivery lands), but real DPUs have no such global barrier per
//! word, so a schedule is only race-free when concurrent accesses to one
//! node's buffer never conflict:
//!
//! * **Write-write** (`P201`): two deliveries into overlapping regions of
//!   one node, where at least one *overwrites*. The landing order is
//!   unspecified, so the result is too. Two *combining* deliveries are
//!   fine — reductions commute.
//! * **Read-after-write** (`P202`): one transfer reads a region that a
//!   concurrent transfer overwrites on the same node. Whether the reader
//!   saw the old or new payload depends on timing. A concurrent
//!   *combining* writer is exempt: this is exactly the pattern AllReduce
//!   uses to merge per-rank broadcast steps, and the repair layer's
//!   reader-before-writer serialization preserves it.
//!
//! This generalizes `schedule::repair`'s reader-before-writer rule from a
//! scheduling heuristic into a checked property.

use std::collections::BTreeMap;

use crate::schedule::{ScheduleView, Span, StepRef};

use super::diagnostics::{Diagnostic, Location};

/// `P201` — overlapping concurrent writes where at least one overwrites.
pub const WRITE_WRITE: &str = "P201";
/// `P202` — a read overlapping a concurrent overwrite on the same node.
pub const READ_AFTER_WRITE: &str = "P202";

/// One buffer access within a step, for conflict checking.
struct Access {
    span: Span,
    combine: bool,
    loc: Location,
}

fn overlaps(a: Span, b: Span) -> bool {
    a.start < b.end() && b.start < a.end()
}

/// Runs the hazard pass, appending findings to `diags`.
pub(super) fn check<S: ScheduleView>(schedule: &S, diags: &mut Vec<Diagnostic>) {
    for pi in 0..schedule.phase_count() {
        for si in 0..schedule.steps_in(pi) {
            check_step(pi, si, schedule.step(pi, si), diags);
        }
    }
}

/// Hazard checks for one step at `(pi, si)`; step-local by construction,
/// so the incremental verifier calls it verbatim. BTreeMap keeps the
/// per-node emission order independent of hash state.
pub(super) fn check_step(pi: usize, si: usize, step: StepRef<'_>, diags: &mut Vec<Diagnostic>) {
    let mut writes: BTreeMap<u32, Vec<Access>> = BTreeMap::new();
    let mut reads: BTreeMap<u32, Vec<Access>> = BTreeMap::new();
    for (ti, t) in step.transfers().enumerate() {
        let loc = Location::at(pi, si, ti);
        reads.entry(t.src.0).or_default().push(Access {
            span: t.src_span,
            combine: false,
            loc,
        });
        for &d in t.dsts {
            writes.entry(d.0).or_default().push(Access {
                span: t.dst_span,
                combine: t.combine,
                loc,
            });
        }
    }
    for (&node, ws) in &writes {
        // Write-write: any overlapping pair with an overwrite.
        'ww: for (i, a) in ws.iter().enumerate() {
            for b in &ws[i + 1..] {
                if overlaps(a.span, b.span) && !(a.combine && b.combine) && a.loc != b.loc {
                    diags.push(Diagnostic::error(
                        WRITE_WRITE,
                        b.loc.on(node),
                        format!(
                            "concurrent writes to overlapping regions {} and {} \
                             of node {node} (also written by {})",
                            a.span, b.span, a.loc
                        ),
                    ));
                    break 'ww;
                }
            }
        }
        // Read-after-write: a concurrent overwrite under a reader.
        if let Some(rs) = reads.get(&node) {
            'raw: for r in rs {
                for w in ws {
                    if !w.combine && overlaps(r.span, w.span) && r.loc != w.loc {
                        diags.push(Diagnostic::error(
                            READ_AFTER_WRITE,
                            r.loc.on(node),
                            format!(
                                "transfer reads {} of node {node} while {} \
                                 concurrently overwrites {}",
                                r.span, w.loc, w.span
                            ),
                        ));
                        break 'raw;
                    }
                }
            }
        }
    }
}
