//! Sync/deadlock pass (`P3xx`): the READY/START barrier tree and
//! WAIT-multiplexed phases.
//!
//! PIMnet sequences steps with a hardware READY/START tree: every
//! participant reports READY, the root broadcasts START, and the next
//! step begins. That protocol has two static failure modes this pass
//! detects without executing anything:
//!
//! * **Partitioned tree** (`P301`): a transfer names a DPU outside the
//!   geometry. The sync tree only spans real participants, so the named
//!   endpoint can never report READY and the barrier never fires.
//! * **Cyclic waits** (`P302`): when a step must be serialized on shared
//!   hardware (the repair layer's reader-before-writer split), transfer
//!   `a` must run before transfer `b` whenever `b` overwrites a region
//!   `a` still has to read. A cycle in that must-precede relation admits
//!   no serial order: every interleaving corrupts some payload, and a
//!   WAIT-multiplexed engine that refuses to clobber un-read data stalls
//!   forever.
//! * **Empty barrier** (`P303`, warning): a phase or step with no
//!   transfers still costs a full READY/START round trip for nothing.

use crate::schedule::{ScheduleHeader, ScheduleView, Span, StepRef};

use super::diagnostics::{Diagnostic, Location};

/// `P301` — a transfer references a DPU outside the geometry; the
/// READY/START sync tree is partitioned.
pub const PARTITIONED_TREE: &str = "P301";
/// `P302` — cyclic must-precede constraints within one step.
pub const CYCLIC_WAIT: &str = "P302";
/// `P303` — an empty phase or step (a barrier with no work).
pub const EMPTY_BARRIER: &str = "P303";

fn overlaps(a: Span, b: Span) -> bool {
    a.start < b.end() && b.start < a.end()
}

/// Runs the sync pass, appending findings to `diags`.
pub(super) fn check<S: ScheduleView>(schedule: &S, diags: &mut Vec<Diagnostic>) {
    let hdr = schedule.header();
    for pi in 0..schedule.phase_count() {
        if schedule.steps_in(pi) == 0 {
            diags.push(Diagnostic::warning(
                EMPTY_BARRIER,
                Location::phase(pi),
                "phase has no steps: a barrier with no work".into(),
            ));
        }
        for si in 0..schedule.steps_in(pi) {
            check_step(&hdr, pi, si, schedule.step(pi, si), diags);
        }
    }
}

/// Sync checks for one step at `(pi, si)`; step-local by construction, so
/// the incremental verifier calls it verbatim. (The phase-level empty
/// warning lives with the phase boundary, not here.)
pub(super) fn check_step(
    hdr: &ScheduleHeader<'_>,
    pi: usize,
    si: usize,
    step: StepRef<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    let total = hdr.geometry.total_dpus();
    if step.is_empty() {
        diags.push(Diagnostic::warning(
            EMPTY_BARRIER,
            Location::step(pi, si),
            "step has no transfers: a barrier with no work".into(),
        ));
    }
    for (ti, t) in step.transfers().enumerate() {
        let loc = Location::at(pi, si, ti);
        for id in std::iter::once(t.src).chain(t.dsts.iter().copied()) {
            if id.0 >= total {
                diags.push(Diagnostic::error(
                    PARTITIONED_TREE,
                    loc.on(id.0),
                    format!(
                        "transfer references {id} outside the geometry's {total} \
                         DPUs: the READY/START sync tree is partitioned and the \
                         step barrier can never fire"
                    ),
                ));
            }
        }
    }
    check_serialization(pi, si, step, diags);
}

/// Builds the must-precede relation of one step (transfer `a` before `b`
/// iff `b` overwrites a region `a` reads on the same node) and reports a
/// cycle if one exists.
fn check_serialization(pi: usize, si: usize, step: StepRef<'_>, diags: &mut Vec<Diagnostic>) {
    let count = step.len();
    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); count];
    for (a, ta) in step.transfers().enumerate() {
        for (b, tb) in step.transfers().enumerate() {
            if a == b || tb.combine {
                continue;
            }
            // `tb` overwrites `ta`'s read region on ta's source node.
            if tb.dsts.contains(&ta.src) && overlaps(ta.src_span, tb.dst_span) {
                edges[a].push(b);
            }
        }
    }

    // Iterative DFS three-coloring: a back edge is a cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color = vec![Color::White; count];
    for root in 0..count {
        if color[root] != Color::White {
            continue;
        }
        let mut stack = vec![(root, 0usize)];
        color[root] = Color::Grey;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if let Some(&w) = edges[v].get(*next) {
                *next += 1;
                match color[w] {
                    Color::White => {
                        color[w] = Color::Grey;
                        stack.push((w, 0));
                    }
                    Color::Grey => {
                        diags.push(Diagnostic::error(
                            CYCLIC_WAIT,
                            Location::at(pi, si, v),
                            format!(
                                "cyclic wait: transfer {v} must precede transfer {w} \
                                 (it reads what {w} overwrites) but {w} transitively \
                                 precedes {v}; the step admits no serial order"
                            ),
                        ));
                        return;
                    }
                    Color::Black => {}
                }
            } else {
                color[v] = Color::Black;
                stack.pop();
            }
        }
    }
}
