//! The paper's lint preset matrix, shared by the CLI `lint --all-presets`
//! command and the `perf_gate` benchmark harness.
//!
//! Two families of cases:
//!
//! * **clean presets** — every collective on the paper's 8/64/256-DPU
//!   geometries at two payload sizes, linted as built;
//! * **fault storms** — sampled permanent-fault scenarios whose repaired
//!   schedules are re-proven (storms that make DPUs unreachable are
//!   *skipped*: repair cannot keep every participant there, the
//!   degradation ladder shrinks instead).
//!
//! Every case is a pure function of its parameters, so running the matrix
//! with any worker count produces the same ordered results. Schedule
//! builds and repairs go through [`crate::schedule::cache`], which is what
//! makes a warm re-run of the matrix cheap.

use pim_arch::geometry::PimGeometry;
use pim_faults::{FaultConfig, FaultInjector, PermanentFaultRates};
use pim_sim::Probe;

use crate::collective::CollectiveKind;
use crate::schedule::{cache, repair, Composition};

use super::AnalysisReport;

/// Geometries of the clean preset sweep (Tables II/IV/VI).
pub const CLEAN_DPUS: [u32; 3] = [8, 64, 256];
/// Payload sizes (elements per node) of the clean preset sweep.
pub const CLEAN_ELEMS: [usize; 2] = [64, 1024];
/// Geometries of the sampled permanent-fault storms.
pub const STORM_DPUS: [u32; 2] = [64, 256];
/// Seeds of the sampled permanent-fault storms.
pub const STORM_SEEDS: [u64; 3] = [1, 2, 3];
/// Elements per node used by every storm case.
pub const STORM_ELEMS: usize = 256;
/// Hierarchical compositions of the composed clean presets (applied per
/// collective where [`Composition::applies_to`] admits them, on the
/// 64-DPU geometry at the small payload).
pub const COMPOSED_SPECS: [&str; 3] = [
    "direct_direct_direct",
    "ring_direct_ring",
    "rabenseifner_ring_direct",
];
/// Geometry of the composed clean presets.
pub const COMPOSED_DPUS: u32 = 64;

/// One case of the preset matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresetCase {
    /// Collective under analysis.
    pub kind: CollectiveKind,
    /// Total DPUs of the preset geometry.
    pub dpus: u32,
    /// Elements contributed per node.
    pub elems: usize,
    /// `Some(seed)` for a sampled permanent-fault storm, `None` for a
    /// clean preset.
    pub storm_seed: Option<u64>,
    /// `Some(composition)` to lint the hierarchical composed schedule
    /// instead of the paper's Table V builder. Never combined with a
    /// storm (repair only targets paper schedules).
    pub algo: Option<Composition>,
}

impl PresetCase {
    /// The label the CLI prints for this case, e.g. `AllReduce x8 e64`
    /// or `AllReduce x64 storm seed 1`.
    #[must_use]
    pub fn label(&self) -> String {
        match (self.storm_seed, self.algo) {
            (None, None) => format!("{} x{} e{}", self.kind, self.dpus, self.elems),
            (None, Some(comp)) => {
                format!("{} x{} e{} algo {comp}", self.kind, self.dpus, self.elems)
            }
            (Some(seed), _) => format!("{} x{} storm seed {seed}", self.kind, self.dpus),
        }
    }

    /// Builds (and for storms, repairs) the case's schedule and runs the
    /// full analysis suite over it.
    ///
    /// # Errors
    ///
    /// A human-readable reason the case has no lintable full-size
    /// schedule: the storm's faults leave DPUs unreachable, or (should a
    /// builder ever regress) the build or repair itself failed. Callers
    /// treat storm errors as skips and clean-preset errors as fatal.
    pub fn run(&self) -> Result<AnalysisReport, String> {
        let g = PimGeometry::paper_scaled(self.dpus);
        let probe = Probe::disabled();
        let Some(seed) = self.storm_seed else {
            // Pass summaries are memoized per (kind, geometry, payload):
            // identical geometries across presets — and across repeated
            // `lint --all-presets` fan-outs in one invocation — are
            // proven once and recalled, not re-proven.
            let summary = match self.algo {
                Some(comp) => {
                    cache::analyze_composed_cached(self.kind, &g, self.elems, 4, comp, 1, probe)
                        .map_err(|e| e.to_string())?
                }
                None => cache::analyze_cached(self.kind, &g, self.elems, 4, probe)
                    .map_err(|e| e.to_string())?,
            };
            return Ok(summary.report.clone());
        };
        // Keep the expected fault count roughly constant across
        // geometries, so large systems still sample *repairable* storms
        // instead of always partitioning a ring.
        let rate = 2.0 / f64::from(self.dpus);
        let cfg = FaultConfig {
            perm_rates: PermanentFaultRates {
                segment_prob: rate,
                port_prob: rate,
                rank_prob: 0.0,
            },
            ..FaultConfig::none()
        }
        .with_seed(seed);
        let injector = FaultInjector::new(cfg);
        let faults =
            injector.permanent_faults(g.ranks_per_channel, g.chips_per_rank, g.banks_per_chip);
        if faults.is_empty() {
            let summary = cache::analyze_cached(self.kind, &g, self.elems, 4, probe)
                .map_err(|e| e.to_string())?;
            return Ok(summary.report.clone());
        }
        let unusable = repair::unusable_dpus(&g, &faults);
        if !unusable.is_empty() {
            return Err(format!(
                "{} DPU(s) unreachable under these faults ({unusable:?}); repair cannot \
                 keep every participant, so there is no full-size schedule to lint",
                unusable.len()
            ));
        }
        // Storms re-prove by delta against the cached base summary: the
        // structural/sync/dataflow work for the shared geometry is done
        // once, and each storm only re-lints the steps its repair dirtied.
        let (summary, _delta) = cache::analyze_repaired_cached_at_epoch(
            self.kind, &g, self.elems, 4, &faults, 0, probe,
        )
        .map_err(|e| format!("repair failed: {e}"))?;
        Ok(summary.report.clone())
    }
}

/// The full preset matrix, in the order the CLI reports it: every clean
/// preset (kind-major), then every composed clean preset (kind-major,
/// [`COMPOSED_SPECS`] order, applicable compositions only), then every
/// storm (geometry-major, seed, kind).
#[must_use]
pub fn cases() -> Vec<PresetCase> {
    let mut out = Vec::new();
    for kind in CollectiveKind::ALL {
        for dpus in CLEAN_DPUS {
            for elems in CLEAN_ELEMS {
                out.push(PresetCase {
                    kind,
                    dpus,
                    elems,
                    storm_seed: None,
                    algo: None,
                });
            }
        }
    }
    for kind in CollectiveKind::ALL {
        for spec in COMPOSED_SPECS {
            let comp = Composition::parse(spec).expect("pinned spec parses");
            if !comp.applies_to(kind) {
                continue;
            }
            out.push(PresetCase {
                kind,
                dpus: COMPOSED_DPUS,
                elems: CLEAN_ELEMS[0],
                storm_seed: None,
                algo: Some(comp),
            });
        }
    }
    for dpus in STORM_DPUS {
        for seed in STORM_SEEDS {
            for kind in CollectiveKind::ALL {
                out.push(PresetCase {
                    kind,
                    dpus,
                    elems: STORM_ELEMS,
                    storm_seed: Some(seed),
                    algo: None,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_has_the_documented_shape() {
        let all = cases();
        let clean = all
            .iter()
            .filter(|c| c.storm_seed.is_none() && c.algo.is_none())
            .count();
        let composed = all.iter().filter(|c| c.algo.is_some()).count();
        let storms = all.len() - clean - composed;
        assert_eq!(clean, 7 * 3 * 2);
        // AllReduce 3 + ReduceScatter 3 + AllGather 3 + Broadcast 2
        // (Rabenseifner banks cannot broadcast) + AllToAll 1 (all-direct
        // only); the rooted converge collectives have no composed form.
        assert_eq!(composed, 12);
        assert_eq!(storms, 2 * 3 * 7);
        assert!(all
            .iter()
            .all(|c| !(c.storm_seed.is_some() && c.algo.is_some())));
    }

    #[test]
    fn clean_presets_lint_clean() {
        let case = PresetCase {
            kind: CollectiveKind::AllReduce,
            dpus: 8,
            elems: 64,
            storm_seed: None,
            algo: None,
        };
        let report = case.run().unwrap();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(case.label(), "AllReduce x8 e64");
    }

    #[test]
    fn composed_presets_lint_clean() {
        let case = PresetCase {
            kind: CollectiveKind::AllReduce,
            dpus: COMPOSED_DPUS,
            elems: 64,
            storm_seed: None,
            algo: Some(Composition::parse("ring_direct_ring").unwrap()),
        };
        let report = case.run().unwrap();
        assert!(report.is_clean(), "{}", report.summary());
        assert_eq!(case.label(), "AllReduce x64 e64 algo ring_direct_ring");
    }

    #[test]
    fn storm_cases_run_or_skip_with_a_reason() {
        for kind in [CollectiveKind::AllReduce, CollectiveKind::AllToAll] {
            let case = PresetCase {
                kind,
                dpus: 64,
                elems: STORM_ELEMS,
                storm_seed: Some(1),
                algo: None,
            };
            match case.run() {
                Ok(report) => assert!(!report.has_errors(), "{}", report.summary()),
                Err(reason) => assert!(reason.contains("unreachable"), "{reason}"),
            }
        }
    }
}
